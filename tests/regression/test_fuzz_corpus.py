"""Shrinker-minimized fuzz counterexamples, pinned.

Each program below was found by the ``repro fuzz`` campaign and reduced
by :func:`repro.fuzz.shrink.shrink` under "the original oracle still
fires"; the golden In sets pin the stabilized-solver answer so a future
precision change shows up as a diff here, not just as a fuzz flake.

``CEX_SEED125`` — found by the campaign at seed 125 (29 statements,
minimized to 10): on this loop-carried wait/post pattern chaotic
iteration (round-robin / worklist) converges to a strictly *larger*
fixpoint than the deterministic engines — the known multiple-fixpoint
behaviour of the non-monotone synchronized system
(``test_fixpoint_multiplicity.py``), rediscovered by the fuzzer at
scale.  The pins assert the bounded-agreement contract the
``solver-agreement`` oracle enforces: stabilized == scc exactly, and
each chaotic engine's sets contain the stabilized ones.

``CEX_DRILL1`` — an injected-fault drill carrier (80 statements,
minimized to 10 under "a seeded ``corrupt_result`` corruption is still
detected by the dynamic self-check"): the smallest program from that
campaign on which the detect-and-shrink loop is exercised end to end.
"""

from repro.fuzz import run_oracles
from repro.fuzz.oracles import _solve_precise, solver_agreement_mode
from repro.lang import parse_program
from repro.pfg import build_pfg

CEX_SEED125 = """program fuzz125
  event e0
  loop
    loop
    endloop
    clear(e0)
    parallel sections
      section S0_1
        wait(e0)
        v1 = 3
      section S0_2
        v1 = 8
        post(e0)
    end parallel sections
  endloop
end program
"""

#: Stabilized-solver In sets (nodes with non-empty In only).  n6 is
#: ``v1 = 3`` after the wait: the posted ``v1n7`` reaches it, but is
#: killed across the guaranteed wait/post ordering everywhere else —
#: including around the loop back edge, which is exactly the fact the
#: chaotic engines lose.
GOLDEN_SEED125 = {
    "n1": ["v1n6"],
    "n2": ["v1n6"],
    "n3": ["v1n6"],
    "n4": ["v1n6"],
    "n5": ["v1n6"],
    "n6": ["v1n6", "v1n7"],
    "n7": ["v1n6"],
    "n8": ["v1n6"],
    "n9": ["v1n6"],
    "Exit": ["v1n6"],
}

CEX_DRILL1 = """program drill1
  event e1
  clear(e1)
  parallel sections
    section S1_0
      loop
        v2 = v2
      endloop
    section S1_1
      parallel sections
        section S1_0
        section S1_1
          v3 = (4 + 4)
      end parallel sections
  end parallel sections
end program
"""

GOLDEN_DRILL1 = {
    "n2": ["v2n3"],
    "n3": ["v2n3"],
    "n4": ["v2n3"],
    "n8": ["v3n7"],
    "n9": ["v2n3", "v3n7"],
    "Exit": ["v2n3", "v3n7"],
}


def _golden_in(source):
    graph = build_pfg(parse_program(source))
    result = _solve_precise(graph, "bitset")
    return {n.name: sorted(result.in_names(n)) for n in graph.nodes if result.in_names(n)}


def test_seed125_golden_in_sets():
    assert _golden_in(CEX_SEED125) == GOLDEN_SEED125


def test_seed125_is_bounded_agreement_territory():
    program = parse_program(CEX_SEED125)
    assert solver_agreement_mode(program) == "bounded"
    # The distilled multiplicity: chaotic iteration keeps the loop-carried
    # v1n7 token that the deterministic engines kill.
    graph = build_pfg(program)
    stab = _solve_precise(graph, "bitset", solver="stabilized")
    rr = _solve_precise(graph, "bitset", solver="round-robin")
    n2 = graph.node("n2")
    assert stab.in_names(n2) < rr.in_names(n2)


def test_seed125_oracles_hold():
    report = run_oracles(parse_program(CEX_SEED125))
    assert report.ok, report.format()


def test_drill1_golden_in_sets():
    assert _golden_in(CEX_DRILL1) == GOLDEN_DRILL1


def test_drill1_oracles_hold():
    report = run_oracles(parse_program(CEX_DRILL1))
    assert report.ok, report.format()


def test_drill1_corruption_detected_and_minimal():
    """The drill predicate still fires on the minimized program: a seeded
    corruption of its analysis is caught by the dynamic self-check."""
    from repro.interp.interp import run_program
    from repro.interp.scheduler import RandomScheduler
    from repro.robust.chaos import corrupt_result
    from repro.robust.selfcheck import verify_result

    program = parse_program(CEX_DRILL1)
    result = _solve_precise(build_pfg(program), "bitset")
    run = run_program(
        program, scheduler=RandomScheduler(seed=0, max_loop_iters=2), graph=result.graph
    )
    tampered, _ = corrupt_result(result, run, seed=1)
    violations, _ = verify_result(tampered, program, seeds=(0,))
    assert violations
