"""Golden provenance chains for the paper's worked examples.

Pins the justification chains behind the figures the paper argues from:

* **fig5b** (§5, Figure 5/8 discussion) — the parallel-merge behavior:
  ``b3``/``b5`` racing into the joins, ``c1``/``c7`` as the conservative
  multiple-values warning, each with its full flow/survive path;
* **fig9** (§6) — the synchronization kill: ``x3`` crosses the
  ``post(ev) → wait(ev)`` edge while ``x1`` is *absent* at the wait
  (the ACCKillout intersection removed it — the paper's sync-kill);
* **fig3** (§6, Figure 3) — chains across the conditional posts.

Plus the solver-identity law on every paper program: the stabilized and
SCC engines must produce the *identical* canonical justification graph,
and every ud-chain definition must be explained (no unsupported facts).
"""

from __future__ import annotations

import pytest

from repro import analyze
from repro.paper import SOURCES, programs
from repro.provenance import (
    diagnose_anomalies,
    ensure_provenance,
    explain_block,
    format_step,
)


def solve(key: str, solver: str = "stabilized"):
    return analyze(
        programs.program(key), solver=solver, record_provenance=True, cache=False
    )


def chain_lines(result, slot, node_name, def_name):
    node = result.graph.node(node_name)
    (defn,) = [d for d in result.graph.defs if d.name == def_name]
    steps = result.provenance.chain(slot, node, defn)
    return [format_step(s) for s in steps]


# ---------------------------------------------------------------------------
# fig5b: parallel merge chains
# ---------------------------------------------------------------------------


def test_fig5b_race_chain_b3_direct():
    result = solve("fig5b")
    assert chain_lines(result, "In", "10", "b3") == [
        "born in block (3): b = 7",
        "flows (3) → (10) on a par edge out of a parallel section",
    ]


def test_fig5b_race_chain_b5_survives_inner_join():
    result = solve("fig5b")
    assert chain_lines(result, "In", "10", "b5") == [
        "born in block (5): b = 5",
        "flows (5) → (9) on a par edge out of a parallel section",
        "survives block (9) — survives the join (not accumulator-killed)",
        "flows (9) → (10) on a par edge out of a parallel section",
    ]


def test_fig5b_multiple_values_chain_c1():
    result = solve("fig5b")
    assert chain_lines(result, "In", "9", "c1") == [
        "born in block (1): c = 2",
        "flows (1) → (2) on a seq edge",
        "survives block (2)",
        "flows (2) → (4) on a par edge into a parallel section",
        "survives block (4)",
        "flows (4) → (5) on a par edge into a parallel section",
        "survives block (5)",
        "flows (5) → (9) on a par edge out of a parallel section",
    ]


def test_fig5b_diagnosis_cites_both_sides_of_the_race():
    result = solve("fig5b")
    text = diagnose_anomalies(result)
    assert "race of 'b' at join (10): {b3, b5}" in text
    assert "b3 reaches (10) because:" in text
    assert "b5 reaches (10) because:" in text
    assert (
        "b3 and b5 are written by blocks that may execute concurrently" in text
    )


# ---------------------------------------------------------------------------
# fig9: synchronization kill
# ---------------------------------------------------------------------------


def test_fig9_post_value_crosses_the_sync_edge():
    result = solve("fig9")
    assert chain_lines(result, "In", "5", "x3") == [
        "born in block (3): x = 3",
        "flows (3) → (5) on a sync edge post(ev) → wait(ev)",
    ]


def test_fig9_stale_definition_is_sync_killed_at_the_wait():
    result = solve("fig9")
    node5 = result.graph.node("5")
    (x1,) = [d for d in result.graph.defs if d.name == "x1"]
    # x1 does not reach the wait: the ordered post's x3 was accumulated
    # into the kill, so there is no fact — that *absence* is the sync-kill.
    assert x1 not in result.In(node5)
    assert not result.provenance.has_fact("In", node5, x1)


def test_fig9_explain_block_golden():
    result = solve("fig9")
    assert explain_block(result, "5", var="x") == (
        "block (5): [5:basic] wait(ev); x = (x * 2)\n"
        "\n"
        "x@5#0: 1 reaching definition\n"
        "  x3:\n"
        "    born in block (3): x = 3\n"
        "    flows (3) → (5) on a sync edge post(ev) → wait(ev)\n"
        "    read by x@5#0 in block (5)\n"
    )


# ---------------------------------------------------------------------------
# fig3: synchronized loop chains
# ---------------------------------------------------------------------------


def test_fig3_conditional_posts_both_reach_the_wait():
    result = solve("fig3")
    assert chain_lines(result, "In", "8", "x4") == [
        "born in block (4): x = 7",
        "flows (4) → (8) on a sync edge post(ev) → wait(ev)",
    ]
    assert chain_lines(result, "In", "8", "x5") == [
        "born in block (5): x = 8",
        "flows (5) → (8) on a sync edge post(ev) → wait(ev)",
    ]


def test_fig3_race_explanations_carry_complete_chains():
    result = solve("fig3")
    text = diagnose_anomalies(result, include_multiple=False)
    # Every cited definition gets a chain ending in a birth site.
    assert "x4 reaches (8) because:" in text
    assert "born in block (4): x = 7" in text
    assert "no derivation" not in text


# ---------------------------------------------------------------------------
# Laws over every paper program
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(SOURCES))
def test_solver_identity_and_support(key):
    stab = solve(key, "stabilized")
    scc = solve(key, "scc")
    assert stab.provenance.unsupported() == []
    assert scc.provenance.unsupported() == []
    assert stab.provenance.canonical() == scc.provenance.canonical()


@pytest.mark.parametrize("key", sorted(SOURCES))
def test_every_ud_chain_definition_is_explained(key):
    result = solve(key)
    prov = result.provenance
    for use, defs in result.ud_chains().items():
        node = result.graph.node(use.site) if isinstance(use.site, str) else use.site
        if node.local_def_before(use.var, use.ordinal) is not None:
            continue  # intra-block: explained by the block itself
        for d in defs:
            steps = prov.chain("In", node, d)
            assert steps[0].kind == "gen"
            assert steps[0].fact.node is result.info.def_node[d]
            assert steps[-1].fact.node is node


def test_lazy_provenance_matches_recorded():
    recorded = solve("fig6")
    lazy = analyze(programs.program("fig6"), cache=False)
    assert lazy.provenance is None
    built = ensure_provenance(lazy)
    assert lazy.provenance is built
    assert built.canonical() == recorded.provenance.canonical()
