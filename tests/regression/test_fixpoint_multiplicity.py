"""Regression: the paper's equation system admits **multiple fixpoints** —
chaotic (Gauss–Seidel) iteration converges to different, visit-order-
dependent solutions; the stabilized solver is deterministic and at least
as precise.

The trigger (distilled from generator seed 1): a loop *inside* the waiting
section.  Under document order, the wait's ``In`` is first computed before
the post's ``ACCKillout`` exists, so the poster-killed definitions slip
into the loop and then sustain themselves around the back edge — a valid
but non-least fixpoint.  Under RPO (post visited first) they never enter.
"""

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_synch

TRAP = """program trap
event e
(1) a = 1
(1) b = 2
(2) parallel sections
  (3) section WAITER
    (3) wait(e)
    (4) loop
      (5) u = a
    (6) endloop
  (7) section POSTER
    (7) a = 3
    (7) b = 4
    (7) post(e)
(8) end parallel sections
end"""


def in_at_loop(order, solver):
    graph = build_pfg(parse_program(TRAP))
    result = solve_synch(graph, order=order, solver=solver)
    return {d.name for d in result.reaching("5", "a")}, result


def test_chaotic_iteration_is_order_dependent():
    doc, _ = in_at_loop("document", "round-robin")
    rpo, _ = in_at_loop("rpo", "round-robin")
    # Both are fixpoints of the equations; document order traps a1/b1 in
    # the waiter's loop.
    assert doc != rpo
    assert rpo < doc


def test_stabilized_is_order_independent():
    results = [in_at_loop(order, "stabilized")[0] for order in
               ("document", "rpo", "reverse-document", "random:3")]
    assert all(r == results[0] for r in results)


def test_stabilized_matches_most_precise_chaotic():
    rpo, _ = in_at_loop("rpo", "round-robin")
    stab, _ = in_at_loop("document", "stabilized")
    assert stab == rpo
    # The poster's a7 is the only 'a' visible inside the waiting loop:
    # a1 was killed before the post, and the wait absorbed the copy.
    assert stab == {"a7"}


def test_stabilized_never_less_precise_than_chaotic():
    for order in ("document", "rpo", "reverse-document"):
        chaotic, _ = in_at_loop(order, "round-robin")
        stab, _ = in_at_loop(order, "stabilized")
        assert stab <= chaotic
