"""Regression: the paper's own caveat about its Figure 3 example.

§3: "the event variable 'ev' is not cleared between iterations of the
loop, and thus, this example would not execute properly."

Concretely: on iteration ≥ 2 the event is still posted, so section B1's
wait falls straight through *before* section A's post — the §6 equations'
correctness assumption (every post executable before its wait, PCF [9])
is violated, and executions exist whose reaching definitions lie outside
the static sets.  Clearing the event each iteration (``fig3c``) restores
the assumption, and soundness with it.  This test pins all three facts.
"""

from repro import analyze
from repro.interp import RandomScheduler, check_soundness, run_program
from repro.paper import programs


def violations_over_seeds(key, max_loop_iters, seeds=60):
    prog = programs.program(key)
    result = analyze(prog)
    out = []
    for seed in range(seeds):
        run = run_program(prog, RandomScheduler(seed=seed, max_loop_iters=max_loop_iters))
        out.extend(check_soundness(result, run))
    return out


def test_broken_fig3_single_iteration_is_sound():
    assert violations_over_seeds("fig3", max_loop_iters=1) == []


def test_broken_fig3_multi_iteration_escapes_static_sets():
    # The paper's "would not execute properly": some schedule lets the
    # stale posting release the wait early, so a pre-post definition of x
    # reaches the join — outside the static In set.
    violations = violations_over_seeds("fig3", max_loop_iters=3, seeds=120)
    assert violations, "expected the stale-event anomaly to be observable"
    assert any(v.observation.use.var == "x" for v in violations)


def test_cleared_fig3_is_sound_at_any_iteration_count():
    assert violations_over_seeds("fig3c", max_loop_iters=4) == []


def test_cleared_variant_same_analysis_results_on_shared_blocks():
    # Adding clear(ev) must not change any data-flow set of the original
    # blocks (clear is analysis-transparent).
    broken = analyze(programs.program("fig3"))
    cleared = analyze(programs.program("fig3c"))
    for name in ["Entry", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11"]:
        assert broken.in_names(name) == cleared.in_names(name), name
        assert broken.out_names(name) == cleared.out_names(name), name
