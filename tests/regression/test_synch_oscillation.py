"""Regression: the paper's *literal* SynchPass equation has no fixpoint on
loop-carried tokens; the ordering filter (DESIGN.md §2, synch.py module
docstring) restores convergence without changing any paper example.

The trigger shape (distilled from generator seed 29): a loop around a
construct in which the wait's thread redefines a variable that a section
*concurrent with the wait* also defines — the concurrent definition
circulates around the loop into the post's Out set, is treated as
"definitely ordered before the wait", gets accumulated-killed at the join,
vanishes from the loop-carried flow, drops out of SynchPass, stops being
killed, reappears, ...
"""

import pytest

from repro.dataflow.framework import FixpointDiverged
from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_synch

OSCILLATOR = """program oscillator
event e
(1) v = 0
(2) loop
  clear(e)
  (3) parallel sections
    (4) section POSTER
      (4) post(e)
    (5) section WAITER
      (5) wait(e)
      (5) v = 1
    (6) section OTHER
      (6) v = 2
  (7) end parallel sections
(8) endloop
end"""


def test_literal_equations_diverge():
    graph = build_pfg(parse_program(OSCILLATOR))
    with pytest.raises(FixpointDiverged):
        solve_synch(
            graph,
            solver="round-robin",
            filter_synch_pass=False,
        )


def test_filtered_equations_converge():
    graph = build_pfg(parse_program(OSCILLATOR))
    result = solve_synch(graph, solver="round-robin", filter_synch_pass=True)
    assert result.stats.converged


def test_filtered_result_keeps_concurrent_def():
    # The concurrent definition v6 must reach the join: nothing orders it
    # after the waiter's v5 (this is exactly what the literal equation got
    # wrong before oscillating).
    graph = build_pfg(parse_program(OSCILLATOR))
    result = solve_synch(graph)
    assert {d.name for d in result.reaching("7", "v")} == {"v5", "v6"}


def test_filter_does_not_change_paper_results(fig3_graph):
    # In/Out/ACCKill are identical with and without the filter on the
    # paper's Figure 3.  (The auxiliary SynchPass set itself differs by
    # loop-carried tokens — y11/z6/z9 — but node 8 defines only x, so
    # OtherDefs ∩ SynchPass and hence every analysis result is the same.)
    filtered = solve_synch(fig3_graph, solver="round-robin")
    literal = solve_synch(fig3_graph, solver="round-robin", filter_synch_pass=False)
    for node in fig3_graph.nodes:
        assert filtered.in_names(node) == literal.in_names(node)
        assert filtered.out_names(node) == literal.out_names(node)
        assert filtered.set_names("ACCKillin", node) == literal.set_names("ACCKillin", node)
        assert filtered.set_names("ACCKillout", node) == literal.set_names("ACCKillout", node)
    node8 = fig3_graph.node("8")
    extra = literal.SynchPass(node8) - filtered.SynchPass(node8)
    assert {d.name for d in extra} == {"y11", "z6", "z9"}  # loop-carried tokens
