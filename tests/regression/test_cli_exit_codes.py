"""Regression: the full CLI exit-code contract, pinned in one place.

The CLI module docstring promises a stable contract for CI use:

====  ===========================================================
0     success
1     usage / front-end / I/O error (batch: no inputs, bad manifest)
2     analysis failure (batch: any task recorded a nonzero code)
3     graph invariant violation
4     dynamic failure (run/batch --run: interpreter deadlock)
====  ===========================================================

Every row below exercises one (command, outcome) cell end to end via
``main()``.  If a change moves any of these codes, it breaks consumers'
CI scripts — update the docstring table, docs/robustness.md, and
docs/batch.md together with this file, deliberately.
"""

import pytest

from repro.tools.cli import main

GOOD_SRC = """program demo
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
end
"""

SYNC_SRC = """program sync
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) data = x + 1
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = data
  (5) end parallel sections
  (5) z = y
end program
"""

DEADLOCK_SRC = """program dl
  event e
  (1) a = 1
  (2) parallel sections
    (3) section one
      (3) wait(e)
      (3) b = a
    (4) section two
      (4) c = 2
  (5) end parallel sections
end program
"""

BAD_SRC = "program bad\nx = = 1\nend\n"


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.pcf"
    path.write_text(GOOD_SRC)
    return str(path)


@pytest.fixture
def sync_file(tmp_path):
    path = tmp_path / "sync.pcf"
    path.write_text(SYNC_SRC)
    return str(path)


@pytest.fixture
def deadlock_file(tmp_path):
    path = tmp_path / "dl.pcf"
    path.write_text(DEADLOCK_SRC)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.pcf"
    path.write_text(BAD_SRC)
    return str(path)


@pytest.fixture
def diverge_file(tmp_path):
    from repro import pretty
    from repro.synthetic import loop_nest

    path = tmp_path / "diverge.pcf"
    path.write_text(pretty(loop_nest(8)))
    return str(path)


# -- 0: success -------------------------------------------------------------


@pytest.mark.parametrize(
    "argv",
    [
        ["parse", "{f}"],
        ["graph", "{f}"],
        ["analyze", "{f}"],
        ["cssa", "{f}"],
        ["report", "{f}"],
        ["check", "{f}", "--runs", "2"],
        ["run", "{f}"],
        ["stats", "{f}"],
        ["batch", "{f}"],
    ],
)
def test_success_is_0(argv, good_file, capsys):
    assert main([a.format(f=good_file) for a in argv]) == 0


def test_degraded_report_is_still_0(sync_file, capsys):
    # degradation is a flagged success, not a failure
    assert main(["report", sync_file, "--max-passes", "1"]) == 0


# -- 1: usage / front-end / I-O --------------------------------------------


@pytest.mark.parametrize(
    "command", ["parse", "graph", "analyze", "cssa", "report", "check", "run", "stats"]
)
def test_missing_file_is_1(command, capsys):
    assert main([command, "/nonexistent/prog.pcf"]) == 1
    assert capsys.readouterr().err.startswith("error:")


@pytest.mark.parametrize("command", ["parse", "analyze", "report", "check", "run"])
def test_bad_syntax_is_1(command, bad_file, capsys):
    assert main([command, bad_file]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_batch_without_inputs_is_1(capsys):
    assert main(["batch"]) == 1


def test_batch_unreadable_manifest_is_1(tmp_path, capsys):
    assert main(["batch", "--manifest", str(tmp_path / "absent.txt")]) == 1


# -- 2: analysis failure ----------------------------------------------------


def test_analyze_budget_exhaustion_is_2(sync_file, capsys):
    assert main(["analyze", sync_file, "--max-passes", "1"]) == 2
    assert "did not converge" in capsys.readouterr().err


def test_report_no_degrade_exhaustion_is_2(sync_file, capsys):
    assert main(["report", sync_file, "--max-passes", "1", "--no-degrade"]) == 2
    assert "did not converge" in capsys.readouterr().err


def test_check_degrades_under_budget_and_stays_0(sync_file, capsys):
    # check has no --no-degrade: it validates whatever level the ladder
    # lands on, so budget exhaustion is absorbed, not an exit-2 failure
    assert main(["check", sync_file, "--max-passes", "1"]) == 0
    assert "degraded" in capsys.readouterr().out


def test_batch_with_any_failing_task_is_2(good_file, bad_file, capsys):
    assert main(["batch", good_file, bad_file]) == 2


def test_batch_no_degrade_exhaustion_is_2(good_file, diverge_file, capsys):
    code = main(
        ["batch", good_file, diverge_file, "--max-passes", "8", "--no-degrade"]
    )
    assert code == 2
    assert "failed" in capsys.readouterr().out


def test_batch_degrade_absorbs_exhaustion_to_0(good_file, diverge_file, capsys):
    # same corpus, ladder on: the diverging program degrades instead
    code = main(["batch", good_file, diverge_file, "--max-passes", "8"])
    assert code == 0
    assert "degraded" in capsys.readouterr().out


# -- 3: graph invariant violation -------------------------------------------


def test_invariant_violation_is_3(good_file, capsys, monkeypatch):
    from repro.pfg.validate import PFGInvariantError
    from repro.tools import cli

    def boom(*args, **kwargs):
        raise PFGInvariantError(["fork (2) without matching join"])

    monkeypatch.setattr(cli, "_analyze", boom)
    assert main(["analyze", good_file]) == 3


# -- 4: dynamic failure ------------------------------------------------------


def test_run_deadlock_is_4(deadlock_file, capsys):
    assert main(["run", deadlock_file]) == 4
    assert "DEADLOCK" in capsys.readouterr().out


def test_run_clean_is_0(good_file, capsys):
    assert main(["run", good_file]) == 0


def test_batch_run_deadlock_rolls_up_to_2(deadlock_file, good_file, capsys):
    # the per-task record carries 4; the batch-level contract says any
    # nonzero task makes the whole batch exit 2
    assert main(["batch", good_file, deadlock_file, "--run"]) == 2
    assert "dynamic-failure" in capsys.readouterr().out
