"""Regression: the incremental fallback contract.

Every fallback condition — sync-touching edits, base-digest misses,
structurally unmatched diffs, base-system mismatches, degraded admission
levels — must produce a *full* solve with ``solve.incr.fallbacks``
counted, and the serve delta form must stay terminal (zero-lost
invariant) in every case.  A fallback is never an error: the response
carries the ordinary result plus an ``incremental`` stamp naming the
reason."""

import pytest

from repro import analyze, obs, parse_program
from repro.incremental import (
    FALLBACK_SYNC,
    FALLBACK_SYSTEM,
    FALLBACK_UNMATCHED,
    IncrementalBase,
    incremental_analyze,
)
from repro.lang import ast, pretty
from repro.serve.protocol import ProtocolError, validate_request
from repro.serve.worker import execute_request
from repro.synthetic import workloads

SYNC_SRC = """
program synced
  event e
  x = 1
  parallel sections
    section a
      x = 2
      post(e)
    section b
      wait(e)
      y = x
  end parallel sections
end program
"""


def _base_for(program, **kw):
    return IncrementalBase.from_result(
        program, analyze(program, cache=False, **kw)
    )


def _sets(result):
    return {
        (n.name, "In"): frozenset(d.name for d in result.In(n))
        for n in result.graph.nodes
    } | {
        (n.name, "Out"): frozenset(d.name for d in result.Out(n))
        for n in result.graph.nodes
    }


def test_sync_edit_falls_back_full_and_counted():
    """An edit that introduces synchronization: the §6 system stays
    whole-program, so the engine must full-solve with the fallback
    counted — and the answer must equal a from-scratch solve."""
    base = _base_for(workloads.diamond_chain(5))
    edited = parse_program(SYNC_SRC)
    with obs.session() as sess:
        outcome = incremental_analyze(base, edited, cache=False)
        counters = sess.metrics.export_state()["counters"]
    assert outcome.fallback == FALLBACK_SYNC
    assert outcome.regions_reused == 0
    assert counters.get("solve.incr.fallbacks") == 1
    assert _sets(outcome.result) == _sets(analyze(edited, cache=False))


def test_sync_base_falls_back_even_for_sync_free_edit():
    """Sync on the *base* side also disqualifies reuse: the retained rows
    came from the non-monotone §6 system."""
    base = _base_for(parse_program(SYNC_SRC))
    edited = workloads.diamond_chain(5)
    outcome = incremental_analyze(base, edited, cache=False)
    assert outcome.fallback == FALLBACK_SYNC
    assert _sets(outcome.result) == _sets(analyze(edited, cache=False))


def test_structurally_unmatched_diff_falls_back():
    """Diffing against a completely different program matches nothing —
    full solve, counted, correct."""
    base = _base_for(workloads.diamond_chain(6))
    edited = workloads.chain(10)
    with obs.session() as sess:
        outcome = incremental_analyze(base, edited, cache=False)
        counters = sess.metrics.export_state()["counters"]
    assert outcome.fallback == FALLBACK_UNMATCHED
    assert counters.get("solve.incr.fallbacks") == 1
    assert _sets(outcome.result) == _sets(analyze(edited, cache=False))


def test_system_family_change_falls_back():
    """Base solved sequentially, edit introduces Parallel Sections: the
    §5 kill layer has no retained rows to reuse."""
    base = _base_for(workloads.diamond_chain(4))
    edited = workloads.wide_parallel(3, 2)
    outcome = incremental_analyze(base, edited, cache=False)
    assert outcome.fallback in (FALLBACK_SYSTEM, FALLBACK_UNMATCHED)
    assert _sets(outcome.result) == _sets(analyze(edited, cache=False))


# ---------------------------------------------------------------------------
# Serve delta form: zero-lost under every fallback
# ---------------------------------------------------------------------------


def test_serve_base_miss_is_terminal_full_solve():
    program = workloads.diamond_chain(4)
    record = execute_request(
        {"source": pretty(program), "base_digest": "no-such-digest"}
    )
    assert record["status"] == "ok"
    stamp = record["result"]["incremental"]
    assert stamp["fallback"] == "base-miss"
    assert stamp["regions_reused"] == 0
    assert record["counters"].get("solve.incr.fallbacks") == 1


def test_serve_delta_roundtrip_reuses():
    v1 = workloads.diamond_chain(8)
    first = execute_request({"source": pretty(v1)})
    assert first["status"] == "ok"
    v2 = workloads.diamond_chain(8)
    v2.body[-1].then_body[0] = ast.Assign(target="x", expr=ast.IntLit(77))
    second = execute_request(
        {"source": pretty(v2), "base_digest": first["result"]["digest"]}
    )
    assert second["status"] == "ok"
    stamp = second["result"]["incremental"]
    assert stamp["fallback"] is None
    assert stamp["regions_reused"] >= 1
    # The delta response must agree with a plain response for the same source.
    plain = execute_request({"source": pretty(v2)})
    assert plain["result"]["anomalies"] == second["result"]["anomalies"]
    assert plain["result"]["digest"] == second["result"]["digest"]


def test_serve_delta_degraded_level_falls_back():
    """Admission at a degraded level answers a different question — the
    delta form must not reuse full-precision rows there."""
    v1 = workloads.diamond_chain(4)
    first = execute_request({"source": pretty(v1)})
    record = execute_request(
        {"source": pretty(v1), "base_digest": first["result"]["digest"]},
        level=2,
    )
    assert record["status"] == "degraded"
    assert record["result"]["incremental"]["fallback"] == "degraded"


def test_serve_delta_parse_error_still_terminal():
    record = execute_request(
        {"source": "program broken ??? end program", "base_digest": "x" * 64}
    )
    assert record["status"] == "error"
    assert record["error"]


def test_serve_delta_sync_edit_terminal_and_identical():
    v1 = workloads.diamond_chain(4)
    first = execute_request({"source": pretty(v1)})
    record = execute_request(
        {"source": SYNC_SRC, "base_digest": first["result"]["digest"]}
    )
    assert record["status"] == "ok"
    assert record["result"]["incremental"]["fallback"] == "sync"
    plain = execute_request({"source": SYNC_SRC})
    assert plain["result"]["digest"] == record["result"]["digest"]


# ---------------------------------------------------------------------------
# Protocol validation of the delta form
# ---------------------------------------------------------------------------


def test_protocol_accepts_base_digest():
    validate_request(
        {"id": 1, "params": {"source": "program p\nx = 1\nend program",
                             "base_digest": "abc123"}}
    )


@pytest.mark.parametrize("bad", [7, "", "   ", ["d"], {"d": 1}])
def test_protocol_rejects_bad_base_digest(bad):
    with pytest.raises(ProtocolError):
        validate_request(
            {"id": 1, "params": {"source": "program p\nx = 1\nend program",
                                 "base_digest": bad}}
        )
