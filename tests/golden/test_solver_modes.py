"""The stabilized (default) solver reproduces the paper's fixpoints
bit-for-bit on every paper example — the per-iteration tables are a
round-robin artifact, the *answers* are solver-independent there."""

import pytest

from repro.paper import programs
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch

CASES = [
    ("fig1a", solve_sequential),
    ("fig1b", solve_parallel),
    ("fig5a", solve_sequential),
    ("fig5b", solve_parallel),
    ("fig6", solve_parallel),
    ("fig3", solve_synch),
    ("fig3c", solve_synch),
    ("fig9", solve_synch),
]


@pytest.mark.parametrize("key,solve", CASES, ids=[c[0] for c in CASES])
def test_stabilized_equals_paper_mode(key, solve):
    kwargs = {} if solve is solve_sequential else {"solver": "stabilized"}
    stabilized = solve(programs.graph(key), **kwargs)
    paper = solve(programs.graph(key), solver="round-robin")
    for node in stabilized.graph.nodes:
        assert stabilized.in_names(node) == paper.in_names(node.name), node.name
        assert stabilized.out_names(node) == paper.out_names(node.name), node.name
        if stabilized.acc_killout is not None:
            assert stabilized.set_names("ACCKillout", node) == paper.set_names(
                "ACCKillout", node.name
            ), node.name


@pytest.mark.parametrize("key,solve", CASES, ids=[c[0] for c in CASES])
def test_worklist_equals_paper_mode(key, solve):
    wl = solve(programs.graph(key), solver="worklist")
    paper = solve(programs.graph(key), solver="round-robin")
    for node in wl.graph.nodes:
        assert wl.in_names(node) == paper.in_names(node.name), node.name


def test_snapshot_passes_requires_round_robin(fig6_graph):
    with pytest.raises(ValueError, match="round-robin"):
        solve_parallel(fig6_graph, solver="stabilized", snapshot_passes=True)
