"""Golden test — Figure 8: parallel reaching definitions on the Figure 6
program, plus every prose claim from paper §5."""

from repro.paper.golden import EXPECTED_PASSES, FIG8_FIXPOINT


def test_all_sets_match_figure8(fig8_result):
    for node, row in FIG8_FIXPOINT.items():
        for col, expected in row.items():
            got = fig8_result.set_names(col, node)
            assert got == expected, f"{col}({node}): {sorted(got)} != {sorted(expected)}"


def test_convergence_claim(fig8_result):
    # "This system of equations converges on the second iteration."
    changing, total = EXPECTED_PASSES["fig8"]
    assert fig8_result.stats.changing_passes == changing
    assert fig8_result.stats.passes == total


def test_iteration1_equals_fixpoint(fig8_result):
    # "The figure shows the first iteration (which is the same as the
    # second)."
    snap = fig8_result.stats.snapshots[0]
    for node in fig8_result.graph.nodes:
        assert frozenset(d.name for d in snap["In"][node.name]) == fig8_result.in_names(node)
        assert frozenset(d.name for d in snap["Out"][node.name]) == fig8_result.out_names(node)


def test_prose_acckillout10_has_b1_not_c1(fig8_result):
    # "Note that ACCKillout(10) contains b1 ... even though 'c' is defined
    # in node 7, the definition is conditional on 'P', and thus c1 does
    # not appear in ACCKillout(10)."
    acc = fig8_result.set_names("ACCKillout", "10")
    assert "b1" in acc and "c1" not in acc


def test_prose_out10_anomaly(fig8_result):
    # "The set Out(10) contains definitions b3 and b5, indicating a
    # potential anomaly."
    out = fig8_result.out_names("10")
    assert {"b3", "b5"} <= out


def test_prose_fig5_parallel_merge_a(fig8_result):
    # §5: "at the parallel merge point, the only reaching value of 'a' is
    # the value defined in Section A."
    assert {d.name for d in fig8_result.reaching("10", "a")} == {"a3"}


def test_prose_fig5_b_values_from_sections(fig8_result):
    # "the values of 'b' ... reaching the join node are either from
    # Section A or Section B" (b1 must not survive).
    assert {d.name for d in fig8_result.reaching("10", "b")} == {"b3", "b5"}


def test_prose_conditional_c_reaches(fig8_result):
    # "the variable 'c' is defined conditionally in Section B.  Therefore,
    # this value and the value of 'c' defined prior to the outer Parallel
    # Sections construct reach the parallel merge points."
    assert {d.name for d in fig8_result.reaching("9", "c")} == {"c1", "c7"}
    assert {d.name for d in fig8_result.reaching("10", "c")} == {"c1", "c7"}
