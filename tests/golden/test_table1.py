"""Golden test — Table 1: sequential reaching definitions for Figure 1(a)."""

from repro.paper.golden import EXPECTED_PASSES, TABLE1_FIXPOINT, TABLE1_ITER1_IN


def test_fixpoint_matches_table1(table1_result):
    for node, row in TABLE1_FIXPOINT.items():
        for col, expected in row.items():
            got = table1_result.set_names(col, node)
            assert got == expected, f"{col}({node}): {sorted(got)} != {sorted(expected)}"


def test_convergence_claim(table1_result):
    changing, total = EXPECTED_PASSES["table1"]
    assert table1_result.stats.changing_passes == changing
    assert table1_result.stats.passes == total


def test_first_iteration_in_sets(table1_result):
    snap = table1_result.stats.snapshots[0]
    for node, expected in TABLE1_ITER1_IN.items():
        got = frozenset(d.name for d in snap["In"][node])
        assert got == expected, f"iter1 In({node})"


def test_paper_prose_j_reaching_node6(table1_result):
    # §2.1: "The reaching definitions for the use of 'j' at node (6) are
    # j1 and j4."
    assert {d.name for d in table1_result.reaching("6", "j")} == {"j1", "j4"}


def test_definitions_named_after_blocks(fig1a_graph):
    assert set(fig1a_graph.defs.names()) == {"j1", "k1", "j4", "k5", "l6"}
