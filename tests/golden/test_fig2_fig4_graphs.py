"""Golden tests — Figure 2 (CFG of Fig 1(a)) and Figure 4 (PFG of Fig 3)."""

from repro.paper.golden import FIG2_CFG_EDGES, FIG4_PFG_EDGES
from repro.pfg import EdgeKind, NodeKind


def test_fig2_cfg_structure(fig1a_graph):
    got = {(s.name, d.name) for s, d, _k in fig1a_graph.edges()}
    assert got == set(FIG2_CFG_EDGES)


def test_fig2_all_edges_sequential(fig1a_graph):
    assert all(k is EdgeKind.SEQ for *_x, k in fig1a_graph.edges())


def test_fig2_node_names(fig1a_graph):
    assert set(fig1a_graph.names()) == {"Entry", "1", "2", "3", "4", "5", "6", "7", "Exit"}


def test_fig4_pfg_structure(fig3_graph):
    got = {(s.name, d.name, str(k)) for s, d, k in fig3_graph.edges()}
    assert got == set(FIG4_PFG_EDGES)


def test_fig4_fork_join_matching(fig3_graph):
    assert fig3_graph.node("2").kind is NodeKind.FORK
    assert fig3_graph.node("7").kind is NodeKind.FORK
    assert fig3_graph.node("2").join is fig3_graph.node("11")
    assert fig3_graph.node("7").join is fig3_graph.node("10")
    assert fig3_graph.node("11").fork is fig3_graph.node("2")
    assert fig3_graph.node("10").fork is fig3_graph.node("7")


def test_fig4_extended_basic_blocks(fig3_graph):
    # (8) is the paper's canonical extended basic block: wait at start,
    # one statement after.
    node8 = fig3_graph.node("8")
    assert node8.wait_event == "ev"
    assert len(node8.stmts) == 1
    # (4)/(5): statement then post at block end.
    assert fig3_graph.node("4").post_event == "ev"
    assert fig3_graph.node("5").post_event == "ev"


def test_fig4_entry_holds_initializers(fig3_graph):
    assert [str(s) for s in fig3_graph.entry.stmts] == ["x = 2", "y = 5"]


def test_fig3_definition_names(fig3_graph):
    assert set(fig3_graph.defs.names()) == {
        "xEntry", "yEntry", "x4", "x5", "z6", "x8", "z9", "y11",
    }
