"""Golden test — Figures 11/12: the synchronized system on the Figure 3
program, iteration by iteration, plus every §6 prose claim."""

from repro.paper.golden import (
    EXPECTED_PASSES,
    FIG3_LOCAL,
    FIG3_PRESERVED_8,
    FIG11_ITER1,
    FIG12_ITER2,
)


def test_local_sets(fig3_result):
    for node, row in FIG3_LOCAL.items():
        for col, expected in row.items():
            got = fig3_result.set_names(col, node)
            assert got == expected, f"{col}({node})"


def test_preserved_8_paper_verbatim(fig3_result):
    # §6: "The Preserved set of node (8) (the wait node) is the set
    # {Entry, 1, 2, 3, 4, 5, 7}".
    assert fig3_result.preserved.names(fig3_result.graph.node("8")) == FIG3_PRESERVED_8


def _check_snapshot(snap, table):
    for node, row in table.items():
        for col, expected in row.items():
            got = frozenset(str(d) for d in snap[col][node])
            assert got == expected, f"{col}({node}): {sorted(got)} != {sorted(expected)}"


def test_iteration1_matches_figure11(fig3_result):
    _check_snapshot(fig3_result.stats.snapshots[0], FIG11_ITER1)


def test_iteration2_matches_figure12(fig3_result):
    _check_snapshot(fig3_result.stats.snapshots[1], FIG12_ITER2)


def test_convergence_claim(fig3_result):
    # "the fix point is reached in the third iteration."
    changing, total = EXPECTED_PASSES["fig11_12"]
    assert fig3_result.stats.changing_passes == changing
    assert fig3_result.stats.passes == total


def test_iteration2_is_fixpoint(fig3_result):
    snap2 = fig3_result.stats.snapshots[1]
    for node in fig3_result.graph.nodes:
        assert frozenset(d.name for d in snap2["In"][node.name]) == fig3_result.in_names(node)


def test_prose_x4_x5_do_not_reach_join11(fig3_result):
    # "The definitions x4 and x5 will not reach the join node (11),
    # because the definition x8 always executes after x4 and x5."
    x_defs = {d.name for d in fig3_result.reaching("11", "x")}
    assert x_defs == {"x8"}


def test_prose_acckillout11_includes_x4_x5(fig3_result):
    # "the ACCKillout set of (11) includes x4 and x5."
    assert {"x4", "x5"} <= fig3_result.set_names("ACCKillout", "11")


def test_prose_z6_z9_reach_merge11(fig3_result):
    # "The definitions z6 and z9 reach the merge node (11); this is an
    # indication of a potential anomaly."
    assert {d.name for d in fig3_result.reaching("11", "z")} == {"z6", "z9"}


def test_prose_parallelkill_at_6_and_9(fig3_result):
    # "the Out set of (6) does not contain z9 since this definition is in
    # its ParallelKill set" (and symmetrically for node 9).
    assert "z9" not in fig3_result.out_names("6")
    assert "z6" in fig3_result.out_names("6")
    assert "z6" not in fig3_result.out_names("9")
    # "The reason the In set of (6) and (9) both have z6 and z9 is because
    # of the loop around the parallel block."
    assert {"z6", "z9"} <= fig3_result.in_names("6")
    assert {"z6", "z9"} <= fig3_result.in_names("9")


def test_prose_synchpass_carries_posted_defs(fig3_result):
    # "This information was propagated to node (8) by the synchronization
    # edges since (4) and (5) were in the Preserved set of (8)."
    assert {"x4", "x5"} <= fig3_result.set_names("SynchPass", "8")
    assert {"x4", "x5"} <= fig3_result.set_names("ACCKillin", "8")
