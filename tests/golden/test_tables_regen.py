"""The table/figure regeneration functions produce the paper artifacts."""

from repro.paper import tables


def test_table1_render():
    text = tables.table1()
    assert "Table 1" in text
    assert "{j1, k1}" in text  # Out(1)
    assert "2+1 iterations" in text


def test_fig8_render():
    text = tables.fig8()
    assert "Figure 8" in text
    assert "ACCKillout" in text
    assert "{a3, b3, b5, c1, c7}" in text  # In(10)
    assert "1+1 iterations" in text


def test_fig11_12_render():
    text = tables.fig11_12()
    assert "iteration 1" in text and "iteration 2" in text
    assert "SynchPass" in text
    assert "{x4, x5, yEntry}" in text


def test_fig2_fig4_dot():
    assert tables.fig2().startswith("digraph")
    assert "style=dashed" in tables.fig4()  # sync edges only in Figure 4
    assert "style=dashed" not in tables.fig2()


def test_regenerate_all_complete():
    artifacts = tables.regenerate_all()
    assert set(artifacts) == {"table1", "fig2", "fig4", "fig8", "fig11_12"}
    assert all(isinstance(v, str) and v for v in artifacts.values())
