"""Golden tests — the remaining figures: the §1 motivation (Figure 1),
the merge-semantics comparison (Figure 5) and the synchronization kill
example (Figure 9)."""

from repro import analyze
from repro.analysis import find_induction_variables, propagate_constants
from repro.paper import programs
from repro.paper.golden import FIG9_JOIN_IN, FIG9_POST_ACCKILLOUT
from repro.reachdefs import solve_sequential


# -- Figure 1 -----------------------------------------------------------------


def test_fig1_induction_variable_contrast():
    # §1: "The variable 'j' in 1(a) is not an induction variable ...
    # However, in the parallel program, 'j' is an induction variable since
    # both branches of the Parallel Sections statement always execute."
    seq = analyze(programs.program("fig1a"))
    par = analyze(programs.program("fig1b"))
    assert find_induction_variables(seq) == []
    ivs = find_induction_variables(par)
    assert [iv.var for iv in ivs] == ["j"]


def test_fig1_constant_k_contrast():
    # §1: "dataflow information would show that the variable 'k' has the
    # value 5 at the end of the parallel construct during each iteration."
    par = propagate_constants(analyze(programs.program("fig1b")))
    seq = propagate_constants(analyze(programs.program("fig1a")))
    assert par.constant_at("6", "k") == 5
    assert seq.constant_at("6", "k") is None


def test_fig1b_k1_killed_at_join():
    par = analyze(programs.program("fig1b"))
    assert {d.name for d in par.reaching("6", "k")} == {"k5"}
    assert {d.name for d in par.reaching("6", "j")} == {"j4"}


# -- Figure 5 ------------------------------------------------------------------


def test_fig5a_sequential_merge_keeps_both_a():
    # §5: "In the case of the sequential program, the values of the
    # variable 'a' reaching the endif statement is either the value
    # defined before the if test or the value defined in the then-part."
    r = solve_sequential(programs.graph("fig5a"))
    assert {d.name for d in r.reaching("5", "a")} == {"a1", "a3"}
    assert {d.name for d in r.reaching("5", "b")} == {"b3", "b4"}


def test_fig5b_parallel_merge_only_section_a():
    # "However, at the parallel merge point, the only reaching value of
    # 'a' is the value defined in Section A."
    r = analyze(programs.program("fig5b"))
    assert {d.name for d in r.reaching("10", "a")} == {"a3"}


# -- Figure 9 ------------------------------------------------------------------------


def test_fig9_only_wait_def_reaches_join(fig9_result):
    # §6: "only the value from the wait node should reach the join node,
    # because that definition must occur after the assignment in the post
    # node and the fork node."
    assert fig9_result.in_names("6") == FIG9_JOIN_IN


def test_fig9_fork_value_in_post_acckillout(fig9_result):
    # "The definition in the fork node is in the ACCKillout set for the
    # post node" (our builder keeps those defs in the pre-fork block 1;
    # same data flow).
    assert fig9_result.set_names("ACCKillout", "4") == FIG9_POST_ACCKILLOUT


def test_fig9_wait_absorbs_posted_x(fig9_result):
    # The wait block's read of x resolves to the posted definition x3.
    assert {d.name for d in fig9_result.reaching("5", "x")} == {"x3"}


def test_fig9_without_preserved_both_defs_reach():
    # "in the absence of the Preserved sets information in figure 9, we
    # would derive the Out set of the join node to contain the definitions
    # from both the post and the wait node."
    from repro.reachdefs import solve_synch

    r = solve_synch(programs.graph("fig9"), preserved="none")
    assert {d.name for d in r.reaching("6", "x")} == {"x3", "x5"}
