"""End-to-end integration: source text → parse → PFG → analysis →
clients → interpreter, on a program exercising every construct at once."""

from repro import analyze, build_pfg, parse_program, pretty, to_dot, validate_pfg
from repro.analysis import (
    compute_ud_chains,
    find_anomalies,
    find_common_subexpressions,
    find_copy_propagations,
    find_dead_code,
    find_induction_variables,
    propagate_constants,
)
from repro.interp import RandomScheduler, check_soundness, run_program

KITCHEN_SINK = """\
program everything
  event go, done
  (1) n = 4
  (1) total = 0
  (2) loop
    clear(go)
    clear(done)
    (3) parallel sections
      (4) section produce
        (4) item = n * 2
        (4) post(go)
        (5) footer = 1
      (6) section transform
        (6) wait(go)
        (6) item = item + 1
        (6) post(done)
      (7) section audit
        (7) if n > 3 then
          (8) flag = 1
        else
          (9) flag = 0
        (10) endif
    (11) end parallel sections
    (11) wait(done)
    (11) total = total + 1
  (12) endloop
  (13) final = total
end program
"""


def test_full_pipeline():
    program = parse_program(KITCHEN_SINK)

    # Pretty-print round-trip.
    reparsed = parse_program(pretty(program))
    graph = build_pfg(reparsed)
    validate_pfg(graph)

    # Analysis picks the synchronized system and converges.
    result = analyze(reparsed)
    assert result.system == "synch"
    assert result.stats.converged

    # The transform section's read of `item` is fully determined by the
    # post/wait chain (plus the loop-carried copy of its own result).
    item_defs = {d.name for d in result.reaching("6", "item")}
    assert "item4" in item_defs

    # Clients all run.
    chains = compute_ud_chains(result)
    assert chains.ud
    anomalies = find_anomalies(result)
    assert isinstance(anomalies, list)
    constants = propagate_constants(result)
    assert constants.constant_at("3", "n") == 4
    ivs = find_induction_variables(result)
    assert any(iv.var == "total" for iv in ivs)  # total = total + 1, always runs
    find_dead_code(result)
    find_copy_propagations(result)
    find_common_subexpressions(result)

    # DOT export is well-formed-ish.
    dot = to_dot(graph)
    assert dot.count("->") >= len(graph.nodes) - 1

    # Dynamic validation across schedules.
    for seed in range(20):
        run = run_program(reparsed, RandomScheduler(seed=seed, max_loop_iters=2), graph=graph)
        assert not run.deadlocked
        assert check_soundness(result, run) == []


def test_cli_matches_library(tmp_path, capsys):
    from repro.tools.cli import main

    path = tmp_path / "everything.pcf"
    path.write_text(KITCHEN_SINK)
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "synch reaching definitions" in out
    assert "SynchPass" in out
