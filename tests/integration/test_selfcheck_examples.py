"""`repro check` over every shipped program: the static sets must explain
every seeded execution — including for the programs that take the
degradation ladder (Figure 3's stale event)."""

import pytest

from repro import parse_program
from repro.paper import programs
from repro.robust import DegradationLevel, self_check
from repro.tools.cli import main


def test_check_command_on_quickstart_example(capsys):
    assert main(["check", "examples/quickstart.pcf"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("self-check PASS")


@pytest.mark.parametrize("key", sorted(programs.SOURCES))
def test_self_check_all_paper_programs(key):
    report = self_check(parse_program(programs.SOURCES[key]), runs=5)
    assert report.ok, report.format()


def test_fig3_passes_via_the_ladder():
    """The paper's own broken example: its stale event voids the Preserved
    assumption, so full §6 precision would be unsound — the ladder must
    degrade to no-preserved and the degraded result must explain every
    run."""
    report = self_check(parse_program(programs.SOURCES["fig3"]), runs=8)
    assert report.ok, report.format()
    assert report.degradation is not None
    assert report.degradation.level is DegradationLevel.NO_PRESERVED
