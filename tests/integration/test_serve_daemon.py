"""Integration: a live ``repro serve`` daemon driven through its whole
operational envelope — healthy traffic, warm-cache repeats, chaos
crash/retry, deadline kills, load shedding, policy degradation, and
graceful drain.  Everything runs on a background thread + real worker
processes; the zero-lost-requests invariant (every request gets exactly
one terminal response) is asserted throughout.
"""

import concurrent.futures
import json
import threading

import pytest

from repro.obs import read_jsonl
from repro.serve import ServeClient, ServeConfig, ServerThread

SEQ = "program tiny\n  (1) a = 1\n  (2) b = a + 1\nend program\n"

PAR = """program par
  (1) a = 0
  (2) parallel sections
    (3) section A
      (3) a = a + 1
    (4) section B
      (4) b = 2
  (5) end parallel sections
  (5) c = a + b
end program
"""


@pytest.fixture(scope="module")
def chaos_daemon():
    config = ServeConfig(
        workers=2,
        max_pending=8,
        retries=1,
        deadline_s=10.0,
        deadline_grace_s=1.0,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        chaos=True,
    )
    with ServerThread(config) as srv:
        yield srv


def _client(daemon):
    return ServeClient("127.0.0.1", daemon.port)


class TestHealthyPath:
    def test_ok_roundtrip(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, env = c.rpc(SEQ, "ok-1")
        assert status == 200
        assert env["status"] == "ok"
        assert env["code"] == 0
        assert env["id"] == "ok-1"
        assert env["result"]["system"] == "sequential"
        assert env["attempts"] == 1
        assert env["timings"]["total_ms"] > 0

    def test_parallel_program_and_options(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, env = c.rpc(PAR, 2, options={"backend": "set", "solver": "worklist"})
        assert status == 200
        assert env["status"] in ("ok", "degraded")
        assert env["result"]["program"] == "par"

    def test_warm_cache_repeats_are_solver_free(self, chaos_daemon):
        source = "program warm\n  (1) x = 7\n  (2) y = x * 2\nend program\n"
        with _client(chaos_daemon) as c:
            before = c.healthz()["counters"].get("cache.serve.hits", 0)
            # Hit every worker at least once so each warms its own cache;
            # then total repeats exceed worker count, forcing hits.
            for i in range(6):
                status, env = c.rpc(source, f"warm-{i}")
                assert status == 200 and env["status"] == "ok"
            after = c.healthz()["counters"]
        assert after.get("cache.serve.hits", 0) > before
        assert after.get("cache.hits", 0) >= after.get("cache.serve.hits", 0)

    def test_syntax_error_is_typed(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, env = c.rpc("program broken\n  (1) a = =\nend program\n", "err-1")
        assert status == 200
        assert env["status"] == "error"
        assert env["code"] == 1
        assert env["error"]

    def test_bad_request_rejected_before_admission(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            admitted_before = c.healthz()["admission"]["admitted"]
            status, env = c.rpc("", "bad-1")
            admitted_after = c.healthz()["admission"]["admitted"]
        assert status == 400
        assert env["status"] == "bad-request"
        assert env["id"] == "bad-1"
        assert admitted_after == admitted_before

    def test_healthz_shape(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            health = c.healthz()
        assert health["status"] == "ok"
        assert health["schema"] == "repro-serve/1"
        assert health["workers"]["size"] == 2
        assert health["admission"]["max_pending"] == 8
        assert "policy" in health and "counters" in health

    def test_readyz_while_admitting(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, body = c.readyz()
        assert status == 200
        assert body["ready"] is True


class TestChaos:
    def test_crash_then_recover(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, env = c.rpc(SEQ, "chaos-1", chaos={"kill_attempts": 1})
        assert status == 200
        assert env["status"] == "ok"
        assert env["attempts"] == 2  # first attempt died, retry succeeded

    def test_retry_exhaustion_is_typed_crashed(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, env = c.rpc(SEQ, "chaos-2", chaos={"kill_attempts": 99})
        assert status == 200
        assert env["status"] == "crashed"
        assert env["code"] == 2
        assert env["attempts"] == 2  # retries=1 → two attempts total

    def test_supervisor_stats_surface_in_healthz(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            health = c.healthz()
        assert health["workers"]["crashes"] >= 1
        assert health["workers"]["respawns"] >= 1
        assert health["workers"]["alive"] == 2  # pool healed after chaos

    def test_deadline_blown_worker_is_killed(self, chaos_daemon):
        with _client(chaos_daemon) as c:
            status, env = c.rpc(
                SEQ,
                "slow-1",
                options={"deadline_s": 0.2},
                chaos={"delay_ms": 5000},
            )
        assert status == 200
        assert env["status"] == "timeout"
        assert env["code"] == 2
        assert env["attempts"] == 1  # deadline spent: no retry
        with _client(chaos_daemon) as c:
            status, env = c.rpc(SEQ, "after-slow")
        assert env["status"] == "ok"  # pool healed


class TestOverload:
    def test_burst_sheds_fast_and_loses_nothing(self):
        config = ServeConfig(
            workers=1,
            max_pending=3,
            deadline_s=10.0,
            deadline_grace_s=1.0,
            chaos=True,
        )
        n = 10
        with ServerThread(config) as srv:

            def fire(i):
                with ServeClient("127.0.0.1", srv.port) as c:
                    return c.rpc(
                        SEQ, f"burst-{i}", chaos={"delay_ms": 300}
                    )

            with concurrent.futures.ThreadPoolExecutor(max_workers=n) as pool:
                results = list(pool.map(fire, range(n)))
            with ServeClient("127.0.0.1", srv.port) as c:
                health = c.healthz()
        # Exactly one terminal response per request — none lost, none hung.
        assert len(results) == n
        by_status = {}
        for http, env in results:
            by_status[env["status"]] = by_status.get(env["status"], 0) + 1
            if env["status"] == "shed":
                assert http == 429
                assert env["code"] == 5
            else:
                assert http == 200
        assert by_status.get("ok", 0) >= 1
        assert by_status.get("shed", 0) >= 1  # 10 requests into 3 slots
        assert by_status.get("ok", 0) + by_status.get("shed", 0) == n
        assert health["admission"]["shed"] >= by_status["shed"]

    def test_degradation_policy_steps_down_under_load(self):
        # queue_l1=0 makes every request degrade one rung (drill mode).
        config = ServeConfig(
            workers=1,
            max_pending=4,
            degrade_queue_l1=0,
        )
        with ServerThread(config) as srv:
            with ServeClient("127.0.0.1", srv.port) as c:
                status, env = c.rpc(PAR, "deg-1")
                health = c.healthz()
        assert status == 200
        assert env["status"] == "degraded"
        assert env["served_level"] == 1
        assert env["degradation"]["level"] >= 1
        assert health["counters"].get("serve.policy.level1", 0) >= 1


class TestDrain:
    def test_graceful_drain_sequence(self, tmp_path):
        telemetry = tmp_path / "serve_obs.jsonl"
        config = ServeConfig(
            workers=1,
            max_pending=4,
            telemetry_path=str(telemetry),
        )
        srv = ServerThread(config)
        with srv:
            with ServeClient("127.0.0.1", srv.port) as c:
                status, env = c.rpc(SEQ, "pre-drain")
                assert env["status"] == "ok"
                srv.drain()
                # Drain is asynchronous; poll until the daemon refuses.
                # With no in-flight work the whole drain can finish before
                # the first poll, in which case the listener is already
                # closed — connection refusal is the same "not admitting"
                # signal as a 503, so accept either.
                refused = False
                deadline = threading.Event()
                for _ in range(100):
                    try:
                        status, body = c.readyz()
                    except OSError:
                        refused = True
                        break
                    if status == 503:
                        refused = True
                        assert body["ready"] is False
                        break
                    deadline.wait(0.02)
                assert refused
                try:
                    status, env = c.rpc(SEQ, "post-drain")
                except OSError:
                    pass  # fully closed: refusal at the transport layer
                else:
                    assert status == 503
                    assert env["status"] == "draining"
                    assert env["code"] == 5
            srv.join()
        # Telemetry flushed on drain: parseable repro-obs/1 JSONL with the
        # serve counters in it.
        records = read_jsonl(telemetry)
        assert records
        counters = {
            r["name"]: r for r in records if r.get("type") == "counter"
        }
        assert counters.get("serve.requests", {}).get("value", 0) >= 1

    def test_double_drain_is_harmless(self):
        config = ServeConfig(workers=1, max_pending=2)
        with ServerThread(config) as srv:
            with ServeClient("127.0.0.1", srv.port) as c:
                c.rpc(SEQ, "x")
            srv.drain()
            srv.join()
            srv.drain()  # after the loop is gone: a no-op, not a crash
