"""Every example script runs clean (they contain their own assertions)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parents[2] / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=180
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip(), "examples should narrate what they show"
