"""Documentation consistency: the docs exist, and every repository path
they reference resolves — guarding against doc rot as modules move."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parents[2]
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/equations.md",
    "docs/observability.md",
    "docs/robustness.md",
]


@pytest.mark.parametrize("doc", DOCS)
def test_doc_exists_and_is_substantial(doc):
    path = ROOT / doc
    assert path.exists(), doc
    assert len(path.read_text().splitlines()) > 40, f"{doc} looks stubbed"


_PATH_RE = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_/.-]+\.(?:py|md))`"
)


@pytest.mark.parametrize("doc", DOCS)
def test_referenced_paths_exist(doc):
    text = (ROOT / doc).read_text()
    missing = [m for m in _PATH_RE.findall(text) if not (ROOT / m).exists()]
    assert missing == [], f"{doc} references missing files: {missing}"


def test_experiments_covers_every_paper_artifact():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Table 1", "Figure 2", "Figure 4", "Figures 7/8",
                     "Figures 10/11/12", "Figure 1", "Figure 5", "Figure 9"):
        assert artifact in text, artifact


def test_design_lists_solver_modes_and_findings():
    text = (ROOT / "DESIGN.md").read_text()
    assert "stabilized" in text and "round-robin" in text
    assert "SynchPass" in text and "Preserved" in text


def test_every_bench_module_named_in_docs():
    """Each benchmarks/bench_*.py appears in DESIGN.md's experiment index
    or EXPERIMENTS.md (so every experiment is documented)."""
    design = (ROOT / "DESIGN.md").read_text() + (ROOT / "EXPERIMENTS.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in design or f"benchmarks/{bench.name}" in design, bench.name
