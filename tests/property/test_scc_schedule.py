"""Property: the sparse SCC-scheduled solver reaches the same fixpoints
as the sweep solvers — byte-identical sets across random generator
programs, every paper figure, and chaos-shuffled sweep orders."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro import build_pfg
from repro.dataflow.budget import NonConvergenceError
from repro.dataflow.framework import FixpointDiverged
from repro.lang.ast import Assign, BinOp, If, IntLit, Loop, ParallelDo, ParallelSections, Program, Section, Var
from repro.lang.errors import SourcePos, SourceSpan
from repro.paper import programs
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch
from repro.robust import shuffled_orders

from .conftest import generated_programs, sequential_programs

SLOTS = ("In", "Out", "ACCKillin", "ACCKillout", "ForkKill", "SynchPass")


def _sets(result):
    """Every computed set, keyed by (slot, node name) — byte-identical
    comparison across solver runs on the same graph."""
    out = {}
    for slot in SLOTS:
        attr = {
            "In": "in_sets",
            "Out": "out_sets",
            "ACCKillin": "acc_killin",
            "ACCKillout": "acc_killout",
            "ForkKill": "fork_kill",
            "SynchPass": "synch_pass",
        }[slot]
        values = getattr(result, attr, None)
        if values is None:
            continue
        for node, value in values.items():
            out[(slot, node.name)] = value
    return out


@settings(max_examples=25, deadline=None)
@given(prog=sequential_programs())
def test_scc_identical_to_chaotic_solvers_sequential(prog):
    # The §2 system is monotone with a unique fixpoint: every solver must
    # land on exactly the same sets.
    graph = build_pfg(prog)
    base = solve_sequential(graph, solver="round-robin")
    for solver in ("worklist", "scc"):
        other = solve_sequential(graph, solver=solver)
        assert _sets(other) == _sets(base), solver


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False))
@example(
    prog=Program(name='gen186',
     events=[],
     body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v0',
       expr=IntLit(value=5)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v1',
       expr=IntLit(value=6)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v1',
       expr=Var(name='v0')),
      ParallelSections(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       sections=[Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_0',
         body=[ParallelSections(span=SourceSpan(start=SourcePos(line=0,
             column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           sections=[Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_0',
             body=[If(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               cond=BinOp(op='<', left=Var(name='c1'), right=IntLit(value=1)),
               then_body=[Assign(span=SourceSpan(start=SourcePos(line=0,
                   column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=Var(name='v1'))],
               else_body=[],
               end_label=None)]),
            Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_1',
             body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               target='v0',
               expr=BinOp(op='-',
                left=BinOp(op='-',
                 left=IntLit(value=0),
                 right=IntLit(value=0)),
                right=Var(name='v1'))),
              Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               target='v0',
               expr=IntLit(value=6))]),
            Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_2',
             body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               target='v1',
               expr=BinOp(op='-', left=IntLit(value=3), right=Var(name='v1'))),
              Loop(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=IntLit(value=1)),
                Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=IntLit(value=6)),
                Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v1',
                 expr=IntLit(value=4))],
               end_label=None)])],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v0',
           expr=BinOp(op='-', left=IntLit(value=6), right=IntLit(value=5))),
          ParallelSections(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           sections=[Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_0',
             body=[ParallelDo(span=SourceSpan(start=SourcePos(line=0,
                 column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               index='idx0',
               body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=BinOp(op='+',
                  left=BinOp(op='-',
                   left=IntLit(value=2),
                   right=BinOp(op='-',
                    left=IntLit(value=0),
                    right=IntLit(value=0))),
                  right=Var(name='idx0'))),
                Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=IntLit(value=9))],
               end_label=None),
              Loop(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=IntLit(value=8)),
                Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                  end=SourcePos(line=0, column=0)),
                 label=None,
                 target='v0',
                 expr=IntLit(value=9))],
               end_label=None)]),
            Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_1',
             body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               target='v1',
               expr=IntLit(value=1))])],
           end_label=None)]),
        Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_1',
         body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v1',
           expr=Var(name='v1'))]),
        Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_2',
         body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v0',
           expr=Var(name='v1'))])],
       end_label=None)],
     span=SourceSpan(start=SourcePos(line=0, column=0),
      end=SourcePos(line=0, column=0))),
).via('discovered failure')
def test_scc_identical_to_all_solvers_parallel(prog):
    # Even sync-free, the §5 system's kill layer (ForkKill/ACCKillout
    # read Out at joins) gives the equations multiple fixpoints once
    # parallel constructs nest or sit inside loops: the pinned example
    # above — found by this test — converges under plain `worklist` to
    # a strictly larger fixpoint (an entry definition trapped past a
    # killing join), and loop-wrapped variants can ping-pong to the
    # update cap (see test_order_independence.py, where the same
    # boundary is pinned for shuffled orders).  The contract is
    # therefore split: the deterministic engines (stabilized, scc) must
    # agree byte-for-byte — they all compute the least fixpoint — while
    # the chaotic sweeps, *when* they converge, must sit pointwise
    # above it.
    graph = build_pfg(prog)
    base = solve_parallel(graph, solver="stabilized")
    fast = solve_parallel(graph, solver="scc")
    assert _sets(fast) == _sets(base)
    for solver in ("round-robin", "worklist"):
        try:
            chaotic = solve_parallel(graph, solver=solver)
        except (FixpointDiverged, NonConvergenceError):
            continue  # honest outcome of the literal equations
        for node in graph.nodes:
            assert fast.in_sets[node] <= chaotic.in_sets[node], (solver, node.name)
            assert fast.out_sets[node] <= chaotic.out_sets[node], (solver, node.name)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=True))
def test_scc_identical_to_stabilized_synch(prog):
    # With synchronization the equations admit multiple fixpoints and the
    # chaotic solvers may diverge (see test_order_independence.py); the
    # scc solver's contract is exact agreement with the deterministic
    # stabilized solution, and containment in any chaotic one.
    graph = build_pfg(prog)
    base = solve_synch(graph, solver="stabilized")
    fast = solve_synch(graph, solver="scc")
    assert _sets(fast) == _sets(base)
    for solver in ("round-robin", "worklist"):
        try:
            chaotic = solve_synch(graph, solver=solver)
        except FixpointDiverged:
            continue  # honest outcome of the literal equations
        for node in graph.nodes:
            assert fast.in_sets[node] <= chaotic.in_sets[node], (solver, node.name)
            assert fast.out_sets[node] <= chaotic.out_sets[node], (solver, node.name)


@pytest.mark.parametrize("key", sorted(programs.SOURCES))
def test_scc_identical_on_every_paper_figure(key):
    # On the paper's figures the chaotic solvers converge and agree, so
    # here the equality is exact against *all* of them.
    graph = programs.graph(key)
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    if uses_sync:
        solve = solve_synch
    elif uses_parallel:
        solve = solve_parallel
    else:
        solve = solve_sequential
    solvers = ["round-robin", "worklist"]
    if solve is not solve_sequential:
        solvers.append("stabilized")
    fast = solve(graph, solver="scc")
    for solver in solvers:
        base = solve(graph, solver=solver)
        assert _sets(fast) == _sets(base), (key, solver)


@settings(max_examples=15, deadline=None)
@given(prog=generated_programs(), seed=st.integers(min_value=0, max_value=999))
def test_scc_fixpoint_invariant_under_shuffled_orders(prog, seed):
    # Chaos seeds through the new scheduler: the order argument only sets
    # within-region priority, so shuffled sweep orders cannot change the
    # fixpoint.
    graph = build_pfg(prog)
    reference = solve_synch(graph, solver="scc")
    shuffled = solve_synch(graph, solver="scc", order=f"random:{seed}")
    assert _sets(shuffled) == _sets(reference)


@pytest.mark.parametrize("key", ["fig3", "fig6", "fig9"])
def test_scc_invariant_under_chaos_order_helper(key):
    graph = programs.graph(key)
    solve = solve_synch if (graph.posts_of_event or graph.waits_of_event) else solve_parallel
    reference = _sets(solve(graph, solver="scc"))
    for seed, _order in shuffled_orders(graph, range(7)):
        shuffled = solve(graph, solver="scc", order=f"random:{seed}")
        assert _sets(shuffled) == reference, f"seed {seed} changed the fixpoint"
