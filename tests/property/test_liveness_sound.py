"""Property: liveness is dynamically sound — every runtime read of a
variable happens at a block where the variable is statically live-in
(for reads of assigned variables; free-variable inputs carry no def)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_pfg
from repro.analysis.liveness import solve_liveness
from repro.interp import RandomScheduler, run_program

from .conftest import generated_programs


@settings(max_examples=30, deadline=None)
@given(prog=generated_programs(), sched_seed=st.integers(0, 50))
def test_every_dynamic_read_is_statically_live(prog, sched_seed):
    graph = build_pfg(prog)
    liveness = solve_liveness(graph)
    run = run_program(prog, RandomScheduler(seed=sched_seed, max_loop_iters=2), graph=graph)
    for obs in run.uses:
        node = graph.node(obs.use.site)
        # A read at ordinal k is "live at block entry" unless an earlier
        # statement in the block defined the variable (then it is a local
        # use, outside LiveIn's contract).
        local = node.local_def_before(obs.use.var, obs.use.ordinal)
        if local is None:
            assert obs.use.var in liveness.LiveIn(node), obs.use


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False))
def test_dead_defs_have_no_live_target_downstream(prog):
    """Consistency between the two dead-code views: a definition the
    RD-based client proves dead (with nothing observable at exit) writes
    a variable that is not live-out at its block."""
    from repro import analyze
    from repro.analysis import find_dead_code

    graph = build_pfg(prog)
    result = analyze(prog)
    liveness = solve_liveness(graph)
    report = find_dead_code(result, observable_at_exit=False)
    for d in report.dead:
        node = graph.node(d.site)
        if node.defs_of(d.var)[-1] is not d:
            continue  # shadowed within its own block: liveness can't see it
        # liveness may be *more* conservative (it keeps things live that
        # RD-based DCE kills via ACCKill), so only the implication
        # "not live ⇒ dead" is checked the other way around:
        if d.var not in liveness.LiveOut(node):
            assert d in report.dead
