"""Property: all three set backends compute identical fixpoints, and the
backend operations agree with frozenset semantics on random inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analyze
from repro.dataflow.bitset import BACKENDS, make_backend
from repro.ir.defs import DefTable

from .conftest import generated_programs


@settings(max_examples=30, deadline=None)
@given(prog=generated_programs())
def test_fixpoints_identical_across_backends(prog):
    base = analyze(prog, backend="set")
    for backend in ("bitset", "numpy"):
        other = analyze(prog, backend=backend)
        for node in base.graph.nodes:
            assert base.in_names(node) == other.in_names(node.name), (backend, node.name)
            assert base.out_names(node) == other.out_names(node.name), (backend, node.name)


def _universe(n=70):
    t = DefTable()
    for i in range(n):
        t.add(f"v{i % 5}", str(i))
    return list(t)


UNIVERSE = _universe()
subsets = st.sets(st.integers(min_value=0, max_value=len(UNIVERSE) - 1))


@settings(max_examples=200, deadline=None)
@given(a=subsets, b=subsets, backend=st.sampled_from(sorted(BACKENDS)))
def test_operations_match_frozenset_model(a, b, backend):
    ops = make_backend(backend, UNIVERSE)
    fa = frozenset(UNIVERSE[i] for i in a)
    fb = frozenset(UNIVERSE[i] for i in b)
    sa, sb = ops.from_defs(fa), ops.from_defs(fb)
    assert ops.to_frozenset(ops.union(sa, sb)) == fa | fb
    assert ops.to_frozenset(ops.intersection(sa, sb)) == fa & fb
    assert ops.to_frozenset(ops.difference(sa, sb)) == fa - fb
    assert ops.equals(sa, sb) == (fa == fb)
    assert ops.size(sa) == len(fa)


@settings(max_examples=100, deadline=None)
@given(
    fams=st.lists(subsets, max_size=4),
    backend=st.sampled_from(sorted(BACKENDS)),
)
def test_family_operations_match_model(fams, backend):
    ops = make_backend(backend, UNIVERSE)
    fsets = [frozenset(UNIVERSE[i] for i in f) for f in fams]
    handles = [ops.from_defs(f) for f in fsets]
    expected_union = frozenset().union(*fsets) if fsets else frozenset()
    assert ops.to_frozenset(ops.union_all(handles)) == expected_union
    if fsets:
        expected_inter = frozenset.intersection(*fsets)
    else:
        expected_inter = frozenset()  # DESIGN.md empty-intersection rule
    assert ops.to_frozenset(ops.intersection_all(handles)) == expected_inter
