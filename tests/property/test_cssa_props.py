"""Property tests for the CSSA construction."""

from hypothesis import given, settings

from repro import build_pfg
from repro.cssa import build_cssa, render_cssa
from repro.ir.defs import Use
from repro.reachdefs import solve_synch

from .conftest import generated_programs, sequential_programs


@settings(max_examples=30, deadline=None)
@given(prog=generated_programs())
def test_single_assignment_property(prog):
    """Every SSA version has exactly one defining occurrence (an original
    assignment or one merge function)."""
    graph = build_pfg(prog)
    form = build_cssa(graph)
    definers = list(form.def_versions.values()) + [m.target for m in form.merges.values()]
    assert len(definers) == len(set(definers))


@settings(max_examples=30, deadline=None)
@given(prog=generated_programs())
def test_every_use_resolves(prog):
    """Each use maps to exactly one version of its own variable, or None
    (undefined/input) — never to several."""
    graph = build_pfg(prog)
    form = build_cssa(graph)
    for node in graph.nodes:
        for use in node.uses():
            version = form.use_versions[use]
            assert version is None or version.var == use.var


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_expansion_covers_ud_chains(prog):
    """A use's version, expanded through merges, contains every definition
    the (synchronized) reaching-definitions analysis says may reach it."""
    graph = build_pfg(prog)
    form = build_cssa(graph)
    result = solve_synch(graph)
    for use, version in form.use_versions.items():
        static = result.reaching_use(use)
        if version is None:
            assert not static, use
            continue
        assert static <= form.expand(version), use


@settings(max_examples=25, deadline=None)
@given(prog=sequential_programs())
def test_expansion_exact_on_sequential(prog):
    """On sequential programs (no ACCKill effects) the expansion equals
    the ud-chain exactly."""
    graph = build_pfg(prog)
    form = build_cssa(graph)
    result = solve_synch(graph)
    for use, version in form.use_versions.items():
        if version is None:
            continue
        assert form.expand(version) == result.reaching_use(use), use


@settings(max_examples=20, deadline=None)
@given(prog=generated_programs(max_stmts=20))
def test_merges_have_multiple_distinct_args(prog):
    graph = build_pfg(prog)
    form = build_cssa(graph)
    for merge in form.merges.values():
        assert len(merge.arg_versions()) >= 2, merge.format()


@settings(max_examples=15, deadline=None)
@given(prog=generated_programs(max_stmts=20))
def test_render_total(prog):
    graph = build_pfg(prog)
    form = build_cssa(graph)
    text = render_cssa(graph, form)
    assert text.count("block (") == len(graph.nodes)
