"""Hypothesis strategies shared by the property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.synthetic import GeneratorConfig, generate_program

#: Strategy: a structured-random program via the seeded generator (the
#: generator is itself property-tested for determinism, so a seed is a
#: faithful, shrinkable proxy for a program).
program_seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def generated_programs(draw, max_stmts: int = 30, with_sync: bool = True):
    seed = draw(program_seeds)
    size = draw(st.integers(min_value=5, max_value=max_stmts))
    n_vars = draw(st.integers(min_value=2, max_value=6))
    cfg = GeneratorConfig(
        target_stmts=size,
        n_vars=n_vars,
        with_sync=with_sync,
        p_parallel=draw(st.sampled_from([0.1, 0.25, 0.4])),
        p_loop=draw(st.sampled_from([0.0, 0.1, 0.2])),
    )
    return generate_program(seed, cfg)


@st.composite
def sequential_programs(draw, max_stmts: int = 30):
    seed = draw(program_seeds)
    size = draw(st.integers(min_value=5, max_value=max_stmts))
    cfg = GeneratorConfig(
        target_stmts=size, with_sync=False, p_parallel=0.0, p_loop=0.15
    )
    return generate_program(seed, cfg)
