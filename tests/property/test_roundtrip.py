"""Property: parse ∘ pretty = identity (structurally), and PFG building is
deterministic, over generated programs."""

from hypothesis import given, settings

from repro import build_pfg
from repro.lang import ast, parse_program, pretty

from .conftest import generated_programs


@settings(max_examples=60, deadline=None)
@given(prog=generated_programs(max_stmts=40))
def test_parse_pretty_roundtrip(prog):
    text = pretty(prog)
    again = parse_program(text)
    assert ast.structurally_equal(prog, again)
    # idempotent: printing the re-parse gives the same text
    assert pretty(again) == text


@settings(max_examples=40, deadline=None)
@given(prog=generated_programs(max_stmts=30))
def test_pfg_structure_deterministic(prog):
    g1 = build_pfg(prog)
    g2 = build_pfg(parse_program(pretty(prog)))
    assert g1.names() == g2.names()
    e1 = {(s.name, d.name, str(k)) for s, d, k in g1.edges()}
    e2 = {(s.name, d.name, str(k)) for s, d, k in g2.edges()}
    assert e1 == e2
    assert g1.defs.names() == g2.defs.names()


@settings(max_examples=40, deadline=None)
@given(prog=generated_programs(max_stmts=30))
def test_every_assignment_has_exactly_one_definition(prog):
    graph = build_pfg(prog)
    n_assigns = sum(1 for s in prog.walk() if isinstance(s, ast.Assign))
    assert len(graph.defs) == n_assigns
    per_node = sum(len(n.defs) for n in graph.nodes)
    assert per_node == n_assigns
