"""The central dynamic property of the reproduction:

**Every definition observed to reach a use in any execution is in the
static ud-chain of that use** — over random programs, random interleavings,
random inputs, and random loop trip counts (and exhaustively over all
schedules for small programs).

The generator emits synchronization-correct programs (unconditional or
both-branch posts, events cleared before reuse), which is the assumption
the paper's §6 system inherits from the PCF standard; the broken-by-design
Figure 3 original is tested separately in
tests/regression/test_fig3_stale_event.py.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analyze, build_pfg
from repro.interp import (
    ExhaustiveExplorer,
    RandomScheduler,
    check_soundness,
    run_program,
)
from repro.paper import programs
from repro.reachdefs import solve_synch

from .conftest import generated_programs, sequential_programs


@settings(max_examples=40, deadline=None)
@given(prog=generated_programs(), sched_seed=st.integers(0, 100))
def test_dynamic_reaching_defs_within_static(prog, sched_seed):
    graph = build_pfg(prog)
    result = solve_synch(graph)
    run = run_program(prog, RandomScheduler(seed=sched_seed, max_loop_iters=2), graph=graph)
    violations = check_soundness(result, run)
    assert violations == [], [v.format() for v in violations]


@settings(max_examples=30, deadline=None)
@given(prog=sequential_programs(), sched_seed=st.integers(0, 100))
def test_sequential_system_sound_on_sequential_programs(prog, sched_seed):
    result = analyze(prog)
    run = run_program(prog, RandomScheduler(seed=sched_seed, max_loop_iters=3))
    assert check_soundness(result, run) == []


@settings(max_examples=15, deadline=None)
@given(prog=generated_programs(max_stmts=12), sched_seed=st.integers(0, 50))
def test_preserved_none_also_sound(prog, sched_seed):
    # The blunt mode must remain sound (it is strictly more conservative).
    result = solve_synch(build_pfg(prog), preserved="none")
    run = run_program(prog, RandomScheduler(seed=sched_seed, max_loop_iters=2))
    assert check_soundness(result, run) == []


def test_exhaustive_schedules_paper_fig9():
    prog = programs.program("fig9")
    result = analyze(prog)
    bad = []

    def once(scheduler):
        run = run_program(prog, scheduler)
        bad.extend(check_soundness(result, run))

    list(ExhaustiveExplorer(max_runs=500).schedules(once))
    assert bad == [], [v.format() for v in bad]


def test_exhaustive_schedules_fig6():
    prog = programs.program("fig6")
    result = analyze(prog)
    bad = []

    def once(scheduler):
        run = run_program(prog, scheduler)
        bad.extend(check_soundness(result, run))

    list(ExhaustiveExplorer(max_runs=500).schedules(once))
    assert bad == []


def test_exhaustive_schedules_fig3_single_iteration():
    # One construct instance per run: the §6 correctness assumption holds
    # even without the clear, so the analysis must cover every schedule.
    prog = programs.program("fig3")
    result = analyze(prog)
    bad = []

    def once(scheduler):
        run = run_program(prog, scheduler)
        bad.extend(check_soundness(result, run))

    list(ExhaustiveExplorer(max_loop_iters=1, max_runs=800).schedules(once))
    assert bad == [], [v.format() for v in bad]


def test_many_seeds_fig3_cleared():
    prog = programs.program("fig3c")
    result = analyze(prog)
    for seed in range(60):
        run = run_program(prog, RandomScheduler(seed=seed, max_loop_iters=3))
        assert not run.deadlocked
        assert check_soundness(result, run) == [], seed
