"""Property: the fixpoint is independent of solver kind and visit order
(only iteration counts differ) — the monotone-framework guarantee the
paper appeals to in §2."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_pfg
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch

from .conftest import generated_programs

ORDERS = ["document", "rpo", "reverse-document", "random:13"]


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(), order=st.sampled_from(ORDERS))
def test_round_robin_order_independent(prog, order):
    graph = build_pfg(prog)
    base = solve_synch(graph)
    other = solve_synch(build_pfg(prog), order=order)
    for a, b in zip(base.graph.nodes, other.graph.nodes):
        assert base.in_names(a) == other.in_names(b)
        assert base.out_names(a) == other.out_names(b)
        assert base.set_names("ACCKillout", a) == other.set_names("ACCKillout", b)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_chaotic_solvers_are_supersets_of_stabilized(prog):
    """The equations admit multiple fixpoints (see
    tests/regression/test_fixpoint_multiplicity.py): chaotic solvers may
    land on non-least ones — and may fail to terminate at all (the
    worklist never drains during non-monotone ping-pong; round-robin at
    least detects a stable sweep).  When a chaotic solver does converge,
    its solution must contain the stabilized one (same facts plus
    possibly trapped ones)."""
    from repro.dataflow.framework import FixpointDiverged

    stab = solve_synch(build_pfg(prog))
    assert stab.stats.converged  # the stabilized solver always terminates
    for solver in ("round-robin", "worklist"):
        try:
            chaotic = solve_synch(build_pfg(prog), solver=solver)
        except FixpointDiverged:
            continue  # honest outcome of the literal equations
        for a, b in zip(stab.graph.nodes, chaotic.graph.nodes):
            assert stab.in_names(a) <= chaotic.in_names(b), (solver, a.name)
            assert stab.out_names(a) <= chaotic.out_names(b), (solver, a.name)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False), order=st.sampled_from(ORDERS))
def test_parallel_system_order_independent(prog, order):
    base = solve_parallel(build_pfg(prog))
    other = solve_parallel(build_pfg(prog), order=order, solver="worklist")
    for a, b in zip(base.graph.nodes, other.graph.nodes):
        assert base.in_names(a) == other.in_names(b)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False), order=st.sampled_from(ORDERS))
def test_sequential_system_order_independent(prog, order):
    base = solve_sequential(build_pfg(prog))
    other = solve_sequential(build_pfg(prog), order=order)
    for a, b in zip(base.graph.nodes, other.graph.nodes):
        assert base.in_names(a) == other.in_names(b)
