"""Property: the fixpoint is independent of solver kind and visit order
(only iteration counts differ) — the monotone-framework guarantee the
paper appeals to in §2."""

from hypothesis import example, given, settings
from repro.lang.ast import Assign, BinOp, If, IntLit, Loop, ParallelDo, ParallelSections, Program, Section, Var
from repro.lang.errors import SourcePos, SourceSpan
from hypothesis import strategies as st

from repro import build_pfg
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch

from .conftest import generated_programs

ORDERS = ["document", "rpo", "reverse-document", "random:13"]


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(), order=st.sampled_from(ORDERS))
def test_round_robin_order_independent(prog, order):
    graph = build_pfg(prog)
    base = solve_synch(graph)
    other = solve_synch(build_pfg(prog), order=order)
    for a, b in zip(base.graph.nodes, other.graph.nodes):
        assert base.in_names(a) == other.in_names(b)
        assert base.out_names(a) == other.out_names(b)
        assert base.set_names("ACCKillout", a) == other.set_names("ACCKillout", b)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_chaotic_solvers_are_supersets_of_stabilized(prog):
    """The equations admit multiple fixpoints (see
    tests/regression/test_fixpoint_multiplicity.py): chaotic solvers may
    land on non-least ones — and may fail to terminate at all (the
    worklist never drains during non-monotone ping-pong; round-robin at
    least detects a stable sweep).  When a chaotic solver does converge,
    its solution must contain the stabilized one (same facts plus
    possibly trapped ones)."""
    from repro.dataflow.framework import FixpointDiverged

    stab = solve_synch(build_pfg(prog))
    assert stab.stats.converged  # the stabilized solver always terminates
    for solver in ("round-robin", "worklist"):
        try:
            chaotic = solve_synch(build_pfg(prog), solver=solver)
        except FixpointDiverged:
            continue  # honest outcome of the literal equations
        for a, b in zip(stab.graph.nodes, chaotic.graph.nodes):
            assert stab.in_names(a) <= chaotic.in_names(b), (solver, a.name)
            assert stab.out_names(a) <= chaotic.out_names(b), (solver, a.name)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False), order=st.sampled_from(ORDERS))
@example(
    prog=Program(name='gen29',
     events=[],
     body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v0',
       expr=IntLit(value=8)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v1',
       expr=IntLit(value=1)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v2',
       expr=IntLit(value=5)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v3',
       expr=IntLit(value=9)),
      ParallelSections(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       sections=[Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_0',
         body=[If(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           cond=BinOp(op='<', left=Var(name='v3'), right=IntLit(value=5)),
           then_body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v0',
             expr=BinOp(op='*',
              left=BinOp(op='-', left=IntLit(value=3), right=IntLit(value=2)),
              right=IntLit(value=6)))],
           else_body=[],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v1',
           expr=Var(name='v3'))]),
        Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_1',
         body=[ParallelDo(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           index='idx0',
           body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v3',
             expr=BinOp(op='+', left=Var(name='v2'), right=Var(name='idx0')))],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v3',
           expr=Var(name='v0'))]),
        Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_2',
         body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v2',
           expr=BinOp(op='*',
            left=IntLit(value=5),
            right=BinOp(op='-', left=IntLit(value=6), right=IntLit(value=6)))),
          If(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           cond=BinOp(op='<=', left=Var(name='v2'), right=IntLit(value=5)),
           then_body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v1',
             expr=Var(name='v0')),
            Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v0',
             expr=Var(name='v3')),
            Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v1',
             expr=Var(name='v2'))],
           else_body=[],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v0',
           expr=BinOp(op='*',
            left=IntLit(value=8),
            right=BinOp(op='+',
             left=IntLit(value=0),
             right=IntLit(value=7))))])],
       end_label=None),
      If(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       cond=BinOp(op='<', left=Var(name='c0'), right=IntLit(value=1)),
       then_body=[Loop(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         body=[ParallelSections(span=SourceSpan(start=SourcePos(line=0,
             column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           sections=[Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_0',
             body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               target='v3',
               expr=BinOp(op='-',
                left=IntLit(value=8),
                right=IntLit(value=5)))]),
            Section(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             name='S0_1',
             body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
                end=SourcePos(line=0, column=0)),
               label=None,
               target='v0',
               expr=Var(name='v2'))])],
           end_label=None)],
         end_label=None)],
       else_body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         target='v3',
         expr=BinOp(op='+',
          left=BinOp(op='+', left=IntLit(value=2), right=IntLit(value=1)),
          right=Var(name='v3')))],
       end_label=None)],
     span=SourceSpan(start=SourcePos(line=0, column=0),
      end=SourcePos(line=0, column=0))),
    order='random:13',
).via('discovered failure')
@example(
    prog=Program(name='gen29',
     events=[],
     body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v0',
       expr=IntLit(value=8)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v1',
       expr=IntLit(value=1)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v2',
       expr=IntLit(value=5)),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v3',
       expr=IntLit(value=9)),
      ParallelSections(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       sections=[Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_0',
         body=[If(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           cond=BinOp(op='<', left=Var(name='v3'), right=IntLit(value=5)),
           then_body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v0',
             expr=BinOp(op='*',
              left=BinOp(op='-', left=IntLit(value=3), right=IntLit(value=2)),
              right=IntLit(value=6)))],
           else_body=[],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v1',
           expr=Var(name='v3'))]),
        Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_1',
         body=[ParallelDo(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           index='idx0',
           body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v3',
             expr=BinOp(op='+', left=Var(name='v2'), right=Var(name='idx0')))],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v3',
           expr=Var(name='v0'))]),
        Section(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         name='S0_2',
         body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v2',
           expr=BinOp(op='*',
            left=IntLit(value=5),
            right=BinOp(op='-', left=IntLit(value=6), right=IntLit(value=6)))),
          If(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           cond=BinOp(op='<=', left=Var(name='v2'), right=IntLit(value=5)),
           then_body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v1',
             expr=Var(name='v0')),
            Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v0',
             expr=Var(name='v3')),
            Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
              end=SourcePos(line=0, column=0)),
             label=None,
             target='v1',
             expr=Var(name='v2'))],
           else_body=[],
           end_label=None),
          Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v0',
           expr=BinOp(op='*',
            left=IntLit(value=8),
            right=BinOp(op='+',
             left=IntLit(value=0),
             right=IntLit(value=7))))])],
       end_label=None),
      If(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       cond=BinOp(op='<', left=Var(name='c0'), right=IntLit(value=1)),
       then_body=[Loop(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         body=[Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
            end=SourcePos(line=0, column=0)),
           label=None,
           target='v1',
           expr=BinOp(op='+',
            left=BinOp(op='-', left=IntLit(value=8), right=IntLit(value=5)),
            right=IntLit(value=0)))],
         end_label=None),
        Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
          end=SourcePos(line=0, column=0)),
         label=None,
         target='v2',
         expr=IntLit(value=6))],
       else_body=[],
       end_label=None),
      Assign(span=SourceSpan(start=SourcePos(line=0, column=0),
        end=SourcePos(line=0, column=0)),
       label=None,
       target='v2',
       expr=Var(name='v1'))],
     span=SourceSpan(start=SourcePos(line=0, column=0),
      end=SourcePos(line=0, column=0))),
    order='random:13',
).via('discovered failure')
def test_parallel_system_order_independent(prog, order):
    """The deterministic solver family is visit-order independent on the
    sync-free parallel system; the plain worklist is only a (possibly
    diverging) superset.

    This test used to assert worklist == stabilized.  The pinned
    examples below (found by generation) disprove that: the kill layer
    (ForkKill/ACCKillout read Out at joins) gives the parallel equations
    the same multiple-fixpoint character as the synchronized system once
    a parallel construct sits inside a loop — a chaotic driver can trap
    extra facts (example 2: an entry definition survives past a killing
    join) or ping-pong forever (example 1).  Cf.
    tests/regression/test_fixpoint_multiplicity.py and
    test_chaotic_solvers_are_supersets_of_stabilized above."""
    from repro.dataflow.budget import NonConvergenceError
    from repro.dataflow.framework import FixpointDiverged

    base = solve_parallel(build_pfg(prog))
    for solver in ("stabilized", "scc"):
        other = solve_parallel(build_pfg(prog), order=order, solver=solver)
        for a, b in zip(base.graph.nodes, other.graph.nodes):
            assert base.in_names(a) == other.in_names(b), (solver, a.name)
    try:
        chaotic = solve_parallel(build_pfg(prog), order=order, solver="worklist")
    except (FixpointDiverged, NonConvergenceError):
        return  # honest outcome of the literal equations under a loop
    for a, b in zip(base.graph.nodes, chaotic.graph.nodes):
        assert base.in_names(a) <= chaotic.in_names(b), a.name


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False), order=st.sampled_from(ORDERS))
def test_sequential_system_order_independent(prog, order):
    base = solve_sequential(build_pfg(prog))
    other = solve_sequential(build_pfg(prog), order=order)
    for a, b in zip(base.graph.nodes, other.graph.nodes):
        assert base.in_names(a) == other.in_names(b)
