"""Property: per-pass behaviour of the chaotic solver on monotone halves.

* The sequential system's In/Out grow monotonically pass over pass (it is
  a genuinely monotone framework).
* In the parallel/synchronized systems the *flow phase alone* (kill layer
  frozen) grows monotonically — the invariant the stabilized solver's
  phases rest on.
* Preserved sets and MustDone sets are consistent (MustDone ⊆ Preserved:
  "certainly ran before" implies "ordered before if both ran").
"""

from hypothesis import given, settings

from repro import build_pfg
from repro.analysis.mustexec import compute_must_done
from repro.dataflow.solver import solve_round_robin
from repro.reachdefs import SequentialRDSystem, compute_preserved
from repro.reachdefs.preserved import compute_preserved as _cp
from repro.reachdefs.synch import SynchRDSystem
from repro.reachdefs.preserved import resolve_preserved

from .conftest import generated_programs, sequential_programs


@settings(max_examples=30, deadline=None)
@given(prog=sequential_programs())
def test_sequential_in_out_grow_per_pass(prog):
    graph = build_pfg(prog)
    system = SequentialRDSystem(graph, backend="set")
    stats = solve_round_robin(system, graph.document_order(), snapshot_passes=True)
    snaps = stats.snapshots
    for earlier, later in zip(snaps, snaps[1:]):
        for name in earlier["In"]:
            assert earlier["In"][name] <= later["In"][name]
            assert earlier["Out"][name] <= later["Out"][name]


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_flow_phase_monotone_with_frozen_kills(prog):
    graph = build_pfg(prog)
    system = SynchRDSystem(graph, preserved=resolve_preserved(graph), backend="set")
    system.initialize()
    nodes = graph.document_order()
    prev = None
    for _pass in range(30):
        changed = False
        for n in nodes:
            changed |= system.update_flow(n)
        snap = system.snapshot()
        if prev is not None:
            for name in prev["In"]:
                assert prev["In"][name] <= snap["In"][name]
                assert prev["Out"][name] <= snap["Out"][name]
        prev = snap
        if not changed:
            break
    assert not changed, "flow phase must reach a fixpoint"


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_mustdone_subset_of_preserved(prog):
    """"Certainly ran before" implies "ordered before if both ran" —
    except across parallel-do iterations: MustDone is per-instance
    (iteration A's body prefix certainly ran before its suffix), while
    Preserved quantifies over all iterations and so drops blocks sharing
    a parallel-do body with the observer."""
    graph = build_pfg(prog)
    preserved = compute_preserved(graph)
    must = compute_must_done(graph)
    for node in graph.nodes:
        shared = set(node.pardo_ids)
        comparable = {m for m in must[node] if not (shared & set(m.pardo_ids))}
        assert comparable <= preserved[node], node.name


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_preserved_irreflexive_and_no_forward_descendants(prog):
    # A node never preserves itself, and nothing strictly downstream of a
    # node (over forward control edges) can be ordered before it — except
    # through synchronization, which only ever adds posts and their
    # ancestors, never the node's own control descendants.
    graph = build_pfg(prog)
    preserved = compute_preserved(graph)
    back = graph.back_edges()
    # forward-reachability sets
    for node in graph.nodes:
        assert node not in preserved[node]
        reach = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            for succ in graph.control_succs(cur):
                if (cur, succ) not in back and succ not in reach:
                    reach.add(succ)
                    stack.append(succ)
        assert not (preserved[node] & reach), node.name
