"""Property: Preserved sets are dynamically sound on loop-free programs.

``p ∈ Preserved(n)`` claims: in every execution where both blocks run,
``p`` completes before ``n`` begins.  On loop-free programs every block
executes at most once, so the claim is directly checkable against the
interpreter's node trace: whenever both appear, the *last* event of ``p``
must precede the *first* event of ``n``.

(Only blocks that emit trace events — assignments, waits, posts, branches
— are checkable; empty forks/joins have no events, which only *weakens*
the check, never falsifies it.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_pfg
from repro.interp import RandomScheduler, run_program
from repro.paper import programs
from repro.reachdefs import compute_preserved
from repro.synthetic import GeneratorConfig, generate_program

from .conftest import program_seeds


@st.composite
def loopfree_programs(draw):
    seed = draw(program_seeds)
    cfg = GeneratorConfig(
        target_stmts=draw(st.integers(8, 30)),
        p_loop=0.0,
        p_parallel=draw(st.sampled_from([0.25, 0.4])),
        p_sync=0.7,
    )
    return generate_program(seed, cfg)


def check_run_against_preserved(graph, preserved, run):
    violations = []
    for node in graph.nodes:
        begin = run.first_step_of(node.name)
        if begin is None:
            continue
        for p in preserved[node]:
            end = run.last_step_of(p.name)
            if end is None:
                continue  # p did not execute (or emits no events): vacuous
            if end >= begin:
                violations.append((p.name, node.name, end, begin))
    return violations


@settings(max_examples=40, deadline=None)
@given(prog=loopfree_programs(), sched_seed=st.integers(0, 50))
def test_preserved_ordering_holds_dynamically(prog, sched_seed):
    graph = build_pfg(prog)
    preserved = compute_preserved(graph)
    run = run_program(prog, RandomScheduler(seed=sched_seed), graph=graph)
    assert check_run_against_preserved(graph, preserved, run) == []


def test_preserved_ordering_on_paper_fig9():
    prog = programs.program("fig9")
    graph = build_pfg(prog)
    preserved = compute_preserved(graph)
    for seed in range(40):
        run = run_program(prog, RandomScheduler(seed=seed), graph=graph)
        assert check_run_against_preserved(graph, preserved, run) == []


def test_preserved_ordering_on_fig3_single_iteration():
    prog = programs.program("fig3")
    graph = build_pfg(prog)
    preserved = compute_preserved(graph)
    for seed in range(40):
        run = run_program(prog, RandomScheduler(seed=seed, max_loop_iters=1), graph=graph)
        assert check_run_against_preserved(graph, preserved, run) == []
