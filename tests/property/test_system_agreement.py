"""Property: the three equation systems form a refinement chain.

* On sequential programs, all three systems coincide.
* On parallel programs without synchronization, §6 ≡ §5.
* §6 with Preserved info is never less precise than with none (In/Out
  shrink pointwise), and §5/§6 In sets at non-join/wait nodes relate
  soundly to the naive sequential baseline.
* The accumulate-only conservative floor absorbs the full §6 result
  pointwise (full In ⊆ conservative In) on generated programs.
"""

from hypothesis import given, settings

from repro import build_pfg
from repro.lang import ast
from repro.reachdefs import (
    solve_conservative,
    solve_parallel,
    solve_sequential,
    solve_synch,
)

from .conftest import generated_programs, sequential_programs


@settings(max_examples=25, deadline=None)
@given(prog=sequential_programs())
def test_all_systems_agree_on_sequential_programs(prog):
    graph = build_pfg(prog)
    seq = solve_sequential(graph)
    par = solve_parallel(graph)
    syn = solve_synch(graph)
    for node in graph.nodes:
        assert seq.In(node) == par.In(node) == syn.In(node)
        assert seq.Out(node) == par.Out(node) == syn.Out(node)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False))
def test_synch_equals_parallel_without_sync(prog):
    graph = build_pfg(prog)
    par = solve_parallel(graph)
    syn = solve_synch(graph)
    for node in graph.nodes:
        assert par.In(node) == syn.In(node)
        assert par.Out(node) == syn.Out(node)
        assert par.ACCKillout(node) == syn.ACCKillout(node)
        assert syn.SynchPass(node) == frozenset()


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_preserved_only_removes(prog):
    graph = build_pfg(prog)
    precise = solve_synch(graph, preserved="approx")
    blunt = solve_synch(build_pfg(prog), preserved="none")
    for a, b in zip(precise.graph.nodes, blunt.graph.nodes):
        assert precise.in_names(a) <= blunt.in_names(b), a.name
        assert precise.out_names(a) <= blunt.out_names(b), a.name


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_conservative_floor_absorbs_full(prog):
    """The accumulate-only conservative floor is an upper bound for the
    full §6 system on *generated* programs, not just the paper figures:
    every definition the precise analysis lets through also survives the
    floor, pointwise per node (the bound the degradation ladder and the
    ``system-bounds`` fuzz oracle both rely on)."""
    full = solve_synch(build_pfg(prog), preserved="approx")
    floor = solve_conservative(build_pfg(prog))
    for a, b in zip(full.graph.nodes, floor.graph.nodes):
        assert full.in_names(a) <= floor.in_names(b), a.name
        assert full.out_names(a) <= floor.out_names(b), a.name


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False))
def test_gen_always_in_out(prog):
    result = solve_parallel(build_pfg(prog))
    for node in result.graph.nodes:
        assert result.Gen(node) <= result.Out(node)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_in_out_disjoint_from_parallel_kill(prog):
    result = solve_synch(build_pfg(prog))
    for node in result.graph.nodes:
        assert not (result.Out(node) & result.ParallelKill(node))
        assert not (result.Out(node) & result.Kill(node))


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs())
def test_every_use_with_local_def_has_chain(prog):
    """Every use of an *assigned* variable whose assignment can reach it
    sequentially produces a non-empty ud-chain under the conservative
    systems.  (Weak sanity: chains never crash, and a use in the same
    block after a def resolves locally.)"""
    result = solve_synch(build_pfg(prog))
    chains = result.ud_chains()
    for use, defs in chains.items():
        node = result.graph.node(use.site)
        local = node.local_def_before(use.var, use.ordinal)
        if local is not None:
            assert defs == frozenset((local,))
