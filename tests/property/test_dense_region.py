"""Property: the vectorized dense region evaluator agrees exactly —
byte-identical sets — with the scalar scc and stabilized engines, on
generated programs and on every paper figure, with synchronized programs
routed to the scalar fallback."""

import pytest
from hypothesis import given, settings

from repro import build_pfg
from repro.dataflow.dense import DenseConfig
from repro.paper import programs
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch

from .conftest import generated_programs, sequential_programs

SLOTS = ("In", "Out", "ACCKillin", "ACCKillout", "ForkKill", "SynchPass")


def _sets(result):
    """Every computed set, keyed by (slot, node name) — byte-identical
    comparison across solver runs on the same graph."""
    out = {}
    for slot in SLOTS:
        attr = {
            "In": "in_sets",
            "Out": "out_sets",
            "ACCKillin": "acc_killin",
            "ACCKillout": "acc_killout",
            "ForkKill": "fork_kill",
            "SynchPass": "synch_pass",
        }[slot]
        values = getattr(result, attr, None)
        if values is None:
            continue
        for node, value in values.items():
            out[(slot, node.name)] = value
    return out


def _solve_for(graph):
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    if uses_sync:
        return solve_synch
    if uses_parallel:
        return solve_parallel
    return solve_sequential


@settings(max_examples=25, deadline=None)
@given(prog=sequential_programs())
def test_dense_identical_sequential(prog):
    # The plain §2 formulation: one flow family, levelized Gauss–Seidel.
    graph = build_pfg(prog)
    base = solve_sequential(graph, solver="scc")
    dense = solve_sequential(graph, solver="scc-dense")
    assert _sets(dense) == _sets(base)


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=False))
def test_dense_identical_parallel(prog):
    # The §5 phase formulation: flow + kill phases, round history, cycle
    # meet — all replayed densely, so even the "+cycle" order tag must
    # match the scalar engine's.
    graph = build_pfg(prog)
    base = solve_parallel(graph, solver="scc")
    stab = solve_parallel(graph, solver="stabilized")
    dense = solve_parallel(graph, solver="scc-dense")
    assert _sets(dense) == _sets(base)
    assert _sets(dense) == _sets(stab)
    assert dense.stats.order.endswith("+cycle") == base.stats.order.endswith("+cycle")


@settings(max_examples=25, deadline=None)
@given(prog=generated_programs(with_sync=True))
def test_dense_synch_routed_scalar_and_identical(prog):
    # SynchPass has no dense formulation: the profile detector must route
    # every cyclic region of a synchronized system to the scalar fallback
    # — and the results are then trivially identical to scc.
    graph = build_pfg(prog)
    base = solve_synch(graph, solver="scc")
    dense = solve_synch(graph, solver="scc-dense")
    assert _sets(dense) == _sets(base)
    assert dense.stats.dense_regions == 0
    # The plain scc run doesn't count dispatch (no dense config), so the
    # fallback accounting is visible only on the dense run.
    assert base.stats.scalar_regions == 0


@settings(max_examples=15, deadline=None)
@given(prog=generated_programs(with_sync=False))
def test_dense_auto_mode_identical(prog):
    # Auto mode dispatches per region (most generator regions fall below
    # the thresholds) — dispatch must never change values.
    graph = build_pfg(prog)
    base = solve_parallel(graph, solver="scc")
    auto = solve_parallel(graph, solver="scc", dense=DenseConfig(mode="auto"))
    assert _sets(auto) == _sets(base)


@pytest.mark.parametrize("key", sorted(programs.SOURCES))
def test_dense_identical_on_every_paper_figure(key):
    graph = programs.graph(key)
    solve = _solve_for(graph)
    base = solve(graph, solver="scc")
    stab = solve(graph, solver="stabilized") if solve is not solve_sequential else base
    dense = solve(graph, solver="scc-dense")
    assert _sets(dense) == _sets(base), key
    assert _sets(dense) == _sets(stab), key
    if solve is solve_synch:
        # Synchronized figures must never take the dense path.
        assert dense.stats.dense_regions == 0, key


def test_dense_engages_on_cyclic_parallel_figures():
    # The looped parallel figures (1a/1b) have a cyclic §5 region and no
    # synchronization: forced-dense mode must actually vectorize there —
    # guards against the profile detector silently falling back scalar
    # everywhere, which would make every agreement test above vacuous.
    engaged = {}
    for key in sorted(programs.SOURCES):
        graph = programs.graph(key)
        solve = _solve_for(graph)
        result = solve(graph, solver="scc-dense")
        engaged[key] = result.stats.dense_regions
    assert engaged["fig1a"] >= 1 and engaged["fig1b"] >= 1, engaged
