"""Property: incremental re-analysis (repro.incremental) is byte-identical
to a from-scratch solve — on generated multi-step edit chains, on every
paper figure, and on targeted edits inside loops and Parallel Sections —
and actually reuses regions on local edits (anti-vacuity)."""

import pytest
from hypothesis import given, settings

from repro import analyze
from repro.fuzz.mutate import random_edit_script
from repro.incremental import IncrementalBase, incremental_analyze
from repro.lang import ast, parse_program
from repro.paper import programs
from repro.synthetic import workloads

from .conftest import generated_programs

SLOT_ATTRS = {
    "In": "in_sets",
    "Out": "out_sets",
    "ACCKillin": "acc_killin",
    "ACCKillout": "acc_killout",
    "ForkKill": "fork_kill",
    "SynchPass": "synch_pass",
}


def _sets(result):
    """Every computed set keyed by (slot, node name) — comparable across
    separately built graphs of the same program."""
    out = {}
    for slot, attr in SLOT_ATTRS.items():
        values = getattr(result, attr, None)
        if values is None:
            continue
        for node, value in values.items():
            out[(slot, node.name)] = frozenset(d.name for d in value)
    return out


def assert_identical(program, outcome):
    scratch = analyze(program, solver="scc", cache=False)
    assert _sets(scratch) == _sets(outcome.result)


def chain_check(program, edited_versions, solver="scc"):
    """Re-solve each version incrementally off the previous result and
    compare every step against a from-scratch solve."""
    base = IncrementalBase.from_result(
        program, analyze(program, solver=solver, cache=False)
    )
    outcomes = []
    for version in edited_versions:
        outcome = incremental_analyze(
            base, version, solver=solver, verify=True, cache=False
        )
        assert_identical(version, outcome)
        outcomes.append(outcome)
        base = outcome.to_base(version)
    return outcomes


@settings(max_examples=20, deadline=None)
@given(program=generated_programs())
def test_edit_chains_generated(program):
    """5-step edit chains on generated (possibly synchronized) programs:
    every step byte-identical, fallbacks included."""
    versions = []
    current = program
    for step in range(5):
        edit = random_edit_script(current, seed=step, n_edits=1)
        if edit is None:
            break
        versions.append(edit.program)
        current = edit.program
    if versions:
        chain_check(program, versions)


@pytest.mark.parametrize("key", sorted(programs.SOURCES))
def test_edit_chains_paper_figures(key):
    """Every paper figure survives a 5-edit incremental chain; the
    synchronized figures must take the (still byte-identical) sync
    fallback on every step."""
    program = programs.program(key)
    uses_sync = any(isinstance(s, (ast.Post, ast.Wait)) for s in program.walk())
    versions = []
    current = program
    for step in range(5):
        edit = random_edit_script(current, seed=100 + step, n_edits=1)
        assert edit is not None
        versions.append(edit.program)
        current = edit.program
    outcomes = chain_check(program, versions)
    if uses_sync:
        assert all(o.fallback == "sync" for o in outcomes)


def test_edit_inside_loop():
    program = workloads.diamond_loop(12)
    v2 = workloads.diamond_loop(12)
    v2.body[1].body[7].else_body[0] = ast.Assign(target="y7", expr=ast.IntLit(-3))
    (outcome,) = chain_check(program, [v2])
    assert outcome.fallback is None
    assert outcome.regions_reused >= 1  # entry chain outside the loop SCC


def test_edit_inside_parallel_sections():
    program = workloads.wide_parallel(6, 4)
    v2 = workloads.wide_parallel(6, 4)
    old = v2.body[-1].sections[2].body[1]
    v2.body[-1].sections[2].body[1] = ast.Assign(target=old.target, expr=ast.IntLit(41))
    (outcome,) = chain_check(program, [v2])
    assert outcome.fallback is None
    assert outcome.regions_reused >= 1


def test_edit_adds_variable():
    """Inserting a definition of an entirely new variable: nothing else
    kills it, so untouched regions upstream stay reusable."""
    program = workloads.diamond_chain(10)
    v2 = workloads.diamond_chain(10)
    v2.body.append(ast.Assign(target="brand_new", expr=ast.IntLit(1)))
    (outcome,) = chain_check(program, [v2])
    assert outcome.fallback is None
    assert outcome.regions_reused >= 1


def test_edit_removes_variable():
    """Deleting a variable's only definition removes it from the def
    universe; results must still match from-scratch exactly."""
    src = """
program shrink
  x = 1
  only = 2
  if x < 1 then
    x = 2
  else
    x = x + 1
  endif
  y = x
end program
"""
    program = parse_program(src)
    v2 = parse_program(src)
    del v2.body[1]
    chain_check(program, [v2])


def test_antivacuity_local_edit_reuses_most_regions():
    """A 1-statement edit near the end of a long acyclic chain must reuse
    (not merely tolerate) the upstream regions — the guard that the
    dirty-cone computation is not trivially marking everything dirty."""
    program = workloads.diamond_chain(40)
    v2 = workloads.diamond_chain(40)
    v2.body[-1].then_body[0] = ast.Assign(target="x", expr=ast.IntLit(123))
    (outcome,) = chain_check(program, [v2])
    assert outcome.fallback is None
    total = outcome.regions_reused + outcome.regions_solved
    assert outcome.regions_reused > total // 2


@pytest.mark.parametrize("solver", ["stabilized", "scc", "scc-dense"])
def test_solver_independence(solver):
    """The incremental answer matches a from-scratch solve under every
    deterministic solver (reuse itself always runs the scc machinery)."""
    program = workloads.wide_parallel(5, 3)
    v2 = workloads.wide_parallel(5, 3)
    old = v2.body[-1].sections[4].body[0]
    v2.body[-1].sections[4].body[0] = ast.Assign(target=old.target, expr=ast.IntLit(9))
    base = IncrementalBase.from_result(
        program, analyze(program, solver=solver, cache=False)
    )
    outcome = incremental_analyze(base, v2, solver=solver, verify=True, cache=False)
    scratch = analyze(v2, solver=solver, cache=False)
    assert _sets(scratch) == _sets(outcome.result)
