"""The full fuzz campaign as a pytest entry point.

Excluded from tier-1 by the ``fuzz`` marker (see ``pyproject.toml``);
run explicitly with ``pytest -m fuzz`` or via the ``fuzz-smoke`` CI job
(which uses the ``repro fuzz`` CLI directly).
"""

import pytest

from repro.fuzz import FuzzOptions, run_campaign

pytestmark = pytest.mark.fuzz


def test_campaign_200_seeds_is_clean():
    report = run_campaign(FuzzOptions(seeds=tuple(range(200))))
    assert report.exit_code == 0, report.render_summary()


def test_check_campaign_with_drills_is_clean():
    report = run_campaign(FuzzOptions(seeds=tuple(range(25)), check=True))
    assert report.exit_code == 0, report.render_summary()
