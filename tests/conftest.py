"""Shared fixtures: paper programs/graphs/results, cached per session."""

from __future__ import annotations

import pytest

from repro.dataflow.cache import GLOBAL_CACHE
from repro.paper import programs
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch


@pytest.fixture(autouse=True)
def _fresh_analysis_cache():
    """Keep tests hermetic: no test sees another's cached graphs/results
    (counters are process-lifetime and unaffected by clear())."""
    GLOBAL_CACHE.clear()
    yield
    GLOBAL_CACHE.clear()


@pytest.fixture(scope="session")
def fig1a_graph():
    return programs.graph("fig1a")


@pytest.fixture(scope="session")
def fig1b_graph():
    return programs.graph("fig1b")


@pytest.fixture(scope="session")
def fig3_graph():
    return programs.graph("fig3")


@pytest.fixture(scope="session")
def fig6_graph():
    return programs.graph("fig6")


@pytest.fixture(scope="session")
def fig9_graph():
    return programs.graph("fig9")


@pytest.fixture(scope="session")
def table1_result(fig1a_graph):
    return solve_sequential(fig1a_graph, snapshot_passes=True)


@pytest.fixture(scope="session")
def fig8_result(fig6_graph):
    # paper mode: the golden per-iteration tables are the chaotic
    # document-order sweeps the paper shows (final sets are identical to
    # the stabilized default — asserted in tests/golden/test_solver_modes.py)
    return solve_parallel(fig6_graph, solver="round-robin", snapshot_passes=True)


@pytest.fixture(scope="session")
def fig3_result(fig3_graph):
    return solve_synch(fig3_graph, solver="round-robin", snapshot_passes=True)


@pytest.fixture(scope="session")
def fig9_result(fig9_graph):
    return solve_synch(fig9_graph)
