"""Table/report formatting tests."""

from repro.tools.format import format_set, render_kv, render_table


def test_format_set_sorted():
    assert format_set({"b1", "a2"}) == "{a2, b1}"
    assert format_set(()) == "{}"


def test_render_table_alignment():
    rows = {
        "1": {"In": {"x1"}, "Out": {"x1", "y2"}},
        "longname": {"In": set(), "Out": {"z3"}},
    }
    text = render_table(rows, ["In", "Out"], ["1", "longname"], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    header, sep, r1, r2 = lines[1:5]
    assert header.startswith("Node")
    assert set(sep) <= {"-", "+"}
    assert "{x1, y2}" in r1
    assert r2.startswith("longname")
    # columns align: separator as wide as widest row
    assert len(sep) >= max(len(r1), len(r2)) - 1


def test_render_table_missing_column_is_empty_set():
    rows = {"1": {"In": {"a"}}}
    text = render_table(rows, ["In", "Out"], ["1"])
    assert "{}" in text


def test_render_table_row_order_respected():
    rows = {"b": {"C": set()}, "a": {"C": set()}}
    text = render_table(rows, ["C"], ["b", "a"])
    assert text.index("\nb") < text.index("\na")


def test_render_kv():
    text = render_kv({"alpha": "1", "b": "2"}, title="stats")
    assert text.splitlines()[0] == "stats"
    assert "alpha : 1" in text
    assert "b     : 2" in text


def test_render_kv_empty():
    assert render_kv({}) == "\n"
