"""Must-execute analysis tests."""

from repro.analysis.mustexec import (
    always_executes_per_iteration,
    compute_must_done,
    loop_body,
)
from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.paper import programs


def must_names(graph, node_name):
    must = compute_must_done(graph)
    return {n.name for n in must[graph.node(node_name)]}


def test_straightline_everything_must_execute():
    g = build_pfg(parse_program("program p\n(1) x=1\n(2) y=2\n(3) z=3\nend"))
    assert must_names(g, "3") == {"Entry", "1", "2"}


def test_branch_arms_not_must():
    g = build_pfg(parse_program("program p\n(1) if c then\n(2) x=1\nelse\n(3) x=2\n(4) endif\nend"))
    names = must_names(g, "4")
    assert "1" in names
    assert "2" not in names and "3" not in names


def test_parallel_sections_are_must():
    src = """program p
(1) x = 0
(2) parallel sections
  (3) section A
    (3) a = 1
  (4) section B
    (4) b = 2
(5) end parallel sections
end"""
    g = build_pfg(parse_program(src))
    names = must_names(g, "5")
    assert {"1", "2", "3", "4"} <= names


def test_conditional_inside_section_not_must():
    src = """program p
(2) parallel sections
  (3) section A
    if c then
      (4) a = 1
    endif
  (5) section B
    (5) b = 2
(6) end parallel sections
end"""
    g = build_pfg(parse_program(src))
    names = must_names(g, "6")
    assert "5" in names and "4" not in names


def test_fig1_contrast():
    # The §1 motivation in must-execute terms: the increment block (4) is
    # must-execute per iteration in fig1b but not in fig1a.
    g_seq = programs.graph("fig1a")
    g_par = programs.graph("fig1b")
    latch_seq = g_seq.node("7")
    latch_par = g_par.node("7")
    assert not always_executes_per_iteration(g_seq, g_seq.node("4"), latch_seq)
    assert always_executes_per_iteration(g_par, g_par.node("4"), latch_par)


def test_loop_body_extent(fig3_graph):
    body = loop_body(fig3_graph, fig3_graph.node("12"), fig3_graph.node("1"))
    names = {n.name for n in body}
    assert names == {"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12"}


def test_must_done_ignores_back_edges(fig3_graph):
    # Loop latch facts must not leak around the back edge into the header.
    names = must_names(fig3_graph, "1")
    assert "11" not in names and "12" not in names
