"""Parser unit tests."""

import pytest

from repro.lang import ast, parse_expression, parse_program
from repro.lang.errors import ParseError


def body_of(source):
    return parse_program(source).body


# -- programs ---------------------------------------------------------------


def test_minimal_program():
    prog = parse_program("program p\nend")
    assert prog.name == "p"
    assert prog.body == []
    assert prog.events == []


def test_end_program_suffix_accepted():
    assert parse_program("program p\nend program").name == "p"


def test_event_declarations():
    prog = parse_program("program p\nevent a\nevent b, c\nend")
    assert prog.events == ["a", "b", "c"]


def test_duplicate_event_rejected():
    with pytest.raises(ParseError, match="duplicate event"):
        parse_program("program p\nevent a, a\nend")


def test_missing_end_rejected():
    with pytest.raises(ParseError):
        parse_program("program p\nx = 1\n")


def test_garbage_after_end_rejected():
    with pytest.raises(ParseError):
        parse_program("program p\nend\nx = 1")


# -- statements ----------------------------------------------------------------


def test_assignment():
    (stmt,) = body_of("program p\nx = y + 1\nend")
    assert isinstance(stmt, ast.Assign)
    assert stmt.target == "x"
    assert stmt.expr == ast.BinOp("+", ast.Var("y"), ast.IntLit(1))


def test_statement_label():
    (stmt,) = body_of("program p\n(4) x = 7\nend")
    assert stmt.label == "4"


def test_named_label():
    (stmt,) = body_of("program p\n(Entry) x = 7\nend")
    assert stmt.label == "Entry"


def test_if_then_else():
    (stmt,) = body_of("program p\nif a < b then\nx = 1\nelse\nx = 2\nendif\nend")
    assert isinstance(stmt, ast.If)
    assert len(stmt.then_body) == 1
    assert len(stmt.else_body) == 1


def test_if_without_else():
    (stmt,) = body_of("program p\nif a < b then\nx = 1\nendif\nend")
    assert stmt.else_body == []


def test_if_end_label():
    (stmt,) = body_of("program p\nif a < b then\nx = 1\n(9) endif\nend")
    assert stmt.end_label == "9"


def test_if_end_label_after_else():
    (stmt,) = body_of("program p\nif a < b then\nx = 1\nelse\ny = 2\n(6) endif\nend")
    assert stmt.end_label == "6"


def test_loop():
    (stmt,) = body_of("program p\n(2) loop\nx = 1\n(7) endloop\nend")
    assert isinstance(stmt, ast.Loop)
    assert stmt.label == "2"
    assert stmt.end_label == "7"


def test_while():
    (stmt,) = body_of("program p\nwhile x < 3 do\nx = x + 1\nendwhile\nend")
    assert isinstance(stmt, ast.While)
    assert len(stmt.body) == 1


def test_skip():
    (stmt,) = body_of("program p\nskip\nend")
    assert isinstance(stmt, ast.Skip)


def test_parallel_sections():
    src = """program p
parallel sections
  section A
    x = 1
  section B
    y = 2
end parallel sections
end"""
    (stmt,) = body_of(src)
    assert isinstance(stmt, ast.ParallelSections)
    assert [s.name for s in stmt.sections] == ["A", "B"]


def test_parallel_sections_end_label():
    src = "program p\nparallel sections\nsection A\nx=1\n(11) end parallel sections\nend"
    (stmt,) = body_of(src)
    assert stmt.end_label == "11"


def test_section_labels():
    src = "program p\nparallel sections\n(4) section A\nx=1\nend parallel sections\nend"
    (stmt,) = body_of(src)
    assert stmt.sections[0].label == "4"


def test_empty_parallel_sections_rejected():
    with pytest.raises(ParseError, match="at least one section"):
        parse_program("program p\nparallel sections\nend parallel sections\nend")


def test_duplicate_section_names_rejected():
    src = "program p\nparallel sections\nsection A\nx=1\nsection A\ny=2\nend parallel sections\nend"
    with pytest.raises(ParseError, match="duplicate section"):
        parse_program(src)


def test_nested_parallel_sections():
    src = """program p
parallel sections
  section A
    parallel sections
      section A1
        x = 1
      section A2
        y = 2
    end parallel sections
  section B
    z = 3
end parallel sections
end"""
    (outer,) = body_of(src)
    inner = outer.sections[0].body[0]
    assert isinstance(inner, ast.ParallelSections)
    assert [s.name for s in inner.sections] == ["A1", "A2"]


def test_sync_statements():
    stmts = body_of("program p\nevent e\npost(e)\nwait(e)\nclear(e)\nend")
    assert isinstance(stmts[0], ast.Post)
    assert isinstance(stmts[1], ast.Wait)
    assert isinstance(stmts[2], ast.Clear)
    assert stmts[0].event == "e"


def test_statement_must_follow_statement():
    with pytest.raises(ParseError, match="end of statement"):
        parse_program("program p\nx = 1 y = 2\nend")


# -- expressions ---------------------------------------------------------------------


def test_precedence_mul_over_add():
    assert parse_expression("1 + 2 * 3") == ast.BinOp(
        "+", ast.IntLit(1), ast.BinOp("*", ast.IntLit(2), ast.IntLit(3))
    )


def test_left_associativity():
    assert parse_expression("1 - 2 - 3") == ast.BinOp(
        "-", ast.BinOp("-", ast.IntLit(1), ast.IntLit(2)), ast.IntLit(3)
    )


def test_parentheses_override():
    assert parse_expression("(1 + 2) * 3") == ast.BinOp(
        "*", ast.BinOp("+", ast.IntLit(1), ast.IntLit(2)), ast.IntLit(3)
    )


def test_comparison_binds_looser_than_arith():
    assert parse_expression("a + 1 < b * 2") == ast.BinOp(
        "<",
        ast.BinOp("+", ast.Var("a"), ast.IntLit(1)),
        ast.BinOp("*", ast.Var("b"), ast.IntLit(2)),
    )


def test_logic_precedence():
    # not > and > or
    assert parse_expression("not a and b or c") == ast.BinOp(
        "or",
        ast.BinOp("and", ast.UnaryOp("not", ast.Var("a")), ast.Var("b")),
        ast.Var("c"),
    )


def test_unary_minus():
    assert parse_expression("-x + 1") == ast.BinOp(
        "+", ast.UnaryOp("-", ast.Var("x")), ast.IntLit(1)
    )


def test_boolean_literals():
    assert parse_expression("true") == ast.BoolLit(True)
    assert parse_expression("false") == ast.BoolLit(False)


def test_unclosed_paren_rejected():
    with pytest.raises(ParseError):
        parse_expression("(1 + 2")


def test_empty_expression_rejected():
    with pytest.raises(ParseError):
        parse_expression("")


def test_fortran_ne_in_expression():
    assert parse_expression("a /= b") == ast.BinOp("/=", ast.Var("a"), ast.Var("b"))
