"""Set-backend unit tests (all three backends, same behaviours)."""

import pytest

from repro.dataflow.bitset import BACKENDS, make_backend
from repro.ir.defs import DefTable


@pytest.fixture
def universe():
    t = DefTable()
    for i in range(130):  # spans multiple uint64 words
        t.add(f"v{i % 7}", str(i))
    return list(t)


@pytest.fixture(params=sorted(BACKENDS))
def ops(request, universe):
    return make_backend(request.param, universe)


def test_empty_roundtrip(ops):
    assert ops.to_frozenset(ops.empty()) == frozenset()
    assert ops.size(ops.empty()) == 0


def test_from_defs_roundtrip(ops, universe):
    chosen = frozenset(universe[::13])
    assert ops.to_frozenset(ops.from_defs(chosen)) == chosen


def test_union(ops, universe):
    a = ops.from_defs(universe[:50])
    b = ops.from_defs(universe[30:90])
    assert ops.to_frozenset(ops.union(a, b)) == frozenset(universe[:90])


def test_intersection(ops, universe):
    a = ops.from_defs(universe[:50])
    b = ops.from_defs(universe[30:90])
    assert ops.to_frozenset(ops.intersection(a, b)) == frozenset(universe[30:50])


def test_difference(ops, universe):
    a = ops.from_defs(universe[:50])
    b = ops.from_defs(universe[30:90])
    assert ops.to_frozenset(ops.difference(a, b)) == frozenset(universe[:30])


def test_equals(ops, universe):
    a = ops.from_defs(universe[:10])
    b = ops.from_defs(reversed(universe[:10]))
    assert ops.equals(a, b)
    assert not ops.equals(a, ops.empty())


def test_union_all_empty_family(ops):
    assert ops.to_frozenset(ops.union_all([])) == frozenset()


def test_intersection_all_empty_family_is_empty(ops):
    # DESIGN.md §2: empty intersection convention.
    assert ops.to_frozenset(ops.intersection_all([])) == frozenset()


def test_intersection_all_multi(ops, universe):
    fam = [ops.from_defs(universe[i : i + 60]) for i in (0, 20, 40)]
    assert ops.to_frozenset(ops.intersection_all(fam)) == frozenset(universe[40:60])


def test_size(ops, universe):
    assert ops.size(ops.from_defs(universe[:37])) == 37


def test_operations_do_not_mutate(ops, universe):
    a = ops.from_defs(universe[:10])
    b = ops.from_defs(universe[5:15])
    before = ops.to_frozenset(a)
    ops.union(a, b)
    ops.difference(a, b)
    ops.intersection(a, b)
    assert ops.to_frozenset(a) == before


def test_last_bit_of_universe(ops, universe):
    last = universe[-1]
    s = ops.from_defs([last])
    assert ops.to_frozenset(s) == frozenset([last])


def test_unknown_backend_rejected(universe):
    with pytest.raises(ValueError, match="unknown set backend"):
        make_backend("nope", universe)


def test_backend_names():
    assert set(BACKENDS) == {"set", "bitset", "numpy"}
