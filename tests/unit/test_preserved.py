"""Preserved-set approximation tests (paper §6 / Callahan–Subhlok)."""

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs.preserved import (
    compute_preserved,
    empty_preserved,
    resolve_preserved,
)


def preserved_names(graph, node_name):
    return {n.name for n in compute_preserved(graph)[graph.node(node_name)]}


def test_paper_preserved_8(fig3_graph):
    # Paper §6, verbatim: Preserved(8) = {Entry, 1, 2, 3, 4, 5, 7}.
    assert preserved_names(fig3_graph, "8") == {"Entry", "1", "2", "3", "4", "5", "7"}


def test_forward_ancestors_preserved(fig3_graph):
    # Node 6 (endif in section A): all its forward ancestors.
    assert preserved_names(fig3_graph, "6") == {"Entry", "1", "2", "3", "4", "5"}


def test_concurrent_sections_not_preserved(fig3_graph):
    # Section B's nodes are not preserved for section A's node 6.
    assert preserved_names(fig3_graph, "6").isdisjoint({"7", "8", "9", "10"})


def test_join_preserves_all_sections(fig3_graph):
    names = preserved_names(fig3_graph, "11")
    assert {"3", "4", "5", "6", "7", "8", "9", "10"} <= names


def test_back_edges_ignored(fig3_graph):
    # Node 1 is the loop header; 12 precedes it only via the back edge.
    assert "12" not in preserved_names(fig3_graph, "1")


def test_entry_has_empty_preserved(fig3_graph):
    assert preserved_names(fig3_graph, "Entry") == set()


def test_wait_without_posts_gets_only_ancestors():
    src = """program p
event e
(1) x = 1
parallel sections
  section A
    (2) wait(e)
  section B
    (3) y = 2
end parallel sections
end"""
    g = build_pfg(parse_program(src))
    pres = compute_preserved(g)
    assert {n.name for n in pres[g.node("2")]} == {"Entry", "1", g.forks[0].name}


def test_sole_post_fully_preserved():
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) a = 1
    (4) b = 2
    (4) post(e)
  (5) section B
    (5) wait(e)
(6) end parallel sections
end"""
    g = build_pfg(parse_program(src))
    pres = compute_preserved(g)
    names = {n.name for n in pres[g.node("5")]}
    # The post and everything sequentially before it.
    assert {"3", "4"} <= names


def test_non_exclusive_posts_only_common_part():
    # Two posts in *different concurrent sections*: neither individually
    # guaranteed to precede the wait, only their common ancestors.
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) a = 1
    (3) post(e)
  (4) section B
    (4) b = 2
    (4) post(e)
  (5) section C
    (5) wait(e)
(6) end parallel sections
end"""
    g = build_pfg(parse_program(src))
    pres = compute_preserved(g)
    names = {n.name for n in pres[g.node("5")]}
    assert "3" not in names and "4" not in names
    assert {"Entry", "1", "2"} <= names


def test_ordered_posts_not_sole_releasers():
    # Two posts in sequence in one section: the first may release the wait,
    # so the *second* is not preserved; the first is (it precedes both).
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) post(e)
    (4) a = 1
    (4) post(e)
  (5) section B
    (5) wait(e)
(6) end parallel sections
end"""
    g = build_pfg(parse_program(src))
    pres = compute_preserved(g)
    names = {n.name for n in pres[g.node("5")]}
    assert "3" in names  # common prefix of both posts
    assert "4" not in names


def test_preserved_propagates_past_wait():
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) a = 1
    (3) post(e)
  (4) section B
    (4) wait(e)
    (5) b = 2
(6) end parallel sections
end"""
    g = build_pfg(parse_program(src))
    pres = compute_preserved(g)
    # Node 5, after the wait, inherits the wait's ordering facts.
    assert "3" in {n.name for n in pres[g.node("5")]}


def test_empty_preserved_mode(fig3_graph):
    pres = empty_preserved(fig3_graph)
    assert all(not pres[n] for n in fig3_graph.nodes)
    assert pres.passes == 0


def test_resolve_modes(fig3_graph):
    assert resolve_preserved(fig3_graph, "approx").preserved
    assert resolve_preserved(fig3_graph, "none")[fig3_graph.node("8")] == frozenset()
    node8 = fig3_graph.node("8")
    oracle = resolve_preserved(fig3_graph, "oracle", {node8: {fig3_graph.node("4")}})
    assert oracle[node8] == frozenset({fig3_graph.node("4")})
    assert oracle[fig3_graph.node("9")] == frozenset()


def test_names_helper(fig3_graph):
    pres = compute_preserved(fig3_graph)
    assert pres.names(fig3_graph.node("8")) == frozenset({"Entry", "1", "2", "3", "4", "5", "7"})
