"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_empty_source_yields_only_eof():
    assert kinds("") == [TokenKind.EOF]


def test_whitespace_only_yields_only_eof():
    assert kinds("   \n\t \n  ") == [TokenKind.EOF]


def test_simple_assignment():
    assert kinds("x = 1") == [
        TokenKind.IDENT,
        TokenKind.ASSIGN,
        TokenKind.INT,
        TokenKind.NEWLINE,
        TokenKind.EOF,
    ]


def test_int_literal_value():
    tok = tokenize("42")[0]
    assert tok.kind is TokenKind.INT
    assert tok.value == 42


def test_keywords_case_insensitive():
    assert kinds("PROGRAM Program program")[:3] == [TokenKind.PROGRAM] * 3


def test_identifier_preserves_case():
    tok = tokenize("CamelCase")[0]
    assert tok.kind is TokenKind.IDENT
    assert tok.value == "CamelCase"


def test_identifier_with_underscore_and_digits():
    tok = tokenize("v_1x")[0]
    assert tok.kind is TokenKind.IDENT
    assert tok.text == "v_1x"


def test_all_operators():
    # note: "!" opens a comment (FORTRAN style), so "/=" is the only
    # not-equal spelling.
    src = "+ - * / % ( ) , == /= < <= > >= ="
    expected = [
        TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR, TokenKind.SLASH,
        TokenKind.PERCENT, TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.COMMA,
        TokenKind.EQ, TokenKind.NE, TokenKind.LT, TokenKind.LE,
        TokenKind.GT, TokenKind.GE, TokenKind.ASSIGN,
    ]
    assert kinds(src)[: len(expected)] == expected


def test_hash_comment_ignored():
    assert kinds("x = 1 # a comment\n") == kinds("x = 1\n")


def test_bang_comment_ignored():
    assert kinds("x = 1 ! FORTRAN flavour\n") == kinds("x = 1\n")


def test_comment_only_line_produces_no_tokens():
    assert kinds("# nothing here\n") == [TokenKind.EOF]


def test_consecutive_newlines_collapse():
    toks = kinds("a = 1\n\n\n\nb = 2")
    assert toks.count(TokenKind.NEWLINE) == 2


def test_semicolon_acts_as_newline():
    toks = kinds("a = 1; b = 2")
    assert toks.count(TokenKind.NEWLINE) == 2


def test_leading_newlines_suppressed():
    assert kinds("\n\nx = 1")[0] is TokenKind.IDENT


def test_trailing_newline_synthesized():
    toks = kinds("x = 1")
    assert toks[-2] is TokenKind.NEWLINE


def test_spans_track_lines_and_columns():
    toks = tokenize("a = 1\nbb = 2")
    bb = [t for t in toks if t.text == "bb"][0]
    assert bb.span.start.line == 2
    assert bb.span.start.column == 1
    assert bb.span.end.column == 3


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("x = $")


def test_malformed_int_raises():
    with pytest.raises(LexError):
        tokenize("x = 12ab")


def test_fortran_not_equal():
    toks = tokenize("a /= b")
    assert toks[1].kind is TokenKind.NE


def test_slash_alone_is_division():
    toks = tokenize("a / b")
    assert toks[1].kind is TokenKind.SLASH


def test_boolean_and_logic_keywords():
    assert kinds("true false and or not")[:5] == [
        TokenKind.TRUE, TokenKind.FALSE, TokenKind.AND, TokenKind.OR, TokenKind.NOT,
    ]


def test_sync_keywords():
    assert kinds("post wait clear event")[:4] == [
        TokenKind.POST, TokenKind.WAIT, TokenKind.CLEAR, TokenKind.EVENT,
    ]
