"""Unit tests for histogram percentiles/reservoirs, full metrics merge,
and the cross-run aggregator (:mod:`repro.obs.report`)."""

import json

import pytest

from repro import obs
from repro.obs.metrics import RESERVOIR_SIZE, Histogram, Metrics
from repro.obs.report import (
    REPORT_SCHEMA,
    ReportError,
    aggregate,
    compare_to_baseline,
    read_baseline,
    render_report,
    write_baseline,
)

# ---------------------------------------------------------------------------
# Histogram satellite
# ---------------------------------------------------------------------------


def test_percentile_exact_below_reservoir():
    h = Histogram()
    for v in range(1, 101):
        h.observe(float(v))
    assert h.percentile(50) == 50.0
    assert h.percentile(90) == 90.0
    assert h.percentile(99) == 99.0
    assert h.percentile(100) == 100.0
    assert h.percentile(0) == 1.0


def test_percentile_empty_and_range():
    h = Histogram()
    assert h.percentile(50) is None
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_reservoir_is_bounded_and_deterministic():
    a, b = Histogram(), Histogram()
    for i in range(5 * RESERVOIR_SIZE):
        a.observe(float(i))
        b.observe(float(i))
    assert a.count == 5 * RESERVOIR_SIZE
    assert len(a.samples()) == RESERVOIR_SIZE
    assert a.samples() == b.samples()
    assert a.percentile(99) == b.percentile(99)


def test_exact_summary_fields_survive_sampling():
    h = Histogram()
    for i in range(10_000):
        h.observe(float(i))
    assert (h.count, h.min, h.max) == (10_000, 0.0, 9999.0)
    assert h.total == pytest.approx(sum(range(10_000)))


def test_merge_state_combines_and_downsamples():
    a, b = Histogram(), Histogram()
    for i in range(400):
        a.observe(float(i))
    for i in range(400, 800):
        b.observe(float(i))
    state = {"count": b.count, "total": b.total, "min": b.min, "max": b.max,
             "samples": b.samples()}
    a.merge_state(state)
    assert a.count == 800
    assert (a.min, a.max) == (0.0, 799.0)
    assert len(a.samples()) == RESERVOIR_SIZE
    # Merged percentiles reflect both halves.
    assert a.percentile(50) == pytest.approx(400, abs=8)


def test_merge_is_deterministic():
    def state(lo, hi):
        h = Histogram()
        for i in range(lo, hi):
            h.observe(float(i))
        return {"count": h.count, "total": h.total, "min": h.min, "max": h.max,
                "samples": h.samples()}

    x, y = Histogram(), Histogram()
    for h in (x, y):
        h.merge_state(state(0, 700))
        h.merge_state(state(700, 1400))
    assert x.samples() == y.samples()


# ---------------------------------------------------------------------------
# Metrics.merge satellite
# ---------------------------------------------------------------------------


def test_metrics_merge_full_state():
    worker = Metrics()
    worker.inc("solve.runs", 3)
    worker.set_gauge("mem", 10.0)
    worker.set_gauge("mem", 4.0)  # value 4, max 10
    for v in (1.0, 2.0, 3.0):
        worker.observe("lat", v)

    parent = Metrics()
    parent.inc("solve.runs", 1)
    parent.set_gauge("mem", 2.0)
    parent.observe("lat", 9.0)
    parent.merge(worker.export_state())

    assert parent.counter("solve.runs").value == 4
    assert parent.gauge("mem").value == 4.0
    assert parent.gauge("mem").max == 10.0
    h = parent.histogram("lat")
    assert h.count == 4 and h.max == 9.0
    assert h.samples() == [1.0, 2.0, 3.0, 9.0]


def test_export_state_is_json_safe():
    m = Metrics()
    m.inc("a")
    m.set_gauge("g", 1.5)
    m.observe("h", 2.0)
    json.dumps(m.export_state())


def test_as_dict_carries_percentiles():
    m = Metrics()
    for v in range(100):
        m.observe("h", float(v))
    snap = m.as_dict()["histograms"]["h"]
    assert snap["p50"] == 49.0 and snap["p90"] == 89.0 and snap["p99"] == 98.0


def test_null_metrics_merge_is_noop():
    obs.NULL_METRICS.merge({"counters": {"a": 1}, "gauges": {}, "histograms": {}})
    assert obs.NULL_METRICS.counters == {}


# ---------------------------------------------------------------------------
# Aggregator
# ---------------------------------------------------------------------------


def write_obs(path, counters=(), histogram_samples=(), spans=()):
    lines = [{"type": "meta", "schema": "repro-obs/1"}]
    for name, value in counters:
        lines.append({"type": "counter", "name": name, "value": value})
    if histogram_samples:
        samples = sorted(histogram_samples)
        lines.append(
            {
                "type": "histogram",
                "name": "lat",
                "count": len(samples),
                "total": sum(samples),
                "min": samples[0],
                "max": samples[-1],
                "samples": samples,
            }
        )
    for name, dur in spans:
        lines.append(
            {"type": "span", "name": name, "path": name, "depth": 0,
             "start": 0.0, "dur": dur, "attrs": {}}
        )
    path.write_text("\n".join(json.dumps(r) for r in lines) + "\n")
    return str(path)


def write_batch(path, statuses=("ok",)):
    lines = [{"type": "meta", "schema": "repro-batch/1", "workers": 1,
              "inputs": len(statuses), "options": {}}]
    for i, status in enumerate(statuses):
        lines.append(
            {"type": "task", "file": f"p{i}.pcf", "status": status,
             "code": 0 if status in ("ok", "degraded") else 2,
             "wall_s": 0.25, "counters": {"solve.runs": 1},
             "metrics": {"gauges": {}, "histograms": {}}}
        )
    lines.append({"type": "summary", "total": len(statuses)})
    path.write_text("\n".join(json.dumps(r) for r in lines) + "\n")
    return str(path)


def write_fuzz(path, statuses=("ok",)):
    lines = [{"type": "meta", "schema": "repro-fuzz/1"}]
    for i, status in enumerate(statuses):
        lines.append({"type": "case", "seed": i, "status": status, "wall_s": 0.1})
    path.write_text("\n".join(json.dumps(r) for r in lines) + "\n")
    return str(path)


def test_aggregate_mixes_all_three_schemas(tmp_path):
    files = [
        write_obs(tmp_path / "a.jsonl", counters=[("solve.runs", 2)],
                  histogram_samples=[1.0, 2.0], spans=[("solve", 0.5)]),
        write_batch(tmp_path / "b.jsonl", statuses=("ok", "failed")),
        write_fuzz(tmp_path / "c.jsonl", statuses=("ok", "ok")),
    ]
    report = aggregate(files)
    assert report["schema"] == REPORT_SCHEMA
    assert report["inputs"]["by_schema"] == {
        "repro-batch/1": 1, "repro-fuzz/1": 1, "repro-obs/1": 1
    }
    # obs counter + the two batch task counters
    assert report["counters"]["solve.runs"] == 4
    assert report["tasks"]["batch task"]["total"] == 2
    assert report["tasks"]["batch task"]["failures"] == 1
    assert report["tasks"]["fuzz case"]["failures"] == 0
    assert report["histograms"]["lat"]["p50"] == 1.0
    assert report["spans"]["slowest"][0]["path"] == "solve"


def test_aggregate_is_argument_order_independent(tmp_path):
    a = write_obs(tmp_path / "a.jsonl", counters=[("x", 1)])
    b = write_batch(tmp_path / "b.jsonl")
    r1, r2 = aggregate([a, b]), aggregate([b, a])
    assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)
    assert render_report(r1) == render_report(r2)


def test_aggregate_rejects_bad_inputs(tmp_path):
    with pytest.raises(ReportError):
        aggregate([])
    missing = tmp_path / "missing.jsonl"
    with pytest.raises(ReportError):
        aggregate([str(missing)])
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(ReportError):
        aggregate([str(bad)])
    unknown = tmp_path / "unknown.jsonl"
    unknown.write_text(json.dumps({"type": "meta", "schema": "other/9"}) + "\n")
    with pytest.raises(ReportError):
        aggregate([str(unknown)])


def test_baseline_round_trip_and_gate(tmp_path):
    a = write_obs(tmp_path / "a.jsonl", counters=[("solve.runs", 10)])
    report = aggregate([a])
    base_path = tmp_path / "base.json"
    write_baseline(base_path, report)
    baseline = read_baseline(base_path)
    assert compare_to_baseline(report, baseline) == []
    # 10% tolerance: 11 passes, 12 regresses.
    ok = aggregate([write_obs(tmp_path / "b.jsonl", counters=[("solve.runs", 11)])])
    assert compare_to_baseline(ok, baseline, tolerance=0.1) == []
    bad = aggregate([write_obs(tmp_path / "c.jsonl", counters=[("solve.runs", 12)])])
    problems = compare_to_baseline(bad, baseline, tolerance=0.1)
    assert problems and "solve.runs" in problems[0]


def test_baseline_flags_new_failures(tmp_path):
    clean = aggregate([write_batch(tmp_path / "a.jsonl", statuses=("ok",))])
    broken = aggregate(
        [write_batch(tmp_path / "b.jsonl", statuses=("ok", "crashed"))]
    )
    assert compare_to_baseline(broken, clean) != []
    # New counters (no baseline entry) are informational, not regressions.
    assert compare_to_baseline(clean, broken) == []


def test_read_baseline_rejects_non_reports(tmp_path):
    p = tmp_path / "x.json"
    p.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ReportError):
        read_baseline(p)
