"""Structural validation tests."""

import pytest

from repro.lang import ast, parse_program
from repro.paper import programs
from repro.pfg import (
    EdgeKind,
    NodeKind,
    ParallelFlowGraph,
    PFGInvariantError,
    build_pfg,
    validate_pfg,
)


def test_all_paper_graphs_valid():
    for key in programs.SOURCES:
        validate_pfg(programs.graph(key))


def _tiny_valid_graph():
    g = ParallelFlowGraph("t")
    entry = g.new_node(NodeKind.ENTRY)
    exit_ = g.new_node(NodeKind.EXIT)
    g.add_edge(entry, exit_, EdgeKind.SEQ)
    g.entry, g.exit = entry, exit_
    for n in g.nodes:
        g.register_name(n)
    g.finalize_defs()
    return g


def test_tiny_graph_valid():
    validate_pfg(_tiny_valid_graph())


def test_missing_entry_detected():
    g = _tiny_valid_graph()
    g.entry = None
    with pytest.raises(PFGInvariantError, match="no entry"):
        validate_pfg(g)


def test_unreachable_node_detected():
    g = _tiny_valid_graph()
    orphan = g.new_node(NodeKind.BASIC)
    g.register_name(orphan)
    with pytest.raises(PFGInvariantError, match="unreachable"):
        validate_pfg(g)


def test_fork_without_join_detected():
    g = _tiny_valid_graph()
    fork = g.new_node(NodeKind.FORK)
    fork.construct_id = 0
    g.register_name(fork)
    g.add_edge(g.entry, fork, EdgeKind.SEQ)
    g.add_edge(fork, g.nodes[1], EdgeKind.PAR)
    with pytest.raises(PFGInvariantError, match="without matching join"):
        validate_pfg(g)


def test_sync_edge_from_non_post_detected():
    g = _tiny_valid_graph()
    g.nodes[1].kind = NodeKind.BASIC  # make Exit a basic node to allow edge
    g.nodes[1].wait_event = "e"
    g.add_edge(g.entry, g.nodes[1], EdgeKind.SYNC)
    with pytest.raises(PFGInvariantError, match="SYNC edge from a non-post"):
        validate_pfg(g)


def test_sync_edge_event_mismatch_detected():
    g = ParallelFlowGraph("t")
    entry = g.new_node(NodeKind.ENTRY)
    a = g.new_node(NodeKind.BASIC)
    b = g.new_node(NodeKind.BASIC)
    exit_ = g.new_node(NodeKind.EXIT)
    a.post_event = "e1"
    b.wait_event = "e2"
    g.add_edge(entry, a, EdgeKind.SEQ)
    g.add_edge(a, b, EdgeKind.SEQ)
    g.add_edge(a, b, EdgeKind.SYNC)
    g.add_edge(b, exit_, EdgeKind.SEQ)
    g.entry, g.exit = entry, exit_
    for n in g.nodes:
        g.register_name(n)
    g.finalize_defs()
    with pytest.raises(PFGInvariantError, match="different events"):
        validate_pfg(g)


def test_par_edge_placement_checked():
    g = _tiny_valid_graph()
    mid = g.new_node(NodeKind.BASIC)
    g.register_name(mid)
    g.add_edge(g.entry, mid, EdgeKind.PAR)  # entry is not a fork
    g.add_edge(mid, g.nodes[1], EdgeKind.SEQ)
    with pytest.raises(PFGInvariantError, match="PAR edge not at a fork"):
        validate_pfg(g)


def test_def_table_consistency_checked():
    g = build_pfg(parse_program("program p\nx = 1\nend"))
    g.entry.defs[0] = type(g.entry.defs[0])(index=0, var="x", site="WRONG")
    with pytest.raises(PFGInvariantError, match="recorded in block"):
        validate_pfg(g)


def test_all_violations_reported_together():
    g = _tiny_valid_graph()
    g.entry.post_event = "e"
    g.entry.cond = ast.IntLit(1)
    orphan = g.new_node(NodeKind.BASIC)
    g.register_name(orphan)
    with pytest.raises(PFGInvariantError) as err:
        validate_pfg(g)
    assert len(err.value.violations) >= 2
