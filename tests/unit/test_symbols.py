"""Symbol table and event well-formedness tests."""

import pytest

from repro.ir.symbols import build_symbol_table, check_events
from repro.lang import parse_program
from repro.lang.errors import SemanticError


def test_variables_and_events_separated():
    prog = parse_program("program p\nevent e\nx = 1\ny = x\npost(e)\nend")
    table = build_symbol_table(prog)
    assert table.variables == ("x", "y")
    assert table.events == ("e",)
    assert table.is_event("e") and not table.is_event("x")


def test_free_variables_detected():
    prog = parse_program("program p\nif cond then\nx = input + 1\nendif\nend")
    table = build_symbol_table(prog)
    assert set(table.free_variables) == {"cond", "input"}


def test_assigned_variable_not_free():
    prog = parse_program("program p\nx = 1\ny = x\nend")
    assert build_symbol_table(prog).free_variables == ()


def test_wait_on_undeclared_event_rejected():
    with pytest.raises(SemanticError, match="undeclared event"):
        check_events(parse_program("program p\nwait(e)\nend"))


def test_post_on_undeclared_event_rejected():
    with pytest.raises(SemanticError, match="undeclared event"):
        check_events(parse_program("program p\npost(e)\nend"))


def test_clear_on_undeclared_event_rejected():
    with pytest.raises(SemanticError, match="undeclared event"):
        check_events(parse_program("program p\nclear(e)\nend"))


def test_event_cannot_be_assigned():
    with pytest.raises(SemanticError, match="cannot be assigned"):
        check_events(parse_program("program p\nevent e\ne = 1\nend"))


def test_event_cannot_be_read_in_expr():
    with pytest.raises(SemanticError, match="cannot be read"):
        check_events(parse_program("program p\nevent e\nx = e + 1\nend"))


def test_event_cannot_be_read_in_condition():
    with pytest.raises(SemanticError, match="cannot be read"):
        check_events(parse_program("program p\nevent e\nif e < 1 then\nx = 1\nendif\nend"))


def test_valid_program_passes():
    check_events(parse_program("program p\nevent e\npost(e)\nwait(e)\nclear(e)\nend"))
