"""Fault injection: order-invariance under chaos, corruption detection."""

import pytest

from repro import analyze, parse_program
from repro.dataflow.sched import solve_scc
from repro.dataflow.solver import make_order, solve_round_robin
from repro.interp import RandomScheduler, run_program
from repro.interp.trace import check_soundness
from repro.paper import programs
from repro.pfg import build_pfg
from repro.reachdefs import solve_parallel, solve_synch
from repro.reachdefs.sequential import SequentialRDSystem
from repro.robust import (
    ChaosPlan,
    ChaosSystem,
    chaos_schedulers,
    corrupt_result,
    shuffled_orders,
    verify_result,
)

SEEDS = range(7)  # acceptance asks for ≥5; run a couple extra

SEQ = """program seq
  (1) x = 1
  (2) if x then
    (3) x = 2
  else
    (4) y = x
  endif
  (5) z = x + y
end program
"""

SYNC = """program sync
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) data = x + 1
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = data
  (5) end parallel sections
  (5) z = y
end program
"""


def _in_sets_by_name(result):
    return {n.name: result.in_sets[n] for n in result.graph.nodes}


# -- fixpoint order-invariance under shuffled sweep orders ----------------


@pytest.mark.parametrize("key", ["fig6", "fig9", "fig3c"])
def test_fixpoint_is_order_invariant_across_seeds(key):
    graph = programs.graph(key)
    solve = solve_synch if (graph.posts_of_event or graph.waits_of_event) else solve_parallel
    reference = _in_sets_by_name(solve(graph))
    for seed in SEEDS:
        shuffled = _in_sets_by_name(solve(graph, order=f"random:{seed}"))
        assert shuffled == reference, f"seed {seed} changed the fixpoint"


def test_shuffled_orders_are_permutations_and_seeded():
    graph = programs.graph("fig9")
    base = {n.name for n in graph.nodes}
    orders = dict(shuffled_orders(graph, SEEDS))
    assert set(orders) == set(SEEDS)
    for order in orders.values():
        assert {n.name for n in order} == base
    # Determinism: the same seed always yields the same order.
    again = dict(shuffled_orders(graph, SEEDS))
    assert [n.name for n in orders[3]] == [n.name for n in again[3]]


# -- transient faults (drops, duplicates) never corrupt the fixpoint ------


@pytest.mark.parametrize("seed", SEEDS)
def test_dropped_and_duplicated_updates_reach_same_fixpoint(seed):
    graph = build_pfg(parse_program(SEQ))
    clean = SequentialRDSystem(graph)
    solve_round_robin(clean, make_order(graph, "document"))

    chaotic = ChaosSystem(
        SequentialRDSystem(graph),
        ChaosPlan(seed=seed, drop_rate=0.4, duplicate_rate=0.4),
    )
    stats = solve_round_robin(chaotic, make_order(graph, "document"))
    assert stats.converged
    assert chaotic.dropped > 0 or chaotic.duplicated > 0
    assert _in_sets_by_name(chaotic.to_result(stats)) == _in_sets_by_name(
        clean.to_result(stats)
    )


def test_drop_bound_is_honoured():
    graph = build_pfg(parse_program(SEQ))
    chaotic = ChaosSystem(
        SequentialRDSystem(graph), ChaosPlan(seed=0, drop_rate=1.0, max_drops=3)
    )
    stats = solve_round_robin(chaotic, make_order(graph, "document"))
    # Past the bound the wrapper is honest, so the solve still converges
    # to the true fixpoint.
    assert stats.converged
    assert chaotic.dropped == 3


# -- persistent suppression IS corruption, and the oracle catches it ------


def test_suppressed_node_produces_detectable_corruption():
    """Suppressing the equations of the block that consumes ``x``/``y``
    leaves its In set empty — every schedule then observes definitions
    the static sets cannot explain.  Detection is deterministic, not a
    lucky schedule."""
    prog = parse_program(SEQ)
    graph = build_pfg(prog)
    chaotic = ChaosSystem(SequentialRDSystem(graph), ChaosPlan(suppress=frozenset({"5"})))
    stats = solve_round_robin(chaotic, make_order(graph, "document"))
    corrupted = chaotic.to_result(stats)
    assert chaotic.suppressed_calls > 0
    assert corrupted.in_sets[graph.node("5")] == frozenset()

    violations, _ = verify_result(corrupted, prog, seeds=SEEDS)
    flagged_seeds = {seed for seed, _ in violations}
    assert flagged_seeds == set(SEEDS), "corruption must be caught on every schedule"


# -- chaos through the SCC scheduler --------------------------------------


@pytest.mark.parametrize("key", ["fig6", "fig9", "fig3c"])
def test_scc_fixpoint_is_order_invariant_across_seeds(key):
    # The order argument only sets within-region priority for the scc
    # solver, so shuffled seeds cannot move the fixpoint.
    graph = programs.graph(key)
    solve = solve_synch if (graph.posts_of_event or graph.waits_of_event) else solve_parallel
    reference = _in_sets_by_name(solve(graph, solver="scc"))
    for seed in SEEDS:
        shuffled = _in_sets_by_name(solve(graph, solver="scc", order=f"random:{seed}"))
        assert shuffled == reference, f"seed {seed} changed the fixpoint"


@pytest.mark.parametrize("seed", SEEDS)
def test_scc_duplicated_updates_reach_same_fixpoint(seed):
    # Duplicate faults re-evaluate idempotent equations; the schedule's
    # exactly-once accounting tolerates them.  (Drop faults do NOT compose
    # with scc: a dropped singleton evaluation is never retried — see the
    # caveat in repro/dataflow/sched.py.)
    graph = build_pfg(parse_program(SEQ))
    clean = SequentialRDSystem(graph)
    clean_stats = solve_scc(clean)

    chaotic = ChaosSystem(
        SequentialRDSystem(graph), ChaosPlan(seed=seed, duplicate_rate=1.0)
    )
    stats = solve_scc(chaotic)
    assert stats.converged
    assert chaotic.duplicated > 0
    assert _in_sets_by_name(chaotic.to_result(stats)) == _in_sets_by_name(
        clean.to_result(clean_stats)
    )


def test_scc_suppressed_node_produces_detectable_corruption():
    # Persistent suppression corrupts the scc solution exactly as it does
    # the sweep solvers', and the runtime oracle still catches it.
    prog = parse_program(SEQ)
    graph = build_pfg(prog)
    chaotic = ChaosSystem(SequentialRDSystem(graph), ChaosPlan(suppress=frozenset({"5"})))
    stats = solve_scc(chaotic)
    corrupted = chaotic.to_result(stats)
    assert chaotic.suppressed_calls > 0
    assert corrupted.in_sets[graph.node("5")] == frozenset()

    violations, _ = verify_result(corrupted, prog, seeds=SEEDS)
    flagged_seeds = {seed for seed, _ in violations}
    assert flagged_seeds == set(SEEDS), "corruption must be caught on every schedule"


# -- post-hoc tampering (corrupt_result) ----------------------------------


@pytest.mark.parametrize("source", [SEQ, SYNC])
def test_corrupt_result_is_always_detected(source):
    prog = parse_program(source)
    result = analyze(prog)
    run = run_program(prog, RandomScheduler(seed=0, max_loop_iters=2), graph=result.graph)
    assert check_soundness(result, run) == []

    tampered, injected = corrupt_result(result, run, seed=1)
    violations = check_soundness(tampered, run)
    assert violations, f"injected corruption not detected: {injected.format()}"
    assert any(v.observation.definition.name == injected.definition for v in violations)
    # The original result object is untouched.
    assert check_soundness(result, run) == []


def test_corrupt_result_refuses_when_nothing_observed():
    prog = parse_program("program empty\n  (1) x = 1\nend program\n")
    result = analyze(prog)
    run = run_program(prog, RandomScheduler(seed=0), graph=result.graph)
    with pytest.raises(ValueError):
        corrupt_result(result, run)


# -- interpreter chaos helpers --------------------------------------------


def test_chaos_schedulers_are_seeded_spread():
    scheds = chaos_schedulers(SEEDS, max_loop_iters=4)
    assert len(scheds) == len(list(SEEDS))
    assert all(s.max_loop_iters == 4 for s in scheds)
    # Distinct seeds really drive distinct interleavings somewhere (the
    # SYNC program's post/wait forces one order, so use free sections).
    prog = parse_program(
        "program par\n"
        "  (1) x = 1\n"
        "  (2) parallel sections\n"
        "    (3) section a\n"
        "      (3) x = 2\n"
        "      (3) u = 3\n"
        "    (4) section b\n"
        "      (4) y = x\n"
        "      (4) v = 4\n"
        "  (5) end parallel sections\n"
        "end program\n"
    )
    traces = {tuple(run_program(prog, s).node_trace) for s in chaos_schedulers(SEEDS)}
    assert len(traces) > 1
