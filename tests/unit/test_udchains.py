"""UDChains wrapper tests."""

from repro import analyze
from repro.analysis import compute_ud_chains
from repro.lang import parse_program


def chains(src):
    return compute_ud_chains(analyze(parse_program(src)))


SRC = """program p
(1) x = 1
(2) if x < 2 then
(3) x = 3
endif
(4) y = x
(5) dead = 7
end"""


def test_unused_defs():
    c = chains(SRC)
    # y4 and dead5 reach the exit (observable) but have no in-program uses.
    assert {d.name for d in c.unused_defs()} == {"y4", "dead5"}


def test_multi_def_uses():
    c = chains(SRC)
    multi = dict(c.multi_def_uses())
    (use,) = [u for u in multi if u.site == "4"]
    assert {d.name for d in multi[use]} == {"x1", "x3"}


def test_singleton_uses():
    c = chains(SRC)
    singles = dict(c.singleton_uses())
    cond_use = [u for u in singles if u.site == "2"][0]
    assert singles[cond_use].name == "x1"


def test_defs_for_and_uses_of_agree():
    c = chains(SRC)
    for use, defs in c.ud.items():
        for d in defs:
            assert use in c.uses_of(d)
        assert c.defs_for(use) == defs


def test_format_lists_uses():
    text = chains(SRC).format()
    assert "x@4#0" in text
    assert "{x1, x3}" in text


def test_uninitialized_read_formatted():
    text = chains("program p\n(1) y = q\nend").format()
    assert "uninitialized" in text
