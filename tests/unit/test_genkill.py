"""Gen/Kill/ParallelKill/OtherDefs tests."""

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs.genkill import compute_genkill, sequential_kill


def names(defs):
    return {d.name for d in defs}


def test_gen_is_downward_exposed():
    g = build_pfg(parse_program("program p\n(1) x = 1\n(1) x = 2\n(1) y = 3\nend"))
    info = compute_genkill(g)
    node = g.node("1")
    gen = names(info.gen[node])
    assert gen == {"x1", "y1"}  # only the last x definition escapes; it
    # keeps the clean name while the shadowed one becomes x1'1
    all_names = {d.name for d in g.defs}
    assert all_names == {"x1", "x1'1", "y1"}


def test_kill_excludes_own_defs():
    g = build_pfg(parse_program("program p\n(1) x = 1\n(2) x = 2\nend"))
    info = compute_genkill(g)
    assert names(info.kill[g.node("1")]) == {"x2"}
    assert names(info.kill[g.node("2")]) == {"x1"}


def test_other_defs_is_kill_union_parkill(fig3_graph):
    info = compute_genkill(fig3_graph)
    for node in fig3_graph.nodes:
        assert info.other_defs[node] == info.kill[node] | info.parallel_kill[node]
        assert not (info.kill[node] & info.parallel_kill[node])


def test_fig3_parallel_kills(fig3_graph):
    info = compute_genkill(fig3_graph)
    g = fig3_graph
    assert names(info.parallel_kill[g.node("8")]) == {"x4", "x5"}
    assert names(info.parallel_kill[g.node("6")]) == {"z9"}
    assert names(info.parallel_kill[g.node("9")]) == {"z6"}
    assert names(info.kill[g.node("8")]) == {"xEntry"}


def test_fig6_parallel_kills(fig6_graph):
    info = compute_genkill(fig6_graph)
    g = fig6_graph
    assert names(info.parallel_kill[g.node("3")]) == {"b5"}
    assert names(info.parallel_kill[g.node("5")]) == {"b3"}
    assert names(info.kill[g.node("3")]) == {"a1", "b1"}


def test_sequential_program_has_empty_parkill(fig1a_graph):
    info = compute_genkill(fig1a_graph)
    for node in fig1a_graph.nodes:
        assert info.parallel_kill[node] == frozenset()


def test_sequential_kill_equals_other_defs(fig3_graph):
    info = compute_genkill(fig3_graph)
    for node in fig3_graph.nodes:
        assert sequential_kill(info, node) == info.other_defs[node]


def test_def_node_mapping(fig3_graph):
    info = compute_genkill(fig3_graph)
    for node in fig3_graph.nodes:
        for d in node.defs:
            assert info.def_node[d] is node


def test_node_without_defs_has_empty_sets(fig3_graph):
    info = compute_genkill(fig3_graph)
    fork = fig3_graph.node("2")
    assert info.gen[fork] == frozenset()
    assert info.kill[fork] == frozenset()
    assert info.other_defs[fork] == frozenset()
