"""ReachingDefsResult query tests."""

import pytest

from repro.ir.defs import Use
from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_parallel, solve_sequential


@pytest.fixture
def result():
    src = """program p
(1) x = 1
(1) y = x
(2) if x < 2 then
(3) x = 3
endif
(4) z = x + y
end"""
    return solve_sequential(build_pfg(parse_program(src)))


def test_access_by_name_and_node(result):
    node = result.graph.node("4")
    assert result.In("4") == result.In(node)


def test_reaching_filters_by_var(result):
    assert {d.name for d in result.reaching("4", "x")} == {"x1", "x3"}
    assert {d.name for d in result.reaching("4", "y")} == {"y1"}


def test_ud_chains_cover_all_uses(result):
    chains = result.ud_chains()
    sites = {u.site for u in chains}
    assert sites == {"1", "2", "4"}
    use_z = [u for u in chains if u.site == "4" and u.var == "y"][0]
    assert {d.name for d in chains[use_z]} == {"y1"}


def test_branch_condition_is_a_use(result):
    chains = result.ud_chains()
    cond_uses = [u for u in chains if u.site == "2"]
    assert len(cond_uses) == 1
    assert cond_uses[0].var == "x"


def test_du_chains_invert_ud(result):
    ud = result.ud_chains()
    du = result.du_chains()
    for use, defs in ud.items():
        for d in defs:
            assert use in du[d]
    # x3 is used only at (4).
    x3 = result.graph.defs.by_name("x3")
    assert {u.site for u in du[x3]} == {"4"}


def test_same_block_use_after_def(result):
    use = Use(var="x", site="1", ordinal=1)  # y = x after x = 1
    assert {d.name for d in result.reaching_use(use)} == {"x1"}


def test_row_rendering_sequential(result):
    row = result.row("4")
    assert set(row) == {"Gen", "Kill", "In", "Out"}
    assert row["Gen"] == {"z4"}


def test_row_rendering_parallel(fig6_graph):
    r = solve_parallel(fig6_graph)
    row = r.row("10")
    assert "ACCKillout" in row and "ParKill" in row
    assert row["ACCKillout"] == {"a1", "b1"}


def test_accessors_guarded_on_sequential(result):
    with pytest.raises(AssertionError):
        result.ACCKillout("4")
    with pytest.raises(AssertionError):
        result.SynchPass("4")
    with pytest.raises(AssertionError):
        result.Preserved("4")
