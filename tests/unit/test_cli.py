"""CLI tests (in-process, via main())."""

import pytest

from repro.tools.cli import main

GOOD = """program demo
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
end
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.pcf"
    path.write_text(GOOD)
    return str(path)


def test_parse_roundtrips(program_file, capsys):
    assert main(["parse", program_file]) == 0
    out = capsys.readouterr().out
    assert "program demo" in out and "(3) x = 2" in out


def test_graph_describe(program_file, capsys):
    assert main(["graph", program_file]) == 0
    out = capsys.readouterr().out
    assert "[2:fork]" in out


def test_graph_dot(program_file, capsys):
    assert main(["graph", program_file, "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_analyze_prints_table_and_anomalies(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "parallel reaching definitions" in out
    assert "ACCKillout" in out
    assert "converged" in out


def test_analyze_backend_flag(program_file, capsys):
    assert main(["analyze", program_file, "--backend", "numpy"]) == 0
    assert "Out" in capsys.readouterr().out


def test_run_prints_final_values(program_file, capsys):
    assert main(["run", program_file, "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "x : 2" in out


def test_tables_named(capsys):
    assert main(["tables", "table1"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_tables_all(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Figure 8" in out and "digraph" in out


def test_tables_unknown_name(capsys):
    assert main(["tables", "fig99"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_parse_error_reported(tmp_path, capsys):
    bad = tmp_path / "bad.pcf"
    bad.write_text("program p\nx = = 1\nend\n")
    assert main(["parse", str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_missing_file_reported(capsys):
    assert main(["parse", "/nonexistent/file.pcf"]) == 1
    assert "error" in capsys.readouterr().err


def test_cssa_command(program_file, capsys):
    assert main(["cssa", program_file]) == 0
    out = capsys.readouterr().out
    assert out.startswith("CSSA form of demo")
    assert "ψ(" in out


def test_report_command(program_file, capsys):
    assert main(["report", program_file]) == 0
    out = capsys.readouterr().out
    assert "optimization report for 'demo'" in out
    assert "safety:" in out and "opportunities:" in out


def test_report_preserved_flag(program_file, capsys):
    assert main(["report", program_file, "--preserved", "none"]) == 0
    assert "optimization report" in capsys.readouterr().out


def test_report_trace_prints_phase_tree(program_file, capsys):
    assert main(["report", program_file, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "optimization report" in out
    assert "phase-time tree" in out
    assert "timings:" in out  # report render gains the timings section
    for phase in ("parse", "pfg-build", "solve", "client:constprop"):
        assert phase in out, phase


def test_report_untraced_has_no_timings(program_file, capsys):
    assert main(["report", program_file]) == 0
    out = capsys.readouterr().out
    assert "timings:" not in out and "phase-time tree" not in out


def test_report_profile_writes_jsonl(program_file, capsys, tmp_path):
    import json

    out_path = tmp_path / "profile.jsonl"
    assert main(["report", program_file, "--profile", str(out_path)]) == 0
    records = [json.loads(line) for line in out_path.read_text().splitlines()]
    assert records[0]["type"] == "meta" and records[0]["schema"] == "repro-obs/1"
    assert records[0]["command"] == "report"
    spans = {r["name"] for r in records if r["type"] == "span"}
    assert {"parse", "pfg-build", "solve", "pass"} <= spans
    assert any(name.startswith("client:") for name in spans)
    assert "wrote" in capsys.readouterr().err


def test_analyze_trace(program_file, capsys):
    assert main(["analyze", program_file, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "reaching definitions" in out and "phase-time tree" in out


def test_run_trace_shows_interp_span(program_file, capsys):
    assert main(["run", program_file, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "interp.run" in out and "interp.steps" in out


def test_stats_command(program_file, capsys):
    assert main(["stats", program_file]) == 0
    out = capsys.readouterr().out
    assert "pipeline stats for 'demo'" in out
    assert "phase-time tree" in out
    for phase in ("parse", "pfg-build", "solve", "interp.run"):
        assert phase in out, phase
    assert "bitset.ops" in out  # stats enables op counting


def test_stats_no_run_skips_interpreter(program_file, capsys):
    assert main(["stats", program_file, "--no-run"]) == 0
    out = capsys.readouterr().out
    assert "interp.run" not in out


def test_stats_profile(program_file, capsys, tmp_path):
    import json

    out_path = tmp_path / "stats.jsonl"
    assert main(["stats", program_file, "--profile", str(out_path)]) == 0
    records = [json.loads(line) for line in out_path.read_text().splitlines()]
    assert any(r["type"] == "counter" for r in records)
