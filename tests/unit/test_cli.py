"""CLI tests (in-process, via main())."""

import pytest

from repro.tools.cli import main

GOOD = """program demo
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
end
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.pcf"
    path.write_text(GOOD)
    return str(path)


def test_parse_roundtrips(program_file, capsys):
    assert main(["parse", program_file]) == 0
    out = capsys.readouterr().out
    assert "program demo" in out and "(3) x = 2" in out


def test_graph_describe(program_file, capsys):
    assert main(["graph", program_file]) == 0
    out = capsys.readouterr().out
    assert "[2:fork]" in out


def test_graph_dot(program_file, capsys):
    assert main(["graph", program_file, "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_analyze_prints_table_and_anomalies(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "parallel reaching definitions" in out
    assert "ACCKillout" in out
    assert "converged" in out


def test_analyze_backend_flag(program_file, capsys):
    assert main(["analyze", program_file, "--backend", "numpy"]) == 0
    assert "Out" in capsys.readouterr().out


def test_run_prints_final_values(program_file, capsys):
    assert main(["run", program_file, "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "x : 2" in out


def test_tables_named(capsys):
    assert main(["tables", "table1"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_tables_all(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Figure 8" in out and "digraph" in out


def test_tables_unknown_name(capsys):
    assert main(["tables", "fig99"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_parse_error_reported(tmp_path, capsys):
    bad = tmp_path / "bad.pcf"
    bad.write_text("program p\nx = = 1\nend\n")
    assert main(["parse", str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_missing_file_reported(capsys):
    assert main(["parse", "/nonexistent/file.pcf"]) == 1
    assert "error" in capsys.readouterr().err


def test_cssa_command(program_file, capsys):
    assert main(["cssa", program_file]) == 0
    out = capsys.readouterr().out
    assert out.startswith("CSSA form of demo")
    assert "ψ(" in out


def test_report_command(program_file, capsys):
    assert main(["report", program_file]) == 0
    out = capsys.readouterr().out
    assert "optimization report for 'demo'" in out
    assert "safety:" in out and "opportunities:" in out


def test_report_preserved_flag(program_file, capsys):
    assert main(["report", program_file, "--preserved", "none"]) == 0
    assert "optimization report" in capsys.readouterr().out


def test_report_trace_prints_phase_tree(program_file, capsys):
    assert main(["report", program_file, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "optimization report" in out
    assert "phase-time tree" in out
    assert "timings:" in out  # report render gains the timings section
    for phase in ("parse", "pfg-build", "solve", "client:constprop"):
        assert phase in out, phase


def test_report_untraced_has_no_timings(program_file, capsys):
    assert main(["report", program_file]) == 0
    out = capsys.readouterr().out
    assert "timings:" not in out and "phase-time tree" not in out


def test_report_profile_writes_jsonl(program_file, capsys, tmp_path):
    import json

    out_path = tmp_path / "profile.jsonl"
    assert main(["report", program_file, "--profile", str(out_path)]) == 0
    records = [json.loads(line) for line in out_path.read_text().splitlines()]
    assert records[0]["type"] == "meta" and records[0]["schema"] == "repro-obs/1"
    assert records[0]["command"] == "report"
    spans = {r["name"] for r in records if r["type"] == "span"}
    assert {"parse", "pfg-build", "solve", "pass"} <= spans
    assert any(name.startswith("client:") for name in spans)
    assert "wrote" in capsys.readouterr().err


def test_analyze_trace(program_file, capsys):
    assert main(["analyze", program_file, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "reaching definitions" in out and "phase-time tree" in out


def test_run_trace_shows_interp_span(program_file, capsys):
    assert main(["run", program_file, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "interp.run" in out and "interp.steps" in out


def test_stats_command(program_file, capsys):
    assert main(["stats", program_file]) == 0
    out = capsys.readouterr().out
    assert "pipeline stats for 'demo'" in out
    assert "phase-time tree" in out
    for phase in ("parse", "pfg-build", "solve", "interp.run"):
        assert phase in out, phase
    assert "bitset.ops" in out  # stats enables op counting


def test_stats_no_run_skips_interpreter(program_file, capsys):
    assert main(["stats", program_file, "--no-run"]) == 0
    out = capsys.readouterr().out
    assert "interp.run" not in out


def test_stats_profile(program_file, capsys, tmp_path):
    import json

    out_path = tmp_path / "stats.jsonl"
    assert main(["stats", program_file, "--profile", str(out_path)]) == 0
    records = [json.loads(line) for line in out_path.read_text().splitlines()]
    assert any(r["type"] == "counter" for r in records)


# -- exit-code contract (documented in the CLI module docstring) ----------

SYNC_SRC = """program sync
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) data = x + 1
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = data
  (5) end parallel sections
  (5) z = y
end program
"""

DEADLOCK_SRC = """program dl
  event e
  (1) a = 1
  (2) parallel sections
    (3) section one
      (3) wait(e)
      (3) b = a
    (4) section two
      (4) c = 2
  (5) end parallel sections
end program
"""


@pytest.fixture
def sync_file(tmp_path):
    path = tmp_path / "sync.pcf"
    path.write_text(SYNC_SRC)
    return str(path)


def test_analyze_budget_exhaustion_exits_2(sync_file, capsys):
    """Regression for silent non-convergence: an exhausted budget must be
    a loud, typed failure — distinct exit code plus an error: line."""
    assert main(["analyze", sync_file, "--max-passes", "1"]) == 2
    captured = capsys.readouterr()
    err = captured.err
    assert err.startswith("error: analysis did not converge:")
    assert "pass budget 1 exceeded" in err
    assert "passes" in err and "updates" in err  # stats detail, not just "failed"


def test_analyze_generous_budget_is_fine(sync_file, capsys):
    assert main(["analyze", sync_file, "--max-passes", "500"]) == 0
    assert "converged" in capsys.readouterr().out


def test_report_degrades_instead_of_failing(sync_file, capsys):
    assert main(["report", sync_file, "--max-passes", "1"]) == 0
    out = capsys.readouterr().out
    assert "degradation: degraded to level 2 (conservative)" in out


def test_report_no_degrade_exits_2(sync_file, capsys):
    assert main(["report", sync_file, "--max-passes", "1", "--no-degrade"]) == 2
    assert "error: analysis did not converge" in capsys.readouterr().err


def test_missing_file_exits_1(capsys):
    assert main(["check", "no-such-file.pcf"]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_os_error_exits_1(tmp_path, capsys):
    # Reading a directory raises IsADirectoryError (an OSError).
    assert main(["analyze", str(tmp_path)]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_invariant_violation_exits_3(program_file, capsys, monkeypatch):
    from repro.pfg.validate import PFGInvariantError
    from repro.tools import cli

    def boom(*args, **kwargs):
        raise PFGInvariantError(["fork (2) without matching join"])

    monkeypatch.setattr(cli, "_analyze", boom)
    assert main(["analyze", program_file]) == 3
    err = capsys.readouterr().err
    assert err.startswith("error: graph invariant violation:")
    assert "fork (2)" in err


def test_runtime_error_exits_2(program_file, capsys, monkeypatch):
    from repro.tools import cli

    def boom(*args, **kwargs):
        raise RuntimeError("snapshot cap exceeded")

    monkeypatch.setattr(cli, "_analyze", boom)
    assert main(["analyze", program_file]) == 2
    assert "error: snapshot cap exceeded" in capsys.readouterr().err


# -- check command ---------------------------------------------------------


def test_check_passes_on_sound_program(sync_file, capsys):
    assert main(["check", sync_file, "--runs", "3"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("self-check PASS: 3 runs against the synch system")


def test_check_reports_degradation(tmp_path, capsys):
    path = tmp_path / "dl.pcf"
    path.write_text(DEADLOCK_SRC)
    assert main(["check", str(path), "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "wait-without-post" in out  # ladder provenance is surfaced
    assert "deadlocked under seed(s)" in out


def test_check_detects_tampered_result(tmp_path, capsys, monkeypatch):
    """End-to-end corruption detection: a tampered analysis makes
    ``repro check`` exit 2 with an error: line."""
    import repro.robust.selfcheck as selfcheck_mod
    from repro import analyze
    from repro.interp import RandomScheduler, run_program
    from repro.robust import corrupt_result

    def tampered_analysis(program, **kwargs):
        sound = analyze(program)
        probe = run_program(
            program, RandomScheduler(seed=0, max_loop_iters=2), graph=sound.graph
        )
        tampered, _ = corrupt_result(sound, probe, seed=0)
        return tampered, None

    monkeypatch.setattr(selfcheck_mod, "analyze_with_degradation", tampered_analysis)
    path = tmp_path / "sync.pcf"
    path.write_text(SYNC_SRC)
    assert main(["check", str(path)]) == 2
    captured = capsys.readouterr()
    assert "self-check FAIL" in captured.out
    assert "escaped the static sets" in captured.err


# -- run: deadlock surface -------------------------------------------------


def test_run_reports_deadlock_with_blocked_events(tmp_path, capsys):
    """A deadlocked run must be loud on stdout AND in the exit code (4,
    the documented dynamic-failure code) — CI cannot scrape stdout."""
    path = tmp_path / "dl.pcf"
    path.write_text(DEADLOCK_SRC)
    assert main(["run", str(path)]) == 4
    out = capsys.readouterr().out
    assert "DEADLOCK (blocked on: e)" in out
    assert "a : 1" in out  # final values still printed for post-mortems


def test_run_clean_program_still_exits_0(program_file, capsys):
    assert main(["run", program_file]) == 0
    assert "DEADLOCK" not in capsys.readouterr().out


def test_profile_written_even_when_analysis_fails(sync_file, tmp_path, capsys):
    """Regression: the --profile JSONL used to be written only after a
    clean run — a budget trip lost the trace exactly when a post-mortem
    needed it.  It must now be exported with the failure stamped."""
    import json

    out_path = tmp_path / "fail.jsonl"
    assert main(["analyze", sync_file, "--max-passes", "1", "--profile", str(out_path)]) == 2
    records = [json.loads(line) for line in out_path.read_text().splitlines()]
    meta = records[0]
    assert meta["type"] == "meta" and meta["schema"] == "repro-obs/1"
    assert meta["failure"].startswith("BudgetExceeded:")
    assert "pass budget 1 exceeded" in meta["failure"]
    # The session still carries real content: counters at minimum.
    assert any(r["type"] == "counter" for r in records)
    assert "wrote" in capsys.readouterr().err


def test_profile_on_success_has_no_failure_stamp(program_file, tmp_path):
    import json

    out_path = tmp_path / "ok.jsonl"
    assert main(["analyze", program_file, "--profile", str(out_path)]) == 0
    meta = json.loads(out_path.read_text().splitlines()[0])
    assert "failure" not in meta


# -- graph/cssa go through the PFG cache -----------------------------------


def test_graph_command_populates_pfg_cache(program_file):
    from repro.dataflow.cache import GLOBAL_CACHE

    assert len(GLOBAL_CACHE) == 0
    assert main(["graph", program_file]) == 0
    assert len(GLOBAL_CACHE) == 1  # ("pfg", digest) entry landed


def test_cssa_command_counts_cache_metrics(program_file):
    from repro import obs
    from repro.dataflow.cache import GLOBAL_CACHE

    with obs.session() as sess:
        assert main(["cssa", program_file]) == 0
    assert len(GLOBAL_CACHE) == 1
    counters = sess.metrics.as_dict()["counters"]
    assert counters["cache.pfg.misses"] == 1  # counted, not bypassed


# -- batch command ---------------------------------------------------------


def test_batch_all_ok_exits_0(program_file, sync_file, capsys):
    assert main(["batch", program_file, sync_file]) == 0
    out = capsys.readouterr().out
    assert "batch summary: 2 task(s)" in out
    assert "2 ok" in out


def test_batch_glob_expansion(tmp_path, capsys):
    (tmp_path / "a.pcf").write_text(GOOD)
    (tmp_path / "b.pcf").write_text(SYNC_SRC)
    assert main(["batch", str(tmp_path / "*.pcf")]) == 0
    assert "2 task(s)" in capsys.readouterr().out


def test_batch_manifest_input(tmp_path, program_file, capsys):
    listing = tmp_path / "list.txt"
    listing.write_text(f"# corpus\n{program_file}\n\n{program_file}\n")  # dup deduped
    assert main(["batch", "--manifest", str(listing)]) == 0
    assert "1 task(s)" in capsys.readouterr().out


def test_batch_no_inputs_exits_1(capsys):
    assert main(["batch"]) == 1
    assert "error: no input programs" in capsys.readouterr().err


def test_batch_unmatched_glob_exits_1(tmp_path, capsys):
    assert main(["batch", str(tmp_path / "*.pcf")]) == 1
    assert "matched no files" in capsys.readouterr().err


def test_batch_missing_manifest_exits_1(tmp_path, capsys):
    assert main(["batch", "--manifest", str(tmp_path / "nope.txt")]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_batch_bad_task_recorded_not_fatal(tmp_path, program_file, capsys):
    bad = tmp_path / "bad.pcf"
    bad.write_text("program p\nx = = 1\nend\n")
    out_path = tmp_path / "batch.jsonl"
    assert main(["batch", program_file, str(bad), "--out", str(out_path)]) == 2
    out = capsys.readouterr().out
    assert "1 error" in out and "1 ok" in out  # healthy task completed
    from repro.batch import read_manifest

    records = read_manifest(out_path)
    tasks = [r for r in records if r["type"] == "task"]
    assert {t["status"] for t in tasks} == {"ok", "error"}
    assert records[-1]["type"] == "summary" and records[-1]["exit_code"] == 2


def test_batch_profile_merges_worker_counters(program_file, sync_file, tmp_path):
    import json

    out_path = tmp_path / "batch-profile.jsonl"
    assert main(["batch", program_file, sync_file, "--profile", str(out_path)]) == 0
    records = [json.loads(line) for line in out_path.read_text().splitlines()]
    counters = {r["name"]: r["value"] for r in records if r["type"] == "counter"}
    assert counters["batch.tasks"] == 2
    assert counters["batch.status.ok"] == 2
    # fleet-aggregated pipeline counters from the per-task sessions
    assert counters["solve.runs"] >= 2
    assert counters["cache.pfg.misses"] >= 2
