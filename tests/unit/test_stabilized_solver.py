"""Stabilized-solver internals: phase behaviour and cycle resolution."""

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_synch
from repro.reachdefs.preserved import compute_preserved
from repro.reachdefs.synch import SynchRDSystem

#: The period-2 oscillator distilled in tests/regression: loop around a
#: construct where the waiter redefines a variable that a concurrent
#: section also defines — with the SynchPass filter *disabled* the outer
#: rounds of the stabilized solver cycle, exercising the kill-intersection
#: resolution path.
OSCILLATOR = """program oscillator
event e
(1) v = 0
(2) loop
  clear(e)
  (3) parallel sections
    (4) section POSTER
      (4) post(e)
    (5) section WAITER
      (5) wait(e)
      (5) v = 1
    (6) section OTHER
      (6) v = 2
  (7) end parallel sections
(8) endloop
end"""


def test_cycle_resolution_engages_and_is_sound():
    graph = build_pfg(parse_program(OSCILLATOR))
    result = solve_synch(graph, solver="stabilized", filter_synch_pass=False)
    assert result.stats.converged
    assert "+cycle" in result.stats.order
    # Conservative resolution: both concurrent definitions reach the join
    # (the kill claim was only justified in half the cycle states).
    assert {d.name for d in result.reaching("7", "v")} >= {"v5", "v6"}


def test_cycle_resolution_not_needed_with_filter():
    graph = build_pfg(parse_program(OSCILLATOR))
    result = solve_synch(graph, solver="stabilized")
    assert result.stats.converged
    assert "+cycle" not in result.stats.order


def test_kill_state_roundtrip():
    graph = build_pfg(parse_program(OSCILLATOR))
    system = SynchRDSystem(graph, preserved=compute_preserved(graph))
    system.initialize()
    for node in graph.nodes:
        system.update(node)
    state = system.kill_state()
    assert set(state) == {"ACCKillin", "ACCKillout", "ForkKill", "SynchPass"}
    # meet with itself is identity; loading it back changes nothing
    met = {
        slot: {n: system.meet_values(v, v) for n, v in state[slot].items()}
        for slot in state
    }
    system.set_kill_state(met)
    for slot, values in state.items():
        for n, v in values.items():
            assert system.ops.equals(getattr(system, slot)[n], v)


def test_flow_and_kill_phase_partition_state():
    graph = build_pfg(parse_program(OSCILLATOR))
    system = SynchRDSystem(graph, preserved=compute_preserved(graph))
    system.initialize()
    nodes = graph.document_order()
    for _ in range(20):
        if not any(system.update_flow(n) for n in nodes):
            break
    flow_snapshot = {n: system.In[n] for n in nodes}
    # a kill sweep must not modify In/Out...
    for n in nodes:
        system.update_kill(n)
    assert all(system.ops.equals(system.In[n], flow_snapshot[n]) for n in nodes)
    # ...and reset_flow clears exactly the flow half
    killin_before = {n: system.ACCKillin[n] for n in nodes}
    system.reset_flow()
    assert all(system.ops.equals(system.In[n], system.ops.empty()) for n in nodes)
    assert all(system.ops.equals(system.ACCKillin[n], killin_before[n]) for n in nodes)
