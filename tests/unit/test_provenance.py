"""Unit tests for :mod:`repro.provenance` (record / explain / diagnose)."""

import pytest

from repro import analyze, obs, parse_program
from repro.provenance import (
    ensure_provenance,
    explain_block,
    explain_use,
    format_step,
)
from repro.provenance.record import Fact

SEQ = """program seq
(1) x = 1
(2) if c then
  (3) x = 2
(4) endif
(5) y = x
end
"""

PAR = """program par
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
(6) z = x
end
"""


def solve(src, **kw):
    kw.setdefault("record_provenance", True)
    kw.setdefault("cache", False)
    return analyze(parse_program(src), **kw)


def test_provenance_is_off_by_default():
    result = analyze(parse_program(SEQ), cache=False)
    assert result.provenance is None


def test_fact_keys_and_counts():
    result = solve(SEQ)
    prov = result.provenance
    counts = prov.counts()
    assert set(counts) <= {"gen", "flow", "survive", "unsupported"}
    assert counts["gen"] == len(result.graph.defs)  # every def is born once
    assert prov.unsupported() == []
    node = result.graph.node("1")
    (x1,) = [d for d in result.graph.defs if d.name == "x1"]
    j = prov.justification("Out", node, x1)
    assert j.kind == "gen"
    assert j.fact == Fact("Out", node, x1)
    assert j.fact.key == "Out:1:x1"


def test_chain_is_root_first_and_ends_at_query():
    result = solve(SEQ)
    node5 = result.graph.node("5")
    (x1,) = [d for d in result.graph.defs if d.name == "x1"]
    steps = result.provenance.chain("In", node5, x1)
    assert steps[0].kind == "gen"
    assert steps[-1].fact.node is node5
    # Conditional redefinition: x1 must survive the merge, not block (3).
    survived = [s.fact.node.name for s in steps if s.kind == "survive"]
    assert "3" not in survived


def test_unknown_fact_raises_keyerror():
    result = solve(SEQ)
    node3 = result.graph.node("3")
    (x1,) = [d for d in result.graph.defs if d.name == "x1"]
    # x1 is gen-killed inside block 3 (it redefines x), so no Out fact.
    with pytest.raises(KeyError):
        result.provenance.justification("Out", node3, x1)


def test_explain_use_lists_every_reaching_definition():
    result = solve(SEQ)
    node5 = result.graph.node("5")
    (use,) = [u for u in node5.uses() if u.var == "x"]
    text = explain_use(result, use)
    assert "2 reaching definition" in text
    assert "x1:" in text and "x3:" in text
    assert text.count("born in block") == 2


def test_explain_block_unknown_var_is_a_value_error():
    result = solve(SEQ)
    with pytest.raises(ValueError):
        explain_block(result, "5", var="nosuch")


def test_explain_block_unknown_block_is_a_key_error():
    result = solve(SEQ)
    with pytest.raises(KeyError):
        explain_block(result, "99")


def test_explain_block_var_at_entry_without_read():
    # Block 6 reads x; ask for y, which reaches but is not read there.
    result = solve(PAR)
    text = explain_block(result, "6", var="y")
    assert "y at block entry" in text


def test_format_step_kinds_are_total():
    result = solve(PAR)
    prov = result.provenance
    pairs = list(prov.items())[:50]
    assert pairs
    for fact, just in pairs:
        assert just.fact == fact
        line = format_step(just)
        assert isinstance(line, str) and line


def test_ensure_provenance_is_idempotent():
    result = analyze(parse_program(PAR), cache=False)
    first = ensure_provenance(result)
    assert ensure_provenance(result) is first


def test_canonical_is_json_like_and_stable():
    a = solve(PAR).provenance.canonical()
    b = solve(PAR).provenance.canonical()
    assert a == b
    for key, entry in a.items():
        assert isinstance(key, str)
        assert set(entry) <= {"kind", "source", "edge"}


def test_solver_hook_reports_metrics():
    with obs.session() as sess:
        solve(PAR)
    counters = {k: c.value for k, c in sess.metrics.counters.items()}
    assert counters.get("provenance.records", 0) == 1
    assert counters.get("provenance.facts", 0) > 0
    spans = [r["name"] for r in obs.span_records(sess.tracer)]
    assert "provenance-record" in spans


def test_cache_key_separates_provenance_runs():
    prog = parse_program(PAR)
    plain = analyze(prog)
    with_prov = analyze(prog, record_provenance=True)
    assert plain.provenance is None
    assert with_prov.provenance is not None
    # Warm hits return the matching variant.
    assert analyze(prog) is plain
    assert analyze(prog, record_provenance=True) is with_prov


@pytest.mark.parametrize("solver", ["round-robin", "worklist", "scc"])
def test_every_solver_finalizes_provenance(solver):
    result = solve(PAR, solver=solver)
    assert result.provenance is not None
    assert result.provenance.unsupported() == []
