"""DOT export tests."""

from repro.pfg import to_dot


def test_dot_contains_all_nodes_and_edges(fig3_graph):
    dot = to_dot(fig3_graph)
    assert dot.startswith('digraph "fig3"')
    for node in fig3_graph.nodes:
        assert f"n{node.id} [" in dot
    n_edges = sum(1 for _ in fig3_graph.edges())
    assert dot.count(" -> ") == n_edges


def test_edge_styles(fig3_graph):
    dot = to_dot(fig3_graph)
    assert "style=bold" in dot  # parallel edges
    assert "style=dashed" in dot  # sync edges


def test_fork_join_shapes(fig3_graph):
    dot = to_dot(fig3_graph)
    assert "shape=invhouse" in dot and "shape=house" in dot


def test_statements_optional(fig3_graph):
    with_stmts = to_dot(fig3_graph, include_stmts=True)
    without = to_dot(fig3_graph, include_stmts=False)
    assert "x = 7" in with_stmts
    assert "x = 7" not in without


def test_quotes_escaped(fig3_graph):
    fig3_graph.program_name = 'weird"name'
    try:
        dot = to_dot(fig3_graph)
        assert 'digraph "weird\\"name"' in dot
    finally:
        fig3_graph.program_name = "fig3"
