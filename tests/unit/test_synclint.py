"""Synchronization-lint tests."""

from repro.analysis.synclint import (
    SyncIssueKind,
    is_synchronization_correct,
    lint_synchronization,
)
from repro.lang import parse_program
from repro.paper import programs
from repro.pfg import build_pfg


def lint(src):
    return lint_synchronization(build_pfg(parse_program(src)))


def kinds(issues):
    return {i.kind for i in issues}


def test_clean_program_no_issues():
    src = """program p
event e
parallel sections
  section A
    post(e)
  section B
    wait(e)
end parallel sections
end"""
    assert lint(src) == []
    assert is_synchronization_correct(build_pfg(parse_program(src)))


def test_wait_without_post():
    src = """program p
event e
parallel sections
  section A
    x = 1
  section B
    wait(e)
end parallel sections
end"""
    issues = lint(src)
    assert kinds(issues) == {SyncIssueKind.WAIT_WITHOUT_POST}
    assert issues[0].event == "e"


def test_post_without_wait_informational():
    src = "program p\nevent e\npost(e)\nend"
    assert kinds(lint(src)) == {SyncIssueKind.POST_WITHOUT_WAIT}
    # informational only: still "correct"
    assert is_synchronization_correct(build_pfg(parse_program(src)))


def test_post_strictly_after_wait_deadlocks():
    src = """program p
event e
wait(e)
post(e)
end"""
    assert kinds(lint(src)) == {SyncIssueKind.WAIT_ONLY_ORDERED_AFTER}


def test_post_in_earlier_block_ok():
    src = "program p\nevent e\npost(e)\nwait(e)\nend"
    assert lint(src) == []


def test_paper_fig3_flags_stale_event():
    graph = programs.graph("fig3")
    issues = lint_synchronization(graph)
    assert kinds(issues) == {SyncIssueKind.STALE_EVENT}
    (issue,) = issues
    assert issue.event == "ev" and issue.node.name == "8"
    assert not is_synchronization_correct(graph)


def test_cleared_fig3_is_clean():
    graph = programs.graph("fig3c")
    assert lint_synchronization(graph) == []
    assert is_synchronization_correct(graph)


def test_clear_outside_loop_does_not_help():
    src = """program p
event e
clear(e)
loop
  parallel sections
    section A
      post(e)
    section B
      wait(e)
  end parallel sections
endloop
end"""
    assert kinds(lint(src)) == {SyncIssueKind.STALE_EVENT}


def test_wait_not_in_loop_needs_no_clear():
    src = """program p
event e
parallel sections
  section A
    post(e)
  section B
    wait(e)
end parallel sections
end"""
    assert lint(src) == []


def test_nested_loops_require_clear_in_innermost():
    src = """program p
event e
loop
  clear(e)
  loop
    parallel sections
      section A
        post(e)
      section B
        wait(e)
    end parallel sections
  endloop
endloop
end"""
    # cleared in the outer loop but not the inner one: still stale.
    assert SyncIssueKind.STALE_EVENT in kinds(lint(src))


def test_format_names_event_and_block():
    graph = programs.graph("fig3")
    (issue,) = lint_synchronization(graph)
    text = issue.format()
    assert "'ev'" in text and "(8)" in text and "Figure 3" in text


def test_generator_programs_are_lint_clean():
    from repro.synthetic import GeneratorConfig, generate_program

    blocking = {
        SyncIssueKind.WAIT_WITHOUT_POST,
        SyncIssueKind.WAIT_ONLY_ORDERED_AFTER,
        SyncIssueKind.STALE_EVENT,
    }
    for seed in range(25):
        prog = generate_program(seed, GeneratorConfig(target_stmts=30, p_parallel=0.4, p_sync=0.8))
        issues = lint_synchronization(build_pfg(prog))
        assert not [i for i in issues if i.kind in blocking], (seed, [i.format() for i in issues])
