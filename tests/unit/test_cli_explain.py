"""CLI tests for ``explain``, ``races`` and ``obs report``."""

import json

import pytest

from repro.tools.cli import main

RACY = """program racy
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) x = 3
(5) end parallel sections
(6) y = x
end
"""

SYNC = """program synced
event ev
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 3
    (3) post(ev)
  (4) section B
    (4) wait(ev)
    (4) y = x
(5) end parallel sections
end
"""


@pytest.fixture
def racy_file(tmp_path):
    p = tmp_path / "racy.pcf"
    p.write_text(RACY)
    return str(p)


@pytest.fixture
def sync_file(tmp_path):
    p = tmp_path / "sync.pcf"
    p.write_text(SYNC)
    return str(p)


# -- explain ----------------------------------------------------------------


def test_explain_renders_chains(sync_file, capsys):
    assert main(["explain", sync_file, "--stmt", "4", "--var", "x"]) == 0
    out = capsys.readouterr().out
    assert "born in block (3): x = 3" in out
    assert "sync edge post(ev) → wait(ev)" in out


def test_explain_unknown_block_exits_1(sync_file, capsys):
    assert main(["explain", sync_file, "--stmt", "42"]) == 1
    err = capsys.readouterr().err
    assert "no block '42'" in err and "blocks:" in err


def test_explain_unknown_var_exits_1(sync_file, capsys):
    assert main(["explain", sync_file, "--stmt", "4", "--var", "zz"]) == 1
    assert "error:" in capsys.readouterr().err


def test_explain_scc_matches_stabilized(sync_file, capsys):
    assert main(["explain", sync_file, "--stmt", "4", "--var", "x"]) == 0
    stabilized = capsys.readouterr().out
    assert main(["explain", sync_file, "--stmt", "4", "--var", "x",
                 "--solver", "scc"]) == 0
    assert capsys.readouterr().out == stabilized


def test_explain_missing_file_exits_1(capsys):
    assert main(["explain", "/no/such/file.pcf", "--stmt", "1"]) == 1


# -- races ------------------------------------------------------------------


def test_races_reports_without_chains_by_default(racy_file, capsys):
    assert main(["races", racy_file]) == 0
    out = capsys.readouterr().out
    assert "race of 'x'" in out
    assert "because:" not in out


def test_races_explain_attaches_chains(racy_file, capsys):
    assert main(["races", racy_file, "--explain"]) == 0
    out = capsys.readouterr().out
    assert "race of 'x'" in out
    assert "x3 reaches (5) because:" in out
    assert "born in block (3): x = 2" in out
    assert "may execute concurrently" in out


def test_races_clean_program(sync_file, tmp_path, capsys):
    clean = tmp_path / "clean.pcf"
    clean.write_text("program p\n(1) x = 1\n(2) y = x\nend\n")
    assert main(["races", str(clean)]) == 0
    assert "no anomalies found" in capsys.readouterr().out


def test_races_all_includes_multiple_values(tmp_path, capsys):
    src = """program m
(1) c = 1
(2) if p then
  (3) c = 2
(4) endif
(5) parallel sections
  (6) section A
    (6) x = c
  (7) section B
    (7) y = 1
(8) end parallel sections
end
"""
    p = tmp_path / "m.pcf"
    p.write_text(src)
    assert main(["races", str(p)]) == 0
    base = capsys.readouterr().out
    assert main(["races", str(p), "--all"]) == 0
    full = capsys.readouterr().out
    assert "multiple-values" not in base
    assert "multiple-values" in full


# -- obs report -------------------------------------------------------------


def make_profile(tmp_path, racy_file):
    out = tmp_path / "prof.jsonl"
    assert main(["analyze", racy_file, "--profile", str(out)]) == 0
    return str(out)


def test_obs_report_end_to_end(tmp_path, racy_file, capsys):
    prof = make_profile(tmp_path, racy_file)
    base = tmp_path / "base.json"
    assert main(["obs", "report", prof, "--json", str(base)]) == 0
    out = capsys.readouterr().out
    assert "obs report: 1 file(s)" in out
    data = json.loads(base.read_text())
    assert data["schema"] == "repro-obs-report/1"

    # Against its own baseline: pass.
    assert main(["obs", "report", prof, "--baseline", str(base)]) == 0
    assert "baseline check passed" in capsys.readouterr().out

    # Tampered baseline: regression, exit 2.
    data["counters"] = {k: 0 for k in data["counters"]}
    base.write_text(json.dumps(data))
    assert main(["obs", "report", prof, "--baseline", str(base)]) == 2
    captured = capsys.readouterr()
    assert "baseline regressions:" in captured.out
    assert "regression(s)" in captured.err


def test_obs_report_determinism(tmp_path, racy_file, capsys):
    prof = make_profile(tmp_path, racy_file)
    capsys.readouterr()
    assert main(["obs", "report", prof]) == 0
    first = capsys.readouterr().out
    assert main(["obs", "report", prof]) == 0
    assert capsys.readouterr().out == first


def test_obs_report_bad_input_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("nope\n")
    assert main(["obs", "report", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_obs_report_bad_baseline_exits_1(tmp_path, racy_file, capsys):
    prof = make_profile(tmp_path, racy_file)
    missing = tmp_path / "missing.json"
    assert main(["obs", "report", prof, "--baseline", str(missing)]) == 1
    assert "error:" in capsys.readouterr().err
