"""Live-variable analysis tests."""

from repro.analysis.liveness import solve_liveness
from repro.lang import parse_program
from repro.pfg import build_pfg


def live(src, **kw):
    graph = build_pfg(parse_program(src))
    return graph, solve_liveness(graph, **kw)


def test_straightline_liveness():
    g, r = live("program p\n(1) x = 1\n(2) y = x\n(3) z = y\nend")
    assert r.LiveIn("2") == {"x"}
    assert r.LiveIn("3") == {"y"}
    assert r.LiveOut("3") == frozenset()


def test_use_before_def_in_block():
    g, r = live("program p\n(1) x = 1\n(2) y = x\n(2) x = 2\nend")
    assert "x" in r.LiveIn("2")  # read before the redefinition


def test_def_before_use_masks():
    g, r = live("program p\n(1) x = 1\n(2) x = 5\n(2) y = x\nend")
    # x is (re)defined at the top of block 2 before its use there.
    assert "x" not in r.LiveIn("2")


def test_branch_condition_is_a_use():
    g, r = live("program p\n(1) c = 1\n(2) if c > 0 then\n(3) x = 1\nendif\nend")
    assert "c" in r.LiveIn("2")


def test_loop_keeps_carried_variables_live():
    g, r = live("program p\n(1) s = 0\n(2) loop\n(3) s = s + 1\n(4) endloop\nend")
    assert "s" in r.LiveIn("2")
    assert "s" in r.LiveOut("4")  # live around the back edge


def test_join_liveness_flows_into_every_section():
    src = """program p
(1) a = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = 3
(5) end parallel sections
(5) z = x + y
end"""
    g, r = live(src)
    # x and y are read after the join: live out of both section exits.
    assert {"x", "y"} <= r.LiveOut("3")
    assert {"x", "y"} <= r.LiveOut("4")
    # a is never read: dead everywhere.
    assert all("a" not in r.LiveIn(n.name) for n in g.nodes)


def test_sync_edge_carries_liveness_to_poster():
    src = """program p
event e
(1) w = 1
(2) parallel sections
  (3) section A
    (3) w = 2
    (3) post(e)
  (4) section B
    (4) wait(e)
    (4) y = w
(5) end parallel sections
end"""
    g, r = live(src)
    # w is read in the waiter; its value may come from the poster's copy,
    # so w is live out of the post block.
    assert "w" in r.LiveOut("3")


def test_observable_at_exit_seed():
    g1, r1 = live("program p\n(1) x = 1\nend")
    assert not r1.is_live_at_exit("x")
    g2, r2 = live("program p\n(1) x = 1\nend", observable_at_exit=["x"])
    assert r2.is_live_at_exit("x")
    assert "x" in r2.LiveOut("1")


def test_monotone_unique_fixpoint_any_order():
    from repro.analysis.liveness import LivenessSystem
    from repro.dataflow.solver import solve_round_robin

    src = """program p
(1) a = 1
(2) loop
  (3) parallel sections
    (4) section A
      (4) a = a + 1
    (5) section B
      (5) b = a
  (6) end parallel sections
(7) endloop
end"""
    graph = build_pfg(parse_program(src))
    base = LivenessSystem(graph)
    solve_round_robin(base, base.nodes())
    other = LivenessSystem(graph)
    solve_round_robin(other, graph.document_order())  # pessimal direction
    assert base.live_in == other.live_in
    assert base.live_out == other.live_out


def test_liveness_converges(fig3_graph):
    r = solve_liveness(fig3_graph)
    assert r.stats.converged
    # y feeds z=y*7 / z=y*54 inside the loop: live at the loop header.
    assert "y" in r.LiveIn("1")
