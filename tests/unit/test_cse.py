"""Common-subexpression elimination client tests."""

from repro import analyze
from repro.analysis import find_common_subexpressions
from repro.lang import parse_program


def cses(src):
    return find_common_subexpressions(analyze(parse_program(src)))


def test_simple_cse_found():
    found = cses("program p\n(1) a=1\n(1) b=2\n(2) x = a + b\n(3) y = a + b\nend")
    assert len(found) == 1
    c = found[0]
    assert c.earlier.name == "x2" and c.later.name == "y3"


def test_operand_redefined_blocks_cse():
    found = cses("program p\n(1) a=1\n(2) x = a + 1\n(3) a = 5\n(4) y = a + 1\nend")
    assert found == []


def test_target_redefined_blocks_reuse():
    found = cses("program p\n(1) a=1\n(2) x = a + 1\n(3) x = 0\n(4) y = a + 1\nend")
    assert found == []


def test_trivial_rhs_ignored():
    assert cses("program p\n(1) a=1\n(2) x = a\n(3) y = a\nend") == []


def test_cse_across_parallel_construct():
    # Section B recomputes what the pre-fork block computed.
    src = """program p
(1) a = 1
(2) x = a * 2
parallel sections
  section A
    (3) u = 7
  section B
    (4) y = a * 2
(5) end parallel sections
end"""
    found = cses(src)
    assert len(found) == 1
    assert found[0].earlier.name == "x2" and found[0].later.name == "y4"


def test_concurrent_computations_not_cse():
    src = """program p
(1) a = 1
parallel sections
  section A
    (2) x = a * 2
  section B
    (3) y = a * 2
end parallel sections
end"""
    # x and y compute the same value but run concurrently: no ordering,
    # no reuse.
    assert cses(src) == []


def test_free_variable_expressions_match():
    found = cses("program p\n(1) x = input + 1\n(2) y = input + 1\nend")
    assert len(found) == 1


def test_different_expressions_not_matched():
    assert cses("program p\n(1) a=1\n(2) x = a + 1\n(3) y = a + 2\nend") == []


def test_format():
    found = cses("program p\n(1) a=1\n(2) x = a + 1\n(3) y = a + 1\nend")
    assert "reuse x2" in found[0].format()
