"""Campaign driver (:mod:`repro.fuzz.driver`) and the ``repro fuzz``
CLI: seed specs, manifests, budgets, drills, counters, exit codes.
"""

import json

import pytest

from repro.fuzz import (
    DRILL_SHRINK_FRACTION,
    SCHEMA,
    FuzzOptions,
    case_generator_config,
    parse_seed_spec,
    read_fuzz_manifest,
    run_campaign,
    run_case,
    run_drill,
)
from repro.tools.cli import main as cli_main


def test_parse_seed_spec():
    assert parse_seed_spec("0:4") == (0, 1, 2, 3, 4)  # inclusive
    assert parse_seed_spec("7") == (7,)
    assert parse_seed_spec("0:2,9,20:21") == (0, 1, 2, 9, 20, 21)
    assert parse_seed_spec("3,3,3") == (3,)  # deduplicated, order kept
    with pytest.raises(ValueError):
        parse_seed_spec("5:1")
    with pytest.raises(ValueError):
        parse_seed_spec("")


def test_case_generator_config_is_deterministic_and_varied():
    cfgs = [case_generator_config(s, 30) for s in range(12)]
    assert cfgs == [case_generator_config(s, 30) for s in range(12)]
    assert len({c.target_stmts for c in cfgs}) > 1
    assert {c.with_sync for c in cfgs} == {True, False}


def test_clean_campaign_and_manifest(tmp_path):
    out = tmp_path / "fuzz.jsonl"
    report = run_campaign(FuzzOptions(seeds=tuple(range(6))), manifest_path=out)
    assert report.exit_code == 0
    assert len(report.cases()) == 6
    assert not report.failures()

    records = read_fuzz_manifest(out)
    assert records[0]["schema"] == SCHEMA
    assert records[0]["options"]["seeds"] == list(range(6))
    cases = [r for r in records if r["type"] == "case"]
    assert [c["seed"] for c in cases] == list(range(6))
    assert all(c["status"] == "ok" and c["digest"] for c in cases)
    summary = records[-1]
    assert summary["type"] == "summary"
    assert summary["exit_code"] == 0
    assert summary["by_status"] == {"ok": 6}


def test_campaign_is_deterministic_modulo_wall_times(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    opts = FuzzOptions(seeds=tuple(range(5)))
    run_campaign(opts, manifest_path=a)
    run_campaign(opts, manifest_path=b)

    def strip(path):
        out = []
        for record in read_fuzz_manifest(path):
            record.pop("wall_s", None)
            out.append(json.dumps(record, sort_keys=True))
        return out

    assert strip(a) == strip(b)


def test_failing_oracle_shrinks_and_pins(monkeypatch, tmp_path):
    """A planted always-failing oracle drives the full failure path:
    case marked failed, program shrunk, snippet attached, exit code 2."""
    from repro.fuzz import oracles as oracles_mod

    name = "always-fails"

    @oracles_mod.register(name)
    def _always_fails(program, cfg):
        return [oracles_mod.OracleFailure(name, "planted failure")]

    try:
        out = tmp_path / "fail.jsonl"
        report = run_campaign(
            FuzzOptions(seeds=(0,), oracles=(name,)), manifest_path=out
        )
        assert report.exit_code == 2
        [case] = report.cases()
        assert case["status"] == "failed"
        assert case["failures"] == [{"oracle": name, "detail": "planted failure"}]
        shrunk = case["shrunk"]
        assert shrunk["stmts"] <= case["stmts"]
        assert "def test_fuzz_seed0_always_fails" in shrunk["snippet"]
        assert "program" in shrunk["source"]
        summary = read_fuzz_manifest(out)[-1]
        assert summary["exit_code"] == 2
    finally:
        del oracles_mod.ORACLES[name]


def test_no_shrink_option(tmp_path):
    from repro.fuzz import oracles as oracles_mod

    name = "always-fails-2"

    @oracles_mod.register(name)
    def _always_fails(program, cfg):
        return [oracles_mod.OracleFailure(name, "planted")]

    try:
        report = run_campaign(
            FuzzOptions(seeds=(0,), oracles=(name,), shrink_failures=False)
        )
        assert report.exit_code == 2
        assert report.cases()[0]["shrunk"] is None
    finally:
        del oracles_mod.ORACLES[name]


def test_statement_budget_skips_remaining_seeds():
    report = run_campaign(FuzzOptions(seeds=tuple(range(10)), max_stmts=1))
    cases = report.cases()
    assert cases[0]["status"] == "ok"  # first case always runs
    skipped = report.skipped()
    assert skipped and all("budget" in r["reason"] for r in skipped)
    # Budget exhaustion is not a failure.
    assert report.exit_code == 0


def test_drill_detects_and_shrinks():
    record = run_drill(0, FuzzOptions())
    assert record["status"] == "ok", record["failures"]
    assert record["shrunk"]["reduction"] <= DRILL_SHRINK_FRACTION
    # Deterministic for the fixed seed.
    again = run_drill(0, FuzzOptions())
    assert again["shrunk"]["source"] == record["shrunk"]["source"]


def test_run_case_record_shape():
    record = run_case(0, FuzzOptions())
    assert record["type"] == "case"
    assert record["status"] == "ok"
    assert record["stmts"] >= 1
    assert set(record["oracles"]) == {
        "solver-agreement",
        "system-bounds",
        "pipeline-invariants",
        "metamorphic",
        "provenance-chains",
        "incremental-equivalence",
    }


def test_campaign_metrics():
    from repro import obs

    with obs.session() as session:
        run_campaign(FuzzOptions(seeds=(0, 1)))
        counters = {k: c.value for k, c in session.metrics.counters.items()}
    assert counters.get("fuzz.cases") == 2
    assert counters.get("fuzz.status.ok") == 2
    assert counters.get("fuzz.oracle_runs", 0) >= 2


def test_read_fuzz_manifest_rejects_other_schemas(tmp_path):
    path = tmp_path / "not.jsonl"
    path.write_text(json.dumps({"type": "meta", "schema": "repro-batch/1"}) + "\n")
    with pytest.raises(ValueError, match="repro-fuzz/1"):
        read_fuzz_manifest(path)


# -- CLI ---------------------------------------------------------------------


def test_cli_fuzz_clean(tmp_path, capsys):
    out = tmp_path / "cli.jsonl"
    code = cli_main(["fuzz", "--seeds", "0:3", "--out", str(out)])
    captured = capsys.readouterr()
    assert code == 0
    assert "4 case(s)" in captured.out
    assert read_fuzz_manifest(out)[-1]["exit_code"] == 0


def test_cli_fuzz_bad_seed_spec(capsys):
    assert cli_main(["fuzz", "--seeds", "9:1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_fuzz_unknown_oracle(capsys):
    assert cli_main(["fuzz", "--seeds", "0", "--oracles", "nope"]) == 1
    assert "nope" in capsys.readouterr().err


def test_cli_fuzz_check_mode_runs_drills(tmp_path):
    out = tmp_path / "check.jsonl"
    code = cli_main(
        ["fuzz", "--seeds", "0:1", "--check", "--drills", "1", "--out", str(out)]
    )
    assert code == 0
    records = read_fuzz_manifest(out)
    drills = [r for r in records if r["type"] == "drill"]
    assert len(drills) == 1 and drills[0]["status"] == "ok"
    assert "dynamic-selfcheck" in records[0]["options"]["oracles"]
