"""Unit: the incremental diff/engine internals, plus the cache-identity
audit — region-row reuse must be valid across every wall-clock-only knob
(dense ``workers`` above all), so no such knob may appear in a cache key."""

from repro import analyze
from repro.dataflow.cache import AnalysisCache, GLOBAL_CACHE, MISSING
from repro.dataflow.dense import DenseConfig
from repro.fuzz.oracles import default_oracle_names
from repro.incremental import (
    IncrementalBase,
    incremental_analyze,
    lookup_base,
    match_graphs,
    store_base,
)
from repro.lang import ast
from repro.pfg import build_pfg
from repro.synthetic import workloads


def _edited_diamond(n=8, value=321):
    p = workloads.diamond_chain(n)
    p.body[-1].then_body[0] = ast.Assign(target="x", expr=ast.IntLit(value))
    return p


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def test_match_identical_programs_trusts_everything():
    g1 = build_pfg(workloads.diamond_chain(6))
    g2 = build_pfg(workloads.diamond_chain(6))
    match = match_graphs(g1, g2)
    assert match.n_matched == len(g2.nodes)
    assert not match.dirty_nodes
    # The def map is a bijection over the full tables.
    assert len(match.def_map) == len(list(g1.defs))


def test_match_localizes_single_edit():
    g1 = build_pfg(workloads.diamond_chain(8))
    g2 = build_pfg(_edited_diamond(8))
    match = match_graphs(g1, g2)
    # Only the edited block and nodes whose environment it perturbs are
    # dirty; the replaced def survives in the def map (same target var),
    # so bystander x-definers stay trusted.
    assert 0 < len(match.dirty_nodes) <= 3
    assert match.n_matched >= len(g2.nodes) - 3


def test_match_name_renumbering_is_immaterial():
    """Inserting a statement early renumbers every downstream block name;
    content-based matching must still pair the unchanged suffix."""
    p1 = workloads.diamond_chain(8)
    p2 = workloads.diamond_chain(8)
    p2.body.insert(1, ast.Assign(target="fresh_v", expr=ast.IntLit(1)))
    match = match_graphs(build_pfg(p1), build_pfg(p2))
    assert match.n_matched > len(build_pfg(p1).nodes) // 2


def test_removed_definition_dirties_every_bystander_killer():
    """Deleting a def of x changes other_defs of every other x-definer —
    they must all be demoted to dirty even though their text is unchanged."""
    p1 = workloads.diamond_chain(8)
    p2 = workloads.diamond_chain(8)
    # Retarget: removes a def of x, adds a def of z.
    p2.body[3].then_body[0] = ast.Assign(target="z", expr=ast.IntLit(0))
    match = match_graphs(build_pfg(p1), build_pfg(p2))
    x_definers = {
        n for n in match.new.nodes if any(d.var == "x" for d in n.defs)
    }
    assert x_definers <= match.dirty_nodes


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


def test_incremental_stats_and_metrics_surface():
    base = IncrementalBase.from_result(
        workloads.diamond_chain(8),
        analyze(workloads.diamond_chain(8), solver="scc", cache=False),
    )
    outcome = incremental_analyze(base, _edited_diamond(8), cache=False)
    stats = outcome.result.stats.as_dict()
    assert stats["regions_reused"] == outcome.regions_reused > 0
    assert stats["regions_solved"] == outcome.regions_solved > 0
    assert outcome.result.stats.order == "incr/scc"
    stamp = outcome.stamp()
    assert stamp["regions_resolved"] == outcome.regions_solved
    assert stamp["fallback"] is None


def test_fullscratch_stats_keep_zero_region_counters():
    """as_dict gating: ordinary solves must not grow new keys (golden
    stats records elsewhere depend on this)."""
    result = analyze(workloads.diamond_chain(4), solver="scc", cache=False)
    assert "regions_reused" not in result.stats.as_dict()


def test_store_and_lookup_base_roundtrip():
    program = workloads.diamond_chain(5)
    result = analyze(program, solver="scc", cache=False)
    base = store_base(program, result)
    assert base is not None
    hit = lookup_base(base.digest)
    assert hit is base
    assert lookup_base("missing-digest") is None


# ---------------------------------------------------------------------------
# Cache identity audit (the DenseConfig.workers contract)
# ---------------------------------------------------------------------------


def test_dense_key_excludes_workers():
    assert DenseConfig(workers=1).key() == DenseConfig(workers=8).key()


def test_incr_base_key_has_no_option_components():
    """The incremental base is keyed by program digest alone: retained
    rows are backend-independent frozensets and solver choice never
    changes them, so one base must serve every configuration."""
    cache = AnalysisCache()
    program = workloads.diamond_chain(5)
    # Base produced under one configuration…
    result = analyze(program, solver="scc", backend="set", cache=False)
    base = store_base(program, result, cache=cache)
    assert cache.get(("incr", base.digest), MISSING) is base
    # …is found by lookups regardless of the requester's configuration:
    # the key has no backend/solver/dense/workers components at all.
    assert lookup_base(base.digest, cache=cache) is base


def test_region_row_reuse_across_region_workers():
    """Satellite contract: differing --region-workers values must share
    the same retained base AND produce identical incremental results —
    workers are wall-clock-only."""
    program = workloads.diamond_chain(8)
    base = IncrementalBase.from_result(
        program, analyze(program, solver="scc", cache=False)
    )
    edited = _edited_diamond(8)
    outcomes = [
        incremental_analyze(
            base, edited, cache=False,
            dense=DenseConfig(mode="auto", workers=w),
        )
        for w in (1, 4)
    ]
    a, b = outcomes
    assert a.regions_reused == b.regions_reused >= 1
    for n in a.result.graph.nodes:
        for slot in ("In", "Out"):
            assert a.result.set_names(slot, n.name) == b.result.set_names(slot, n.name)


def test_analyze_cache_hits_across_workers():
    """The full-result analyze cache already ignores workers via
    DenseConfig.key(); pin it so the knob never leaks back in."""
    GLOBAL_CACHE.clear()
    program = workloads.diamond_chain(5)
    r1 = analyze(program, solver="scc", dense=DenseConfig(mode="auto", workers=1))
    r2 = analyze(program, solver="scc", dense=DenseConfig(mode="auto", workers=4))
    assert r1 is r2  # second call is a cache hit, not a re-solve


def test_serve_key_audit_no_wallclock_knobs():
    """Audit the serve record key construction: every component is
    result-affecting (source, backend, preserved, solver, max_passes
    bounds the iteration, level picks the system, base_digest switches
    the delta path); wall-clock-only knobs (deadline_s, workers) must
    stay out.  Guarded by reading the worker source so a drive-by edit
    shows up here."""
    import inspect

    from repro.serve import worker

    src = inspect.getsource(worker.execute_request)
    key_block = src.split("serve_key = (")[1].split(")")[0]
    assert "deadline" not in key_block
    assert "workers" not in key_block
    for component in ("source_digest", "backend", "preserved", "solver",
                      "max_passes", "level", "base_digest"):
        assert component in key_block


def test_incremental_equivalence_in_default_battery():
    assert "incremental-equivalence" in default_oracle_names()
