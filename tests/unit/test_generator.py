"""Synthetic program generator tests."""

from repro.lang import ast, parse_program, pretty
from repro.pfg import build_pfg, validate_pfg
from repro.synthetic import GeneratorConfig, generate_program


def test_deterministic_for_seed():
    a = generate_program(7)
    b = generate_program(7)
    assert ast.structurally_equal(a, b)


def test_different_seeds_differ():
    a = generate_program(1)
    b = generate_program(2)
    assert not ast.structurally_equal(a, b)


def test_generated_programs_parse_back():
    for seed in range(10):
        prog = generate_program(seed)
        again = parse_program(pretty(prog))
        assert ast.structurally_equal(prog, again)


def test_generated_graphs_validate():
    for seed in range(20):
        validate_pfg(build_pfg(generate_program(seed)))


def test_target_size_roughly_respected():
    small = generate_program(3, GeneratorConfig(target_stmts=5))
    big = generate_program(3, GeneratorConfig(target_stmts=80))
    n_small = sum(1 for _ in small.walk())
    n_big = sum(1 for _ in big.walk())
    assert n_big > n_small


def test_sync_pairs_are_wired_correctly():
    cfg = GeneratorConfig(target_stmts=60, p_parallel=0.5, p_sync=1.0)
    found_any = False
    for seed in range(20):
        prog = generate_program(seed, cfg)
        waits = [s for s in prog.walk() if isinstance(s, ast.Wait)]
        posts = [s for s in prog.walk() if isinstance(s, ast.Post)]
        clears = [s for s in prog.walk() if isinstance(s, ast.Clear)]
        if waits:
            found_any = True
        for w in waits:
            assert any(p.event == w.event for p in posts), "wait without post"
            assert any(c.event == w.event for c in clears), "wait without clear"
        assert set(prog.events) == {s.event for s in posts} | {s.event for s in waits}
    assert found_any


def test_no_while_loops_generated():
    for seed in range(20):
        prog = generate_program(seed, GeneratorConfig(target_stmts=50))
        assert not any(isinstance(s, ast.While) for s in prog.walk())


def test_no_sync_config():
    cfg = GeneratorConfig(target_stmts=60, with_sync=False, p_parallel=0.5)
    for seed in range(10):
        prog = generate_program(seed, cfg)
        assert prog.events == []


def test_sections_have_unique_names():
    for seed in range(10):
        prog = generate_program(seed, GeneratorConfig(target_stmts=60, p_parallel=0.6))
        for stmt in prog.walk():
            if isinstance(stmt, ast.ParallelSections):
                names = [s.name for s in stmt.sections]
                assert len(set(names)) == len(names)


def test_custom_name():
    assert generate_program(0, name="custom").name == "custom"
