"""Graceful-degradation ladder: sound fallbacks instead of failures."""

import pytest

from repro import obs, parse_program
from repro.driver import optimize
from repro.interp import RandomScheduler, run_program
from repro.interp.trace import check_soundness
from repro.paper import programs
from repro.pfg import EdgeKind, NodeKind, ParallelFlowGraph, build_pfg
from repro.reachdefs import solve_conservative, solve_synch
from repro.robust import (
    DegradationLevel,
    ResourceBudget,
    analyze_with_degradation,
)

SYNC = """program sync
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) data = x + 1
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = data
  (5) end parallel sections
  (5) z = y
end program
"""


def _assert_sound(result, program, seeds=range(5)):
    for seed in seeds:
        run = run_program(
            program, RandomScheduler(seed=seed, max_loop_iters=2), graph=result.graph
        )
        assert check_soundness(result, run) == []


# -- no degradation on healthy input --------------------------------------


def test_full_precision_returns_no_record():
    prog = parse_program(SYNC)
    result, record = analyze_with_degradation(prog)
    assert record is None
    assert result.system == "synch"
    # Identical to the undegraded analysis.
    direct = solve_synch(build_pfg(prog))
    assert {n.name: result.in_sets[n] for n in result.graph.nodes} == {
        n.name: direct.in_sets[n] for n in direct.graph.nodes
    }


# -- budget exhaustion → next rung, flagged, still sound ------------------


def test_budget_exhaustion_degrades_flagged_and_sound():
    prog = parse_program(SYNC)
    result, record = analyze_with_degradation(prog, budget=ResourceBudget(max_passes=1))
    assert record is not None
    assert record.level is DegradationLevel.CONSERVATIVE
    assert result.system == "conservative"
    assert "did not converge" in record.reason
    # The ladder tried full, then no-preserved, then fell to the floor.
    assert "full analysis did not converge" in record.reason
    assert "no-preserved analysis did not converge" in record.reason
    assert record.budget_spent["passes"] > 0
    # The fallback is still a sound over-approximation of every run.
    _assert_sound(result, prog)


def test_degradation_record_shape():
    prog = parse_program(SYNC)
    _, record = analyze_with_degradation(prog, budget=ResourceBudget(max_passes=1))
    d = record.as_dict()
    assert d["level"] == 2 and d["level_name"] == "conservative"
    assert d["reason"] == record.reason
    assert set(d["budget_spent"]) == {"seconds", "passes", "updates"}
    text = record.format()
    assert text.startswith("degraded to level 2 (conservative):")
    assert "passes" in text


def test_generous_budget_means_no_degradation():
    prog = parse_program(SYNC)
    result, record = analyze_with_degradation(prog, budget=ResourceBudget(max_passes=1000))
    assert record is None and result.system == "synch"


# -- blocking synchronization lint → Preserved machinery abandoned --------


def test_stale_event_program_degrades_to_no_preserved():
    """The paper's Figure 3 caveat: a stale posting can release a wait
    early, so the Preserved-set assumption does not hold — the ladder
    keeps the synchronized system but with empty Preserved sets."""
    prog = parse_program(programs.SOURCES["fig3"])
    result, record = analyze_with_degradation(prog)
    assert record is not None
    assert record.level is DegradationLevel.NO_PRESERVED
    assert "stale-event" in record.reason
    assert result.system == "synch"
    # Empty Preserved everywhere ⇒ no synchronization kill is ever claimed.
    assert result.preserved is not None
    assert all(not s for s in result.preserved.preserved.values())
    _assert_sound(result, prog)


def test_preserved_none_request_skips_the_lint_gate():
    # Explicitly asking for preserved="none" is already the no-preserved
    # analysis; the ladder must not stamp a degradation record for it.
    prog = parse_program(programs.SOURCES["fig3"])
    result, record = analyze_with_degradation(prog, preserved="none")
    assert record is None
    assert result.preserved is not None
    assert all(not s for s in result.preserved.preserved.values())


# -- malformed graph → conservative floor ---------------------------------


def _broken_graph():
    g = ParallelFlowGraph("broken")
    entry = g.new_node(NodeKind.ENTRY)
    exit_ = g.new_node(NodeKind.EXIT)
    g.add_edge(entry, exit_, EdgeKind.SEQ)
    g.entry, g.exit = entry, exit_
    for n in g.nodes:
        g.register_name(n)
    orphan = g.new_node(NodeKind.BASIC)
    g.register_name(orphan)
    g.finalize_defs()
    return g


def test_invalid_graph_goes_straight_to_conservative():
    result, record = analyze_with_degradation(_broken_graph())
    assert record is not None
    assert record.level is DegradationLevel.CONSERVATIVE
    assert "malformed graph" in record.reason
    assert result.system == "conservative"


# -- the conservative floor itself ----------------------------------------


@pytest.mark.parametrize("key", sorted(programs.SOURCES))
def test_conservative_floor_is_sound_on_paper_programs(key):
    prog = parse_program(programs.SOURCES[key])
    result = solve_conservative(build_pfg(prog))
    assert result.stats.converged
    _assert_sound(result, prog, seeds=range(3))


def test_conservative_is_superset_of_precise():
    prog = parse_program(SYNC)
    graph = build_pfg(prog)
    precise = solve_synch(graph)
    floor = solve_conservative(graph)
    for n in graph.nodes:
        assert precise.in_sets[n] <= floor.in_sets[n]


# -- provenance reaches the driver and observability ----------------------


def test_optimize_stamps_degradation_and_renders_it():
    report = optimize(SYNC, budget=ResourceBudget(max_passes=1))
    assert report.degradation is not None
    assert report.degradation.level is DegradationLevel.CONSERVATIVE
    rendered = report.render()
    assert "degradation: degraded to level 2 (conservative)" in rendered
    assert any("degraded" in note for note in report.notes)


def test_optimize_no_degrade_raises():
    from repro.robust import NonConvergenceError

    with pytest.raises(NonConvergenceError):
        optimize(SYNC, budget=ResourceBudget(max_passes=1), degrade=False)


def test_degradation_metrics_emitted():
    prog = parse_program(SYNC)
    with obs.session() as sess:
        analyze_with_degradation(prog, budget=ResourceBudget(max_passes=1))
    counters = sess.metrics.as_dict()["counters"]
    assert counters["driver.degradations"] == 1
    assert counters["driver.degradations.level2"] == 1
