"""Oracle registry (:mod:`repro.fuzz.oracles`): clean programs pass every
oracle, seeded corruptions are detected, and the report/registry plumbing
behaves (crash containment, opt-in dynamic oracle, metrics).
"""

import pytest

from repro.fuzz.oracles import (
    DETERMINISTIC_SOLVERS,
    ORACLES,
    OracleConfig,
    OracleFailure,
    OracleReport,
    default_oracle_names,
    register,
    run_oracles,
    solver_agreement_mode,
)
from repro.lang import parse_program
from repro.synthetic import GeneratorConfig, generate_program

SYNC_PROGRAM = """program sync
  event e
  a = 1
  parallel sections
    section W
      wait(e)
      b = a
    section P
      a = 2
      post(e)
  end parallel sections
end program
"""

SEQ_PROGRAM = """program seq
  a = 1
  b = a
end program
"""


def test_registry_has_the_documented_oracles():
    assert set(default_oracle_names()) == {
        "solver-agreement",
        "system-bounds",
        "pipeline-invariants",
        "metamorphic",
        "provenance-chains",
        "incremental-equivalence",
    }
    assert set(default_oracle_names(dynamic=True)) == set(default_oracle_names()) | {
        "dynamic-selfcheck"
    }
    assert set(default_oracle_names()) <= set(ORACLES)


@pytest.mark.parametrize("seed", range(8))
def test_clean_generated_programs_pass_all_oracles(seed):
    program = generate_program(
        seed, GeneratorConfig(target_stmts=18, p_parallel=0.3), name=f"ok{seed}"
    )
    report = run_oracles(program, names=default_oracle_names(dynamic=True))
    assert report.ok, report.format()
    assert set(report.oracles_run) == set(default_oracle_names(dynamic=True))


def test_clean_handwritten_programs_pass():
    for src in (SYNC_PROGRAM, SEQ_PROGRAM):
        report = run_oracles(parse_program(src))
        assert report.ok, report.format()


def test_solver_agreement_mode():
    assert solver_agreement_mode(parse_program(SYNC_PROGRAM)) == "bounded"
    assert solver_agreement_mode(parse_program(SEQ_PROGRAM)) == "exact"
    assert DETERMINISTIC_SOLVERS == {"stabilized", "scc", "scc-dense"}


def test_unknown_oracle_name_raises():
    with pytest.raises(ValueError, match="no-such-oracle"):
        run_oracles(parse_program(SEQ_PROGRAM), names=("no-such-oracle",))


def test_oracle_crash_is_contained_as_failure():
    name = "crashy-test-oracle"

    @register(name)
    def _crashy(program, cfg):
        raise RuntimeError("boom")

    try:
        report = run_oracles(parse_program(SEQ_PROGRAM), names=(name,))
        assert not report.ok
        [failure] = report.failures
        assert failure.oracle == name
        assert "oracle crashed" in failure.detail and "boom" in failure.detail
    finally:
        del ORACLES[name]


def test_report_formatting_and_accessors():
    report = OracleReport(
        oracles_run=("a", "b"),
        failures=(
            OracleFailure("a", "first"),
            OracleFailure("a", "second"),
            OracleFailure("b", "third"),
        ),
    )
    assert not report.ok
    assert report.failing_oracles() == ("a", "b")
    text = report.format()
    assert "first" in text and "third" in text
    assert OracleReport(oracles_run=("a",), failures=()).ok


def test_dynamic_selfcheck_flags_injected_corruption():
    """End-to-end detection: corrupt a sound result the way the chaos
    drills do, and check the selfcheck machinery the oracle wraps flags
    it.  (The oracle itself recomputes the analysis, so corruption is
    injected at the verify layer.)"""
    from repro.fuzz.oracles import _solve_precise
    from repro.interp.interp import run_program
    from repro.interp.scheduler import RandomScheduler
    from repro.pfg import build_pfg
    from repro.robust.chaos import corrupt_result
    from repro.robust.selfcheck import verify_result

    program = generate_program(
        900_000, GeneratorConfig(target_stmts=60, n_vars=4, p_parallel=0.3, p_loop=0.1)
    )
    result = _solve_precise(build_pfg(program), "bitset")
    run = run_program(
        program, scheduler=RandomScheduler(seed=0, max_loop_iters=2), graph=result.graph
    )
    tampered, injected = corrupt_result(result, run, seed=0)
    violations, _ = verify_result(tampered, program, seeds=(0,))
    assert violations, f"corruption at {injected} went undetected"


def test_metamorphic_oracle_runs_all_mutators():
    from repro import obs

    program = generate_program(4, GeneratorConfig(target_stmts=20, p_parallel=0.4))
    with obs.session() as session:
        report = run_oracles(program, names=("metamorphic",))
        assert report.ok, report.format()
        counters = {k: c.value for k, c in session.metrics.counters.items()}
    assert counters.get("fuzz.oracle.metamorphic") == 1
    assert counters.get("fuzz.mutants", 0) >= 2


def test_oracle_config_defaults():
    cfg = OracleConfig()
    assert cfg.solvers == ("stabilized", "round-robin", "worklist", "scc", "scc-dense")
    assert cfg.backend == "bitset"
    assert cfg.dynamic_runs == 3
