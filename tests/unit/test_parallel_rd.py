"""Parallel reaching-definitions unit tests (paper §5)."""

import pytest

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_parallel, solve_sequential


def solve(src, **kw):
    return solve_parallel(build_pfg(parse_program(src)), **kw)


UNCONDITIONAL_KILL = """program p
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = 3
(5) end parallel sections
(5) z = x
end"""


def test_unconditional_kill_in_one_branch_kills_at_join():
    r = solve(UNCONDITIONAL_KILL)
    # The paper's core rule: x1 is killed because section A *always* runs.
    assert {d.name for d in r.reaching("5", "x")} == {"x3"}


def test_sequential_equations_differ_on_same_shape():
    # The same graph under the naive sequential equations keeps x1 — the
    # contrast that motivates the whole paper.
    g = build_pfg(parse_program(UNCONDITIONAL_KILL))
    r = solve_sequential(g)
    assert {d.name for d in r.reaching("5", "x")} == {"x1", "x3"}


def test_conditional_kill_does_not_kill():
    src = """program p
(1) x = 1
(2) parallel sections
  (3) section A
    (3) if c then
      (4) x = 2
    endif
  (5) section B
    (5) y = 3
(6) end parallel sections
end"""
    r = solve(src)
    assert {d.name for d in r.reaching("6", "x")} == {"x1", "x4"}


def test_concurrent_defs_both_reach_join():
    src = """program p
(1) b = 1
(2) parallel sections
  (3) section A
    (3) b = 2
  (4) section B
    (4) b = 3
(5) end parallel sections
end"""
    r = solve(src)
    assert {d.name for d in r.reaching("5", "b")} == {"b3", "b4"}


def test_parallel_kill_not_in_out():
    src = """program p
(1) b = 1
(2) parallel sections
  (3) section A
    (3) b = 2
    (3) u = b
  (4) section B
    (4) b = 3
(5) end parallel sections
end"""
    r = solve(src)
    # b4 is in ParallelKill(3): it never appears in Out(3).
    assert "b4" not in r.out_names("3")
    assert "b3" in r.out_names("3")


def test_section_does_not_see_sibling_defs():
    src = """program p
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
end"""
    r = solve(src)
    # Copy-in semantics: section B sees the fork-time x only.
    assert {d.name for d in r.reaching("4", "x")} == {"x1"}


def test_nested_construct_outer_kill_survives_inner_join(fig6_graph):
    r = solve_parallel(fig6_graph)
    # b1 is killed by section A (outer) and by B1 (inner); the nested
    # ForkKill plumbing must still record a1/b1 at the outer join.
    assert r.set_names("ACCKillout", "10") == {"a1", "b1"}


def test_forkkill_masked_by_out():
    # A def that reaches the join is not reported as killed even if the
    # fork's ForkKill contains it (ForkKill − Out at the join).
    src = """program p
(1) c = 1
(2) parallel sections
  (3) section A
    (3) if p then
      (4) c = 2
    endif
  (5) section B
    (5) y = 3
(6) end parallel sections
end"""
    r = solve(src)
    assert "c1" in r.in_names("6")
    assert "c1" not in r.set_names("ACCKillout", "6")


def test_single_section_construct():
    src = """program p
(1) x = 1
parallel sections
  section A
    (2) x = 2
(3) end parallel sections
end"""
    r = solve(src)
    assert {d.name for d in r.reaching("3", "x")} == {"x2"}


def test_loop_around_construct_circulates_defs():
    src = """program p
(1) x = 1
(2) loop
  (3) parallel sections
    (4) section A
      (4) x = 2
    (5) section B
      (5) y = x
  (6) end parallel sections
(7) endloop
end"""
    r = solve(src)
    # Second iteration: section B sees x2 from the first iteration.
    assert {d.name for d in r.reaching("5", "x")} == {"x1", "x4"}


def test_equivalent_to_sequential_on_sequential_graph(fig1a_graph):
    par = solve_parallel(fig1a_graph)
    seq = solve_sequential(fig1a_graph)
    for n in fig1a_graph.nodes:
        assert par.In(n) == seq.In(n)
        assert par.Out(n) == seq.Out(n)


@pytest.mark.parametrize("backend", ["set", "bitset", "numpy"])
@pytest.mark.parametrize("solver,order", [("round-robin", "rpo"), ("worklist", "document")])
def test_fixpoint_stable_across_configs(fig6_graph, backend, solver, order):
    base = solve_parallel(fig6_graph)
    other = solve_parallel(fig6_graph, backend=backend, solver=solver, order=order)
    for n in fig6_graph.nodes:
        assert base.In(n) == other.In(n)
        assert base.ACCKillout(n) == other.ACCKillout(n)


def test_result_metadata(fig6_graph):
    r = solve_parallel(fig6_graph)
    assert r.system == "parallel"
    assert r.synch_pass is None
    assert r.fork_kill is not None
