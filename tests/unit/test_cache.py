"""Unit tests for digest-keyed analysis caching (repro.dataflow.cache)."""

from repro import analyze, obs, parse_program
from repro.dataflow.cache import (
    GLOBAL_CACHE,
    MISSING,
    AnalysisCache,
    cached_build_pfg,
    program_digest,
)
from repro.paper import programs
from repro.reachdefs.genkill import compute_genkill

SOURCE = programs.SOURCES["fig6"]


# -- AnalysisCache mechanics ----------------------------------------------


def test_lru_bound_and_eviction_order():
    cache = AnalysisCache(maxsize=3)
    for i in range(3):
        cache.put(("ns", i), i)
    cache.get(("ns", 0))  # refresh 0; 1 becomes least recent
    cache.put(("ns", 3), 3)
    assert ("ns", 1) not in cache
    assert ("ns", 0) in cache and ("ns", 2) in cache and ("ns", 3) in cache
    assert cache.evictions == 1


def test_hit_miss_counters_and_metrics():
    cache = AnalysisCache()
    with obs.session() as sess:
        assert cache.get(("pfg", "x")) is None
        cache.put(("pfg", "x"), "v")
        assert cache.get(("pfg", "x")) == "v"
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1
    counters = sess.metrics.as_dict()["counters"]
    assert counters["cache.hits"] == 1
    assert counters["cache.misses"] == 1
    assert counters["cache.pfg.hits"] == 1
    assert counters["cache.pfg.misses"] == 1


def test_disabled_cache_always_misses_and_stores_nothing():
    cache = AnalysisCache(enabled=False)
    cache.put(("k",), 1)
    assert cache.get(("k",)) is None
    assert len(cache) == 0


def test_get_valid_predicate_rejects_and_drops():
    cache = AnalysisCache()
    cache.put(("k",), "stale")
    assert cache.get(("k",), valid=lambda v: v != "stale") is None
    assert ("k",) not in cache  # rejected entries are evicted
    assert cache.misses == 1 and cache.hits == 0


def test_cached_none_is_a_hit_not_a_perpetual_miss():
    """Regression: ``get`` returning ``None`` for a miss meant a
    legitimately cached ``None`` was recomputed forever and every lookup
    double-counted as a miss.  The MISSING sentinel disambiguates."""
    cache = AnalysisCache()
    cache.put(("analyze", "d1"), None)
    value = cache.get(("analyze", "d1"), MISSING)
    assert value is None and value is not MISSING  # cached None, not a miss
    assert cache.hits == 1 and cache.misses == 0
    # and a genuine miss is the sentinel, counted exactly once
    assert cache.get(("analyze", "d2"), MISSING) is MISSING
    assert cache.misses == 1


def test_get_default_returned_on_miss():
    cache = AnalysisCache()
    assert cache.get(("k",), "fallback") == "fallback"
    assert cache.get(("k",)) is None  # bare form keeps the old contract
    disabled = AnalysisCache(enabled=False)
    disabled.put(("k",), 1)
    assert disabled.get(("k",), "fallback") == "fallback"


# -- program digest --------------------------------------------------------


def test_digest_stable_across_parses_and_formatting():
    a = parse_program(SOURCE)
    b = parse_program(SOURCE)
    assert program_digest(a) == program_digest(b)
    # Formatting-only differences pretty-print identically -> same digest.
    reformatted = parse_program(SOURCE.replace("\n", "\n\n", 1))
    assert program_digest(reformatted) == program_digest(a)


def test_digest_discriminates_programs():
    assert program_digest(programs.program("fig6")) != program_digest(
        programs.program("fig3")
    )


# -- cached_build_pfg ------------------------------------------------------


def test_cached_build_pfg_hits_for_same_ast():
    prog = parse_program(SOURCE)
    g1 = cached_build_pfg(prog)
    g2 = cached_build_pfg(prog)
    assert g2 is g1
    assert g1.program_digest == program_digest(prog)
    assert g1.source_program is prog


def test_cached_build_pfg_rejects_different_parse_of_same_text():
    # PFG nodes hold statement objects; the interpreter matches them by
    # identity, so a graph is only valid for the AST it was built from.
    p1 = parse_program(SOURCE)
    p2 = parse_program(SOURCE)
    g1 = cached_build_pfg(p1)
    g2 = cached_build_pfg(p2)
    assert g2 is not g1
    assert g2.source_program is p2


# -- genkill memo ----------------------------------------------------------


def test_genkill_memoized_on_graph_with_counters():
    graph = programs.graph("fig6")
    graph._genkill_memo = None  # session fixtures may have warmed it
    with obs.session() as sess:
        first = compute_genkill(graph)
        second = compute_genkill(graph)
    assert second is first
    counters = sess.metrics.as_dict()["counters"]
    assert counters["cache.genkill.misses"] == 1
    assert counters["cache.genkill.hits"] == 1


def test_genkill_memo_dropped_on_graph_mutation():
    graph = programs.graph("fig1a")
    info = compute_genkill(graph)
    nodes = list(graph.nodes)
    graph.add_edge(nodes[0], nodes[-1], "seq")  # _invalidate() fires
    assert compute_genkill(graph) is not info


# -- analyze-level caching -------------------------------------------------


def test_warm_analyze_zero_solver_passes():
    prog = parse_program(SOURCE)
    cold = analyze(prog)
    with obs.session() as sess:
        warm = analyze(prog)
    assert warm is cold
    counters = sess.metrics.as_dict()["counters"]
    assert counters.get("solve.runs", 0) == 0  # no solver ran at all
    assert counters["cache.analyze.hits"] == 1


def test_analyze_cache_discriminates_options():
    prog = parse_program(SOURCE)
    a = analyze(prog)
    b = analyze(prog, solver="scc")
    c = analyze(prog, order="rpo")
    assert b is not a and c is not a
    # ...but each variant is itself cached.
    assert analyze(prog, solver="scc") is b


def test_analyze_cache_bypasses():
    prog = parse_program(SOURCE)
    a = analyze(prog)
    assert analyze(prog, cache=False) is not a
    GLOBAL_CACHE.enabled = False
    try:
        assert analyze(prog) is not a
    finally:
        GLOBAL_CACHE.enabled = True


def test_analyze_with_budget_skips_result_cache():
    from repro.dataflow.budget import ResourceBudget

    prog = parse_program(SOURCE)
    a = analyze(prog)
    b = analyze(prog, budget=ResourceBudget(max_passes=1000))
    assert b is not a  # budgeted runs really run under their guard


# -- thread-safety (the serve-daemon scenario) ----------------------------


def test_concurrent_get_put_holds_bound_and_counters():
    import threading

    cache = AnalysisCache(maxsize=16)
    errors = []

    def hammer(worker_id):
        try:
            for i in range(500):
                key = ("ns", (worker_id * 7 + i) % 48)
                if cache.get(key, MISSING) is MISSING:
                    cache.put(key, i)
                if i % 100 == 0:
                    cache.stats()
                if i % 250 == 0:
                    cache.clear()
        except Exception as err:  # pragma: no cover - only on regression
            errors.append(err)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    stats = cache.stats()
    assert len(cache) <= 16
    assert stats["hits"] + stats["misses"] == 8 * 500
