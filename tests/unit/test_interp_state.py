"""Runtime state and event tests."""

from repro.interp.events import EventState
from repro.interp.state import Cell, copy_env, merge_candidates
from repro.ir.defs import DefTable


def make_defs(*pairs):
    t = DefTable()
    return [t.add(var, site) for var, site in pairs]


def test_copy_env_is_shallow_and_safe():
    d, = make_defs(("x", "1"))
    env = {"x": Cell(1, d, 1)}
    clone = copy_env(env)
    clone["x"] = Cell(2, d, 2)
    assert env["x"].value == 1


def test_merge_candidates_ignores_unchanged():
    d, = make_defs(("x", "1"))
    snapshot = {"x": Cell(1, d, 1)}
    child = copy_env(snapshot)
    assert merge_candidates(snapshot, [child]) == {}


def test_merge_candidates_collects_changes():
    d1, d2, d3 = make_defs(("x", "1"), ("x", "2"), ("x", "3"))
    snapshot = {"x": Cell(0, d1, 1)}
    c1 = {"x": Cell(5, d2, 7)}
    c2 = {"x": Cell(9, d3, 8)}
    cands = merge_candidates(snapshot, [c1, c2])
    assert {c.definition.name for c in cands["x"]} == {"x2", "x3"}


def test_merge_candidates_dedupes_same_write():
    d1, d2 = make_defs(("x", "1"), ("x", "2"))
    snapshot = {"x": Cell(0, d1, 1)}
    shared = Cell(5, d2, 7)  # e.g. absorbed by both children via wait
    cands = merge_candidates(snapshot, [{"x": shared}, {"x": shared}])
    assert len(cands["x"]) == 1


def test_merge_candidates_new_variable():
    snapshot = {}
    d, = make_defs(("y", "4"))
    cands = merge_candidates(snapshot, [{"y": Cell(2, d, 3)}])
    assert "y" in cands


def test_event_post_and_clear():
    e = EventState("ev")
    assert not e.posted
    e.post({"x": Cell(1, None, 1)})
    assert e.posted and len(e.snapshots) == 1
    e.clear()
    assert not e.posted and e.snapshots == []


def test_absorb_latest_write_wins():
    d1, d2 = make_defs(("x", "1"), ("x", "2"))
    e = EventState("ev")
    e.post({"x": Cell(10, d2, 9)})
    env = {"x": Cell(1, d1, 3)}
    conflicts = e.absorb_into(env)
    assert env["x"].value == 10
    assert {c.definition.name for c in conflicts["x"]} == {"x1", "x2"}


def test_absorb_keeps_newer_local_value():
    d1, d2 = make_defs(("x", "1"), ("x", "2"))
    e = EventState("ev")
    e.post({"x": Cell(10, d1, 3)})
    env = {"x": Cell(99, d2, 9)}  # waiter already has a newer write
    e.absorb_into(env)
    assert env["x"].value == 99


def test_absorb_same_write_no_conflict():
    d, = make_defs(("x", "1"))
    cell = Cell(1, d, 5)
    e = EventState("ev")
    e.post({"x": cell})
    env = {"x": cell}
    assert e.absorb_into(env) == {}


def test_absorb_new_variable_adopted():
    d, = make_defs(("z", "3"))
    e = EventState("ev")
    e.post({"z": Cell(7, d, 4)})
    env = {}
    conflicts = e.absorb_into(env)
    assert env["z"].value == 7 and conflicts == {}


def test_cell_describe():
    d, = make_defs(("x", "4"))
    assert "x4" in Cell(7, d, 3).describe()
    assert "input" in Cell(7, None, 0).describe()
