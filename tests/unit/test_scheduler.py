"""Scheduler and exhaustive-explorer tests."""

from repro.interp import (
    ExhaustiveExplorer,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    run_program,
)
from repro.lang import parse_program


def test_round_robin_picks_lowest():
    s = RoundRobinScheduler()
    assert s.pick_thread([3, 1, 2]) == 1


def test_random_scheduler_deterministic_by_seed():
    a = [RandomScheduler(seed=1).pick_thread([0, 1, 2]) for _ in range(5)]
    b = [RandomScheduler(seed=1).pick_thread([0, 1, 2]) for _ in range(5)]
    assert a == b


def test_random_loop_bounded():
    s = RandomScheduler(seed=0, max_loop_iters=2, continue_prob=1.0)
    assert s.loop_decision((0, 0), 0)
    assert s.loop_decision((0, 0), 1)
    assert not s.loop_decision((0, 0), 2)


def test_fixed_scheduler_replays_tape():
    s = FixedScheduler([1, 0])
    assert s.pick_thread([10, 20]) == 20  # option 1
    assert s.pick_thread([10, 20]) == 10  # option 0
    assert s.pick_thread([10, 20]) == 10  # tape exhausted -> option 0
    assert [p.chosen for p in s.trace] == [1, 0, 0]
    assert all(p.n_options == 2 for p in s.trace)


def test_fixed_scheduler_clamps_choice():
    s = FixedScheduler([7])
    assert s.pick_thread([5]) == 5


def test_fixed_loop_default_exits():
    s = FixedScheduler([])
    assert s.loop_decision((0, 0), 0) is False  # option 0 = exit


RACY = """program p
x = 0
parallel sections
  section A
    x = 1
  section B
    x = 2
end parallel sections
end"""


def test_exhaustive_explorer_finds_both_outcomes():
    prog = parse_program(RACY)
    outcomes = set()

    def once(scheduler):
        outcomes.add(run_program(prog, scheduler).value("x"))

    list(ExhaustiveExplorer(max_runs=200).schedules(once))
    assert outcomes == {1, 2}


def test_exhaustive_explorer_covers_branch_inputs():
    prog = parse_program("program p\nif q < 1 then\nx = 1\nelse\nx = 2\nendif\nend")
    outcomes = set()

    def once(scheduler):
        outcomes.add(run_program(prog, scheduler).value("x"))

    list(ExhaustiveExplorer(max_runs=50).schedules(once))
    assert outcomes == {1, 2}


def test_exhaustive_explorer_respects_max_runs():
    prog = parse_program(RACY)
    count = 0

    def once(scheduler):
        nonlocal count
        count += 1
        run_program(prog, scheduler)

    list(ExhaustiveExplorer(max_runs=3).schedules(once))
    assert count == 3


def test_exhaustive_explorer_enumerates_loop_iterations():
    prog = parse_program("program p\nx = 0\nloop\nx = x + 1\nendloop\nend")
    outcomes = set()

    def once(scheduler):
        outcomes.add(run_program(prog, scheduler).value("x"))

    list(ExhaustiveExplorer(max_loop_iters=2, max_runs=50).schedules(once))
    assert outcomes == {0, 1, 2}
