"""Unit tests for the concurrent batch-analysis driver (repro.batch)."""

import json

import pytest

from repro import obs
from repro.batch import (
    SCHEMA,
    BatchOptions,
    TASK_EXIT_CODES,
    batch_exit_code,
    read_manifest,
    render_batch_summary,
    run_batch,
    run_task,
)
from repro.batch.driver import _crash_record

OK_SRC = """program ok
(1) x = 1
(2) y = x + 1
(3) z = x + y
end
"""

PARALLEL_SRC = """program par
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
end
"""

DEADLOCK_SRC = """program dl
  event e
  (1) a = 1
  (2) parallel sections
    (3) section one
      (3) wait(e)
      (3) b = a
    (4) section two
      (4) c = 2
  (5) end parallel sections
end program
"""

BAD_SRC = "program bad\nx = = 1\nend\n"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


@pytest.fixture
def ok_file(tmp_path):
    return _write(tmp_path, "ok.pcf", OK_SRC)


@pytest.fixture
def deadlock_file(tmp_path):
    return _write(tmp_path, "dl.pcf", DEADLOCK_SRC)


@pytest.fixture
def diverge_file(tmp_path):
    # A loop nest deep enough that analysis needs more passes than the
    # caps the tests below set (healthy programs converge well under).
    from repro import pretty
    from repro.synthetic import loop_nest

    return _write(tmp_path, "diverge.pcf", pretty(loop_nest(8)))


# -- run_task: one record per outcome --------------------------------------


def test_run_task_ok_record(ok_file):
    rec = run_task(ok_file, BatchOptions())
    assert rec["type"] == "task"
    assert rec["status"] == "ok" and rec["code"] == 0
    assert rec["program"] == "ok"
    assert len(rec["digest"]) == 64
    assert rec["system"] == "sequential"
    assert rec["stats"]["converged"] is True
    assert rec["anomalies"] == 0 and rec["sync_issues"] == 0
    assert rec["degradation"] is None and rec["error"] is None
    assert rec["wall_s"] > 0
    assert rec["counters"]["solve.runs"] >= 1


def test_run_task_parse_error(tmp_path):
    rec = run_task(_write(tmp_path, "bad.pcf", BAD_SRC), BatchOptions())
    assert rec["status"] == "error" and rec["code"] == 1
    assert "expected an expression" in rec["error"]
    assert rec["digest"] is None and rec["stats"] is None


def test_run_task_missing_file():
    rec = run_task("/nonexistent/x.pcf", BatchOptions())
    assert rec["status"] == "error" and rec["code"] == 1


def test_run_task_budget_failure_without_ladder(diverge_file):
    rec = run_task(diverge_file, BatchOptions(max_passes=8, degrade=False))
    assert rec["status"] == "failed" and rec["code"] == 2
    assert "pass budget 8 exceeded" in rec["error"]
    assert rec["stats"]["converged"] is False  # partial stats preserved


def test_run_task_honors_degradation_ladder(diverge_file):
    rec = run_task(diverge_file, BatchOptions(max_passes=8, degrade=True))
    assert rec["status"] == "degraded" and rec["code"] == 0
    assert rec["degradation"]["level_name"] == "conservative"
    assert rec["stats"]["converged"] is True


def test_run_task_dynamic_deadlock(deadlock_file):
    rec = run_task(deadlock_file, BatchOptions(run=True))
    assert rec["status"] == "dynamic-failure" and rec["code"] == 4
    assert rec["error"] == "deadlock (blocked on: e)"
    assert rec["interp"]["deadlocked"] is True
    assert rec["interp"]["blocked_events"] == ["e"]
    # the static-analysis provenance (it degraded on the blocking lint)
    # is still on the record
    assert rec["degradation"]["level_name"] == "no-preserved"


def test_run_task_never_raises_on_invariant(tmp_path, monkeypatch):
    import repro.batch.driver as driver_mod
    from repro.pfg.validate import PFGInvariantError

    def boom(*args, **kwargs):
        raise PFGInvariantError(["fork (2) without matching join"])

    monkeypatch.setattr("repro.driver.optimize", boom)
    rec = run_task(_write(tmp_path, "ok.pcf", OK_SRC), BatchOptions())
    assert rec["status"] == "invariant" and rec["code"] == 3
    assert driver_mod.TASK_EXIT_CODES[rec["status"]] == 3


def test_crash_record_shape():
    rec = _crash_record("x.pcf", RuntimeError("pool died"))
    assert rec["status"] == "crashed" and rec["code"] == 2
    assert "pool died" in rec["error"]
    assert batch_exit_code([rec]) == 2


# -- run_batch: aggregation, manifest, metrics ------------------------------


def test_run_batch_serial_mixed_corpus(ok_file, deadlock_file, diverge_file, tmp_path):
    manifest = tmp_path / "batch.jsonl"
    report = run_batch(
        [ok_file, deadlock_file, diverge_file],
        BatchOptions(max_passes=8, degrade=False, run=True),
        workers=1,
        manifest_path=manifest,
    )
    assert report.exit_code == 2
    assert report.by_status() == {"dynamic-failure": 1, "failed": 1, "ok": 1}
    # serial mode preserves input order
    assert [r["file"] for r in report.records] == [ok_file, deadlock_file, diverge_file]

    records = read_manifest(manifest)
    assert records[0]["schema"] == SCHEMA
    assert records[0]["workers"] == 1 and records[0]["inputs"] == 3
    assert records[0]["options"]["max_passes"] == 8
    tasks = [r for r in records if r["type"] == "task"]
    assert len(tasks) == 3
    summary = records[-1]
    assert summary["type"] == "summary"
    assert summary["total"] == 3 and summary["exit_code"] == 2
    assert summary["by_status"] == {"dynamic-failure": 1, "failed": 1, "ok": 1}


def test_run_batch_pool_matches_serial_outcomes(ok_file, deadlock_file, diverge_file):
    options = BatchOptions(max_passes=8, degrade=False, run=True)
    serial = run_batch([ok_file, deadlock_file, diverge_file], options, workers=1)
    pooled = run_batch([ok_file, deadlock_file, diverge_file], options, workers=2)
    by_file = lambda recs: {r["file"]: (r["status"], r["code"]) for r in recs}
    assert by_file(serial.records) == by_file(pooled.records)
    assert pooled.exit_code == 2


def test_run_batch_merges_worker_metrics(ok_file, deadlock_file):
    with obs.session() as sess:
        run_batch([ok_file, deadlock_file], BatchOptions(), workers=1)
    counters = sess.metrics.as_dict()["counters"]
    assert counters["batch.tasks"] == 2
    assert counters["batch.status.ok"] == 1
    assert counters["batch.status.degraded"] == 1
    # per-task session counters aggregated into the parent
    assert counters["solve.runs"] >= 2
    assert counters["pfg.builds"] == 2
    assert counters["cache.pfg.misses"] == 2


def test_run_batch_all_ok_exit_0(ok_file):
    report = run_batch([ok_file], BatchOptions())
    assert report.exit_code == 0
    assert report.records[0]["counters"]  # counters snapshot travels


# -- summary rendering ------------------------------------------------------


def test_render_summary_sorted_and_timeless(ok_file, deadlock_file, diverge_file):
    report = run_batch(
        [diverge_file, deadlock_file, ok_file],  # deliberately unsorted
        BatchOptions(max_passes=8, degrade=False, run=True),
        workers=1,
    )
    text = report.render_summary()
    lines = text.splitlines()
    assert lines[0].startswith("batch summary: 3 task(s)")
    assert "exit 2" in lines[0]
    rows = lines[3:]
    assert [row.split()[0] for row in rows] == sorted(
        r["file"] for r in report.records
    )
    assert "wall" not in text  # no wall-clock — the output is deterministic


def test_render_summary_is_deterministic_across_runs(ok_file, deadlock_file):
    options = BatchOptions(run=True)
    first = run_batch([ok_file, deadlock_file], options).render_summary()
    second = run_batch([deadlock_file, ok_file], options).render_summary()
    assert first == second


# -- manifest validation ----------------------------------------------------


def test_read_manifest_rejects_wrong_schema(tmp_path):
    path = tmp_path / "other.jsonl"
    path.write_text(json.dumps({"type": "meta", "schema": "repro-obs/1"}) + "\n")
    with pytest.raises(ValueError, match="repro-batch/1"):
        read_manifest(path)


def test_task_exit_codes_cover_contract():
    # The per-task codes must stay inside the CLI's documented contract.
    assert set(TASK_EXIT_CODES.values()) <= {0, 1, 2, 3, 4}
    assert TASK_EXIT_CODES["ok"] == 0
    assert TASK_EXIT_CODES["error"] == 1
    assert TASK_EXIT_CODES["failed"] == 2
    assert TASK_EXIT_CODES["invariant"] == 3
    assert TASK_EXIT_CODES["dynamic-failure"] == 4
