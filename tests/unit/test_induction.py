"""Induction-variable detection tests — the paper's §1 motivation."""

from repro import analyze
from repro.analysis import find_induction_variables, find_loops
from repro.lang import parse_program
from repro.paper import programs


def ivs(src):
    result = analyze(parse_program(src))
    return {iv.var: iv for iv in find_induction_variables(result)}


def test_paper_fig1a_j_not_induction():
    result = analyze(programs.program("fig1a"))
    assert find_induction_variables(result) == []


def test_paper_fig1b_j_is_induction():
    result = analyze(programs.program("fig1b"))
    found = {iv.var: iv for iv in find_induction_variables(result)}
    assert set(found) == {"j"}
    assert found["j"].steps == (1,)
    assert found["j"].increments[0].name == "j4"


def test_simple_sequential_induction():
    found = ivs("program p\n(1) i = 0\nloop\n(2) i = i + 2\nendloop\nend")
    assert found["i"].steps == (2,)


def test_decrement_detected():
    found = ivs("program p\n(1) i = 9\nloop\n(2) i = i - 1\nendloop\nend")
    assert found["i"].steps == (-1,)


def test_constant_plus_var_form():
    found = ivs("program p\n(1) i = 0\nloop\n(2) i = 1 + i\nendloop\nend")
    assert found["i"].steps == (1,)


def test_conditional_increment_rejected():
    found = ivs("program p\n(1) i = 0\nloop\nif c then\n(2) i = i + 1\nendif\nendloop\nend")
    assert "i" not in found


def test_non_increment_assignment_rejected():
    found = ivs("program p\n(1) i = 0\nloop\n(2) i = i * 2\nendloop\nend")
    assert "i" not in found


def test_mixed_increment_and_reset_rejected():
    found = ivs(
        "program p\n(1) i = 0\nloop\n(2) i = i + 1\nif c then\n(3) i = 0\nendif\nendloop\nend"
    )
    assert "i" not in found


def test_increment_in_nested_loop_rejected():
    found = ivs("program p\n(1) i = 0\nloop\nloop\n(2) i = i + 1\nendloop\nendloop\nend")
    # i is an IV of the *inner* loop, but not of the outer one.
    result = analyze(
        parse_program("program p\n(1) i = 0\nloop\nloop\n(2) i = i + 1\nendloop\nendloop\nend")
    )
    per_loop = find_induction_variables(result)
    inner = [iv for iv in per_loop if iv.var == "i"]
    assert len(inner) == 1


def test_multiple_increments_in_parallel_sections():
    # Two sections each increment a different variable: both are IVs.
    src = """program p
(1) i = 0
(1) j = 0
loop
  parallel sections
    section A
      (2) i = i + 1
    section B
      (3) j = j + 3
  end parallel sections
endloop
end"""
    found = ivs(src)
    assert found["i"].steps == (1,) and found["j"].steps == (3,)


def test_find_loops_structure(fig3_graph):
    loops = find_loops(fig3_graph)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header.name == "1" and loop.latch.name == "12"
    assert fig3_graph.node("8") in loop
    assert fig3_graph.node("Entry") not in loop


def test_no_loops_no_ivs(fig6_graph):
    from repro.reachdefs import solve_parallel

    assert find_induction_variables(solve_parallel(fig6_graph)) == []


def test_format_mentions_step():
    result = analyze(programs.program("fig1b"))
    (iv,) = find_induction_variables(result)
    assert "+1" in iv.format() and "j" in iv.format()
