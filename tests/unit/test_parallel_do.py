"""Parallel Do tests — the §7 future-work construct, end to end."""

import pytest

from repro import analyze, build_pfg, parse_program, pretty, validate_pfg
from repro.analysis import AnomalyKind, find_anomalies
from repro.cssa import build_cssa
from repro.interp import (
    ExhaustiveExplorer,
    RandomScheduler,
    check_soundness,
    run_program,
)
from repro.lang import ast
from repro.lang.errors import ParseError, SemanticError
from repro.pfg.concurrency import concurrent

SRC = """program pd
(1) total = 0
(1) bias = 5
(2) parallel do i
  (3) total = total + i
  (3) obs = bias
(4) end parallel do
(4) final = total
end"""


# -- front end ----------------------------------------------------------------


def test_parse_and_pretty_roundtrip():
    prog = parse_program(SRC)
    (pd,) = [s for s in prog.walk() if isinstance(s, ast.ParallelDo)]
    assert pd.index == "i"
    assert pd.label == "2" and pd.end_label == "4"
    again = parse_program(pretty(prog))
    assert ast.structurally_equal(prog, again)


def test_index_is_read_only():
    bad = "program p\nparallel do i\ni = 1\nend parallel do\nend"
    with pytest.raises(ParseError, match="read-only"):
        parse_program(bad)


def test_index_read_only_in_nested_statements():
    bad = "program p\nparallel do i\nif c then\ni = i + 1\nendif\nend parallel do\nend"
    with pytest.raises(ParseError, match="read-only"):
        parse_program(bad)


def test_cfg_builder_rejects_pardo():
    from repro.cfg import build_cfg, is_sequential

    prog = parse_program(SRC)
    assert not is_sequential(prog)
    with pytest.raises(SemanticError):
        build_cfg(prog)


# -- graph shape ---------------------------------------------------------------


def test_pfg_shape():
    g = build_pfg(parse_program(SRC))
    validate_pfg(g)
    (pardo,) = g.pardos
    assert pardo.index == "i"
    assert pardo.header.name == "2" and pardo.merge.name == "4"
    edges = {(s.name, d.name) for s, d, _k in g.edges()}
    # header branches to body and (zero-trip bypass) to the merge.
    assert ("2", "3") in edges and ("2", "4") in edges and ("3", "4") in edges
    assert g.back_edges() == set()


def test_body_marked_self_concurrent():
    g = build_pfg(parse_program(SRC))
    body = g.node("3")
    assert body.pardo_ids == (0,)
    assert concurrent(body, body)
    # header/merge are outside the iteration space.
    assert g.node("2").pardo_ids == ()
    assert not concurrent(g.node("2"), g.node("2"))
    assert concurrent(body, g.node("3"))


def test_nested_pardo_ids_stack():
    src = """program p
parallel do i
  parallel do j
    (3) x = i + j
  end parallel do
end parallel do
end"""
    g = build_pfg(parse_program(src))
    assert g.node("3").pardo_ids == (0, 1)


def test_pardo_inside_section_concurrent_with_sibling():
    src = """program p
parallel sections
  section A
    parallel do i
      (2) x = 1
    end parallel do
  section B
    (3) y = 2
end parallel sections
end"""
    g = build_pfg(parse_program(src))
    assert concurrent(g.node("2"), g.node("3"))  # sections
    assert concurrent(g.node("2"), g.node("2"))  # iterations


# -- analysis --------------------------------------------------------------------


def test_reaching_definitions_at_merge():
    r = analyze(parse_program(SRC))
    assert r.system == "parallel"
    # zero-trip bypass keeps the pre-construct definition alive...
    assert {d.name for d in r.reaching("4", "total")} == {"total1", "total3"}
    # ...and body definitions reach the merge.
    assert "obs3" in r.in_names("4")


def test_body_defs_in_parallel_kill_of_each_other():
    src = """program p
(1) x = 0
parallel do i
  (2) x = 1
  (3) y = x
end parallel do
end"""
    r = analyze(parse_program(src))
    # x2 may be overwritten by another iteration's x2 — but a def is never
    # its own OtherDefs entry; what must hold is the cross-node case:
    # y's read sees only the fork-time copy and this iteration's x2.
    assert {d.name for d in r.reaching("3", "x")} == {"x2"}


def test_cross_iteration_race_reported():
    r = analyze(parse_program(SRC))
    races = [a for a in find_anomalies(r) if a.kind is AnomalyKind.CROSS_ITERATION]
    assert {a.var for a in races} == {"total", "obs"}
    assert all(a.node.name == "4" for a in races)
    assert "parallel-do merge" in races[0].format()


def test_read_only_pardo_has_no_race():
    src = """program p
(1) base = 7
parallel do i
  (2) probe = base + i
end parallel do
end"""
    r = analyze(parse_program(src))
    races = [a for a in find_anomalies(r) if a.kind is AnomalyKind.CROSS_ITERATION]
    assert {a.var for a in races} == {"probe"}  # probe written per iteration
    # base is only read: no report for it.
    assert all(a.var != "base" for a in races)


# -- CSSA ----------------------------------------------------------------------------


def test_cssa_places_phi_at_merge():
    g = build_pfg(parse_program(SRC))
    form = build_cssa(g)
    merge_vars = {m.var for m in form.merges.values() if m.node.name == "4"}
    assert "total" in merge_vars  # total1 (bypass) vs total3 (body)


# -- interpreter ------------------------------------------------------------------------


def test_iterations_get_private_index():
    src = """program p
parallel do i
  (2) seen = i
end parallel do
end"""
    prog = parse_program(src)
    values = set()
    for seed in range(20):
        run = run_program(prog, RandomScheduler(seed=seed, max_loop_iters=3))
        v = run.value("seen")
        if v is not None:
            values.add(v)
    assert values >= {0, 1}  # different iterations' indices win merges


def test_index_not_merged_back():
    prog = parse_program("program p\nparallel do i\n(2) x = i\nend parallel do\nend")
    run = run_program(prog, RandomScheduler(seed=1, max_loop_iters=2))
    assert "i" not in run.final_env


def test_zero_iterations_keep_parent_state():
    prog = parse_program(SRC)

    class ZeroTrip(RandomScheduler):
        def pardo_iterations(self, key):
            return 0

    run = run_program(prog, ZeroTrip(seed=0))
    assert run.value("final") == 0
    assert run.value("obs") is None


def test_copy_in_copy_out_semantics():
    # Each iteration computes on the fork-time copy: total = 0 + i, so the
    # final value is SOME iteration's i — never a sum.
    prog = parse_program(SRC)
    finals = set()
    for seed in range(40):
        run = run_program(prog, RandomScheduler(seed=seed, max_loop_iters=3))
        finals.add(run.value("final"))
    assert finals <= {0, 1, 2}
    assert len(finals) > 1


def test_dynamic_soundness_over_schedules():
    prog = parse_program(SRC)
    from repro import build_pfg as _b

    graph = _b(prog)
    result = analyze(prog)
    for seed in range(40):
        run = run_program(prog, RandomScheduler(seed=seed, max_loop_iters=3), graph=graph)
        assert check_soundness(result, run) == [], seed


def test_exhaustive_schedules_sound():
    prog = parse_program(
        "program p\n(1) x = 0\nparallel do i\n(2) x = x + 1\n(3) end parallel do\nend"
    )
    from repro import build_pfg as _b

    graph = _b(prog)
    result = analyze(prog)
    bad = []

    def once(scheduler):
        run = run_program(prog, scheduler, graph=graph)
        bad.extend(check_soundness(result, run))

    list(ExhaustiveExplorer(max_loop_iters=2, max_runs=400).schedules(once))
    assert bad == []
