"""In-process tests of :func:`repro.serve.worker.execute_request`: the
error taxonomy, the degradation levels, and the warm-cache contract
(repeat requests are solver-free even with a deadline armed)."""

import pytest

from repro.serve import worker as serve_worker
from repro.serve.worker import execute_request

SEQ = "program tiny\n  (1) a = 1\n  (2) b = a + 1\nend program\n"

PAR = """program par
  (1) a = 0
  (2) parallel sections
    (3) section A
      (3) a = a + 1
    (4) section B
      (4) b = 2
  (5) end parallel sections
  (5) c = a + b
end program
"""


@pytest.fixture(autouse=True)
def _fresh_ast_memo():
    serve_worker._AST_MEMO.clear()
    yield
    serve_worker._AST_MEMO.clear()


def test_ok_record_shape():
    record = execute_request({"source": SEQ})
    assert record["status"] == "ok"
    assert record["error"] is None
    assert record["result"]["program"] == "tiny"
    assert record["result"]["system"] == "sequential"
    assert record["result"]["anomalies"] >= 0
    assert record["degradation"] is None
    assert record["wall_ms"] >= 0
    assert isinstance(record["counters"], dict)


def test_syntax_error_is_typed_not_raised():
    record = execute_request({"source": "program broken\n  (1) a = =\nend program\n"})
    assert record["status"] == "error"
    assert record["error"]
    assert record["result"] is None


def test_unknown_internal_failure_is_caught():
    # Protocol validation normally rejects bad backends before the worker;
    # if one slips through, the worker must type it, not die.
    record = execute_request({"source": SEQ, "backend": "bogus"})
    assert record["status"] == "failed"
    assert record["error"]


def test_level1_forces_no_preserved_with_provenance():
    record = execute_request({"source": PAR, "preserved": "approx"}, level=1)
    assert record["status"] == "degraded"
    assert record["degradation"]["level"] == 1
    assert record["degradation"]["level_name"] == "no-preserved"


def test_level2_serves_conservative_directly():
    record = execute_request({"source": PAR}, level=2)
    assert record["status"] == "degraded"
    assert record["degradation"]["level_name"] == "conservative"
    assert record["result"]["system"] == "conservative"


def test_repeat_request_is_solver_free_even_with_deadline():
    from repro import obs

    first = execute_request({"source": SEQ}, deadline_s=5.0)
    assert first["status"] == "ok"
    assert first["counters"].get("solve.runs", 0) >= 1
    repeat = execute_request({"source": SEQ}, deadline_s=5.0)
    assert repeat["status"] == "ok"
    assert repeat["result"] == first["result"]
    # The warm path: a serve-namespace cache hit, zero solver activity.
    assert repeat["counters"].get("cache.serve.hits") == 1
    assert repeat["counters"].get("solve.runs", 0) == 0
    assert repeat["counters"].get("solve.passes", 0) == 0


def test_cache_key_discriminates_options_and_level():
    execute_request({"source": PAR})
    different_backend = execute_request({"source": PAR, "backend": "set"})
    assert different_backend["counters"].get("cache.serve.hits", 0) == 0
    different_level = execute_request({"source": PAR}, level=2)
    assert different_level["counters"].get("cache.serve.hits", 0) == 0
    same_again = execute_request({"source": PAR})
    assert same_again["counters"].get("cache.serve.hits") == 1


def test_failures_are_not_cached():
    bad = "program broken\n  (1) a = =\nend program\n"
    execute_request({"source": bad})
    second = execute_request({"source": bad})
    assert second["status"] == "error"
    assert second["counters"].get("cache.serve.hits", 0) == 0


def test_ast_memo_is_bounded():
    for i in range(serve_worker._AST_MEMO_MAX + 10):
        execute_request({"source": f"program p{i}\n  (1) a = {i}\nend program\n"})
    assert len(serve_worker._AST_MEMO) == serve_worker._AST_MEMO_MAX
