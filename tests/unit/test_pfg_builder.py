"""PFG builder tests: extended-basic-block formation, edge kinds, labels."""

import pytest

from repro.lang import parse_program
from repro.lang.errors import SemanticError
from repro.pfg import EdgeKind, NodeKind, build_pfg


def build(src):
    return build_pfg(parse_program(src))


def edge_set(g, kinds=tuple(EdgeKind)):
    return {(s.name, d.name) for s, d, k in g.edges() if k in kinds}


def test_straightline_single_block():
    g = build("program p\nx = 1\ny = x\nend")
    # Entry absorbs unlabelled leading statements.
    assert [n.name for n in g.nodes] == ["Entry", "Exit"]
    assert len(g.entry.stmts) == 2


def test_labelled_statement_starts_new_block():
    g = build("program p\n(1) x = 1\n(2) y = 2\nend")
    assert [n.name for n in g.nodes] == ["Entry", "1", "2", "Exit"]


def test_same_label_continues_block():
    g = build("program p\n(1) x = 1\n(1) y = 2\nend")
    assert len(g.node("1").stmts) == 2


def test_if_builds_diamond():
    g = build("program p\n(1) x=1\n(2) if x < 1 then\n(3) y=1\nelse\n(4) y=2\n(5) endif\nend")
    assert g.node("2").cond is not None
    assert edge_set(g) == {
        ("Entry", "1"), ("1", "2"), ("2", "3"), ("2", "4"),
        ("3", "5"), ("4", "5"), ("5", "Exit"),
    }


def test_if_without_else_branches_to_merge():
    g = build("program p\n(2) if c then\n(3) y=1\n(5) endif\nend")
    assert ("2", "5") in edge_set(g)
    assert ("3", "5") in edge_set(g)


def test_statements_after_merge_join_merge_block():
    g = build("program p\n(2) if c then\n(3) y=1\n(5) endif\n(5) z=2\nend")
    assert len(g.node("5").stmts) == 1


def test_loop_structure():
    g = build("program p\n(2) loop\n(3) x=1\n(7) endloop\nend")
    header = g.node("2")
    assert header.is_loop_header
    edges = edge_set(g)
    assert ("2", "3") in edges and ("3", "7") in edges
    assert ("7", "2") in edges  # back edge
    assert ("2", "Exit") in edges  # loop exit from header
    assert g.back_edges() == {(g.node("7"), g.node("2"))}


def test_while_header_holds_condition():
    g = build("program p\n(2) while x < 3 do\n(3) x = x + 1\n(4) endwhile\nend")
    assert g.node("2").cond is not None
    assert not g.node("2").is_loop_header
    assert (g.node("4"), g.node("2")) in g.back_edges()


def test_fork_join_edges_are_parallel():
    src = """program p
(1) x = 0
(2) parallel sections
  (3) section A
    (3) x = 1
  (4) section B
    (4) y = 2
(5) end parallel sections
end"""
    g = build(src)
    fork, join = g.node("2"), g.node("5")
    assert fork.kind is NodeKind.FORK and join.kind is NodeKind.JOIN
    assert fork.join is join and join.fork is fork
    par = edge_set(g, (EdgeKind.PAR,))
    assert par == {("2", "3"), ("2", "4"), ("3", "5"), ("4", "5")}
    assert ("1", "2") in edge_set(g, (EdgeKind.SEQ,))


def test_statements_after_join_go_into_join_block():
    src = "program p\nparallel sections\nsection A\nx=1\n(9) end parallel sections\n(9) z = 2\nend"
    g = build(src)
    join = g.node("9")
    assert join.kind is NodeKind.JOIN
    assert len(join.stmts) == 1


def test_empty_section_gets_own_block():
    src = "program p\nparallel sections\nsection A\nskip\nsection B\ny=1\nend parallel sections\nend"
    g = build(src)
    fork = g.forks[0]
    join = g.joins[0]
    assert len(g.succs(fork, (EdgeKind.PAR,))) == 2
    assert len(g.par_preds(join)) == 2


def test_post_seals_block():
    g = build("program p\nevent e\n(1) x=1\n(1) post(e)\n(2) y=2\nend")
    n1 = g.node("1")
    assert n1.post_event == "e"
    assert g.node("2").stmts  # y=2 went to a new block
    assert g.posts_of_event["e"] == [n1]


def test_wait_starts_block():
    g = build("program p\nevent e\n(1) x=1\nwait(e)\ny=2\nend")
    (wait,) = g.waits
    assert wait.wait_event == "e"
    assert wait.name != "1"
    assert [s.target for s in wait.stmts] == ["y"]


def test_wait_reuses_fresh_empty_block():
    src = """program p
event e
parallel sections
  (8) section B1
    (8) wait(e)
    (8) x = 1
  section B2
    y = 2
end parallel sections
end"""
    g = build(src)
    node8 = g.node("8")
    assert node8.wait_event == "e"
    assert len(node8.stmts) == 1


def test_sync_edges_connect_all_posts_to_all_waits():
    src = """program p
event e
parallel sections
  section A
    (1) post(e)
    (2) post(e)
  section B
    (3) wait(e)
  section C
    (4) wait(e)
end parallel sections
end"""
    g = build(src)
    sync = edge_set(g, (EdgeKind.SYNC,))
    assert sync == {("1", "3"), ("1", "4"), ("2", "3"), ("2", "4")}


def test_clear_is_plain_statement():
    g = build("program p\nevent e\n(1) x=1\n(1) clear(e)\n(1) y=2\nend")
    assert len(g.node("1").stmts) == 3


def test_nested_construct_fork_is_section_entry():
    src = """program p
(2) parallel sections
  (3) section A
    (3) x = 1
  (7) section B
    (7) parallel sections
      (8) section B1
        (8) y = 1
      (9) section B2
        (9) z = 2
    (10) end parallel sections
(11) end parallel sections
end"""
    g = build(src)
    inner_fork = g.node("7")
    assert inner_fork.kind is NodeKind.FORK
    # inner fork reached from outer fork by a PAR edge
    assert ("2", "7") in edge_set(g, (EdgeKind.PAR,))
    # inner join connects to outer join by a PAR edge
    assert ("10", "11") in edge_set(g, (EdgeKind.PAR,))


def test_definition_sites_use_block_names():
    g = build("program p\n(4) x = 7\nend")
    assert g.defs.names() == ("x4",)


def test_duplicate_labels_get_suffixes():
    g = build("program p\n(1) x=1\n(2) y=2\n(1) z=3\nend")
    names = [n.name for n in g.nodes]
    assert "1" in names and "1_2" in names


def test_section_paths_assigned():
    src = """program p
parallel sections
  section A
    x = 1
  section B
    y = 2
end parallel sections
end"""
    g = build(src)
    fork = g.forks[0]
    a_node = g.succs(fork, (EdgeKind.PAR,))[0]
    b_node = g.succs(fork, (EdgeKind.PAR,))[1]
    assert fork.section_path == ()
    assert a_node.section_path == ((0, 0),)
    assert b_node.section_path == ((0, 1),)
    assert g.joins[0].section_path == ()


def test_fork_has_no_statements():
    g = build("program p\nx = 0\nparallel sections\nsection A\ny=1\nend parallel sections\nend")
    assert g.forks[0].stmts == []


def test_undeclared_event_rejected_at_build():
    with pytest.raises(SemanticError):
        build("program p\npost(e)\nend")
