"""Batch crash-retry and ``--resume``: worker-process death is retried
with backoff up to the allowance (records carry ``attempts``), and an
interrupted campaign picks up from its manifest without redoing work."""

import json
import os

import pytest

from repro.batch import (
    BatchOptions,
    load_resume_records,
    read_manifest,
    run_batch,
)
from repro.batch.driver import run_task

OK_SRC = """program ok
(1) x = 1
(2) y = x + 1
end
"""


def _write(tmp_path, name, text=OK_SRC):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


# -- picklable fault-injection task_fns (module-level for the pool) -----


def crash_once_task(path, options):
    """Dies the first time each path is attempted (marker file keeps the
    crash count across the respawned pool), then behaves normally."""
    marker = path + ".crashed-once"
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        os._exit(1)  # hard kill: runs the BrokenProcessPool path, not an exception
    return run_task(path, options)


def always_crash_task(path, options):
    os._exit(1)


class TestCrashRetry:
    def test_crash_is_retried_and_attempts_recorded(self, tmp_path):
        target = _write(tmp_path, "a.pcf")
        report = run_batch(
            [target],
            BatchOptions(),
            workers=2,
            retries=1,
            retry_backoff_s=0.01,
            task_fn=crash_once_task,
        )
        assert len(report.records) == 1
        record = report.records[0]
        assert record["status"] == "ok"
        assert record["attempts"] == 2
        assert report.exit_code == 0

    def test_retry_exhaustion_writes_typed_crashed_record(self, tmp_path):
        target = _write(tmp_path, "a.pcf")
        manifest = tmp_path / "m.jsonl"
        report = run_batch(
            [target],
            BatchOptions(),
            workers=2,
            manifest_path=manifest,
            retries=2,
            retry_backoff_s=0.01,
            task_fn=always_crash_task,
        )
        record = report.records[0]
        assert record["status"] == "crashed"
        assert record["code"] == 2
        assert record["attempts"] == 3  # first try + 2 retries
        assert "worker crashed" in record["error"]
        assert report.exit_code == 2
        # The manifest row agrees with the in-memory record.
        rows = [r for r in read_manifest(manifest) if r.get("type") == "task"]
        assert rows[0]["status"] == "crashed"
        assert rows[0]["attempts"] == 3

    def test_zero_retries_crashes_on_first_failure(self, tmp_path):
        target = _write(tmp_path, "a.pcf")
        report = run_batch(
            [target],
            BatchOptions(),
            workers=2,
            retries=0,
            retry_backoff_s=0.01,
            task_fn=always_crash_task,
        )
        assert report.records[0]["status"] == "crashed"
        assert report.records[0]["attempts"] == 1

    def test_healthy_tasks_carry_attempts_1(self, tmp_path):
        target = _write(tmp_path, "a.pcf")
        for workers in (1, 2):
            report = run_batch([target], BatchOptions(), workers=workers)
            assert report.records[0]["attempts"] == 1


class TestResume:
    def test_resume_skips_done_tasks_and_appends(self, tmp_path):
        a = _write(tmp_path, "a.pcf")
        b = _write(tmp_path, "b.pcf", OK_SRC.replace("program ok", "program okb"))
        manifest = tmp_path / "m.jsonl"

        first = run_batch([a], BatchOptions(), workers=1, manifest_path=manifest)
        assert len(first.records) == 1

        second = run_batch(
            [a, b],
            BatchOptions(),
            workers=1,
            manifest_path=manifest,
            resume=True,
        )
        # Only b actually ran; the report still covers both.
        assert len(second.records) == 2
        files = sorted(str(r["file"]) for r in second.records)
        assert files == sorted([a, b])
        assert second.exit_code == 0

        # One meta line, both tasks, and the *last* summary is cumulative.
        lines = [json.loads(l) for l in manifest.read_text().splitlines()]
        assert sum(1 for l in lines if l.get("type") == "meta") == 1
        assert sum(1 for l in lines if l.get("type") == "task") == 2
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["total"] == 2

    def test_resume_with_fully_complete_manifest_runs_nothing(self, tmp_path):
        a = _write(tmp_path, "a.pcf")
        manifest = tmp_path / "m.jsonl"
        run_batch([a], BatchOptions(), workers=1, manifest_path=manifest)
        before = manifest.read_text()
        report = run_batch(
            [a], BatchOptions(), workers=1, manifest_path=manifest, resume=True
        )
        assert len(report.records) == 1  # the prior record, nothing rerun
        after = manifest.read_text()
        # Only a fresh cumulative summary got appended — no new task rows.
        new_lines = after[len(before):].strip().splitlines()
        assert all(json.loads(l)["type"] == "summary" for l in new_lines)

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        a = _write(tmp_path, "a.pcf")
        b = _write(tmp_path, "b.pcf", OK_SRC.replace("program ok", "program okb"))
        manifest = tmp_path / "m.jsonl"
        run_batch([a], BatchOptions(), workers=1, manifest_path=manifest)
        with manifest.open("a") as fh:
            fh.write('{"type": "task", "file": "half-writ')  # killed mid-write
        report = run_batch(
            [a, b], BatchOptions(), workers=1, manifest_path=manifest, resume=True
        )
        assert len(report.records) == 2

    def test_resume_requires_manifest(self, tmp_path):
        a = _write(tmp_path, "a.pcf")
        with pytest.raises(ValueError):
            run_batch([a], BatchOptions(), workers=1, resume=True)

    def test_resume_rejects_foreign_manifest(self, tmp_path):
        a = _write(tmp_path, "a.pcf")
        manifest = tmp_path / "other.jsonl"
        manifest.write_text('{"schema": "other/1"}\n')
        with pytest.raises(ValueError):
            run_batch(
                [a], BatchOptions(), workers=1, manifest_path=manifest, resume=True
            )

    def test_resume_on_missing_manifest_is_fresh_start(self, tmp_path):
        a = _write(tmp_path, "a.pcf")
        manifest = tmp_path / "new.jsonl"
        report = run_batch(
            [a], BatchOptions(), workers=1, manifest_path=manifest, resume=True
        )
        assert len(report.records) == 1
        assert load_resume_records(manifest)  # normal manifest written


def test_load_resume_records_empty_file_is_fresh(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert load_resume_records(empty) == []
