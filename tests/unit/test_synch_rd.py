"""Synchronized reaching-definitions unit tests (paper §6)."""

import pytest

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_parallel, solve_synch

PIPELINE = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
    (3) post(e)
  (4) section B
    (4) wait(e)
    (4) x = 3
(5) end parallel sections
(5) y = x
end"""


def test_post_wait_orders_definitions():
    r = solve_synch(build_pfg(parse_program(PIPELINE)))
    # x3 (the post block's def) is ordered before x4 (the wait block's
    # def) by the synchronization: only x4 reaches.
    assert {d.name for d in r.reaching("5", "x")} == {"x4"}


def test_without_preserved_both_reach():
    r = solve_synch(build_pfg(parse_program(PIPELINE)), preserved="none")
    assert {d.name for d in r.reaching("5", "x")} == {"x3", "x4"}


def test_sync_edge_carries_values_into_wait():
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) w = 2
    (3) post(e)
  (4) section B
    (4) wait(e)
    (4) y = w
(5) end parallel sections
end"""
    r = solve_synch(build_pfg(parse_program(src)))
    # w3 flows across the sync edge into the wait block.
    assert {d.name for d in r.reaching("4", "w")} == {"w3"}


def test_conditional_posts_both_preserved():
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) if c then
      (4) x = 4
      (4) post(e)
    else
      (5) x = 5
      (5) post(e)
    endif
  (6) section B
    (6) wait(e)
    (6) x = 6
(7) end parallel sections
end"""
    r = solve_synch(build_pfg(parse_program(src)))
    wait = r.graph.node("6")
    assert {n.name for n in r.Preserved(wait)} >= {"4", "5"}
    assert {d.name for d in r.reaching("7", "x")} == {"x6"}


def test_equivalent_to_parallel_without_sync(fig6_graph):
    sync = solve_synch(fig6_graph)
    par = solve_parallel(fig6_graph)
    for n in fig6_graph.nodes:
        assert sync.In(n) == par.In(n)
        assert sync.Out(n) == par.Out(n)
        assert sync.ACCKillout(n) == par.ACCKillout(n)
        assert sync.SynchPass(n) == frozenset()


def test_oracle_preserved_mode():
    g = build_pfg(parse_program(PIPELINE))
    wait = g.node("4")
    post = g.node("3")
    r = solve_synch(g, preserved="oracle", preserved_oracle={wait: frozenset({post})})
    assert {d.name for d in r.reaching("5", "x")} == {"x4"}


def test_oracle_mode_requires_oracle(fig3_graph):
    with pytest.raises(ValueError, match="oracle"):
        solve_synch(fig3_graph, preserved="oracle")


def test_unknown_preserved_mode_rejected(fig3_graph):
    with pytest.raises(ValueError, match="unknown preserved mode"):
        solve_synch(fig3_graph, preserved="psychic")


def test_preserved_none_is_sound_superset(fig3_graph):
    precise = solve_synch(fig3_graph, preserved="approx")
    blunt = solve_synch(fig3_graph, preserved="none")
    for n in fig3_graph.nodes:
        assert precise.In(n) <= blunt.In(n), n.name
        assert precise.Out(n) <= blunt.Out(n), n.name


@pytest.mark.parametrize("backend", ["set", "bitset", "numpy"])
@pytest.mark.parametrize("solver,order", [("round-robin", "rpo"), ("worklist", "document")])
def test_fixpoint_stable_across_configs(fig3_graph, backend, solver, order):
    base = solve_synch(fig3_graph)
    other = solve_synch(fig3_graph, backend=backend, solver=solver, order=order)
    for n in fig3_graph.nodes:
        assert base.In(n) == other.In(n)
        assert base.SynchPass(n) == other.SynchPass(n)


def test_result_metadata(fig3_graph):
    r = solve_synch(fig3_graph)
    assert r.system == "synch"
    assert r.preserved is not None
    assert r.synch_pass is not None


def test_multiple_waits_same_event():
    src = """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
    (3) post(e)
  (4) section B
    (4) wait(e)
    (4) x = 3
  (5) section C
    (5) wait(e)
    (5) y = x
(6) end parallel sections
end"""
    r = solve_synch(build_pfg(parse_program(src)))
    # Both waits are released by the same post; x3 reaches C's read.
    assert "x3" in {d.name for d in r.reaching("5", "x")}
    # x3 ordered before B's x4: x4 reaches the join.
    assert "x4" in {d.name for d in r.reaching("6", "x")}
