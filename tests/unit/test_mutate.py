"""Metamorphic transforms (:mod:`repro.fuzz.mutate`): every mutant must
stay a well-formed program — parser round-trip and PFG validation — on
50 seeded generator programs, and the transform bookkeeping (statement
and variable maps) must be usable for chain comparison.
"""

import pytest

from repro.fuzz.mutate import MUTATORS, apply_mutators, clone_program
from repro.lang import ast, parse_program, pretty
from repro.lang.ast import structurally_equal
from repro.pfg import build_pfg, validate_pfg
from repro.synthetic import GeneratorConfig, generate_program

SEEDS = range(50)


def _program(seed):
    return generate_program(
        seed, GeneratorConfig(target_stmts=20, p_parallel=0.3), name=f"m{seed}"
    )


@pytest.mark.parametrize("name", sorted(MUTATORS))
def test_mutants_round_trip_and_validate(name):
    mutator = MUTATORS[name]
    produced = 0
    for seed in SEEDS:
        program = _program(seed)
        mutation = mutator(program, seed)
        if mutation is None:  # transform not applicable (e.g. no sections)
            continue
        produced += 1
        mutant = mutation.program
        reparsed = parse_program(pretty(mutant))
        assert structurally_equal(mutant, reparsed), f"{name} seed {seed}"
        validate_pfg(build_pfg(mutant))
    # Every transform must actually fire on a healthy share of programs
    # (reorder-sections needs a construct with no synchronization below
    # it, which the generator produces less often).
    floor = 15 if name == "reorder-sections" else 25
    assert produced >= floor, f"{name} produced only {produced}/50 mutants"


@pytest.mark.parametrize("name", sorted(MUTATORS))
def test_mutants_do_not_alias_the_original(name):
    mutator = MUTATORS[name]
    for seed in range(10):
        program = _program(seed)
        baseline = pretty(program)
        mutation = mutator(program, seed)
        if mutation is None:
            continue
        assert pretty(program) == baseline, f"{name} mutated its input"
        own = {id(s) for s in mutation.program.walk()}
        assert all(id(s) not in own for s in program.walk())


def test_stmt_map_covers_every_original_statement():
    for seed in range(10):
        program = _program(seed)
        for name in sorted(MUTATORS):
            mutation = MUTATORS[name](program, seed)
            if mutation is None:
                continue
            mutant_stmts = {id(s) for s in mutation.program.walk()}
            for stmt in program.walk():
                mapped = mutation.mapped(stmt)
                assert mapped is not None, f"{name}: unmapped {type(stmt).__name__}"
                assert id(mapped) in mutant_stmts


def test_rename_is_bijective_and_total():
    program = _program(3)
    mutation = MUTATORS["rename"](program, 3)
    assert mutation is not None
    vmap = mutation.var_map
    assert len(set(vmap.values())) == len(vmap)
    mutant_vars = set()
    for stmt in mutation.program.walk():
        if isinstance(stmt, ast.Assign):
            mutant_vars.add(stmt.target)
            mutant_vars.update(stmt.expr.variables())
        elif isinstance(stmt, (ast.If, ast.While)):
            mutant_vars.update(stmt.cond.variables())
    assert mutant_vars <= set(vmap.values())


def test_clone_program_is_deep_and_mapped():
    program = _program(0)
    clone, smap = clone_program(program)
    assert structurally_equal(program, clone)
    for stmt in program.walk():
        assert id(smap[id(stmt)]) != id(stmt)


def test_apply_mutators_is_deterministic():
    program = _program(7)
    a = apply_mutators(program, seed=7)
    b = apply_mutators(program, seed=7)
    assert [m.name for m in a] == [m.name for m in b]
    for ma, mb in zip(a, b):
        assert pretty(ma.program) == pretty(mb.program)
