"""Delta-debugging shrinker (:mod:`repro.fuzz.shrink`): minimized
programs satisfy the failing predicate, stay well-formed, shrink
deterministically, and the emitted regression snippet is runnable
pytest source.
"""

from repro.fuzz.shrink import (
    ShrinkResult,
    regression_snippet,
    shrink,
    stmt_count,
    well_formed,
)
from repro.lang import ast, parse_program, pretty
from repro.synthetic import GeneratorConfig, generate_program


def _program(seed, target=40):
    return generate_program(
        seed, GeneratorConfig(target_stmts=target, p_parallel=0.3), name=f"s{seed}"
    )


def _uses_var(name):
    def predicate(program):
        for stmt in program.walk():
            if isinstance(stmt, ast.Assign) and name in stmt.expr.variables():
                return True
        return False

    return predicate


def test_shrink_to_single_interesting_statement():
    program = _program(0, target=40)
    # Find a variable actually read somewhere, then shrink to "still reads it".
    read = next(
        v
        for stmt in program.walk()
        if isinstance(stmt, ast.Assign)
        for v in stmt.expr.variables()
    )
    result = shrink(program, _uses_var(read))
    assert _uses_var(read)(result.program)
    assert well_formed(result.program)
    assert result.shrunk_stmts <= result.original_stmts
    assert result.shrunk_stmts <= 3


def test_shrink_is_deterministic():
    program = _program(5, target=60)
    read = next(
        v
        for stmt in program.walk()
        if isinstance(stmt, ast.Assign)
        for v in stmt.expr.variables()
    )
    a = shrink(program, _uses_var(read))
    b = shrink(program, _uses_var(read))
    assert pretty(a.program) == pretty(b.program)
    assert (a.rounds, a.attempts, a.accepted) == (b.rounds, b.attempts, b.accepted)


def test_shrink_never_accepts_ill_formed_candidates():
    program = _program(3, target=30)
    seen = []

    def predicate(candidate):
        seen.append(candidate)
        return True  # everything "fails": shrinker drives toward minimal

    result = shrink(program, predicate)
    for candidate in seen:
        assert well_formed(candidate), pretty(candidate)
    assert well_formed(result.program)
    assert result.shrunk_stmts >= 1  # programs never shrink to an empty body


def test_shrink_result_reduction_and_format():
    result = ShrinkResult(
        program=_program(0, target=10),
        original_stmts=50,
        shrunk_stmts=5,
        rounds=2,
        attempts=40,
        accepted=7,
    )
    assert result.reduction == 0.1
    assert "50" in result.format() and "5" in result.format()


def test_regression_snippet_is_executable_pytest_source():
    program = _program(1, target=15)
    snippet = regression_snippet(
        program, oracle="pipeline-invariants", test_name="test_pinned_example"
    )
    namespace = {}
    exec(compile(snippet, "<snippet>", "exec"), namespace)
    namespace["test_pinned_example"]()


def test_well_formed_rejects_unparseable_structures():
    program = _program(2, target=10)
    assert well_formed(program)
    empty = ast.Program(name="empty", events=[], body=[])
    assert not well_formed(empty)


def test_stmt_count_counts_nested_statements():
    program = parse_program(
        """program p
  loop
    x = 1
    parallel sections
      section A
        y = x
      section B
        z = 2
    end parallel sections
  endloop
end program
"""
    )
    # 5 leaf statements plus the loop and parallel-sections constructs:
    # the measure counts every Stmt node, so unwrapping a construct is
    # itself progress even when its body survives intact.
    assert stmt_count(program) == 7
