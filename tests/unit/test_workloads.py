"""Workload family tests: shapes, analyzability, expected precision."""

import pytest

from repro import analyze, build_pfg, validate_pfg
from repro.analysis import races
from repro.interp import RandomScheduler, run_program
from repro.synthetic import (
    WORKLOADS,
    chain,
    diamond_chain,
    fig3_repeated,
    loop_nest,
    nested_parallel,
    sync_pipeline,
    wide_parallel,
)


def test_chain_sizes():
    g = build_pfg(chain(50))
    validate_pfg(g)
    assert len(g.defs) == 50


def test_diamond_chain_structure():
    g = build_pfg(diamond_chain(8))
    validate_pfg(g)
    branches = [n for n in g.nodes if n.cond is not None]
    assert len(branches) == 8


def test_wide_parallel_sections():
    g = build_pfg(wide_parallel(6, 4))
    validate_pfg(g)
    assert len(g.succs(g.forks[0])) == 6


def test_nested_parallel_depth():
    g = build_pfg(nested_parallel(5))
    validate_pfg(g)
    assert len(g.forks) == 5


def test_loop_nest_back_edges():
    g = build_pfg(loop_nest(3))
    validate_pfg(g)
    assert len(g.back_edges()) == 3


def test_pipeline_is_race_free_with_preserved():
    prog = sync_pipeline(4)
    result = analyze(prog)
    assert races(result) == []


def test_pipeline_without_preserved_looks_racy():
    prog = sync_pipeline(4)
    result = analyze(prog, preserved="none")
    assert len(races(result)) > 0


def test_pipeline_executes_correctly():
    prog = sync_pipeline(5)
    for seed in range(5):
        run = run_program(prog, RandomScheduler(seed=seed))
        assert not run.deadlocked
        assert run.value("out") == 6  # x=1, then +1 per stage, 5 stages


def test_pipeline_join_sees_only_last_stage():
    result = analyze(sync_pipeline(4))
    join = result.graph.joins[0]
    x_defs = {d.name for d in result.reaching(join, "x")}
    assert len(x_defs) == 1  # only stage3's definition survives


def test_fig3_repeated_scales():
    prog = fig3_repeated(3)
    g = build_pfg(prog)
    validate_pfg(g)
    assert len(g.forks) == 6  # two constructs per copy
    result = analyze(prog)
    assert result.stats.converged


def test_registry_complete():
    assert set(WORKLOADS) == {
        "chain", "diamond", "wide", "nested", "loopnest", "pipeline", "fig3x",
        "pardo", "mix", "dloop", "pdloop", "plchain",
    }


@pytest.mark.parametrize("name,args", [
    ("chain", (10,)),
    ("diamond", (4,)),
    ("wide", (3, 3)),
    ("nested", (3,)),
    ("loopnest", (2,)),
    ("pipeline", (3,)),
    ("fig3x", (1,)),
    ("mix", (0, 20)),
    ("dloop", (4,)),
    ("pdloop", (2, 2)),
    ("plchain", (2, 3)),
])
def test_all_workloads_analyzable(name, args):
    prog = WORKLOADS[name](*args)
    result = analyze(prog)
    assert result.stats.converged


def test_pardo_grid_structure():
    from repro.synthetic import pardo_grid

    prog = pardo_grid(3, 2)
    g = build_pfg(prog)
    validate_pfg(g)
    assert len(g.pardos) == 3
    result = analyze(prog)
    assert result.stats.converged
    # 'seed' is written in every construct: cross-iteration race per merge.
    cross = [a for a in races(result) if a.var == "seed"]
    assert len(cross) == 3
