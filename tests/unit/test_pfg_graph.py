"""Graph container tests: adjacency views, traversal, back edges."""

import pytest

from repro.lang import parse_program
from repro.pfg import EdgeKind, NodeKind, ParallelFlowGraph, build_pfg


def test_duplicate_edges_ignored():
    g = ParallelFlowGraph("t")
    a = g.new_node(NodeKind.BASIC, "a")
    b = g.new_node(NodeKind.BASIC, "b")
    g.add_edge(a, b, EdgeKind.SEQ)
    g.add_edge(a, b, EdgeKind.SEQ)
    assert g.succs(a) == [b]


def test_same_endpoints_different_kind_both_kept():
    g = ParallelFlowGraph("t")
    a = g.new_node(NodeKind.BASIC, "a")
    b = g.new_node(NodeKind.BASIC, "b")
    g.add_edge(a, b, EdgeKind.SEQ)
    g.add_edge(a, b, EdgeKind.SYNC)
    assert len(g.out_edges(a)) == 2


def test_pred_families_split_by_kind(fig3_graph):
    g = fig3_graph
    n8 = g.node("8")
    assert {p.name for p in g.sync_preds(n8)} == {"4", "5"}
    assert {p.name for p in g.par_preds(n8)} == {"7"}
    assert g.seq_preds(n8) == []
    assert {p.name for p in g.all_preds(n8)} == {"4", "5", "7"}


def test_control_preds_exclude_sync(fig3_graph):
    g = fig3_graph
    assert {p.name for p in g.control_preds(g.node("8"))} == {"7"}


def test_node_lookup_by_name(fig3_graph):
    assert fig3_graph.node("11").kind is NodeKind.JOIN
    with pytest.raises(KeyError):
        fig3_graph.node("nope")


def test_rpo_starts_at_entry_and_respects_edges(fig3_graph):
    rpo = fig3_graph.reverse_postorder()
    assert rpo[0] is fig3_graph.entry
    pos = {n: i for i, n in enumerate(rpo)}
    back = fig3_graph.back_edges()
    for src, dst, kind in fig3_graph.edges():
        if kind is EdgeKind.SYNC or (src, dst) in back:
            continue
        assert pos[src] < pos[dst], f"{src.name} should precede {dst.name}"


def test_back_edges_found(fig3_graph):
    assert {(a.name, b.name) for a, b in fig3_graph.back_edges()} == {("12", "1")}


def test_forward_control_preds_drop_back_edge(fig3_graph):
    g = fig3_graph
    preds = g.forward_control_preds(g.node("1"))
    assert {p.name for p in preds} == {"Entry"}


def test_no_back_edges_in_dag():
    g = build_pfg(parse_program("program p\nif c then\nx=1\nendif\nend"))
    assert g.back_edges() == set()


def test_document_order_is_creation_order(fig3_graph):
    assert [n.id for n in fig3_graph.document_order()] == list(range(len(fig3_graph)))


def test_edge_count_by_kind(fig3_graph):
    assert fig3_graph.edge_count((EdgeKind.SYNC,)) == 2
    total = fig3_graph.edge_count()
    assert total == len(list(fig3_graph.edges()))


def test_names_unique(fig3_graph):
    names = fig3_graph.names()
    assert len(set(names)) == len(names)


def test_describe_mentions_every_node(fig3_graph):
    text = fig3_graph.describe()
    for n in fig3_graph.nodes:
        assert f"[{n.name}:" in text
