"""Interpreter unit tests: sequential semantics, fork/join merging,
events, provenance, deadlock, budgets."""

import pytest

from repro.interp import (
    Interpreter,
    RandomScheduler,
    RoundRobinScheduler,
    StepBudgetExceeded,
    run_program,
)
from repro.lang import parse_program


def run(src, scheduler=None, **kw):
    return run_program(parse_program(src), scheduler=scheduler, **kw)


def test_straightline_arithmetic():
    r = run("program p\nx = 2\ny = x * 3 + 1\nend")
    assert r.value("y") == 7


def test_division_and_modulo():
    r = run("program p\na = 7 / 2\nb = 7 % 2\nc = 7 / 0\nend")
    assert r.value("a") == 3 and r.value("b") == 1 and r.value("c") == 0


def test_comparisons_and_logic():
    r = run("program p\na = 1 < 2\nb = 2 <= 1\nc = a and not b\nend")
    assert r.value("c") is True


def test_if_takes_correct_branch():
    r = run("program p\nx = 5\nif x > 3 then\ny = 1\nelse\ny = 2\nendif\nend")
    assert r.value("y") == 1


def test_while_loop_terminates():
    r = run("program p\nx = 0\nwhile x < 5 do\nx = x + 1\nendwhile\nend")
    assert r.value("x") == 5


def test_loop_trip_count_from_scheduler():
    r = run(
        "program p\nx = 0\nloop\nx = x + 1\nendloop\nend",
        RoundRobinScheduler(max_loop_iters=4),
    )
    assert r.value("x") == 4


def test_free_variable_fixed_per_run():
    r = run("program p\na = q\nb = q\nend", RandomScheduler(seed=5))
    assert r.value("a") == r.value("b")
    assert "q" in r.inputs


def test_fork_copies_and_join_merges():
    src = """program p
x = 1
parallel sections
  section A
    x = 2
  section B
    y = x
end parallel sections
end"""
    r = run(src, RoundRobinScheduler())
    # B read its fork-time copy, A's write merged back at the join.
    assert r.value("y") == 1
    assert r.value("x") == 2


def test_join_merge_records_conflicts():
    src = """program p
x = 0
parallel sections
  section A
    x = 1
  section B
    x = 2
end parallel sections
end"""
    r = run(src, RandomScheduler(seed=0))
    (merge,) = [m for m in r.merges if m.var == "x"]
    assert len(merge.candidates) == 2
    assert r.value("x") in (1, 2)


def test_unchanged_variable_kept_from_parent():
    src = """program p
x = 9
parallel sections
  section A
    y = 1
  section B
    z = 2
end parallel sections
end"""
    r = run(src)
    assert r.value("x") == 9 and r.merges == []


def test_post_wait_transfers_values():
    src = """program p
event e
parallel sections
  section A
    x = 42
    post(e)
  section B
    wait(e)
    y = x
end parallel sections
end"""
    for seed in range(10):
        r = run(src, RandomScheduler(seed=seed))
        assert not r.deadlocked
        assert r.value("y") == 42


def test_wait_without_post_deadlocks():
    src = """program p
event e
parallel sections
  section A
    wait(e)
  section B
    x = 1
end parallel sections
end"""
    r = run(src)
    assert r.deadlocked


def test_clear_resets_event():
    src = """program p
event e
post(e)
clear(e)
parallel sections
  section A
    wait(e)
  section B
    x = 1
end parallel sections
end"""
    r = run(src)
    assert r.deadlocked  # post was cleared before the construct


def test_stale_event_releases_wait():
    src = """program p
event e
post(e)
parallel sections
  section A
    wait(e)
    x = 1
  section B
    y = 2
end parallel sections
end"""
    r = run(src)
    assert not r.deadlocked and r.value("x") == 1


def test_nested_parallel_sections():
    src = """program p
x = 0
parallel sections
  section A
    parallel sections
      section A1
        a = 1
      section A2
        b = 2
    end parallel sections
    c = a + b
  section B
    d = 4
end parallel sections
y = c + d
end"""
    r = run(src)
    assert r.value("y") == 7


def test_use_observations_carry_definitions():
    src = "program p\n(1) x = 1\n(2) y = x\nend"
    r = run(src)
    obs = [o for o in r.uses if o.use.var == "x"]
    assert len(obs) == 1
    assert obs[0].definition.name == "x1"
    assert obs[0].use.site == "2"


def test_input_observation_has_no_definition():
    r = run("program p\ny = q\nend")
    (obs,) = r.uses
    assert obs.definition is None


def test_step_budget_enforced():
    src = "program p\nx = 0\nwhile 1 < 2 do\nx = x + 1\nendwhile\nend"
    with pytest.raises(StepBudgetExceeded):
        run(src, max_steps=100)


def test_steps_counted():
    r = run("program p\nx = 1\ny = 2\nend")
    assert r.steps > 0


def test_deterministic_under_fixed_seed():
    src = """program p
x = 0
parallel sections
  section A
    x = x + 1
  section B
    x = x + 2
end parallel sections
end"""
    runs = [run(src, RandomScheduler(seed=9)).value("x") for _ in range(3)]
    assert len(set(runs)) == 1


# -- deadlock reporting (the `repro run` / `repro check` surface) ---------

DEADLOCK_SRC = """program p
event e
parallel sections
  section A
    wait(e)
    x = 1
  section B
    y = 2
end parallel sections
end"""


def test_deadlock_reports_blocked_events():
    r = run(DEADLOCK_SRC)
    assert r.deadlocked
    assert r.blocked_events == ["e"]


def test_no_deadlock_means_no_blocked_events():
    r = run("program p\nx = 1\nend")
    assert not r.deadlocked and r.blocked_events == []


def test_deadlock_metric_counted():
    from repro import obs

    prog = parse_program(DEADLOCK_SRC)
    with obs.session() as sess:
        result = run_program(prog)
    assert result.deadlocked
    counters = sess.metrics.as_dict()["counters"]
    assert counters["interp.deadlocks"] == 1
    assert counters["interp.runs"] == 1
