"""Dead-code elimination client tests."""

from repro import analyze
from repro.analysis import find_dead_code
from repro.lang import parse_program


def dead_names(src, **kw):
    report = find_dead_code(analyze(parse_program(src)), **kw)
    return {d.name for d in report.dead}


def test_unused_def_is_dead_when_not_observable():
    assert dead_names("program p\n(1) x = 1\n(2) x = 2\nend") == {"x1"}


def test_exit_reaching_defs_live_by_default():
    assert dead_names("program p\n(1) x = 1\nend") == set()


def test_exit_observability_can_be_disabled():
    assert dead_names("program p\n(1) x = 1\nend", observable_at_exit=False) == {"x1"}


def test_transitive_liveness():
    # y feeds z which reaches exit: both live; w is dead (overwritten,
    # never read).
    src = "program p\n(1) w = 1\n(2) y = 2\n(3) z = y\n(4) w = z\nend"
    assert dead_names(src) == {"w1"}


def test_branch_condition_keeps_defs_alive():
    src = "program p\n(1) c = 1\nif c < 2 then\n(2) c = 9\nendif\nend"
    assert "c1" not in dead_names(src, observable_at_exit=False)


def test_parallel_kill_enables_cross_construct_dce(fig8_result):
    # b1 is unconditionally killed by both sections of fig6 and never
    # read: the parallel equations prove it dead.
    from repro.analysis import find_dead_code

    report = find_dead_code(fig8_result)
    assert {d.name for d in report.dead} == {"b1"}


def test_sequential_equations_would_keep_it(fig6_graph):
    from repro.analysis import find_dead_code
    from repro.reachdefs import solve_sequential

    report = find_dead_code(solve_sequential(fig6_graph))
    # Naive sequential analysis lets b1 reach the exit → not provably dead.
    assert "b1" not in {d.name for d in report.dead}


def test_live_dead_partition(fig8_result):
    report = find_dead_code(fig8_result)
    all_defs = set(fig8_result.graph.defs)
    assert report.live | report.dead == frozenset(all_defs)
    assert not (report.live & report.dead)


def test_format():
    src = "program p\n(1) x = 1\n(2) x = 2\nend"
    report = find_dead_code(analyze(parse_program(src)))
    assert "x1" in report.format()
    clean = find_dead_code(analyze(parse_program("program p\n(1) x=1\nend")))
    assert clean.format() == "no dead definitions"
