"""The soundness oracle behind ``repro check``."""

from repro import analyze, obs, parse_program
from repro.interp import RandomScheduler, run_program
from repro.robust import corrupt_result, self_check, verify_result
import repro.robust.selfcheck as selfcheck_mod

SYNC = """program sync
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) data = x + 1
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = data
  (5) end parallel sections
  (5) z = y
end program
"""

DEADLOCK = """program dl
  event e
  (1) a = 1
  (2) parallel sections
    (3) section one
      (3) wait(e)
      (3) b = a
    (4) section two
      (4) c = 2
  (5) end parallel sections
end program
"""


def test_self_check_passes_on_sound_program():
    report = self_check(parse_program(SYNC), runs=4)
    assert report.ok
    assert report.runs == 4
    assert report.violations == []
    assert report.degradation is None
    assert report.system == "synch"
    text = report.format()
    assert text.startswith("self-check PASS: 4 runs against the synch system")


def test_self_check_surfaces_deadlocks_without_failing():
    report = self_check(parse_program(DEADLOCK), runs=3)
    # A deadlock is a program bug, not an analysis soundness violation:
    # observations made before blocking must still be explained.
    assert report.ok
    assert report.deadlocked_seeds == [0, 1, 2]
    assert "deadlocked under seed(s) 0, 1, 2" in report.format()
    # The ladder also flagged the wait-without-post lint.
    assert report.degradation is not None
    assert "wait-without-post" in report.degradation.reason


def test_self_check_explicit_seeds():
    report = self_check(parse_program(SYNC), seeds=[10, 20])
    assert report.ok and report.runs == 2


def test_self_check_fails_on_tampered_result(monkeypatch):
    """Hand the oracle a corrupted analysis: it must FAIL deterministically."""
    prog = parse_program(SYNC)
    sound = analyze(prog)
    probe = run_program(prog, RandomScheduler(seed=0, max_loop_iters=2), graph=sound.graph)
    tampered, injected = corrupt_result(sound, probe, seed=0)
    monkeypatch.setattr(
        selfcheck_mod, "analyze_with_degradation", lambda *a, **k: (tampered, None)
    )
    report = self_check(prog, runs=5)
    assert not report.ok
    text = report.format()
    assert text.startswith("self-check FAIL")
    assert injected.definition in text


def test_verify_result_reports_per_seed():
    prog = parse_program(SYNC)
    result = analyze(prog)
    violations, deadlocked = verify_result(result, prog, seeds=range(6))
    assert violations == [] and deadlocked == []


def test_self_check_metrics():
    prog = parse_program(SYNC)
    with obs.session() as sess:
        self_check(prog, runs=3)
    counters = sess.metrics.as_dict()["counters"]
    assert counters["robust.selfcheck.runs"] == 3
    assert counters["robust.selfcheck.pass"] == 1
    assert "robust.selfcheck.fail" not in counters
