"""Unit tests for the ``repro-serve/1`` wire protocol."""

import pytest

from repro.batch import TASK_EXIT_CODES
from repro.serve import protocol


def _request(**overrides):
    base = {
        "id": "req-1",
        "method": "analyze",
        "params": {"source": "program p\n  (1) a = 1\nend program\n"},
    }
    base.update(overrides)
    return base


class TestValidateRequest:
    def test_minimal_request_passes(self):
        req = _request()
        assert protocol.validate_request(req) is req

    def test_method_defaults_to_analyze(self):
        req = _request()
        del req["method"]
        assert protocol.validate_request(req) is req

    def test_integer_id_allowed(self):
        protocol.validate_request(_request(id=7))

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda r: r.pop("id"), "id"),
            (lambda r: r.update(id=None), "id"),
            (lambda r: r.update(id=[1]), "id"),
            (lambda r: r.update(method="explode"), "method"),
            (lambda r: r.update(params=None), "params"),
            (lambda r: r.update(params={}), "source"),
            (lambda r: r["params"].update(source="   "), "source"),
            (lambda r: r["params"].update(backend="quantum"), "backend"),
            (lambda r: r["params"].update(preserved="all"), "preserved"),
            (lambda r: r["params"].update(solver="magic"), "solver"),
            (lambda r: r["params"].update(max_passes=0), "max_passes"),
            (lambda r: r["params"].update(max_passes="ten"), "max_passes"),
            (lambda r: r["params"].update(deadline_s=-1), "deadline_s"),
            (lambda r: r.update(chaos="yes"), "chaos"),
        ],
    )
    def test_violations_raise_with_actionable_message(self, mutate, fragment):
        req = _request()
        mutate(req)
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.validate_request(req)
        assert fragment in str(exc.value)

    def test_non_dict_body_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request([1, 2, 3])

    def test_valid_option_values_accepted(self):
        req = _request()
        req["params"].update(
            backend="numpy",
            preserved="none",
            solver="worklist",
            max_passes=10,
            deadline_s=2.5,
        )
        protocol.validate_request(req)


class TestEnvelope:
    def test_codes_align_with_batch_exit_contract(self):
        # A serve response row answers "what would this program have
        # exited with?" — the shared statuses must agree with batch.
        for status in ("ok", "degraded", "error", "failed", "invariant", "crashed"):
            assert protocol.STATUS_CODES[status] == TASK_EXIT_CODES[status]
        # Transport refusals claim a code no per-program outcome uses.
        assert protocol.STATUS_CODES["shed"] == 5
        assert protocol.STATUS_CODES["draining"] == 5
        assert 5 not in TASK_EXIT_CODES.values()

    def test_http_mapping(self):
        assert protocol.http_status("ok") == 200
        assert protocol.http_status("crashed") == 200  # RPC succeeded; body is typed
        assert protocol.http_status("bad-request") == 400
        assert protocol.http_status("shed") == 429
        assert protocol.http_status("draining") == 503

    def test_response_shape(self):
        env = protocol.response("r1", "ok", result={"program": "p"}, attempts=2)
        assert env["schema"] == protocol.SCHEMA
        assert env["id"] == "r1"
        assert env["code"] == 0
        assert env["attempts"] == 2
        assert env["timings"] == {}
        assert protocol.classify(env) == ("ok", 0)

    def test_response_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            protocol.response("r1", "mystery")

    def test_classify_rejects_foreign_schema(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.classify({"schema": "other/9", "status": "ok", "code": 0})
