"""Unit tests for the sparse SCC-scheduled solver (repro.dataflow.sched)."""

import pytest

from repro import analyze, obs, parse_program
from repro.dataflow.budget import BudgetExceeded, ResourceBudget
from repro.dataflow.framework import EquationSystem
from repro.dataflow.sched import build_schedule, get_schedule, solve_scc
from repro.dataflow.solver import SOLVERS, solve_round_robin
from repro.paper import programs
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch
from repro.reachdefs.parallel import ParallelRDSystem
from repro.reachdefs.synch import SynchRDSystem
from repro.reachdefs.preserved import resolve_preserved
from repro.synthetic import chain, diamond_chain, nested_parallel


class ChainReach(EquationSystem):
    """Acyclic chain 0 -> 1 -> ... -> n-1 (same toy as test_solver.py)."""

    def __init__(self, n):
        self.n = n
        self.vals = {}

    def nodes(self):
        return list(range(self.n))

    def initialize(self):
        self.vals = {i: frozenset() for i in range(self.n)}

    def update(self, i):
        new = frozenset({i}) | (self.vals[i - 1] if i > 0 else frozenset())
        changed = new != self.vals[i]
        self.vals[i] = new
        return changed

    def dependents(self, i):
        return [i + 1] if i + 1 < self.n else []

    def snapshot(self):
        return dict(self.vals)


class RingReach(ChainReach):
    """Chain whose last node feeds back to 0: one big cyclic SCC."""

    def update(self, i):
        prev = self.vals[(i - 1) % self.n]
        new = frozenset({i}) | prev
        changed = new != self.vals[i]
        self.vals[i] = new
        return changed

    def dependents(self, i):
        return [(i + 1) % self.n]


# -- schedule construction -------------------------------------------------


def test_schedule_acyclic_chain_all_singletons():
    sched = build_schedule(ChainReach(10))
    assert len(sched.regions) == 10
    assert all(not r.cyclic for r in sched.regions)
    assert sched.n_cyclic == 0
    # Topological: each region's node precedes its dependent's region.
    assert [r.nodes for r in sched.regions] == [[i] for i in range(10)]


def test_schedule_ring_is_one_cyclic_region():
    sched = build_schedule(RingReach(6))
    assert len(sched.regions) == 1
    assert sched.regions[0].cyclic
    assert sorted(sched.regions[0].nodes) == list(range(6))


def test_schedule_self_loop_is_cyclic():
    class SelfLoop(ChainReach):
        def dependents(self, i):
            return [i]  # every node reads itself

    sched = build_schedule(SelfLoop(3))
    assert len(sched.regions) == 3
    assert all(r.cyclic for r in sched.regions)


def test_schedule_topological_order_on_paper_graph(fig3_graph):
    pres = resolve_preserved(fig3_graph, mode="approx")
    system = SynchRDSystem(fig3_graph, preserved=pres)
    sched = build_schedule(system)
    # Every cross-region dependence edge points forward in region order.
    for n in sched.nodes:
        for m in sched.dependents[n]:
            if sched.region_of[n] != sched.region_of[m]:
                assert sched.region_of[n] < sched.region_of[m]


def test_schedule_deterministic_and_order_independent(fig6_graph):
    a = build_schedule(ParallelRDSystem(fig6_graph))
    b = build_schedule(ParallelRDSystem(fig6_graph))
    assert [[n.name for n in r.nodes] for r in a.regions] == [
        [n.name for n in r.nodes] for r in b.regions
    ]


def test_get_schedule_cached_on_system_instance():
    system = ChainReach(5)
    with obs.session() as sess:
        first = get_schedule(system)
        second = get_schedule(system)
    assert second is first
    counters = sess.metrics.as_dict()["counters"]
    assert counters["solve.scc.schedule_builds"] == 1
    assert counters["solve.scc.schedule_cache_hits"] == 1
    # ...and construction ran under its own span.
    assert sess.tracer.find("schedule-build") is not None


# -- solving ---------------------------------------------------------------


def test_scc_exactly_once_on_acyclic_chain():
    system = solve_via_scc = ChainReach(50)
    stats = solve_scc(solve_via_scc)
    assert stats.converged
    assert stats.sweepless
    assert stats.node_updates == 50  # one evaluation per node, no sweeps
    assert system.vals[49] == frozenset(range(50))


def test_scc_matches_round_robin_on_ring():
    rr = RingReach(8)
    solve_round_robin(rr, order=list(range(8)))
    scc = RingReach(8)
    stats = solve_scc(scc)
    assert stats.converged
    assert scc.vals == rr.vals


def test_scc_verify_mode_passes_on_correct_dependents():
    system = ChainReach(10)
    stats = solve_scc(system, verify=True)
    assert stats.converged


def test_scc_verify_mode_catches_underapproximated_dependents():
    class LyingChain(ChainReach):
        def dependents(self, i):
            return []  # claims nothing reads anything

    with pytest.raises(RuntimeError, match="under-approximates"):
        solve_scc(LyingChain(10), verify=True)


def test_scc_registered_in_solvers():
    assert SOLVERS["scc"] is solve_scc


def test_scc_budget_charged_and_enforced():
    # The ring is one cyclic region; a tiny update cap trips inside it.
    budget = ResourceBudget(max_updates=3)
    with pytest.raises(BudgetExceeded):
        solve_scc(RingReach(8), budget=budget)


def test_scc_budget_pass_cap_spares_acyclic_graphs():
    # Singleton regions charge updates, not passes — an acyclic solve
    # runs under any pass cap.
    budget = ResourceBudget(max_passes=1)
    stats = solve_scc(ChainReach(30), budget=budget)
    assert stats.converged


# -- fixpoint equality on the paper's systems ------------------------------


@pytest.mark.parametrize("key", sorted(programs.SOURCES))
def test_scc_fixpoints_match_stabilized_on_paper_figures(key):
    graph = programs.graph(key)
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    if uses_sync:
        base = solve_synch(graph, solver="stabilized")
        fast = solve_synch(graph, solver="scc")
    elif uses_parallel:
        base = solve_parallel(graph, solver="stabilized")
        fast = solve_parallel(graph, solver="scc")
    else:
        base = solve_sequential(graph, solver="round-robin")
        fast = solve_sequential(graph, solver="scc")
    for n in graph.nodes:
        assert fast.in_sets[n] == base.in_sets[n], (key, n.name)
        assert fast.out_sets[n] == base.out_sets[n], (key, n.name)
    assert fast.stats.converged


@pytest.mark.parametrize(
    "make,expect_ratio",
    [(lambda: chain(200), 2.0), (lambda: diamond_chain(40), 2.0), (lambda: nested_parallel(6), 2.0)],
)
def test_scc_at_least_halves_round_robin_updates(make, expect_ratio):
    prog = make()
    rr = analyze(prog, solver="round-robin", cache=False)
    scc = analyze(prog, solver="scc", cache=False)
    assert rr.stats.node_updates >= expect_ratio * scc.stats.node_updates
    for n in rr.graph.nodes:
        assert scc.in_sets[scc.graph.node(n.name)] == rr.in_sets[n]


def test_scc_order_argument_does_not_change_fixpoint(fig3_graph):
    base = solve_synch(fig3_graph, solver="scc", order="document")
    for order in ("rpo", "reverse-document", "random:3"):
        other = solve_synch(fig3_graph, solver="scc", order=order)
        for n in fig3_graph.nodes:
            assert other.in_sets[n] == base.in_sets[n], (order, n.name)
            assert other.out_sets[n] == base.out_sets[n], (order, n.name)


def test_scc_snapshot_passes_rejected():
    graph = programs.graph("fig6")
    with pytest.raises(ValueError, match="no global sweeps"):
        solve_parallel(graph, solver="scc", snapshot_passes=True)


def test_scc_through_analyze_and_stats_render():
    prog = parse_program(programs.SOURCES["fig6"])
    result = analyze(prog, solver="scc", cache=False)
    assert result.stats.converged
    assert result.stats.sweepless
    d = result.stats.as_dict()
    assert "passes" not in d
    assert d["order"].startswith("scc/")
