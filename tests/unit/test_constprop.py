"""Constant-propagation client tests."""

from repro import analyze
from repro.analysis.constprop import UNDEF, VARYING, meet, propagate_constants
from repro.lang import parse_program
from repro.paper import programs


def run(src):
    result = analyze(parse_program(src))
    return result, propagate_constants(result)


def test_meet_lattice():
    assert meet(UNDEF, 3) == 3
    assert meet(3, UNDEF) == 3
    assert meet(3, 3) == 3
    assert meet(3, 4) is VARYING
    assert meet(VARYING, 3) is VARYING
    assert meet(True, 1) is VARYING  # bool vs int differ
    assert meet(UNDEF, UNDEF) is UNDEF


def test_straightline_constants():
    _, cp = run("program p\n(1) x = 2\n(2) y = x * 3\n(3) z = y + x\nend")
    defs = cp.result.graph.defs
    assert cp.value_of(defs.by_name("x1")) == 2
    assert cp.value_of(defs.by_name("y2")) == 6
    assert cp.value_of(defs.by_name("z3")) == 8


def test_branch_joins_to_varying():
    _, cp = run("program p\n(1) x=1\nif c then\n(2) x=2\nendif\n(3) y=x\nend")
    assert cp.value_at("3", "x") is VARYING
    assert cp.constant_at("3", "x") is None


def test_equal_branches_stay_constant():
    _, cp = run("program p\nif c then\n(1) x=5\nelse\n(2) x=5\nendif\n(3) y=x\nend")
    assert cp.constant_at("3", "x") == 5


def test_free_variable_is_varying():
    _, cp = run("program p\n(1) x = input + 1\nend")
    assert cp.value_of(cp.result.graph.defs.by_name("x1")) is VARYING


def test_paper_fig1b_k_is_5_after_construct():
    # §1: "the variable k has the value 5 at the end of the parallel
    # construct during each iteration" — requires the parallel equations.
    r = analyze(programs.program("fig1b"))
    cp = propagate_constants(r)
    assert cp.constant_at("6", "k") == 5


def test_paper_fig1a_k_not_constant():
    r = analyze(programs.program("fig1a"))
    cp = propagate_constants(r)
    assert cp.constant_at("6", "k") is None


def test_constants_through_parallel_sections():
    src = """program p
(1) x = 10
parallel sections
  section A
    (2) a = x * 2
  section B
    (3) b = x + 1
(4) end parallel sections
(4) y = a + b
end"""
    _, cp = run(src)
    assert cp.constant_at("4", "a") == 20
    assert cp.constant_at("4", "b") == 11
    assert cp.value_of(cp.result.graph.defs.by_name("y4")) == 31


def test_division_by_zero_is_varying():
    _, cp = run("program p\n(1) x = 0\n(2) y = 4 / x\nend")
    assert cp.value_of(cp.result.graph.defs.by_name("y2")) is VARYING


def test_boolean_operators():
    _, cp = run("program p\n(1) t = 1 < 2\n(2) u = t and true\nend")
    assert cp.value_of(cp.result.graph.defs.by_name("u2")) is True


def test_unary_operators():
    _, cp = run("program p\n(1) x = -3\n(2) y = not (1 < 0)\nend")
    assert cp.value_of(cp.result.graph.defs.by_name("x1")) == -3
    assert cp.value_of(cp.result.graph.defs.by_name("y2")) is True


def test_loop_increment_becomes_varying():
    _, cp = run("program p\n(1) x = 0\nloop\n(2) x = x + 1\nendloop\n(3) y = x\nend")
    assert cp.value_at("3", "x") is VARYING


def test_constant_defs_listing():
    _, cp = run("program p\n(1) x = 2\n(2) y = x + c\nend")
    consts = cp.constant_defs()
    assert {d.name: v for d, v in consts.items()} == {"x2" if False else "x1": 2}


def test_value_at_unreached_var_is_undef():
    _, cp = run("program p\n(1) x = 1\nend")
    assert cp.value_at("1", "nothere") is UNDEF
