"""Pretty-printer tests (round-trips; the property version lives in
tests/property/test_roundtrip.py)."""

from repro.lang import ast, parse_program, pretty
from repro.paper import programs


def roundtrip(source: str) -> None:
    prog = parse_program(source)
    again = parse_program(pretty(prog))
    assert ast.structurally_equal(prog, again)


def test_roundtrip_simple():
    roundtrip("program p\nx = 1 + 2 * y\nend")


def test_roundtrip_if_else():
    roundtrip("program p\nif a < b then\nx = 1\nelse\ny = 2\n(6) endif\nend")


def test_roundtrip_loops():
    roundtrip("program p\n(2) loop\nwhile x < 3 do\nx = x + 1\nendwhile\n(7) endloop\nend")


def test_roundtrip_parallel_and_sync():
    roundtrip(programs.SOURCES["fig3"])


def test_roundtrip_all_paper_programs():
    for key, src in programs.SOURCES.items():
        prog = parse_program(src)
        again = parse_program(pretty(prog))
        assert ast.structurally_equal(prog, again), key


def test_labels_rendered():
    text = pretty(parse_program("program p\n(4) x = 7\nend"))
    assert "(4) x = 7" in text


def test_end_labels_rendered():
    text = pretty(parse_program("program p\n(2) loop\nx=1\n(7) endloop\nend"))
    assert "(7) endloop" in text


def test_skip_rendered():
    text = pretty(parse_program("program p\nskip\nend"))
    assert "skip" in text


def test_events_rendered():
    text = pretty(parse_program("program p\nevent e\npost(e)\nend"))
    assert "event e" in text and "post(e)" in text
