"""May-happen-in-parallel and mutual-exclusion tests."""

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.pfg.concurrency import (
    concurrent,
    concurrent_nodes,
    mhp_matrix,
    mutually_exclusive,
    same_thread,
)


def test_fig3_concurrency(fig3_graph):
    g = fig3_graph
    n = {name: g.node(name) for name in g.names()}
    # Section A vs section B of the outer construct.
    assert concurrent(n["3"], n["7"])
    assert concurrent(n["4"], n["8"])
    assert concurrent(n["6"], n["9"])
    # Inner sections B1 vs B2.
    assert concurrent(n["8"], n["9"])
    # Same thread: never concurrent.
    assert not concurrent(n["4"], n["5"])
    assert not concurrent(n["3"], n["6"])
    # Fork/join/outside nodes are not concurrent with anything inside.
    assert not concurrent(n["2"], n["3"])
    assert not concurrent(n["11"], n["8"])
    assert not concurrent(n["Entry"], n["9"])


def test_node_not_concurrent_with_itself(fig3_graph):
    for node in fig3_graph.nodes:
        assert not concurrent(node, node)


def test_concurrency_symmetric(fig3_graph):
    nodes = fig3_graph.nodes
    for a in nodes:
        for b in nodes:
            assert concurrent(a, b) == concurrent(b, a)


def test_inner_fork_concurrent_with_sibling_section(fig3_graph):
    g = fig3_graph
    # node 7 (inner fork) lives in section B, concurrent with section A.
    assert concurrent(g.node("7"), g.node("4"))


def test_mhp_matrix_matches_pointwise(fig3_graph):
    matrix = mhp_matrix(fig3_graph)
    for a in fig3_graph.nodes:
        assert matrix[a] == frozenset(concurrent_nodes(fig3_graph, a))


def test_same_thread(fig3_graph):
    g = fig3_graph
    assert same_thread(g.node("3"), g.node("6"))
    assert not same_thread(g.node("3"), g.node("9"))


def test_mutually_exclusive_branches(fig3_graph):
    g = fig3_graph
    # if-branches 4 and 5: mutually exclusive.
    assert mutually_exclusive(g, g.node("4"), g.node("5"))
    # ordered nodes are not.
    assert not mutually_exclusive(g, g.node("3"), g.node("6"))
    # concurrent nodes are not.
    assert not mutually_exclusive(g, g.node("4"), g.node("8"))
    # a node with itself is not.
    assert not mutually_exclusive(g, g.node("4"), g.node("4"))


def test_nested_concurrency_three_sections():
    src = """program p
parallel sections
  section A
    (a) x = 1
  section B
    (b) y = 2
  section C
    (c) z = 3
end parallel sections
end"""
    g = build_pfg(parse_program(src))
    a, b, c = g.node("a"), g.node("b"), g.node("c")
    assert concurrent(a, b) and concurrent(b, c) and concurrent(a, c)


def test_sequential_constructs_not_concurrent():
    src = """program p
parallel sections
  section A
    (a) x = 1
  section B
    (b) y = 2
end parallel sections
parallel sections
  section C
    (c) z = 3
  section D
    (d) w = 4
end parallel sections
end"""
    g = build_pfg(parse_program(src))
    assert not concurrent(g.node("a"), g.node("c"))
    assert not concurrent(g.node("b"), g.node("d"))
    assert concurrent(g.node("c"), g.node("d"))


def test_nested_inherits_outer_concurrency():
    src = """program p
parallel sections
  section OUTER_A
    (a) x = 1
  section OUTER_B
    parallel sections
      section INNER_1
        (i1) y = 2
      section INNER_2
        (i2) z = 3
    end parallel sections
end parallel sections
end"""
    g = build_pfg(parse_program(src))
    # inner nodes are concurrent with the sibling outer section...
    assert concurrent(g.node("a"), g.node("i1"))
    assert concurrent(g.node("a"), g.node("i2"))
    # ...and with each other.
    assert concurrent(g.node("i1"), g.node("i2"))
