"""Region / parallel-construct tests."""

from repro.lang import parse_program
from repro.pfg import build_pfg, compute_regions


def test_fig3_regions(fig3_graph):
    regions = compute_regions(fig3_graph)
    assert len(regions) == 2
    outer, inner = regions[0], regions[1]
    assert outer.fork.name == "2" and outer.join.name == "11"
    assert inner.fork.name == "7" and inner.join.name == "10"
    assert outer.section_names == ("A", "B")
    assert inner.section_names == ("B1", "B2")


def test_section_nodes_cover_nested_constructs(fig3_graph):
    regions = compute_regions(fig3_graph)
    outer = regions[0]
    section_b = {n.name for n in outer.section_nodes[1]}
    # Section B contains the inner fork/join and both inner sections.
    assert {"7", "8", "9", "10"} <= section_b
    section_a = {n.name for n in outer.section_nodes[0]}
    assert section_a == {"3", "4", "5", "6"}


def test_section_of(fig3_graph):
    regions = compute_regions(fig3_graph)
    outer = regions[0]
    assert outer.section_of(fig3_graph.node("4")) == 0
    assert outer.section_of(fig3_graph.node("9")) == 1
    assert outer.section_of(fig3_graph.node("2")) is None  # the fork itself
    assert outer.section_of(fig3_graph.node("Entry")) is None


def test_enclosing_and_innermost(fig3_graph):
    regions = compute_regions(fig3_graph)
    n9 = fig3_graph.node("9")
    enclosing = regions.enclosing(n9)
    assert [c.construct_id for c in enclosing] == [0, 1]
    assert regions.innermost(n9).construct_id == 1
    assert regions.innermost(fig3_graph.node("1")) is None


def test_empty_section_still_listed():
    src = """program p
parallel sections
  section A
    skip
  section B
    y = 1
end parallel sections
end"""
    g = build_pfg(parse_program(src))
    regions = compute_regions(g)
    construct = regions[0]
    assert construct.n_sections == 2
    assert len(construct.section_nodes[0]) == 1  # the empty block


def test_no_constructs():
    g = build_pfg(parse_program("program p\nx = 1\nend"))
    assert len(compute_regions(g)) == 0
