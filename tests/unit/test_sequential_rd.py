"""Sequential reaching-definitions unit tests (paper §2)."""

import pytest

from repro.lang import parse_program
from repro.pfg import build_pfg
from repro.reachdefs import solve_sequential


def solve(src, **kw):
    return solve_sequential(build_pfg(parse_program(src)), **kw)


def test_straightline_kill():
    r = solve("program p\n(1) x = 1\n(2) x = 2\n(3) y = x\nend")
    assert r.in_names("3") == {"x2"}
    assert r.out_names("3") == {"x2", "y3"}


def test_branch_merges_both_definitions():
    r = solve("program p\n(1) x=1\n(2) if c then\n(3) x=2\nendif\n(4) y=x\nend")
    assert r.reaching("4", "x") == {r.graph.defs.by_name("x1"), r.graph.defs.by_name("x3")}


def test_both_branches_kill():
    r = solve("program p\n(1) x=1\n(2) if c then\n(3) x=2\nelse\n(4) x=3\nendif\n(5) y=x\nend")
    assert {d.name for d in r.reaching("5", "x")} == {"x3", "x4"}


def test_loop_carried_definitions_reach_header():
    r = solve("program p\n(1) x=1\n(2) loop\n(3) x=x+1\n(4) endloop\nend")
    assert {d.name for d in r.reaching("2", "x")} == {"x1", "x3"}


def test_use_before_def_in_same_block():
    r = solve("program p\n(1) x=1\n(2) y=x\n(2) x=2\nend")
    from repro.ir.defs import Use

    assert {d.name for d in r.reaching_use(Use("x", "2", 0))} == {"x1"}


def test_use_after_def_in_same_block_sees_local():
    r = solve("program p\n(1) x=1\n(2) x=2\n(2) y=x\nend")
    from repro.ir.defs import Use

    assert {d.name for d in r.reaching_use(Use("x", "2", 1))} == {"x2"}


def test_empty_program():
    r = solve("program p\nskip\nend")
    assert r.in_names("Exit") == frozenset()


def test_uninitialized_use_has_no_reaching_defs():
    r = solve("program p\n(1) y = x\nend")
    assert r.reaching("1", "x") == frozenset()


@pytest.mark.parametrize("backend", ["set", "bitset", "numpy"])
def test_backends_equal_on_fig1a(fig1a_graph, backend):
    base = solve_sequential(fig1a_graph, backend="bitset")
    other = solve_sequential(fig1a_graph, backend=backend)
    for n in fig1a_graph.nodes:
        assert base.In(n) == other.In(n)
        assert base.Out(n) == other.Out(n)


@pytest.mark.parametrize("solver", ["round-robin", "worklist"])
@pytest.mark.parametrize("order", ["document", "rpo", "reverse-document"])
def test_solver_and_order_do_not_change_fixpoint(fig1a_graph, solver, order):
    base = solve_sequential(fig1a_graph)
    other = solve_sequential(fig1a_graph, solver=solver, order=order)
    for n in fig1a_graph.nodes:
        assert base.In(n) == other.In(n)


def test_unknown_solver_rejected(fig1a_graph):
    with pytest.raises(ValueError):
        solve_sequential(fig1a_graph, solver="magic")


def test_result_metadata(fig1a_graph):
    r = solve_sequential(fig1a_graph)
    assert r.system == "sequential"
    assert r.acc_killin is None
    assert r.stats.converged
