"""Concurrent SSA construction tests."""

import pytest

from repro import analyze, build_pfg
from repro.cssa import MergeKind, build_cssa, render_cssa
from repro.lang import parse_program
from repro.paper import programs


def cssa_of(src):
    graph = build_pfg(parse_program(src))
    return graph, build_cssa(graph)


def merge_kinds(form):
    return {(m.node.name, m.var): m.kind for m in form.merges.values()}


def test_straightline_no_merges():
    graph, form = cssa_of("program p\n(1) x = 1\n(2) x = x + 1\n(3) y = x\nend")
    assert form.merges == {}
    defs = graph.defs
    assert str(form.version_of(defs.by_name("x1"))) == "x_1"
    assert str(form.version_of(defs.by_name("x2"))) == "x_2"


def test_versions_dense_per_variable():
    _graph, form = cssa_of("program p\n(1) x = 1\n(1) y = 2\n(2) x = 3\nend")
    assert [str(v) for v in form.all_versions("x")] == ["x_1", "x_2"]
    assert [str(v) for v in form.all_versions("y")] == ["y_1"]


def test_phi_at_sequential_merge():
    graph, form = cssa_of(
        "program p\n(1) x=1\n(2) if c then\n(3) x=2\nelse\n(4) x=3\n(5) endif\n(5) y=x\nend"
    )
    kinds = merge_kinds(form)
    assert kinds == {("5", "x"): MergeKind.PHI}
    merge = form.merges[(graph.node("5"), "x")]
    assert {str(v) for v in merge.arg_versions()} == {"x_2", "x_3"}


def test_phi_at_loop_header():
    graph, form = cssa_of("program p\n(1) x=1\n(2) loop\n(3) x=x+1\n(4) endloop\nend")
    kinds = merge_kinds(form)
    assert kinds == {("2", "x"): MergeKind.PHI}
    # the loop body's use of x reads the header φ
    from repro.ir.defs import Use

    assert str(form.use_versions[Use("x", "3", 0)]).startswith("x_")
    merge = form.merges[(graph.node("2"), "x")]
    assert form.use_versions[Use("x", "3", 0)] == merge.target


def test_psi_at_parallel_join():
    graph, form = cssa_of(
        """program p
(1) b = 1
(2) parallel sections
  (3) section A
    (3) b = 2
  (4) section B
    (4) b = 3
(5) end parallel sections
end"""
    )
    kinds = merge_kinds(form)
    assert kinds == {("5", "b"): MergeKind.PSI}
    merge = form.merges[(graph.node("5"), "b")]
    # a ψ with distinct argument versions is the paper's join anomaly
    assert len(merge.arg_versions()) == 2


def test_no_psi_when_single_section_writes():
    _graph, form = cssa_of(
        """program p
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = 3
(5) end parallel sections
end"""
    )
    # Only section A writes x: at the join, A's version vs the fork copy
    # x_1 — a ψ is created (both versions arrive), mirroring the runtime
    # merge of changed/unchanged copies.
    kinds = merge_kinds(form)
    assert kinds[("5", "x")] == MergeKind.PSI


def test_pi_at_wait():
    graph, form = cssa_of(
        """program p
event e
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
    (3) post(e)
  (4) section B
    (4) wait(e)
    (4) y = x
(5) end parallel sections
end"""
    )
    kinds = merge_kinds(form)
    assert kinds[("4", "x")] == MergeKind.PI
    merge = form.merges[(graph.node("4"), "x")]
    # arguments: fork copy (x_1) and the posted version (x_2)
    assert {str(v) for v in merge.arg_versions()} == {"x_1", "x_2"}
    from repro.ir.defs import Use

    assert form.use_versions[Use("x", "4", 0)] == merge.target


def test_fig6_merge_structure(fig6_graph):
    form = build_cssa(fig6_graph)
    kinds = merge_kinds(form)
    assert kinds[("8", "c")] == MergeKind.PHI   # endif
    assert kinds[("9", "b")] == MergeKind.PSI   # inner join
    assert kinds[("10", "b")] == MergeKind.PSI  # outer join
    assert kinds[("10", "a")] == MergeKind.PSI


def test_fig6_expansion_covers_ud_chains(fig6_graph):
    form = build_cssa(fig6_graph)
    result = analyze(programs.program("fig6"))
    for use, version in form.use_versions.items():
        if version is None:
            continue
        expanded = {d.name for d in form.expand(version)}
        static = {d.name for d in result.reaching_use(use)}
        assert static <= expanded, use


def test_expansion_equals_ud_chains_on_sequential(fig1a_graph):
    form = build_cssa(fig1a_graph)
    result = analyze(programs.program("fig1a"))
    for use, version in form.use_versions.items():
        if version is None:
            continue
        assert {d.name for d in form.expand(version)} == {
            d.name for d in result.reaching_use(use)
        }, use


def test_single_version_at_every_block_start(fig3_graph):
    form = build_cssa(fig3_graph)
    # SSA property: after placement, each (block, var) has one start
    # version — encoded by out_versions being a function, and every use
    # resolving to at most one version.
    for use, version in form.use_versions.items():
        assert version is None or version.var == use.var


def test_uninitialized_use_has_no_version():
    _graph, form = cssa_of("program p\n(1) y = q\nend")
    (version,) = form.use_versions.values()
    assert version is None


def test_render_contains_merges_and_versions(fig6_graph):
    form = build_cssa(fig6_graph)
    text = render_cssa(fig6_graph, form)
    assert "ψ(" in text and "φ(" in text
    assert "a_2 = (a_1 + 1)" in text
    assert "P_⊥" in text  # free variable rendered as undefined version


def test_merge_args_cover_all_preds(fig3_graph):
    form = build_cssa(fig3_graph)
    for (node, _var), merge in form.merges.items():
        assert len(merge.args) == len(fig3_graph.all_preds(node))
