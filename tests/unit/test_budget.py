"""ResourceBudget semantics and typed non-convergence across the solvers."""

import pytest

from repro import analyze, parse_program
from repro.dataflow import (
    BudgetExceeded,
    NonConvergenceError,
    ResourceBudget,
    check_budget,
)
from repro.dataflow.framework import FixpointDiverged, SolveStats
from repro.pfg import build_pfg
from repro.reachdefs import (
    compute_preserved,
    solve_parallel,
    solve_sequential,
    solve_synch,
)

SEQ = """program seq
  (1) x = 1
  (2) if x then
    (3) x = 2
  else
    (4) y = x
  endif
  (5) z = x + y
end program
"""

PAR = """program par
(1) x = 1
(2) parallel sections
  (3) section a
    (3) x = 2
  (4) section b
    (4) y = x
(5) end parallel sections
(5) z = y
end
"""

SYNC = """program sync
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) data = x + 1
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = data
  (5) end parallel sections
  (5) z = y
end program
"""


# -- ResourceBudget mechanics (fake clock, no solver involved) ------------


def test_empty_budget_never_trips():
    b = ResourceBudget()
    b.start()
    b.charge_pass(100)
    b.charge_updates(10_000)
    assert b.exceeded() is None


def test_pass_budget_allows_exactly_max_passes():
    b = ResourceBudget(max_passes=3)
    for _ in range(3):
        b.charge_pass()
        assert b.exceeded() is None
    b.charge_pass()
    assert "pass budget 3 exceeded" in b.exceeded()


def test_update_budget_message():
    b = ResourceBudget(max_updates=5)
    b.charge_updates(6)
    assert "update budget 5 exceeded (6 updates)" in b.exceeded()


def test_deadline_uses_injected_clock():
    t = [0.0]
    b = ResourceBudget(deadline_s=1.0, clock=lambda: t[0])
    b.start()
    assert b.exceeded() is None
    t[0] = 0.9
    assert b.exceeded() is None
    t[0] = 1.5
    assert "deadline 1.0s exceeded" in b.exceeded()
    assert b.elapsed() == pytest.approx(1.5)


def test_deadline_not_armed_until_start():
    t = [100.0]
    b = ResourceBudget(deadline_s=0.5, clock=lambda: t[0])
    # Not started: no deadline check, elapsed is zero.
    assert b.exceeded() is None
    assert b.elapsed() == 0.0
    b.start()
    t[0] = 100.4
    assert b.exceeded() is None
    # start() is idempotent — re-arming must not reset the origin.
    b.start()
    t[0] = 100.6
    assert b.exceeded() is not None


def test_negative_deadline_rejected():
    with pytest.raises(ValueError):
        ResourceBudget(deadline_s=-1)


def test_spent_and_fresh():
    t = [0.0]
    b = ResourceBudget(deadline_s=9.0, max_passes=7, max_updates=11, clock=lambda: t[0])
    b.start()
    b.charge_pass(2)
    b.charge_updates(30)
    t[0] = 0.25
    assert b.spent() == {"seconds": 0.25, "passes": 2, "updates": 30}
    f = b.fresh()
    assert f.spent() == {"seconds": 0.0, "passes": 0, "updates": 0}
    assert (f.deadline_s, f.max_passes, f.max_updates) == (9.0, 7, 11)
    assert "deadline=9.0s" in b.describe() and "max_passes=7" in b.describe()
    assert ResourceBudget().describe() == "unbounded"


def test_check_budget_raises_budget_exceeded_with_snapshot():
    class Sys:
        def snapshot(self):
            return {"In": {}}

    b = ResourceBudget(max_passes=0)
    b.charge_pass()
    with pytest.raises(BudgetExceeded) as exc:
        check_budget(b, SolveStats(passes=1), Sys())
    err = exc.value
    assert err.snapshot == {"In": {}}
    assert "pass budget 0 exceeded" in err.reason
    # check_budget is a no-op without a budget or below the limits.
    check_budget(None, SolveStats(), Sys())
    check_budget(ResourceBudget(max_passes=5), SolveStats(), None)


# -- typed error shape ----------------------------------------------------


def test_nonconvergence_error_fields_and_compat():
    err = NonConvergenceError(
        SolveStats(passes=4, node_updates=32), reason="why", snapshot={"x": 1}
    )
    assert isinstance(err, FixpointDiverged)  # legacy handlers keep working
    assert isinstance(err, RuntimeError)
    assert err.reason == "why"
    assert err.snapshot == {"x": 1}
    assert err.stats.passes == 4
    assert "no fixpoint after 4 passes (32 updates): why" in str(err)


# -- budgets are honoured by every solver entry point ---------------------


@pytest.mark.parametrize(
    "source,solve,kwargs,limits",
    [
        (SEQ, solve_sequential, {"solver": "round-robin"}, {"max_passes": 1}),
        # The worklist has no sweeps; its budget unit is the node update.
        (SEQ, solve_sequential, {"solver": "worklist"}, {"max_updates": 2}),
        (PAR, solve_parallel, {"solver": "stabilized"}, {"max_passes": 1}),
        (SYNC, solve_synch, {"solver": "stabilized"}, {"max_passes": 1}),
    ],
)
def test_solvers_raise_on_exhausted_budget(source, solve, kwargs, limits):
    graph = build_pfg(parse_program(source))
    with pytest.raises(NonConvergenceError) as exc:
        solve(graph, budget=ResourceBudget(**limits), **kwargs)
    err = exc.value
    assert not err.stats.converged
    assert "budget" in err.reason
    assert err.snapshot is not None


def test_worklist_update_budget():
    graph = build_pfg(parse_program(SEQ))
    with pytest.raises(NonConvergenceError) as exc:
        solve_sequential(graph, solver="worklist", budget=ResourceBudget(max_updates=2))
    assert "update budget 2 exceeded" in exc.value.reason


def test_analyze_threads_budget_through():
    with pytest.raises(NonConvergenceError):
        analyze(parse_program(SYNC), budget=ResourceBudget(max_passes=1))
    # A generous budget changes nothing.
    result = analyze(parse_program(SYNC), budget=ResourceBudget(max_passes=1000))
    assert result.stats.converged


def test_budget_accumulates_across_stages():
    """One budget bounds the whole synchronized analysis, Preserved
    computation included — stages draw from a single allowance."""
    graph = build_pfg(parse_program(SYNC))
    budget = ResourceBudget(max_passes=1000)
    solve_synch(graph, budget=budget)
    assert budget.passes > 0
    assert budget.updates > 0


# -- compute_preserved: typed error instead of bare RuntimeError ----------


def test_compute_preserved_pass_cap_is_typed():
    graph = build_pfg(parse_program(SYNC))
    with pytest.raises(NonConvergenceError) as exc:
        compute_preserved(graph, max_passes=0)
    err = exc.value
    assert "preserved-set pass cap" in err.reason
    assert "Preserved" in err.snapshot
    assert not err.stats.converged


def test_compute_preserved_budget():
    graph = build_pfg(parse_program(SYNC))
    with pytest.raises(BudgetExceeded):
        compute_preserved(graph, budget=ResourceBudget(max_passes=0))
    # And converges untouched under a generous one.
    res = compute_preserved(graph, budget=ResourceBudget(max_passes=100))
    assert res.preserved
