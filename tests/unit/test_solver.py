"""Fixpoint solver tests on a miniature hand-rolled equation system."""

import pytest

from repro.dataflow.framework import EquationSystem, FixpointDiverged, SolveStats
from repro.dataflow.solver import make_order, solve_round_robin, solve_worklist
from repro.paper import programs


class ChainReach(EquationSystem):
    """Trivial reachability along a chain 0 -> 1 -> ... -> n-1: value[i] =
    value[i-1] + 1 capped at i; fixpoint value[i] == i + 1 sets sizes."""

    def __init__(self, n):
        self.n = n
        self.vals = {}

    def nodes(self):
        return list(range(self.n))

    def initialize(self):
        self.vals = {i: frozenset() for i in range(self.n)}

    def update(self, i):
        new = frozenset({i}) | (self.vals[i - 1] if i > 0 else frozenset())
        changed = new != self.vals[i]
        self.vals[i] = new
        return changed

    def dependents(self, i):
        return [i + 1] if i + 1 < self.n else []

    def snapshot(self):
        return dict(self.vals)


def test_round_robin_forward_order_one_changing_pass():
    system = ChainReach(10)
    stats = solve_round_robin(system, order=list(range(10)))
    assert stats.converged
    assert stats.changing_passes == 1
    assert stats.passes == 2
    assert system.vals[9] == frozenset(range(10))


def test_round_robin_reverse_order_needs_n_passes():
    system = ChainReach(10)
    stats = solve_round_robin(system, order=list(reversed(range(10))))
    assert stats.converged
    assert stats.changing_passes == 10  # one fact propagates per pass


def test_worklist_converges_same_fixpoint():
    forward = ChainReach(10)
    solve_round_robin(forward, order=list(range(10)))
    wl = ChainReach(10)
    stats = solve_worklist(wl, order=list(reversed(range(10))))
    assert stats.converged
    assert wl.vals == forward.vals


def test_worklist_counts_updates_not_passes():
    system = ChainReach(5)
    stats = solve_worklist(system)
    assert stats.sweepless
    assert stats.node_updates >= 5
    # Sweepless runs omit the (meaningless) pass counts from the record
    # instead of rendering a misleading 0.
    d = stats.as_dict()
    assert "passes" not in d and "changing_passes" not in d
    assert d["node_updates"] == stats.node_updates


def test_snapshots_recorded_per_pass():
    system = ChainReach(4)
    stats = solve_round_robin(system, order=list(range(4)), snapshot_passes=True)
    assert len(stats.snapshots) == stats.passes
    assert stats.snapshots[-1] == system.vals


class Oscillator(EquationSystem):
    """Non-monotone system with no fixpoint: value flips every update."""

    def nodes(self):
        return [0]

    def initialize(self):
        self.val = False

    def update(self, _):
        self.val = not self.val
        return True

    def dependents(self, _):
        return [0]


def test_round_robin_diverges_cleanly():
    with pytest.raises(FixpointDiverged) as err:
        solve_round_robin(Oscillator(), max_passes=17)
    assert err.value.stats.passes == 17


def test_worklist_diverges_cleanly():
    with pytest.raises(FixpointDiverged):
        solve_worklist(Oscillator(), max_updates=50)


def test_make_order_variants(fig3_graph):
    names = set(fig3_graph.names())
    for order in ("document", "rpo", "reverse-document", "random:7"):
        nodes = make_order(fig3_graph, order)
        assert {n.name for n in nodes} == names
    assert make_order(fig3_graph, "rpo")[0] is fig3_graph.entry


def test_make_order_random_seed_deterministic(fig3_graph):
    a = make_order(fig3_graph, "random:3")
    b = make_order(fig3_graph, "random:3")
    c = make_order(fig3_graph, "random:4")
    assert a == b
    assert a != c


def test_make_order_unknown_rejected(fig3_graph):
    with pytest.raises(ValueError):
        make_order(fig3_graph, "zigzag")


def test_make_order_random_does_not_mutate_document_order(fig3_graph):
    """Regression: ``random:<seed>`` must shuffle a private copy, never the
    graph's node list or a list another caller already holds."""
    doc_before = [n.name for n in fig3_graph.document_order()]
    held = fig3_graph.document_order()  # a caller's copy, taken beforehand
    held_before = list(held)
    make_order(fig3_graph, "random:5")
    assert [n.name for n in fig3_graph.document_order()] == doc_before
    assert [n.name for n in fig3_graph.nodes] == doc_before
    assert held == held_before


def test_make_order_random_seeds_do_not_interfere(fig3_graph):
    """Two orderings drawn with different seeds are independent draws:
    interleaving them must not change what either seed produces."""
    a1 = [n.name for n in make_order(fig3_graph, "random:3")]
    b1 = [n.name for n in make_order(fig3_graph, "random:4")]
    a2 = [n.name for n in make_order(fig3_graph, "random:3")]
    b2 = [n.name for n in make_order(fig3_graph, "random:4")]
    assert a1 == a2
    assert b1 == b2
    assert a1 != b1
    # ...and the two draws never alias the same list object.
    assert make_order(fig3_graph, "random:3") is not make_order(fig3_graph, "random:3")


def test_snapshot_passes_bounded_by_max_snapshots():
    system = ChainReach(10)
    with pytest.raises(RuntimeError, match="max_snapshots"):
        solve_round_robin(
            system, order=list(reversed(range(10))), snapshot_passes=True, max_snapshots=3
        )


def test_snapshot_passes_within_budget_records_all():
    system = ChainReach(10)
    stats = solve_round_robin(system, order=list(range(10)), snapshot_passes=True)
    assert stats.converged
    assert len(stats.snapshots) == stats.passes


def test_stats_as_dict():
    stats = SolveStats(order="rpo", passes=3, changing_passes=2, converged=True)
    d = stats.as_dict()
    assert d["order"] == "rpo" and d["passes"] == 3 and d["converged"]


def test_stats_as_dict_sweepless_omits_pass_counts():
    stats = SolveStats(order="scc", node_updates=7, converged=True, sweepless=True)
    d = stats.as_dict()
    assert "passes" not in d and "changing_passes" not in d
    assert d == {"order": "scc", "node_updates": 7, "changed_updates": 0, "converged": True}
