"""Supervisor state-machine tests with scripted fake workers — no real
processes.  The contract under test: every accepted job produces exactly
one terminal record (crash → respawn + retry with capped backoff; retry
exhaustion → ``crashed``; deadline → kill + ``timeout`` with no retry),
and a draining pool refuses new work with :class:`PoolStopped`.
"""

import random

import pytest

from repro.serve.supervisor import (
    PoolStopped,
    Supervisor,
    WorkerCrash,
    WorkerTimeout,
)


class FakeWorker:
    """Scripted worker: each ``call`` pops the next outcome — an exception
    class to raise, or a dict record to return."""

    def __init__(self, script):
        self._script = script
        self.alive = False
        self.killed = False
        self.calls = []

    def start(self):
        self.alive = True
        return self

    def call(self, job, timeout_s):
        self.calls.append((job, timeout_s))
        outcome = self._script.pop(0) if self._script else {"status": "ok"}
        if isinstance(outcome, type) and issubclass(outcome, Exception):
            self.alive = False
            raise outcome("scripted fault")
        return dict(outcome)

    def kill(self):
        self.killed = True
        self.alive = False

    def shutdown(self, grace_s=1.0):
        self.kill()


class ScriptedFactory:
    """Hands out FakeWorkers in order; keeps them all for inspection."""

    def __init__(self, scripts):
        self.scripts = list(scripts)
        self.spawned = []

    def __call__(self):
        script = self.scripts.pop(0) if self.scripts else []
        worker = FakeWorker(script)
        self.spawned.append(worker)
        return worker


def _supervisor(factory, **kwargs):
    kwargs.setdefault("rng", random.Random(7))
    kwargs.setdefault("sleep", lambda s: None)
    return Supervisor(size=1, worker_factory=factory, **kwargs)


def test_success_passes_record_through_with_attempts():
    factory = ScriptedFactory([[{"status": "ok", "result": {"x": 1}}]])
    sup = _supervisor(factory).start()
    record = sup.execute({"source": "p"}, deadline_s=1.0)
    assert record["status"] == "ok"
    assert record["attempts"] == 1
    assert sup.stats()["crashes"] == 0
    # The worker went back to the idle pool — a second job reuses it.
    sup.execute({"source": "p"}, deadline_s=1.0)
    assert len(factory.spawned) == 1


def test_crash_respawns_and_retries_on_fresh_worker():
    factory = ScriptedFactory([[WorkerCrash], [{"status": "ok"}]])
    sup = _supervisor(factory, retries=1).start()
    record = sup.execute({"source": "p"}, deadline_s=1.0)
    assert record["status"] == "ok"
    assert record["attempts"] == 2
    assert factory.spawned[0].killed  # the crasher was retired
    stats = sup.stats()
    assert stats["crashes"] == 1
    assert stats["respawns"] == 1
    assert stats["retries"] == 1
    # The retry ran on the respawned worker, not the dead one.
    assert len(factory.spawned[1].calls) == 1
    # The job's attempt index advanced so chaos drills see the retry.
    assert factory.spawned[1].calls[0][0]["attempt"] == 1


def test_retry_exhaustion_yields_typed_crashed_record():
    factory = ScriptedFactory([[WorkerCrash], [WorkerCrash], [WorkerCrash]])
    sup = _supervisor(factory, retries=2).start()
    record = sup.execute({"source": "p"}, deadline_s=1.0)
    assert record["status"] == "crashed"
    assert record["attempts"] == 3
    assert "retries exhausted" in record["error"]
    assert sup.stats()["crashes"] == 3
    # A fresh worker is still idle for the next request.
    rec2 = sup.execute({"source": "p"}, deadline_s=1.0)
    assert rec2["status"] == "ok"


def test_zero_retries_crashes_immediately():
    factory = ScriptedFactory([[WorkerCrash]])
    sup = _supervisor(factory, retries=0).start()
    record = sup.execute({"source": "p"}, deadline_s=1.0)
    assert record["status"] == "crashed"
    assert record["attempts"] == 1


def test_timeout_kills_respawns_and_does_not_retry():
    factory = ScriptedFactory([[WorkerTimeout], [{"status": "ok"}]])
    sup = _supervisor(factory, retries=5).start()
    record = sup.execute({"source": "p"}, deadline_s=0.5)
    assert record["status"] == "timeout"
    assert record["attempts"] == 1  # the deadline is spent; no resubmission
    assert factory.spawned[0].killed
    stats = sup.stats()
    assert stats["timeouts"] == 1
    assert stats["retries"] == 0
    assert stats["respawns"] == 1


def test_wall_clock_allowance_is_deadline_plus_grace():
    factory = ScriptedFactory([[{"status": "ok"}]])
    sup = _supervisor(factory, deadline_grace_s=2.0).start()
    sup.execute({"source": "p"}, deadline_s=3.0)
    _, timeout_s = factory.spawned[0].calls[0]
    assert timeout_s == pytest.approx(5.0)


def test_dead_idle_worker_replaced_before_dispatch():
    factory = ScriptedFactory([[], [{"status": "ok"}]])
    sup = _supervisor(factory).start()
    factory.spawned[0].alive = False  # died while idle (external kill)
    record = sup.execute({"source": "p"}, deadline_s=1.0)
    assert record["status"] == "ok"
    assert record["attempts"] == 1  # silent replacement, not a request retry
    assert len(factory.spawned) == 2


def test_stopped_pool_refuses_new_work():
    factory = ScriptedFactory([[]])
    sup = _supervisor(factory).start()
    sup.stop()
    with pytest.raises(PoolStopped):
        sup.execute({"source": "p"}, deadline_s=1.0)
    # The sentinel persists: every later caller is also refused.
    with pytest.raises(PoolStopped):
        sup.execute({"source": "p"}, deadline_s=1.0)
    assert factory.spawned[0].killed


def test_stop_is_idempotent():
    factory = ScriptedFactory([[]])
    sup = _supervisor(factory).start()
    sup.stop()
    sup.stop()


def test_no_respawn_after_stop():
    # A crash retired during drain must not resurrect the pool.
    factory = ScriptedFactory([[], []])
    sup = _supervisor(factory).start()
    worker = factory.spawned[0]
    sup.stop()
    sup._retire(worker, respawn=True)
    assert len(factory.spawned) == 1  # no fresh spawn after stop


def test_backoff_grows_exponentially_and_caps():
    sleeps = []
    factory = ScriptedFactory(
        [[WorkerCrash], [WorkerCrash], [WorkerCrash], [WorkerCrash], [{"status": "ok"}]]
    )
    sup = Supervisor(
        size=1,
        worker_factory=factory,
        retries=10,
        backoff_base_s=0.1,
        backoff_cap_s=0.3,
        backoff_jitter=0.0,  # deterministic: pure exponential, no jitter
        sleep=sleeps.append,
        rng=random.Random(0),
    ).start()
    record = sup.execute({"source": "p"}, deadline_s=1.0)
    assert record["status"] == "ok"
    assert record["attempts"] == 5
    assert sleeps == pytest.approx([0.1, 0.2, 0.3, 0.3])  # doubles, then caps


def test_backoff_jitter_stays_within_band():
    sup = Supervisor(
        size=1,
        worker_factory=ScriptedFactory([[]]),
        backoff_base_s=0.1,
        backoff_cap_s=1.0,
        backoff_jitter=0.5,
        rng=random.Random(42),
    )
    for attempt in (1, 2, 3):
        base = min(1.0, 0.1 * (2 ** (attempt - 1)))
        for _ in range(20):
            delay = sup._backoff(attempt)
            assert base <= delay <= base * 1.5
