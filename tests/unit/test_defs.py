"""Definition table tests."""

from repro.ir.defs import DefTable, Definition, Use


def test_add_assigns_dense_indices():
    t = DefTable()
    d0 = t.add("x", "1")
    d1 = t.add("y", "1")
    d2 = t.add("x", "4")
    assert (d0.index, d1.index, d2.index) == (0, 1, 2)
    assert len(t) == 3


def test_paper_style_names():
    t = DefTable()
    assert t.add("x", "4").name == "x4"
    assert t.add("y", "Entry").name == "yEntry"


def test_of_var_in_creation_order():
    t = DefTable()
    a = t.add("x", "1")
    t.add("y", "2")
    b = t.add("x", "3")
    assert t.of_var("x") == (a, b)
    assert t.of_var("missing") == ()


def test_by_name_lookup():
    t = DefTable()
    d = t.add("k", "5")
    assert t.by_name("k5") is d


def test_same_block_redefinition_keeps_clean_name_on_newest():
    t = DefTable()
    d1 = t.add("x", "3")
    d2 = t.add("x", "3")
    # d2 is downward-exposed: it keeps the paper-style name.
    assert t.by_name("x3") is d2
    assert t.by_name("x3'1") is d1
    assert d1.name == "x3'1" and d2.name == "x3"


def test_definitions_hash_by_index():
    t = DefTable()
    d = t.add("x", "1")
    clone = Definition(index=d.index, var="x", site="1")
    assert d == clone
    assert hash(d) == hash(clone)
    assert len({d, clone}) == 1


def test_definitions_with_different_index_differ():
    assert Definition(0, "x", "1") != Definition(1, "x", "1")


def test_iteration_and_getitem():
    t = DefTable()
    d0 = t.add("x", "1")
    d1 = t.add("y", "2")
    assert list(t) == [d0, d1]
    assert t[1] is d1


def test_variables_listing():
    t = DefTable()
    t.add("x", "1")
    t.add("y", "2")
    t.add("x", "3")
    assert t.variables() == ("x", "y")


def test_use_naming():
    u = Use(var="k", site="6", ordinal=0)
    assert u.name == "k@6#0"
    assert str(u) == "k@6#0"


def test_uses_are_value_objects():
    assert Use("k", "6", 0) == Use("k", "6", 0)
    assert Use("k", "6", 0) != Use("k", "6", 1)
