"""AST helper tests: walkers, variable collection, structural equality."""

import pytest

from repro.lang import ast, parse_program


def test_expr_variables_order_and_dedup():
    e = ast.BinOp("+", ast.BinOp("*", ast.Var("b"), ast.Var("a")), ast.Var("b"))
    assert e.variables() == ("b", "a")


def test_literal_has_no_variables():
    assert ast.IntLit(3).variables() == ()
    assert ast.BoolLit(True).variables() == ()


def test_unary_collects_variables():
    assert ast.UnaryOp("-", ast.Var("x")).variables() == ("x",)


def test_invalid_binop_rejected():
    with pytest.raises(ValueError):
        ast.BinOp("**", ast.IntLit(1), ast.IntLit(2))


def test_invalid_unary_rejected():
    with pytest.raises(ValueError):
        ast.UnaryOp("+", ast.IntLit(1))


def test_walk_visits_all_nested_statements():
    src = """program p
x = 1
if c then
  y = 2
  loop
    z = 3
  endloop
else
  w = 4
endif
parallel sections
  section A
    a = 5
  section B
    b = 6
end parallel sections
end"""
    prog = parse_program(src)
    assigns = [s for s in prog.walk() if isinstance(s, ast.Assign)]
    assert [a.target for a in assigns] == ["x", "y", "z", "w", "a", "b"]


def test_assigned_variables_in_order():
    prog = parse_program("program p\nb = 1\na = 2\nb = 3\nend")
    assert prog.assigned_variables() == ("b", "a")


def test_used_variables_includes_conditions():
    prog = parse_program("program p\nif q < 1 then\nx = r\nendif\nend")
    assert set(prog.used_variables()) == {"q", "r"}


def test_statements_compare_by_identity():
    a = ast.Assign(target="x", expr=ast.IntLit(1))
    b = ast.Assign(target="x", expr=ast.IntLit(1))
    assert a != b
    assert a == a
    assert len({a, b}) == 2  # hashable, distinct


def test_list_index_uses_identity():
    a = ast.Assign(target="x", expr=ast.IntLit(1))
    b = ast.Assign(target="x", expr=ast.IntLit(1))
    stmts = [a, b]
    assert stmts.index(b) == 1


def test_structural_equality_ignores_spans():
    p1 = parse_program("program p\nx = 1\nend")
    p2 = parse_program("program p\n\n\nx =    1\nend")
    assert ast.structurally_equal(p1, p2)


def test_structural_equality_detects_differences():
    p1 = parse_program("program p\nx = 1\nend")
    p2 = parse_program("program p\nx = 2\nend")
    p3 = parse_program("program p\n(4) x = 1\nend")
    assert not ast.structurally_equal(p1, p2)
    assert not ast.structurally_equal(p1, p3)  # labels are significant


def test_expressions_are_structurally_equal_values():
    assert ast.BinOp("+", ast.Var("x"), ast.IntLit(1)) == ast.BinOp(
        "+", ast.Var("x"), ast.IntLit(1)
    )
