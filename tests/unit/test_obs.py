"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro import analyze, obs, optimize, parse_program
from repro.dataflow.bitset import CountingBackend, IntBitsetBackend, make_backend
from repro.ir.defs import Definition
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    Metrics,
    Tracer,
    get_metrics,
    get_tracer,
    read_jsonl,
    records,
    render_tree,
    span_records,
    write_jsonl,
)

SOURCE = """program obsdemo
(1) x = 1
(2) parallel sections
  (3) section A
    (3) x = 2
  (4) section B
    (4) y = x
(5) end parallel sections
end
"""


# -- spans ----------------------------------------------------------------


def test_span_nesting_structure():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner-1"):
            pass
        with tracer.span("inner-2") as inner2:
            with tracer.span("leaf"):
                pass
    assert [r.name for r in tracer.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
    assert [c.name for c in inner2.children] == ["leaf"]
    assert tracer.current is None


def test_span_timing_monotone_and_contained():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            sum(range(1000))
    assert outer.end is not None and inner.end is not None
    assert outer.duration >= 0 and inner.duration >= 0
    # The child's window lies inside the parent's.
    assert outer.start <= inner.start
    assert inner.end <= outer.end
    assert inner.duration <= outer.duration


def test_span_annotate_and_find():
    tracer = Tracer()
    with tracer.span("solve", order="rpo") as sp:
        sp.annotate(passes=5)
        tracer.annotate(via_tracer=True)
    hit = tracer.find("solve")
    assert hit is sp
    assert hit.attrs == {"order": "rpo", "passes": 5, "via_tracer": True}


def test_sibling_spans_ordered():
    tracer = Tracer()
    for name in ("a", "b", "c"):
        with tracer.span(name):
            pass
    starts = [r.start for r in tracer.roots]
    assert starts == sorted(starts)
    assert [r.name for r in tracer.roots] == ["a", "b", "c"]


# -- metrics --------------------------------------------------------------


def test_counter_aggregation():
    m = Metrics()
    m.inc("a")
    m.inc("a", 4)
    m.counter("a").inc(2)
    m.inc("b")
    assert m.counter("a").value == 7
    assert m.as_dict()["counters"] == {"a": 7, "b": 1}


def test_gauge_tracks_max():
    m = Metrics()
    m.set_gauge("depth", 3)
    m.set_gauge("depth", 9)
    m.set_gauge("depth", 2)
    g = m.gauge("depth")
    assert g.value == 2 and g.max == 9


def test_histogram_summary():
    m = Metrics()
    for v in (4, 1, 7):
        m.observe("len", v)
    h = m.histogram("len")
    assert (h.count, h.total, h.min, h.max) == (3, 12, 1, 7)
    assert h.mean == 4


def test_solver_metrics_aggregate_across_runs():
    prog = parse_program(SOURCE)
    with obs.session() as sess:
        analyze(prog, cache=False)
        analyze(prog, cache=False)
    counters = sess.metrics.as_dict()["counters"]
    assert counters["solve.runs"] == 2
    assert counters["solve.document.runs"] == 2
    assert counters["solve.node_updates"] > 0
    assert counters["pfg.builds"] == 2


def test_warm_analyze_is_a_counted_cache_hit():
    # With caching on (the default), the second analyze of an unchanged
    # program is a cache hit: zero additional solver runs or PFG builds,
    # and the hit lands in the cache.* counters.
    prog = parse_program(SOURCE)
    with obs.session() as sess:
        first = analyze(prog)
        second = analyze(prog)
    counters = sess.metrics.as_dict()["counters"]
    assert second is first
    assert counters["solve.runs"] == 1
    assert counters["pfg.builds"] == 1
    assert counters["cache.hits"] >= 1
    assert counters["cache.analyze.hits"] == 1


# -- JSONL round-trip -----------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "profile.jsonl"
    with obs.session() as sess:
        optimize(SOURCE)
    n = write_jsonl(path, sess.tracer, sess.metrics, {"command": "test"})
    recs = read_jsonl(path)
    assert len(recs) == n
    assert recs == records(sess.tracer, sess.metrics, {"command": "test"})
    # Every line is standalone JSON (the file really is JSONL).
    for line in path.read_text().splitlines():
        json.loads(line)
    meta = recs[0]
    assert meta["type"] == "meta" and meta["schema"] == obs.SCHEMA
    names = {r["name"] for r in recs if r["type"] == "span"}
    assert {"parse", "pfg-build", "solve", "pass", "optimize"} <= names
    assert any(r["name"].startswith("client:") for r in recs if r["type"] == "span")
    # Tree shape is recoverable from path/depth.  The solve sits under the
    # degradation ladder's attempt span: optimize/analyze/analyze-attempt/…
    solve = next(r for r in recs if r["type"] == "span" and r["name"] == "solve")
    assert solve["path"].startswith("optimize/analyze/analyze-attempt/")
    assert solve["depth"] == 3
    assert solve["dur"] >= 0


def test_span_records_skip_open_spans():
    tracer = Tracer()
    handle = tracer.span("left-open")
    handle.__enter__()
    with tracer.span("closed"):
        pass
    recs = span_records(tracer)
    names = [r["name"] for r in recs]
    assert "closed" in names and "left-open" not in names


# -- disabled-by-default guarantees --------------------------------------


def test_no_session_means_null_collectors():
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS


def test_noop_tracer_records_nothing():
    prog = parse_program(SOURCE)
    result = analyze(prog)
    report = optimize(prog)
    run = __import__("repro.interp", fromlist=["run_program"]).run_program(prog)
    assert NULL_TRACER.roots == []
    assert span_records(NULL_TRACER) == []
    assert NULL_METRICS.counters == {}
    assert result.stats.span is None
    assert report.timings == {}
    assert run.steps > 0  # the pipeline actually ran


def test_noop_metrics_instruments_inert():
    NULL_METRICS.inc("x", 100)
    NULL_METRICS.set_gauge("g", 5)
    NULL_METRICS.observe("h", 5)
    c = NULL_METRICS.counter("x")
    c.inc(3)
    assert c.value == 0
    assert NULL_METRICS.counters == {} and NULL_METRICS.gauges == {}


def test_session_installs_and_restores():
    before_tracer, before_metrics = get_tracer(), get_metrics()
    with obs.session() as sess:
        assert get_tracer() is sess.tracer
        assert get_metrics() is sess.metrics
        assert sess.tracer.enabled and sess.metrics.enabled
        with obs.session() as inner:  # nested sessions stack
            assert get_tracer() is inner.tracer
        assert get_tracer() is sess.tracer
    assert get_tracer() is before_tracer
    assert get_metrics() is before_metrics


def test_session_restores_on_error():
    with pytest.raises(RuntimeError):
        with obs.session():
            raise RuntimeError("boom")
    assert get_tracer() is NULL_TRACER
    assert not obs.bitset_counting_enabled()


def test_stats_span_set_inside_session():
    prog = parse_program(SOURCE)
    with obs.session() as sess:
        result = analyze(prog)
    assert result.stats.span is not None
    assert result.stats.span.name == "solve"
    assert result.stats.span.attrs["converged"] is True
    assert sess.tracer.find("solve") is result.stats.span


# -- bitset op counting ---------------------------------------------------


def _universe(n=8):
    return [Definition(name=f"d{i}", var="x", site="1", index=i) for i in range(n)]


def test_make_backend_not_wrapped_by_default():
    backend = make_backend("bitset", _universe())
    assert isinstance(backend, IntBitsetBackend)
    with obs.session():  # session without count_bitset_ops
        backend = make_backend("bitset", _universe())
        assert isinstance(backend, IntBitsetBackend)


def test_counting_backend_counts_ops_and_words():
    with obs.session(count_bitset_ops=True) as sess:
        backend = make_backend("bitset", _universe(100))
        assert isinstance(backend, CountingBackend)
        a = backend.from_defs(_universe(100)[:3])
        b = backend.from_defs(_universe(100)[2:5])
        backend.union(a, b)
        backend.intersection(a, b)
        backend.difference(a, b)
        backend.equals(a, b)
    counters = sess.metrics.as_dict()["counters"]
    assert counters["bitset.ops"] == 4
    assert counters["bitset.word_ops"] == 4 * 2  # 100 defs -> 2 words


def test_counting_backend_transparent_results():
    plain = make_backend("bitset", _universe())
    with obs.session(count_bitset_ops=True):
        counted = make_backend("bitset", _universe())
    a, b = plain.from_defs(_universe()[:4]), plain.from_defs(_universe()[2:6])
    assert counted.union(a, b) == plain.union(a, b)
    assert counted.name == plain.name


def test_analyze_under_op_counting_matches_plain():
    prog = parse_program(SOURCE)
    plain = analyze(prog)
    with obs.session(count_bitset_ops=True) as sess:
        counted = analyze(prog, cache=False)  # a cache hit would skip the ops
    assert sess.metrics.as_dict()["counters"]["bitset.ops"] > 0
    for node in plain.graph.nodes:
        assert plain.in_names(node.name) == counted.in_names(node.name)


# -- rendering ------------------------------------------------------------


def test_render_tree_shows_phases_and_counters():
    with obs.session() as sess:
        optimize(SOURCE)
    text = render_tree(sess.tracer, sess.metrics)
    assert "phase-time tree" in text
    assert "optimize" in text and "solve" in text and "pfg-build" in text
    assert "counters:" in text and "solve.runs" in text


def test_render_tree_elides_long_sibling_runs():
    tracer = Tracer()
    with tracer.span("root"):
        for i in range(40):
            with tracer.span("pass", index=i):
                pass
    text = render_tree(tracer, max_children=12)
    assert "more spans" in text
    assert text.count("pass") < 40


def test_merge_counters_aggregates_snapshots():
    """Cross-process aggregation hook: worker counter snapshots (plain
    dicts) fold into a live registry additively; zeros are skipped."""
    from repro.obs import NULL_METRICS, Metrics

    m = Metrics()
    m.inc("solve.runs", 2)
    m.merge_counters({"solve.runs": 3, "cache.hits": 5, "noise": 0})
    counters = m.as_dict()["counters"]
    assert counters["solve.runs"] == 5
    assert counters["cache.hits"] == 5
    assert "noise" not in counters  # zero-valued entries create nothing
    # the disabled singleton swallows merges like every other mutator
    NULL_METRICS.merge_counters({"x": 1})
    assert NULL_METRICS.counters == {}
