"""Admission control and load-aware degradation policy: pure-bookkeeping
transitions, tested exactly."""

import threading

import pytest

from repro.serve.admission import (
    ADMITTED,
    DRAINING,
    SHED,
    AdmissionController,
    DegradationPolicy,
)


class TestAdmissionController:
    def test_admits_up_to_bound_then_sheds(self):
        ctl = AdmissionController(max_pending=2)
        assert ctl.try_admit() == ADMITTED
        assert ctl.try_admit() == ADMITTED
        assert ctl.try_admit() == SHED
        assert ctl.try_admit() == SHED
        snap = ctl.snapshot()
        assert snap["pending"] == 2
        assert snap["admitted"] == 2
        assert snap["shed"] == 2

    def test_release_reopens_a_slot(self):
        ctl = AdmissionController(max_pending=1)
        assert ctl.try_admit() == ADMITTED
        assert ctl.try_admit() == SHED
        ctl.release()
        assert ctl.try_admit() == ADMITTED

    def test_release_without_admit_is_a_bug_not_a_decrement(self):
        ctl = AdmissionController(max_pending=1)
        with pytest.raises(RuntimeError):
            ctl.release()

    def test_draining_refuses_everything_even_with_room(self):
        ctl = AdmissionController(max_pending=10)
        ctl.begin_drain()
        assert ctl.try_admit() == DRAINING
        assert ctl.snapshot()["drained_refusals"] == 1
        assert ctl.snapshot()["shed"] == 0  # drain refusals are not sheds

    def test_idle_tracks_inflight_through_drain(self):
        ctl = AdmissionController(max_pending=4)
        ctl.try_admit()
        ctl.try_admit()
        ctl.begin_drain()
        assert not ctl.idle()  # two admitted requests still in flight
        ctl.release()
        ctl.release()
        assert ctl.idle()

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)

    def test_concurrent_admits_never_exceed_bound(self):
        ctl = AdmissionController(max_pending=8)
        outcomes = []
        lock = threading.Lock()

        def hammer():
            for _ in range(200):
                decision = ctl.try_admit()
                with lock:
                    outcomes.append(decision)
                if decision == ADMITTED:
                    ctl.release()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ctl.pending == 0
        assert len(outcomes) == 1600
        snap = ctl.snapshot()
        assert snap["admitted"] + snap["shed"] == 1600


class TestDegradationPolicy:
    def test_all_triggers_disabled_serves_full_precision(self):
        policy = DegradationPolicy()
        assert policy.level(queue_depth=10_000, p99_ms=10_000.0) == 0

    def test_queue_thresholds_are_inclusive(self):
        policy = DegradationPolicy(queue_l1=4, queue_l2=8)
        assert policy.level(3, None) == 0
        assert policy.level(4, None) == 1
        assert policy.level(7, None) == 1
        assert policy.level(8, None) == 2

    def test_p99_thresholds(self):
        policy = DegradationPolicy(p99_ms_l1=100.0, p99_ms_l2=500.0)
        assert policy.level(0, None) == 0  # no latency signal yet
        assert policy.level(0, 99.0) == 0
        assert policy.level(0, 100.0) == 1
        assert policy.level(0, 500.0) == 2

    def test_worst_live_trigger_wins(self):
        policy = DegradationPolicy(queue_l1=4, queue_l2=100, p99_ms_l1=50.0, p99_ms_l2=80.0)
        # Queue says level 1, p99 says level 2 — serve level 2.
        assert policy.level(5, 90.0) == 2
        # p99 says level 1, queue says nothing — level 1.
        assert policy.level(0, 60.0) == 1

    def test_zero_threshold_degrades_everything(self):
        # The drill configuration: every request served one rung down.
        policy = DegradationPolicy(queue_l1=0)
        assert policy.level(0, None) == 1

    def test_describe_round_trips_thresholds(self):
        policy = DegradationPolicy(queue_l1=2, queue_l2=4, p99_ms_l1=10.0)
        assert policy.describe() == {
            "queue_l1": 2,
            "queue_l2": 4,
            "p99_ms_l1": 10.0,
            "p99_ms_l2": None,
        }
