"""Copy-propagation client tests."""

from repro import analyze
from repro.analysis import find_copy_propagations
from repro.lang import parse_program


def props(src):
    return find_copy_propagations(analyze(parse_program(src)))


def test_simple_copy_propagated():
    found = props("program p\n(1) w = 1\n(2) v = w\n(3) z = v + 1\nend")
    assert len(found) == 1
    p = found[0]
    assert p.use.var == "v" and p.source == "w"
    assert p.copy_def.name == "v2"


def test_source_redefined_between_blocks_copy():
    found = props("program p\n(1) w = 1\n(2) v = w\n(3) w = 9\n(4) z = v\nend")
    assert all(p.use.site != "4" for p in found)


def test_multiple_reaching_defs_block_copy():
    src = "program p\n(1) w=1\nif c then\n(2) v=w\nelse\n(3) v=2\nendif\n(4) z=v\nend"
    assert props(src) == []


def test_copy_through_join_propagates():
    src = """program p
(1) w = 1
parallel sections
  section A
    (2) v = w
  section B
    (3) u = 2
(4) end parallel sections
(4) z = v
end"""
    found = props(src)
    assert any(p.use.site == "4" and p.source == "w" for p in found)


def test_concurrent_write_to_source_blocks_copy():
    src = """program p
(1) w = 1
parallel sections
  section A
    (2) v = w
    (3) z = v
  section B
    (4) w = 9
(5) end parallel sections
end"""
    found = props(src)
    assert all(p.use.site != "3" for p in found)


def test_rhs_must_be_bare_variable():
    found = props("program p\n(1) w = 1\n(2) v = w + 0\n(3) z = v\nend")
    assert found == []


def test_format():
    found = props("program p\n(1) w = 1\n(2) v = w\n(3) z = v\nend")
    text = found[0].format()
    assert "replace v by w" in text
