"""Optimization-driver (façade) tests."""

from repro import optimize
from repro.analysis import AnomalyKind, SyncIssueKind
from repro.lang import parse_program
from repro.paper import programs

CLEAN = """program clean
event go
(1) base = 4
(2) parallel sections
  (3) section producer
    (3) payload = base * 2
    (3) post(go)
  (4) section consumer
    (4) wait(go)
    (4) got = payload
(5) end parallel sections
(5) final = got
end"""

RACY = """program racy
(1) x = 0
parallel sections
  section A
    (2) x = 1
  section B
    (3) x = 2
(4) end parallel sections
end"""


def test_accepts_source_text_and_programs():
    by_text = optimize(CLEAN)
    by_tree = optimize(parse_program(CLEAN))
    assert by_text.result.system == by_tree.result.system == "synch"


def test_clean_program_is_clean():
    report = optimize(CLEAN)
    assert report.is_clean
    assert report.anomalies == [] and report.sync_issues == []
    counts = report.opportunity_count()
    assert counts["constant-definitions"] >= 3  # base, payload, got, final


def test_racy_program_not_clean():
    report = optimize(RACY)
    assert not report.is_clean
    assert any(a.kind is AnomalyKind.RACE for a in report.anomalies)


def test_fig3_report_flags_stale_event():
    report = optimize(programs.program("fig3"))
    assert not report.is_clean
    assert any(i.kind is SyncIssueKind.STALE_EVENT for i in report.sync_issues)


def test_fig1b_report_finds_induction_variable():
    report = optimize(programs.program("fig1b"))
    assert [iv.var for iv in report.induction_variables] == ["j"]
    assert report.constants.constant_at("6", "k") == 5


def test_render_mentions_everything():
    text = optimize(CLEAN).render()
    assert "optimization report for 'clean'" in text
    assert "constant" in text and "safety:" in text


def test_render_racy_lists_race():
    text = optimize(RACY).render()
    assert "race of 'x'" in text


def test_post_without_wait_does_not_block_cleanliness():
    src = "program p\nevent e\n(1) x = 1\npost(e)\nend"
    report = optimize(src)
    assert report.sync_issues and report.is_clean


def test_observable_at_exit_toggle():
    src = "program p\n(1) x = 1\nend"
    assert optimize(src).dead_code.dead == frozenset()
    report = optimize(src, observable_at_exit=False)
    assert {d.name for d in report.dead_code.dead} == {"x1"}


def test_opportunity_count_keys_stable():
    counts = optimize(CLEAN).opportunity_count()
    assert set(counts) == {
        "constant-definitions",
        "induction-variables",
        "dead-definitions",
        "copy-propagations",
        "common-subexpressions",
    }
