"""Available-expressions tests (forward must-analysis, parallel rules)."""

from repro.analysis.availexpr import (
    find_redundant_computations,
    interesting_expressions,
    solve_available_expressions,
)
from repro.lang import ast, parse_program
from repro.pfg import build_pfg


def solve(src):
    graph = build_pfg(parse_program(src))
    return graph, solve_available_expressions(graph)


A_PLUS_B = ast.BinOp("+", ast.Var("a"), ast.Var("b"))


def test_universe_collects_nontrivial_expressions():
    graph = build_pfg(parse_program("program p\n(1) x = a + b\n(2) y = 5\n(3) z = x\nend"))
    universe = interesting_expressions(graph)
    assert A_PLUS_B in universe
    assert len(universe) == 1  # literals and bare variables excluded


def test_straightline_availability():
    g, r = solve("program p\n(1) x = a + b\n(2) y = a + b\nend")
    assert r.is_available("2", A_PLUS_B)


def test_operand_redefinition_kills():
    g, r = solve("program p\n(1) x = a + b\n(2) a = 0\n(3) y = a + b\nend")
    assert not r.is_available("3", A_PLUS_B)


def test_same_block_kill_order_matters():
    g, r = solve("program p\n(1) x = a + b\n(1) a = 0\n(2) y = 1\nend")
    # computed then operand clobbered in the same block: not available out.
    assert A_PLUS_B not in r.AvailOut("1")


def test_must_property_branch():
    src = "program p\nif c then\n(1) x = a + b\nendif\n(2) y = a + b\nend"
    g, r = solve(src)
    assert not r.is_available("2", A_PLUS_B)  # only one path computes it


def test_both_branches_compute_it():
    src = "program p\nif c then\n(1) x = a + b\nelse\n(2) z = a + b\nendif\n(3) y = a + b\nend"
    g, r = solve(src)
    assert r.is_available("3", A_PLUS_B)


def test_loop_greatest_fixpoint():
    src = "program p\n(1) x = a + b\n(2) loop\n(3) y = a + b\n(4) endloop\nend"
    g, r = solve(src)
    # a+b available around the loop (nothing kills it).
    assert r.is_available("3", A_PLUS_B)


def test_parallel_sections_single_writer_survives_join():
    src = """program p
(1) x = a + b
(2) parallel sections
  (3) section A
    (3) u = 1
  (4) section B
    (4) v = 2
(5) end parallel sections
(5) y = a + b
end"""
    g, r = solve(src)
    assert r.is_available("5", A_PLUS_B)


def test_join_kills_when_two_sections_write_operand():
    src = """program p
(1) x = a + b
(2) parallel sections
  (3) section A
    (3) a = 1
    (3) u = a + b
  (4) section B
    (4) a = 2
    (4) v = a + b
(5) end parallel sections
(5) y = a + b
end"""
    g, r = solve(src)
    # Both sections computed a+b at their exits, but the merged memory may
    # mix copies of a: killed at the join.
    assert not r.is_available("5", A_PLUS_B)


def test_wait_kills_concurrently_written_operands():
    src = """program p
event e
(1) x = a + b
(2) parallel sections
  (3) section A
    (3) a = 9
    (3) post(e)
  (4) section B
    (4) u = a + b
    (4) wait(e)
    (5) y = a + b
(6) end parallel sections
end"""
    g, r = solve(src)
    # Before the wait, section B still computes on its own copy...
    assert r.is_available("4", A_PLUS_B)
    # ...but the wait may absorb A's new a: availability dies.
    assert not r.is_available("5", A_PLUS_B)


def test_redundant_computation_report():
    g = build_pfg(parse_program("program p\n(1) x = a + b\n(2) y = a + b\nend"))
    found = find_redundant_computations(g)
    assert len(found) == 1
    assert found[0].node.name == "2" and found[0].target == "y"
    assert "already available" in found[0].format()


def test_redundancy_requires_untouched_operands():
    g = build_pfg(parse_program("program p\n(1) x = a + b\n(2) a = 0\n(2) y = a + b\nend"))
    assert find_redundant_computations(g) == []


def test_converges(fig3_graph):
    r = solve_available_expressions(fig3_graph)
    assert r.stats.converged
