"""Anomaly / race detection tests."""

from repro import analyze
from repro.analysis import AnomalyKind, anomaly_summary, find_anomalies, races
from repro.lang import parse_program
from repro.paper import programs


def anomalies_of(src):
    return find_anomalies(analyze(parse_program(src)))


def test_fig6_race_on_b(fig8_result):
    found = find_anomalies(fig8_result)
    by_key = {(a.node.name, a.var): a for a in found}
    race_b = by_key[("10", "b")]
    assert race_b.kind is AnomalyKind.RACE
    assert {d.name for d in race_b.defs} == {"b3", "b5"}


def test_fig6_conditional_c_is_multiple_not_race(fig8_result):
    found = find_anomalies(fig8_result)
    by_key = {(a.node.name, a.var): a for a in found}
    multi_c = by_key[("10", "c")]
    assert multi_c.kind is AnomalyKind.MULTIPLE
    assert {d.name for d in multi_c.defs} == {"c1", "c7"}


def test_fig3_race_on_z_at_join(fig3_result):
    found = races(fig3_result)
    assert any(a.node.name == "11" and a.var == "z" for a in found)


def test_fig3_wait_sees_multiple_x(fig3_result):
    found = find_anomalies(fig3_result)
    wait_x = [a for a in found if a.node.name == "8" and a.var == "x"]
    assert len(wait_x) == 1
    assert wait_x[0].kind is AnomalyKind.RACE


def test_clean_program_has_no_anomalies():
    src = """program p
(1) x = 1
parallel sections
  section A
    (2) a = x + 1
  section B
    (3) b = x + 2
end parallel sections
(4) y = a + b
end"""
    assert anomalies_of(src) == []


def test_race_requires_concurrent_defs():
    # Sequentially merged multiple defs at a join are MULTIPLE, not RACE.
    src = """program p
(1) x = 1
parallel sections
  section A
    if c then
      (2) x = 2
    endif
  section B
    (3) y = 3
(4) end parallel sections
end"""
    found = anomalies_of(src)
    assert all(a.kind is AnomalyKind.MULTIPLE for a in found)
    assert any(a.var == "x" for a in found)


def test_include_multiple_flag():
    r = analyze(programs.program("fig6"))
    only_races = find_anomalies(r, include_multiple=False)
    assert all(a.kind is AnomalyKind.RACE for a in only_races)


def test_summary_counts(fig8_result):
    n_race, n_multi = anomaly_summary(fig8_result)
    assert n_race == 1  # b at join 10
    assert n_multi == 2  # c at joins 9 and 10


def test_format_mentions_location(fig8_result):
    a = find_anomalies(fig8_result)[0]
    text = a.format()
    assert a.var in text and a.node.name in text
