"""Unit coverage for the dense region evaluator: config validation,
profile detection, bulk packing, threshold dispatch, budget charging and
wavefront scheduling."""

import pytest

from repro import analyze, build_pfg
from repro.dataflow.bitset import BulkView, make_backend
from repro.dataflow.budget import BudgetExceeded, ResourceBudget
from repro.dataflow.dense import DenseConfig, dense_profile
from repro.dataflow.framework import SolveStats
from repro.ir.defs import DefTable
from repro.lang import ast
from repro.reachdefs import solve_parallel, solve_sequential, solve_synch
from repro.reachdefs.parallel import ParallelRDSystem
from repro.reachdefs.preserved import resolve_preserved
from repro.reachdefs.sequential import SequentialRDSystem
from repro.reachdefs.synch import SynchRDSystem
from repro.synthetic import diamond_loop, par_diamond_loop


def _sets(result):
    out = {}
    for attr in ("in_sets", "out_sets", "acc_killin", "acc_killout", "fork_kill"):
        values = getattr(result, attr, None)
        if values is None:
            continue
        for node, value in values.items():
            out[(attr, node.name)] = value
    return out


# -- DenseConfig -----------------------------------------------------------


def test_config_validates_mode_and_workers():
    with pytest.raises(ValueError, match="unknown dense mode"):
        DenseConfig(mode="sometimes")
    with pytest.raises(ValueError, match="workers"):
        DenseConfig(workers=0)


def test_config_key_excludes_workers():
    # Workers change wall-clock, never values: two configs differing only
    # in workers must share a cache identity.
    assert DenseConfig(workers=1).key() == DenseConfig(workers=4).key()
    assert DenseConfig(mode="auto").key() != DenseConfig(mode="always").key()
    assert DenseConfig(min_nodes=8).key() != DenseConfig(min_nodes=32).key()


# -- profile detection -----------------------------------------------------


def test_profile_detection_per_system():
    graph = build_pfg(par_diamond_loop(2, 2))
    assert dense_profile(ParallelRDSystem(graph)) == "phase"
    assert dense_profile(SequentialRDSystem(graph)) == "plain"
    pres = resolve_preserved(graph, mode="none")
    # SynchPass has no dense formulation → scalar fallback.
    assert dense_profile(SynchRDSystem(graph, preserved=pres)) is None


# -- BulkView --------------------------------------------------------------


@pytest.mark.parametrize("backend", ["set", "bitset", "numpy"])
def test_bulk_view_roundtrip(backend):
    table = DefTable()
    for i in range(130):  # 3 words: cross-word bits
        table.add(f"v{i % 7}", str(i))
    universe = list(table)
    ops = make_backend(backend, universe)
    view = BulkView(ops)
    values = [
        ops.from_defs([]),
        ops.from_defs([universe[0], universe[63], universe[64], universe[129]]),
        ops.from_defs(universe),
        ops.from_defs([universe[1]]),
    ]
    matrix = view.pack(values)
    assert matrix.shape == (4, view.n_words)
    for row, value in enumerate(values):
        assert ops.to_frozenset(view.unpack_row(matrix, row)) == ops.to_frozenset(value)
    assert view.pack([]).shape == (0, view.n_words)
    assert view.zeros(2).shape == (2, view.n_words)


# -- stats surface ---------------------------------------------------------


def test_stats_dict_includes_dense_fields_only_when_nonzero():
    # Old BENCH records predate these fields: they only appear when set.
    plain = SolveStats(order="scc", converged=True, sweepless=True)
    assert "dense_regions" not in plain.as_dict()
    dense = SolveStats(order="scc", converged=True, sweepless=True, dense_regions=2)
    assert dense.as_dict()["dense_regions"] == 2
    assert dense.as_dict()["scalar_regions"] == 0


# -- dispatch --------------------------------------------------------------


def test_always_mode_engages_and_matches_scalar():
    graph = build_pfg(par_diamond_loop(4, 3))
    base = solve_parallel(graph, solver="scc")
    dense = solve_parallel(graph, solver="scc-dense")
    assert dense.stats.dense_regions >= 1
    assert _sets(dense) == _sets(base)


def test_auto_mode_falls_back_below_thresholds():
    # A cyclic region smaller than min_nodes must be counted as a scalar
    # fallback, and still produce identical sets.
    graph = build_pfg(par_diamond_loop(2, 2))
    cfg = DenseConfig(mode="auto", min_nodes=10_000)
    base = solve_parallel(graph, solver="scc")
    auto = solve_parallel(graph, solver="scc", dense=cfg)
    assert auto.stats.dense_regions == 0
    assert auto.stats.scalar_regions >= 1
    assert _sets(auto) == _sets(base)


def test_min_width_routes_narrow_regions_scalar():
    # A loop-wrapped diamond chain has width ~1.5: the auto width floor
    # must refuse it even when the node-count floors pass.
    graph = build_pfg(diamond_loop(40))
    cfg = DenseConfig(mode="auto", min_nodes=1, min_cells=1, min_width=2.0)
    result = solve_sequential(graph, solver="scc", dense=cfg)
    assert result.stats.dense_regions == 0
    assert result.stats.scalar_regions >= 1


def test_never_mode_counts_nothing():
    graph = build_pfg(par_diamond_loop(2, 2))
    result = solve_parallel(graph, solver="scc", dense=DenseConfig(mode="never"))
    assert result.stats.dense_regions == 0
    assert result.stats.scalar_regions == 0


def test_synch_system_always_scalar():
    src_prog = par_diamond_loop(2, 2)
    graph = build_pfg(src_prog)
    base = solve_synch(graph, solver="scc")
    dense = solve_synch(graph, solver="scc-dense")
    assert dense.stats.dense_regions == 0
    assert _sets(dense) == _sets(base)


# -- budget ---------------------------------------------------------------


def test_dense_solve_charges_budget():
    graph = build_pfg(par_diamond_loop(4, 4))
    budget = ResourceBudget(max_passes=100_000)
    result = solve_parallel(graph, solver="scc-dense", budget=budget)
    assert result.stats.dense_regions >= 1
    assert budget.passes > 0 and budget.updates > 0


def test_dense_solve_trips_budget():
    graph = build_pfg(par_diamond_loop(4, 4))
    with pytest.raises(BudgetExceeded):
        solve_parallel(graph, solver="scc-dense", budget=ResourceBudget(max_passes=1))


def test_charge_region_accumulates():
    budget = ResourceBudget(max_passes=10, max_updates=100)
    budget.charge_region(sweeps=4, updates=40)
    assert (budget.passes, budget.updates) == (4, 40)
    budget.charge_region(sweeps=7, updates=10)
    assert budget.exceeded() is not None


# -- wavefront scheduling --------------------------------------------------


def _multi_region_program(k: int, m: int) -> ast.Program:
    """k parallel sections each holding its own loop of m diamonds: k
    independent cyclic regions at the same condensation depth."""
    sections = []
    for i in range(k):
        loop_body = []
        for j in range(m):
            loop_body.append(
                ast.If(
                    cond=ast.Var("c"),
                    then_body=[ast.Assign(target=f"a{i}_{j}", expr=ast.Var(f"x{i}"))],
                    else_body=[ast.Assign(target=f"x{i}", expr=ast.Var(f"a{i}_{j}"))],
                )
            )
        sections.append(ast.Section(name=f"S{i}", body=[ast.Loop(body=loop_body)]))
    body = [ast.Assign(target="c", expr=ast.IntLit(0))]
    body += [ast.Assign(target=f"x{i}", expr=ast.IntLit(0)) for i in range(k)]
    body.append(ast.ParallelSections(sections=sections))
    return ast.Program(name=f"mr{k}x{m}", events=[], body=body)


def test_wavefront_pool_identical_to_serial():
    from repro import obs

    graph = build_pfg(_multi_region_program(3, 12))
    base = solve_parallel(graph, solver="scc")
    with obs.session() as sess:
        pooled = solve_parallel(
            graph,
            solver="scc-dense",
            dense=DenseConfig(mode="always", workers=2),
        )
    assert _sets(pooled) == _sets(base)
    assert pooled.stats.dense_regions == 3
    counters = {k: c.value for k, c in sess.metrics.counters.items()}
    assert counters.get("solve.dense.waves", 0) >= 1
    assert counters.get("solve.dense.pooled_regions", 0) == 3


def test_wavefront_pool_charges_budget_at_barrier():
    graph = build_pfg(_multi_region_program(3, 12))
    budget = ResourceBudget(max_updates=10_000_000)
    pooled = solve_parallel(
        graph,
        solver="scc-dense",
        dense=DenseConfig(mode="always", workers=2),
        budget=budget,
    )
    assert budget.updates >= pooled.stats.node_updates


# -- end-to-end ------------------------------------------------------------


def test_analyze_scc_dense_end_to_end():
    result = analyze(par_diamond_loop(3, 3), solver="scc-dense", cache=False)
    assert result.stats.converged
    assert result.stats.dense_regions >= 1
    assert result.stats.as_dict()["order"].startswith("scc-dense/")


def test_analyze_cache_key_discriminates_dense_thresholds():
    # Different thresholds change dispatch counts in result.stats (never
    # the sets) — the cache must not serve one config's stats for another.
    prog = par_diamond_loop(3, 3)
    a = analyze(prog, solver="scc", dense=DenseConfig(mode="always"))
    b = analyze(prog, solver="scc", dense=DenseConfig(mode="never"))
    assert a.stats.dense_regions >= 1
    assert b.stats.dense_regions == 0
    # Same key → same object on a warm call.
    assert analyze(prog, solver="scc", dense=DenseConfig(mode="always")) is a
