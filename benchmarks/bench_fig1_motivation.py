"""Experiment ``fig1-motivation`` — the §1 claims as a measured pipeline:
induction-variable detection and constant propagation on Figure 1(a) vs
1(b), reproducing the sequential/parallel contrast."""

from repro import analyze
from repro.analysis import find_induction_variables, propagate_constants
from repro.paper import programs


def test_fig1b_induction_detection(benchmark, paper_graphs):
    from repro.reachdefs import solve_parallel

    result = solve_parallel(paper_graphs["fig1b"])
    ivs = benchmark(find_induction_variables, result)
    assert [iv.var for iv in ivs] == ["j"]
    assert ivs[0].steps == (1,)


def test_fig1a_no_induction(paper_graphs):
    from repro.reachdefs import solve_sequential

    result = solve_sequential(paper_graphs["fig1a"])
    assert find_induction_variables(result) == []


def test_fig1b_constant_propagation(benchmark, paper_graphs):
    from repro.reachdefs import solve_parallel

    result = solve_parallel(paper_graphs["fig1b"])
    constants = benchmark(propagate_constants, result)
    assert constants.constant_at("6", "k") == 5


def test_fig1_full_contrast(benchmark):
    """The whole §1 story, end to end, as one measured unit."""

    def contrast():
        seq = analyze(programs.program("fig1a"))
        par = analyze(programs.program("fig1b"))
        return (
            find_induction_variables(seq),
            find_induction_variables(par),
            propagate_constants(seq).constant_at("6", "k"),
            propagate_constants(par).constant_at("6", "k"),
        )

    seq_ivs, par_ivs, seq_k, par_k = benchmark(contrast)
    assert seq_ivs == [] and [iv.var for iv in par_ivs] == ["j"]
    assert seq_k is None and par_k == 5
