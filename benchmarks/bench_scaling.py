"""Experiment ``perf-scaling`` — fixpoint cost vs program size and shape.

One series per workload dimension (DESIGN.md §4): sequential chains
(universe size), merge-heavy diamonds, wide constructs (MHP/ParallelKill
pressure), deep nesting (ForkKill plumbing), loop nests (back-edge
iteration pressure), event pipelines (SynchPass/Preserved), and the
paper's own Figure 3 shape scaled up."""

import pytest

from repro import analyze, build_pfg
from repro.synthetic import (
    chain,
    diamond_chain,
    fig3_repeated,
    loop_nest,
    nested_parallel,
    random_mix,
    sync_pipeline,
    wide_parallel,
)


@pytest.mark.parametrize("n", [50, 200, 800])
def test_scaling_chain(benchmark, n):
    prog = chain(n)
    result = benchmark(analyze, prog)
    assert result.stats.converged
    assert len(result.graph.defs) == n


@pytest.mark.parametrize("n", [10, 40, 160])
def test_scaling_diamonds(benchmark, n):
    prog = diamond_chain(n)
    result = benchmark(analyze, prog)
    assert result.stats.converged


@pytest.mark.parametrize("k", [2, 8, 32])
def test_scaling_wide_parallel(benchmark, k):
    prog = wide_parallel(k, 6)
    result = benchmark(analyze, prog)
    assert result.stats.converged
    assert result.system == "parallel"


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_scaling_nested_parallel(benchmark, depth):
    prog = nested_parallel(depth)
    result = benchmark(analyze, prog)
    assert result.stats.converged


@pytest.mark.parametrize("depth", [1, 3, 5])
def test_scaling_loop_nest(benchmark, depth):
    prog = loop_nest(depth)
    result = benchmark(analyze, prog)
    assert result.stats.converged


@pytest.mark.parametrize("stages", [2, 6, 16])
def test_scaling_sync_pipeline(benchmark, stages):
    prog = sync_pipeline(stages)
    result = benchmark(analyze, prog)
    assert result.stats.converged
    assert result.system == "synch"
    join = result.graph.joins[0]
    assert len(result.reaching(join, "x")) == 1  # pipeline fully ordered


@pytest.mark.parametrize("copies", [1, 4, 8])
def test_scaling_fig3_shape(benchmark, copies):
    prog = fig3_repeated(copies)
    result = benchmark(analyze, prog)
    assert result.stats.converged


@pytest.mark.parametrize("size", [50, 150, 400])
def test_scaling_random_mix(benchmark, size):
    prog = random_mix(seed=7, n_stmts=size)
    result = benchmark(analyze, prog)
    assert result.stats.converged


# -- the same series under the sparse SCC-scheduled solver ----------------


@pytest.mark.parametrize("n", [50, 200, 800])
def test_scaling_chain_scc(benchmark, n):
    prog = chain(n)
    result = benchmark(analyze, prog, solver="scc")
    assert result.stats.converged
    assert result.stats.sweepless


@pytest.mark.parametrize("n", [10, 40, 160])
def test_scaling_diamonds_scc(benchmark, n):
    prog = diamond_chain(n)
    result = benchmark(analyze, prog, solver="scc")
    assert result.stats.converged


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_scaling_nested_parallel_scc(benchmark, depth):
    prog = nested_parallel(depth)
    result = benchmark(analyze, prog, solver="scc")
    assert result.stats.converged


@pytest.mark.parametrize("stages", [2, 6, 16])
def test_scaling_sync_pipeline_scc(benchmark, stages):
    prog = sync_pipeline(stages)
    result = benchmark(analyze, prog, solver="scc")
    assert result.stats.converged
    assert result.system == "synch"


@pytest.mark.parametrize("size", [100, 400])
def test_scaling_pfg_construction(benchmark, size):
    prog = random_mix(seed=11, n_stmts=size)
    graph = benchmark(build_pfg, prog)
    assert len(graph) > 10
