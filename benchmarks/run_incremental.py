"""Record (or check) the incremental re-analysis perf trajectory.

For each workload the script runs, with the analysis cache disabled:

* ``full``        — a from-scratch ``analyze`` of the *edited* program
  (solver ``scc``, the engine the incremental path reuses);
* ``incremental`` — ``incremental_analyze`` of the same edit against a
  base solve of the original program (base-solve cost excluded: the
  serving scenario already paid it).

The edit is always a one-statement RHS change in the **last** construct,
so the dirty cone is minimal and the reuse counters prove the skips.
``benchmarks/BENCH_incremental.json`` holds the deterministic half —
``SolveStats`` records including ``regions_reused``/``regions_solved``
and the outcome's node-match counts — plus wall-clock context.

``--check`` re-runs everything, compares the deterministic fields, and
enforces three live gates:

* **speedup gate** — on the wide multi-region workloads (``plchain12x12``,
  ``plchain16x12``: many independent cyclic SCCs through the §5 kill
  layer) incremental must be at least 3x faster than from-scratch by
  wall clock, with ``regions_reused > 0`` pinning that the win comes
  from skipped regions, not noise;
* **identity pin** — every cell's incremental In/Out rows must equal the
  from-scratch rows byte-for-byte (the property suite proves this at
  depth; the bench re-asserts it on the exact gate workloads);
* **overhead gate** — the fallback path (a delta request whose base
  digest matches nothing useful — here: a structurally disjoint base)
  must cost within 5% of a plain full solve, re-measured A/B with extra
  repeats: the diff/fallback machinery must be effectively free when it
  cannot help.

Run:    PYTHONPATH=src python benchmarks/run_incremental.py [OUT.json]
Check:  PYTHONPATH=src python benchmarks/run_incremental.py --check
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro import analyze
from repro.dataflow.cache import GLOBAL_CACHE
from repro.incremental import IncrementalBase, incremental_analyze
from repro.lang import ast
from repro.synthetic import chain, diamond_chain, diamond_loop, par_loop_chain

REPEATS = 3
OVERHEAD_REPEATS = 7

#: Wide multi-region workloads: incremental must win >= 3x wall-clock
#: with regions actually reused.
KEY_SPEEDUP = ("plchain12x12", "plchain16x12")

#: Fallback-cost workloads for the overhead gate.
OVERHEAD = ("diamonds400", "plchain8x10")


def _edit_last(program):
    """One-statement RHS edit in the program's last construct (matching
    shapes produced by the workload factories below)."""
    for stmt in reversed(program.body):
        if isinstance(stmt, ast.Loop):
            inner = stmt.body[0]
            target_if = (
                inner.sections[0].body[0]
                if isinstance(inner, ast.ParallelSections)
                else inner
            )
        elif isinstance(stmt, ast.If):
            target_if = stmt
        else:
            continue
        old = target_if.then_body[0]
        target_if.then_body[0] = ast.Assign(target=old.target, expr=ast.IntLit(99))
        return program
    raise AssertionError(f"no editable construct in {program.name}")


WORKLOADS = {
    "diamonds400": lambda: diamond_chain(400),
    "dloop200": lambda: diamond_loop(200),
    "plchain8x10": lambda: par_loop_chain(8, 10),
    "plchain12x12": lambda: par_loop_chain(12, 12),
    "plchain16x12": lambda: par_loop_chain(16, 12),
}


def _sets(result):
    out = {}
    for n in result.graph.nodes:
        out[(n.name, "In")] = frozenset(d.name for d in result.In(n))
        out[(n.name, "Out")] = frozenset(d.name for d in result.Out(n))
    return out


def _measure_cell(name):
    """One workload: time full vs incremental on the same one-stmt edit."""
    make = WORKLOADS[name]
    base_prog = make()
    base = IncrementalBase.from_result(
        base_prog, analyze(base_prog, solver="scc", cache=False)
    )
    edited = _edit_last(make())

    full_t, full_result = None, None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        full_result = analyze(edited, solver="scc", cache=False)
        elapsed = time.perf_counter() - t0
        full_t = elapsed if full_t is None else min(full_t, elapsed)

    incr_t, outcome = None, None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        outcome = incremental_analyze(base, edited, cache=False)
        elapsed = time.perf_counter() - t0
        incr_t = elapsed if incr_t is None else min(incr_t, elapsed)

    identical = _sets(full_result) == _sets(outcome.result)
    record = {
        "full": dict(full_result.stats.as_dict(), time_s=round(full_t, 6)),
        "incremental": dict(
            outcome.result.stats.as_dict(), time_s=round(incr_t, 6)
        ),
        "nodes_matched": outcome.nodes_matched,
        "nodes_dirty": outcome.nodes_dirty,
        "fallback": outcome.fallback,
        "identical": identical,
    }
    return record


def measure() -> dict:
    return {name: _measure_cell(name) for name in sorted(WORKLOADS)}


def deterministic(cells: dict) -> dict:
    """The comparable half of a measurement: everything but wall-clock."""
    out = {}
    for name, rec in cells.items():
        out[name] = {
            "full": {k: v for k, v in rec["full"].items() if k != "time_s"},
            "incremental": {
                k: v for k, v in rec["incremental"].items() if k != "time_s"
            },
            "nodes_matched": rec["nodes_matched"],
            "nodes_dirty": rec["nodes_dirty"],
            "fallback": rec["fallback"],
            "identical": rec["identical"],
        }
    return out


def _overhead_ab(name):
    """A/B the fallback path against a plain solve on one workload.

    B's base is a structurally disjoint program, so ``incremental_analyze``
    runs its matcher, finds nothing, and falls back internally — the
    worst honest cost of offering the delta form."""
    decoy_prog = chain(40)
    decoy = IncrementalBase.from_result(
        decoy_prog, analyze(decoy_prog, solver="scc", cache=False)
    )
    prog = WORKLOADS[name]()
    plain_t = fb_t = None
    # Interleave the A/B pairs so clock drift hits both sides equally.
    for _ in range(OVERHEAD_REPEATS):
        t0 = time.perf_counter()
        analyze(prog, solver="scc", cache=False)
        elapsed = time.perf_counter() - t0
        plain_t = elapsed if plain_t is None else min(plain_t, elapsed)
        t0 = time.perf_counter()
        outcome = incremental_analyze(decoy, prog, solver="scc", cache=False)
        elapsed = time.perf_counter() - t0
        fb_t = elapsed if fb_t is None else min(fb_t, elapsed)
    assert outcome.fallback is not None
    return plain_t, fb_t


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    fresh = measure()
    failures = []
    want, got = deterministic(recorded["workloads"]), deterministic(fresh)
    for name in sorted(WORKLOADS):
        if want.get(name) != got[name]:
            failures.append(
                f"{name}: recorded {want.get(name)!r} != measured {got[name]!r}"
            )

    # Identity pin: byte-identical rows on every cell, no silent fallback
    # on the shapes built to be matchable.
    for name in sorted(WORKLOADS):
        if not fresh[name]["identical"]:
            failures.append(f"{name}: incremental rows differ from from-scratch")
        if fresh[name]["fallback"] is not None:
            failures.append(
                f"{name}: unexpected fallback {fresh[name]['fallback']!r}"
            )

    # Speedup gate: >= 3x on the wide multi-region shapes, with reuse.
    for name in KEY_SPEEDUP:
        full_t = fresh[name]["full"]["time_s"]
        incr_t = fresh[name]["incremental"]["time_s"]
        reused = fresh[name]["incremental"].get("regions_reused", 0)
        if incr_t * 3 > full_t:
            failures.append(
                f"{name}: speedup gate broken — incremental {incr_t:.3f}s vs"
                f" full {full_t:.3f}s (need >= 3x faster)"
            )
        else:
            print(
                f"{name}: incremental {incr_t:.3f}s vs full {full_t:.3f}s "
                f"({full_t / incr_t:.1f}x, {reused} regions reused)"
            )
        if not reused:
            failures.append(f"{name}: no regions reused — speedup is not real")

    # Overhead gate: the fallback path must cost < 5% over a plain solve.
    for name in OVERHEAD:
        plain_t, fb_t = _overhead_ab(name)
        if fb_t > plain_t * 1.05:
            failures.append(
                f"{name}: overhead gate broken — fallback {fb_t:.4f}s vs"
                f" plain {plain_t:.4f}s (> 5% regression)"
            )
        else:
            print(
                f"{name}: fallback {fb_t:.4f}s vs plain {plain_t:.4f}s "
                f"({(fb_t / plain_t - 1) * 100:+.1f}%)"
            )

    if failures:
        print(f"\nFAIL: {len(failures)} mismatch(es) vs {path}:")
        for f in failures:
            print(f"  - {f}")
        print(
            "\nRegenerate with: PYTHONPATH=src python benchmarks/run_incremental.py"
        )
        return 1
    print(
        f"OK: {path} in sync; speedup gate holds on {', '.join(KEY_SPEEDUP)}, "
        f"overhead gate on {', '.join(OVERHEAD)}"
    )
    return 0


def write(path: Path) -> int:
    payload = {
        "meta": {
            "source": "benchmarks/run_incremental.py",
            "python": platform.python_version(),
            "repeats": REPEATS,
            "note": "time_s is context only; --check compares the rest and "
            "re-measures the live gates",
        },
        "workloads": measure(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(payload['workloads'])} workload records to {path}")
    return 0


def main(argv: list[str]) -> int:
    GLOBAL_CACHE.enabled = False  # measure real solves, never cache hits
    default = Path(__file__).parent / "BENCH_incremental.json"
    if "--check" in argv:
        return check(default)
    return write(Path(argv[0]) if argv else default)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
