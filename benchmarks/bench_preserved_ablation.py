"""Experiment ``precision-preserved`` — what the Preserved machinery buys.

Paper §6: "In the worst case, the effect of synchronization is lost at
parallel merge points ... This simply reduces the opportunity or
effectiveness of some optimizations."  We quantify that on the event
pipeline and on the paper's Figure 3 shape: number of anomaly reports and
total reaching-set size with the approximation vs without, plus the cost
of computing Preserved itself."""

import pytest

from repro import build_pfg
from repro.analysis import anomaly_summary
from repro.reachdefs import compute_preserved, solve_synch
from repro.synthetic import fig3_repeated, sync_pipeline

PIPELINE = sync_pipeline(10)
FIG3X = fig3_repeated(4)


def in_size(result):
    return sum(len(result.In(n)) for n in result.graph.nodes)


@pytest.mark.parametrize("mode", ["approx", "none"])
def test_preserved_mode_timing(benchmark, mode):
    graph = build_pfg(PIPELINE)
    result = benchmark(solve_synch, graph, preserved=mode)
    assert result.stats.converged


def test_pipeline_precision_contrast():
    graph = build_pfg(PIPELINE)
    precise = solve_synch(graph, preserved="approx")
    blunt = solve_synch(build_pfg(PIPELINE), preserved="none")
    races_precise, _ = anomaly_summary(precise)
    races_blunt, _ = anomaly_summary(blunt)
    assert races_precise == 0, "the pipeline is fully ordered by events"
    assert races_blunt > 0, "without ordering info every stage looks racy"
    assert in_size(precise) < in_size(blunt)


def test_fig3_shape_precision_contrast():
    precise = solve_synch(build_pfg(FIG3X), preserved="approx")
    blunt = solve_synch(build_pfg(FIG3X), preserved="none")
    assert in_size(precise) < in_size(blunt)


def test_preserved_computation_cost(benchmark):
    graph = build_pfg(fig3_repeated(8))
    preserved = benchmark(compute_preserved, graph)
    assert preserved.passes >= 1
