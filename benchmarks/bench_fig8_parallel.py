"""Experiment ``fig8`` — regenerate Figure 8 (all §5 sets on the Figure 6
program; convergence on the second iteration) and measure the parallel
solve in both solver modes."""

from repro.paper import tables
from repro.paper.golden import EXPECTED_PASSES, FIG8_FIXPOINT
from repro.reachdefs import solve_parallel


def test_fig8_paper_mode(benchmark, paper_graphs):
    graph = paper_graphs["fig6"]
    result = benchmark(solve_parallel, graph, solver="round-robin")
    for node, row in FIG8_FIXPOINT.items():
        for col, expected in row.items():
            assert result.set_names(col, node) == expected
    assert (result.stats.changing_passes, result.stats.passes) == EXPECTED_PASSES["fig8"]


def test_fig8_stabilized_mode(benchmark, paper_graphs):
    result = benchmark(solve_parallel, paper_graphs["fig6"], solver="stabilized")
    for node, row in FIG8_FIXPOINT.items():
        for col, expected in row.items():
            assert result.set_names(col, node) == expected


def test_fig8_render(benchmark):
    text = benchmark(tables.fig8)
    assert "{a3, b3, b5, c1, c7}" in text  # In(10)
