"""Experiment ``table1`` — regenerate Table 1 (sequential reaching
definitions on Figure 1(a)) and measure the §2 solve."""

from repro.paper import programs, tables
from repro.paper.golden import EXPECTED_PASSES, TABLE1_FIXPOINT
from repro.reachdefs import solve_sequential


def test_table1_regeneration(benchmark, paper_graphs):
    graph = paper_graphs["fig1a"]
    result = benchmark(solve_sequential, graph, solver="round-robin")
    # Verify (outside the timed region) that the measured run reproduces
    # the paper's table and convergence claim.
    for node, row in TABLE1_FIXPOINT.items():
        for col, expected in row.items():
            assert result.set_names(col, node) == expected
    assert (result.stats.changing_passes, result.stats.passes) == EXPECTED_PASSES["table1"]


def test_table1_render(benchmark):
    text = benchmark(tables.table1)
    assert "Table 1" in text and "{j1, k1}" in text


def test_table1_end_to_end_from_source(benchmark):
    """Parse + CFG + solve, the full path a compiler front end would run."""
    from repro import analyze
    from repro.lang import parse_program

    source = programs.SOURCES["fig1a"]

    def pipeline():
        return analyze(parse_program(source))

    result = benchmark(pipeline)
    assert result.system == "sequential"
