"""Record (or check) batch-driver throughput and per-task outcomes.

Generates a synthetic corpus (``repro.synthetic``), writes it to a temp
directory, and drives ``repro.batch.run_batch`` over it twice — serial
(``workers=1``) and pooled (``workers=4``) — recording per-task status,
exit code, and solver pass/update counts (deterministic) plus wall-clock
times and the pooled speedup (context).

``--check`` re-runs the corpus and compares every deterministic field
against the checked-in ``benchmarks/BENCH_batch.json``; it additionally
enforces the throughput gate — pooled must be at least ``GATE_SPEEDUP``×
faster than serial — but only when the machine actually has >= 4 usable
CPUs (a process pool cannot beat serial on fewer cores; the skip is
printed so CI logs show which path ran).  CI's 4-vCPU runners take the
live gate.  Regenerate the file with the bare command after any change
that legitimately moves the counts.

Run:    PYTHONPATH=src python benchmarks/run_batch.py [OUT.json]
Check:  PYTHONPATH=src python benchmarks/run_batch.py --check
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import pretty
from repro.batch import BatchOptions, run_batch
from repro.synthetic import (
    chain,
    diamond_chain,
    fig3_repeated,
    nested_parallel,
    random_mix,
    sync_pipeline,
    wide_parallel,
)

GATE_SPEEDUP = 2.0
GATE_MIN_CPUS = 4
POOL_WORKERS = 4
REPEATS = 3

#: Corpus: every program converges under the default budget, so the bench
#: measures throughput, not failure handling (tests cover the latter).
#: Sizes are chosen so each task costs enough for pooling to amortize
#: process startup but the whole bench stays a few seconds per repeat.
CORPUS = {
    "chain400.pcf": lambda: chain(400),
    "chain600.pcf": lambda: chain(600),
    "diamonds80.pcf": lambda: diamond_chain(80),
    "diamonds120.pcf": lambda: diamond_chain(120),
    "fig3x6.pcf": lambda: fig3_repeated(6),
    "mix400.pcf": lambda: random_mix(seed=7, n_stmts=400),
    "mix600.pcf": lambda: random_mix(seed=11, n_stmts=600),
    "nested10.pcf": lambda: nested_parallel(10),
    "syncpipe12.pcf": lambda: sync_pipeline(12),
    "wide8x8.pcf": lambda: wide_parallel(8, 8),
}


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def write_corpus(root: Path) -> list[str]:
    paths = []
    for name, make in sorted(CORPUS.items()):
        path = root / name
        path.write_text(pretty(make()))
        paths.append(str(path))
    return paths


def task_key(rec: dict) -> dict:
    """The comparable half of a task record: outcome + solver counts."""
    stats = rec["stats"] or {}
    return {
        "status": rec["status"],
        "code": rec["code"],
        "digest": rec["digest"],
        "system": rec["system"],
        "passes": stats.get("passes"),
        "node_updates": stats.get("node_updates"),
        "converged": stats.get("converged"),
    }


def measure() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-batch-") as tmp:
        paths = write_corpus(Path(tmp))
        options = BatchOptions()
        out = {"tasks": {}, "timing": {}}
        for label, workers in (("serial", 1), ("pooled", POOL_WORKERS)):
            best = None
            report = None
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                report = run_batch(paths, options, workers=workers)
                elapsed = time.perf_counter() - t0
                best = elapsed if best is None else min(best, elapsed)
            out["timing"][label] = {"workers": workers, "time_s": round(best, 6)}
            keyed = {
                Path(rec["file"]).name: task_key(rec) for rec in report.records
            }
            if not out["tasks"]:
                out["tasks"] = keyed
            elif keyed != out["tasks"]:
                # pooled and serial must agree on every deterministic field
                raise AssertionError(
                    f"{label} outcomes diverge from serial: {keyed!r}"
                )
            if report.exit_code != 0:
                raise AssertionError(f"bench corpus must be clean, got {keyed!r}")
        serial = out["timing"]["serial"]["time_s"]
        pooled = out["timing"]["pooled"]["time_s"]
        out["timing"]["speedup"] = round(serial / pooled, 3)
        return out


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    fresh = measure()
    failures = []
    for name in sorted(CORPUS):
        want = recorded["tasks"].get(name)
        got = fresh["tasks"][name]
        if want != got:
            failures.append(f"{name}: recorded {want!r} != measured {got!r}")
    cpus = usable_cpus()
    speedup = fresh["timing"]["speedup"]
    if cpus >= GATE_MIN_CPUS:
        if speedup < GATE_SPEEDUP:
            failures.append(
                f"throughput gate broken: {POOL_WORKERS} workers gave only "
                f"{speedup:.2f}x over serial (need >= {GATE_SPEEDUP}x on "
                f"{cpus} CPUs)"
            )
        else:
            print(
                f"throughput gate holds: {speedup:.2f}x at {POOL_WORKERS} "
                f"workers on {cpus} CPUs (need >= {GATE_SPEEDUP}x)"
            )
    else:
        print(
            f"throughput gate SKIPPED: only {cpus} usable CPU(s); a process "
            f"pool cannot beat serial below {GATE_MIN_CPUS} cores "
            f"(measured {speedup:.2f}x — recorded for context only)"
        )
    if failures:
        print(f"\nFAIL: {len(failures)} mismatch(es) vs {path}:")
        for f in failures:
            print(f"  - {f}")
        print("\nRegenerate with: PYTHONPATH=src python benchmarks/run_batch.py")
        return 1
    print(f"OK: {path} in sync across {len(CORPUS)} tasks")
    return 0


def write(path: Path) -> int:
    fresh = measure()
    payload = {
        "meta": {
            "source": "benchmarks/run_batch.py",
            "python": platform.python_version(),
            "repeats": REPEATS,
            "cpus": usable_cpus(),
            "note": "timing is context only; --check compares tasks and "
            "applies the >=2x pooled gate when >=4 CPUs are available",
        },
        "tasks": fresh["tasks"],
        "timing": fresh["timing"],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {len(payload['tasks'])} task records to {path} "
        f"(speedup {fresh['timing']['speedup']}x on {usable_cpus()} CPU(s))"
    )
    return 0


def main(argv: list[str]) -> int:
    default = Path(__file__).parent / "BENCH_batch.json"
    if "--check" in argv:
        return check(default)
    return write(Path(argv[0]) if argv else default)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
