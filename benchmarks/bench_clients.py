"""Experiment ``perf-clients`` — cost of each optimization client and of
the full driver pipeline on a mid-size mixed workload."""

import pytest

from repro import analyze, build_pfg, optimize
from repro.analysis import (
    compute_ud_chains,
    find_anomalies,
    find_common_subexpressions,
    find_copy_propagations,
    find_dead_code,
    find_induction_variables,
    lint_synchronization,
    propagate_constants,
    solve_liveness,
)
from repro.analysis.availexpr import solve_available_expressions
from repro.synthetic import random_mix

PROGRAM = random_mix(seed=5, n_stmts=250)


@pytest.fixture(scope="module")
def prepared():
    graph = build_pfg(PROGRAM)
    result = analyze(PROGRAM)
    return graph, result


CLIENTS = {
    "ud-chains": lambda g, r: compute_ud_chains(r),
    "anomalies": lambda g, r: find_anomalies(r),
    "constants": lambda g, r: propagate_constants(r),
    "induction": lambda g, r: find_induction_variables(r),
    "dead-code": lambda g, r: find_dead_code(r),
    "copy-prop": lambda g, r: find_copy_propagations(r),
    "cse": lambda g, r: find_common_subexpressions(r),
    "sync-lint": lambda g, r: lint_synchronization(g),
    "liveness": lambda g, r: solve_liveness(g),
    "avail-expr": lambda g, r: solve_available_expressions(g),
}


@pytest.mark.parametrize("name", sorted(CLIENTS))
def test_client_cost(benchmark, prepared, name):
    graph, result = prepared
    out = benchmark(CLIENTS[name], graph, result)
    assert out is not None


def test_full_driver(benchmark):
    report = benchmark(optimize, PROGRAM)
    assert report.result.stats.converged
    assert report.opportunity_count()
