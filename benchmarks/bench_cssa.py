"""Experiment ``ext-cssa`` — the paper's §7 future work, measured:
Concurrent SSA construction (φ/ψ/π placement + renaming) on the paper
programs and on scaling workloads."""

import pytest

from repro import build_pfg
from repro.cssa import MergeKind, build_cssa
from repro.synthetic import diamond_chain, random_mix, wide_parallel


@pytest.mark.parametrize("key", ["fig1a", "fig6", "fig3"])
def test_cssa_paper_programs(benchmark, key, paper_graphs):
    graph = paper_graphs[key]
    form = benchmark(build_cssa, graph)
    kinds = {m.kind for m in form.merges.values()}
    if key == "fig1a":
        assert kinds == {MergeKind.PHI}
    if key == "fig6":
        assert MergeKind.PSI in kinds and MergeKind.PHI in kinds
    if key == "fig3":
        assert MergeKind.PI in kinds


@pytest.mark.parametrize("n", [20, 80])
def test_cssa_scaling_diamonds(benchmark, n):
    graph = build_pfg(diamond_chain(n))
    form = benchmark(build_cssa, graph)
    phis = [m for m in form.merges.values() if m.kind is MergeKind.PHI]
    assert len(phis) >= n  # one φ per diamond for x (plus header effects)


@pytest.mark.parametrize("k", [4, 16])
def test_cssa_scaling_wide(benchmark, k):
    graph = build_pfg(wide_parallel(k, 4))
    form = benchmark(build_cssa, graph)
    assert any(m.kind is MergeKind.PSI for m in form.merges.values())


def test_cssa_scaling_mix(benchmark):
    graph = build_pfg(random_mix(seed=13, n_stmts=300))
    form = benchmark(build_cssa, graph)
    assert form.def_versions
