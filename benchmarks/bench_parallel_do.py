"""Experiment ``ext-pardo`` — the Parallel Do extension, measured:
analysis cost and report quality on iteration-parallel shapes."""

import pytest

from repro import analyze, build_pfg, parse_program
from repro.analysis import AnomalyKind, find_anomalies
from repro.interp import RandomScheduler, run_program
from repro.lang import ast


def make_pardo_sweep(n_constructs: int, body_stmts: int) -> ast.Program:
    body: list = [ast.Assign(target="acc", expr=ast.IntLit(0))]
    for c in range(n_constructs):
        inner = [
            ast.Assign(
                target=f"t{c}_{s}",
                expr=ast.BinOp("+", ast.Var(f"idx{c}"), ast.IntLit(s)),
            )
            for s in range(body_stmts)
        ]
        inner.append(ast.Assign(target="acc", expr=ast.BinOp("+", ast.Var("acc"), ast.IntLit(1))))
        body.append(ast.ParallelDo(index=f"idx{c}", body=inner))
    return ast.Program(name=f"pardo{n_constructs}x{body_stmts}", events=[], body=body)


@pytest.mark.parametrize("n,m", [(2, 4), (8, 8), (16, 16)])
def test_pardo_analysis_scaling(benchmark, n, m):
    prog = make_pardo_sweep(n, m)
    result = benchmark(analyze, prog)
    assert result.stats.converged
    races = [a for a in find_anomalies(result) if a.kind is AnomalyKind.CROSS_ITERATION]
    assert any(a.var == "acc" for a in races)


def test_pardo_interpreter(benchmark):
    prog = make_pardo_sweep(4, 4)
    graph = build_pfg(prog)

    def run():
        return run_program(prog, RandomScheduler(seed=2, max_loop_iters=3), graph=graph)

    result = benchmark(run)
    assert not result.deadlocked


def test_pardo_zero_trip_and_race_contrast(benchmark):
    src = """program p
(1) x = 1
parallel do i
  (2) x = x + i
(3) end parallel do
end"""
    prog = parse_program(src)
    result = benchmark(analyze, prog)
    # bypass keeps x1; body x2 also reaches; cross-iteration race on x.
    assert {d.name for d in result.reaching("3", "x")} == {"x1", "x2"}
    races = [a for a in find_anomalies(result) if a.kind is AnomalyKind.CROSS_ITERATION]
    assert [a.var for a in races] == ["x"]
