"""Experiment ``fig4`` — regenerate Figure 4 (the PFG of Figure 3:
sequential/parallel/synchronization edges, fork/join matching) and
measure PFG construction."""

from repro.lang import parse_program
from repro.paper import programs
from repro.paper.golden import FIG4_PFG_EDGES
from repro.pfg import build_pfg, to_dot, validate_pfg


def test_fig4_pfg_construction(benchmark):
    program = parse_program(programs.SOURCES["fig3"])
    graph = benchmark(build_pfg, program)
    edges = {(s.name, d.name, str(k)) for s, d, k in graph.edges()}
    assert edges == set(FIG4_PFG_EDGES)
    validate_pfg(graph)


def test_fig4_parse_and_build(benchmark):
    source = programs.SOURCES["fig3"]

    def pipeline():
        return build_pfg(parse_program(source))

    graph = benchmark(pipeline)
    assert len(graph) == 14


def test_fig4_dot_render(benchmark, paper_graphs):
    dot = benchmark(to_dot, paper_graphs["fig3"])
    assert "style=dashed" in dot  # the two synchronization edges
