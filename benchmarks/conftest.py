"""Benchmark helpers.

Every ``bench_*`` module regenerates one of the paper's tables/figures
(asserting the golden content, outside the timed region) and measures the
code path that produces it; the ``bench_scaling``/``bench_orders``/
``bench_backends``/``bench_preserved_ablation`` modules measure the
machinery on synthetic workloads.

Run:  pytest benchmarks/ --benchmark-only

Observability: set ``REPRO_BENCH_PROFILE=out.jsonl`` to run every bench
test under a :mod:`repro.obs` session — each test becomes one ``bench``
root span (with the pipeline's nested spans inside) and the combined
records are written as JSONL (schema ``repro-obs/1``, the same schema as
the CLI ``--profile`` flag and the checked-in ``BENCH_*.json`` trajectory
files; see ``benchmarks/run_obs_baseline.py``).  Unset (the default),
benches run against the no-op singletons: timings are undistorted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List

import pytest

from repro import obs
from repro.paper import programs

_PROFILE_PATH = os.environ.get("REPRO_BENCH_PROFILE")
_collected: List[dict] = []


@pytest.fixture(scope="session")
def paper_graphs():
    """All paper PFGs, built once (construction is benchmarked separately)."""
    return {key: programs.graph(key) for key in programs.SOURCES}


@pytest.fixture(autouse=True)
def bench_cache_disabled():
    """Benchmarks time the real pipeline: with the digest-keyed analysis
    cache left on, every benchmark repeat after the first would be a
    cache hit and the timings would measure dictionary lookups."""
    from repro.dataflow.cache import GLOBAL_CACHE

    prev = GLOBAL_CACHE.enabled
    GLOBAL_CACHE.enabled = False
    GLOBAL_CACHE.clear()
    try:
        yield
    finally:
        GLOBAL_CACHE.enabled = prev


@pytest.fixture(autouse=True)
def bench_obs_session(request):
    """Per-test observability session when REPRO_BENCH_PROFILE is set."""
    if not _PROFILE_PATH:
        yield
        return
    with obs.session() as sess:
        with sess.tracer.span("bench", test=request.node.nodeid):
            yield
    _collected.extend(obs.span_records(sess.tracer))
    _collected.extend(obs.metric_records(sess.metrics))


def pytest_sessionfinish(session, exitstatus):
    if _PROFILE_PATH and _collected:
        records = [{"type": "meta", "schema": obs.SCHEMA, "source": "benchmarks"}]
        records.extend(_collected)
        Path(_PROFILE_PATH).write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
        )
