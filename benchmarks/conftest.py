"""Benchmark helpers.

Every ``bench_*`` module regenerates one of the paper's tables/figures
(asserting the golden content, outside the timed region) and measures the
code path that produces it; the ``bench_scaling``/``bench_orders``/
``bench_backends``/``bench_preserved_ablation`` modules measure the
machinery on synthetic workloads.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.paper import programs


@pytest.fixture(scope="session")
def paper_graphs():
    """All paper PFGs, built once (construction is benchmarked separately)."""
    return {key: programs.graph(key) for key in programs.SOURCES}
