"""Experiment ``fig5`` — the §5 sequential-vs-parallel merge semantics on
Figure 5(A)/(B): a conditional merge keeps both definitions, a parallel
merge keeps only the always-executing section's."""

from repro.reachdefs import solve_parallel, solve_sequential


def test_fig5a_sequential_merge(benchmark, paper_graphs):
    result = benchmark(solve_sequential, paper_graphs["fig5a"])
    assert {d.name for d in result.reaching("5", "a")} == {"a1", "a3"}
    assert {d.name for d in result.reaching("5", "b")} == {"b3", "b4"}


def test_fig5b_parallel_merge(benchmark, paper_graphs):
    result = benchmark(solve_parallel, paper_graphs["fig5b"])
    assert {d.name for d in result.reaching("10", "a")} == {"a3"}
    assert {d.name for d in result.reaching("10", "b")} == {"b3", "b5"}
    assert {d.name for d in result.reaching("10", "c")} == {"c1", "c7"}


def test_fig5_contrast_naive_baseline(benchmark, paper_graphs):
    """The same parallel graph under the naive sequential equations — the
    baseline the paper improves on: a1 wrongly survives the join."""
    result = benchmark(solve_sequential, paper_graphs["fig5b"])
    assert {d.name for d in result.reaching("10", "a")} == {"a1", "a3"}
