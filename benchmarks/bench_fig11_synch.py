"""Experiment ``fig11_12`` — regenerate Figures 11 and 12 (synchronized
system on the Figure 3 program, iterations 1 and 2; fixpoint on the
third) and measure the §6 solve including the Preserved computation."""

from repro.paper import tables
from repro.paper.golden import (
    EXPECTED_PASSES,
    FIG3_PRESERVED_8,
    FIG11_ITER1,
    FIG12_ITER2,
)
from repro.reachdefs import compute_preserved, solve_synch


def test_fig11_12_paper_mode(benchmark, paper_graphs):
    graph = paper_graphs["fig3"]
    result = benchmark(
        solve_synch, graph, solver="round-robin", snapshot_passes=True
    )
    for table, snap in zip((FIG11_ITER1, FIG12_ITER2), result.stats.snapshots):
        for node, row in table.items():
            for col, expected in row.items():
                got = frozenset(str(d) for d in snap[col][node])
                assert got == expected, f"{col}({node})"
    assert (result.stats.changing_passes, result.stats.passes) == EXPECTED_PASSES["fig11_12"]


def test_fig11_preserved_sets(benchmark, paper_graphs):
    graph = paper_graphs["fig3"]
    preserved = benchmark(compute_preserved, graph)
    assert preserved.names(graph.node("8")) == FIG3_PRESERVED_8


def test_fig11_stabilized_mode(benchmark, paper_graphs):
    result = benchmark(solve_synch, paper_graphs["fig3"], solver="stabilized")
    assert {d.name for d in result.reaching("11", "x")} == {"x8"}
    assert {d.name for d in result.reaching("11", "z")} == {"z6", "z9"}


def test_fig11_12_render(benchmark):
    text = benchmark(tables.fig11_12)
    assert "iteration 1" in text and "iteration 2" in text
