"""Experiment ``perf-solvers`` — solver-mode ablation: the paper's chaotic
round-robin vs the worklist vs the stabilized (deterministic) driver, on
sync-heavy and loop-heavy shapes.  Stabilized pays extra sweeps for
order-independence; this measures how much."""

import pytest

from repro import build_pfg
from repro.reachdefs import solve_synch
from repro.synthetic import fig3_repeated, random_mix, sync_pipeline

SHAPES = {
    "pipeline10": sync_pipeline(10),
    "fig3x4": fig3_repeated(4),
    "mix300": random_mix(seed=21, n_stmts=300),
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("solver", ["round-robin", "worklist", "stabilized"])
def test_solver_timing(benchmark, shape, solver):
    graph = build_pfg(SHAPES[shape])
    result = benchmark(solve_synch, graph, solver=solver)
    assert result.stats.converged


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_stabilized_never_less_precise(shape):
    stab = solve_synch(build_pfg(SHAPES[shape]), solver="stabilized")
    chaotic = solve_synch(build_pfg(SHAPES[shape]), solver="round-robin")
    for a, b in zip(stab.graph.nodes, chaotic.graph.nodes):
        assert stab.in_names(a) <= chaotic.in_names(b)
