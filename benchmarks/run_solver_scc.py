"""Record (or check) the SCC-scheduled solver's update-count trajectory.

Runs each workload under every registered solver with the analysis cache
disabled and writes ``benchmarks/BENCH_solver_scc.json``: per
(workload, solver) the deterministic ``SolveStats`` record — update and
pass counts, convergence, order tag — plus a wall-clock minimum over
repeats that is recorded for context but never compared.

``--check`` re-runs the workloads, compares every deterministic field
against the checked-in file, and enforces the perf gate: on the three
key workloads (``chain800``, ``diamonds160``, ``nested12``) the scc
solver must need at most half of round-robin's node updates.  CI runs
this mode; regenerate the file with the bare command after any change
that legitimately moves the counts.

Run:    PYTHONPATH=src python benchmarks/run_solver_scc.py [OUT.json]
Check:  PYTHONPATH=src python benchmarks/run_solver_scc.py --check
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro import analyze
from repro.dataflow.cache import GLOBAL_CACHE
from repro.dataflow.framework import FixpointDiverged
from repro.synthetic import (
    chain,
    diamond_chain,
    fig3_repeated,
    loop_nest,
    nested_parallel,
    random_mix,
    sync_pipeline,
    wide_parallel,
)

REPEATS = 3
SOLVERS = ("round-robin", "worklist", "stabilized", "scc")

#: The acceptance gate: scc must at least halve round-robin's updates here.
KEY_WORKLOADS = ("chain800", "diamonds160", "nested12")

WORKLOADS = {
    "chain800": lambda: chain(800),
    "diamonds160": lambda: diamond_chain(160),
    "nested12": lambda: nested_parallel(12),
    "wide8x6": lambda: wide_parallel(8, 6),
    "loopnest3": lambda: loop_nest(3),
    "syncpipe10": lambda: sync_pipeline(10),
    "fig3x4": lambda: fig3_repeated(4),
    "mix300": lambda: random_mix(seed=21, n_stmts=300),
}


def measure() -> dict:
    """Deterministic stats + context-only timing for every cell."""
    out = {}
    for name, make in sorted(WORKLOADS.items()):
        prog = make()
        cells = {}
        for solver in SOLVERS:
            best = None
            record = None
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                try:
                    result = analyze(prog, solver=solver, cache=False)
                except FixpointDiverged:
                    # Honest outcome of the literal synch equations under
                    # chaotic iteration; deterministic, so record it.
                    record = {"diverged": True}
                    break
                elapsed = time.perf_counter() - t0
                best = elapsed if best is None else min(best, elapsed)
                record = result.stats.as_dict()
            if "diverged" not in record:
                record["time_s"] = round(best, 6)
            cells[solver] = record
        out[name] = cells
    return out


def deterministic(cells: dict) -> dict:
    """The comparable half of a measurement: everything but wall-clock."""
    return {
        name: {
            solver: {k: v for k, v in rec.items() if k != "time_s"}
            for solver, rec in solvers.items()
        }
        for name, solvers in cells.items()
    }


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    fresh = measure()
    failures = []
    want, got = deterministic(recorded["workloads"]), deterministic(fresh)
    for name in sorted(WORKLOADS):
        for solver in SOLVERS:
            if want.get(name, {}).get(solver) != got[name][solver]:
                failures.append(
                    f"{name}/{solver}: recorded {want.get(name, {}).get(solver)!r}"
                    f" != measured {got[name][solver]!r}"
                )
    for name in KEY_WORKLOADS:
        rr = got[name]["round-robin"]["node_updates"]
        scc = got[name]["scc"]["node_updates"]
        if scc * 2 > rr:
            failures.append(
                f"{name}: perf gate broken — scc {scc} updates vs"
                f" round-robin {rr} (need <= {rr // 2})"
            )
        else:
            print(f"{name}: scc {scc} vs round-robin {rr} updates ({rr / scc:.1f}x)")
    if failures:
        print(f"\nFAIL: {len(failures)} mismatch(es) vs {path}:")
        for f in failures:
            print(f"  - {f}")
        print("\nRegenerate with: PYTHONPATH=src python benchmarks/run_solver_scc.py")
        return 1
    print(f"OK: {path} in sync, perf gate holds on {', '.join(KEY_WORKLOADS)}")
    return 0


def write(path: Path) -> int:
    payload = {
        "meta": {
            "source": "benchmarks/run_solver_scc.py",
            "python": platform.python_version(),
            "repeats": REPEATS,
            "note": "time_s is context only; --check compares the rest",
        },
        "workloads": measure(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    n = sum(len(v) for v in payload["workloads"].values())
    print(f"wrote {n} (workload, solver) records to {path}")
    return 0


def main(argv: list[str]) -> int:
    GLOBAL_CACHE.enabled = False  # measure real solves, never cache hits
    default = Path(__file__).parent / "BENCH_solver_scc.json"
    if "--check" in argv:
        return check(default)
    return write(Path(argv[0]) if argv else default)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
