"""Experiment ``fig9`` — the §6 synchronization-kill example: only the
wait-side definition of x reaches the join; without Preserved information
both post- and wait-side definitions reach (the paper's degraded mode)."""

from repro.analysis import find_anomalies
from repro.paper.golden import FIG9_JOIN_IN, FIG9_POST_ACCKILLOUT
from repro.reachdefs import solve_synch


def test_fig9_with_preserved(benchmark, paper_graphs):
    result = benchmark(solve_synch, paper_graphs["fig9"], preserved="approx")
    assert result.in_names("6") == FIG9_JOIN_IN
    assert result.set_names("ACCKillout", "4") == FIG9_POST_ACCKILLOUT


def test_fig9_without_preserved(benchmark, paper_graphs):
    result = benchmark(solve_synch, paper_graphs["fig9"], preserved="none")
    assert {d.name for d in result.reaching("6", "x")} == {"x3", "x5"}


def test_fig9_anomaly_report(paper_graphs):
    precise = solve_synch(paper_graphs["fig9"], preserved="approx")
    blunt = solve_synch(paper_graphs["fig9"], preserved="none")
    # Preserved information removes the spurious multiple-values report
    # for x at the join.
    assert not [a for a in find_anomalies(precise) if a.var == "x"]
    assert [a for a in find_anomalies(blunt) if a.var == "x"]
