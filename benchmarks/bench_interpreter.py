"""Experiment ``perf-interp`` — the dynamic-oracle substrate: interpreter
throughput on the paper programs and the exhaustive explorer's schedule
enumeration rate on a small racy construct."""

import pytest

from repro import build_pfg
from repro.interp import ExhaustiveExplorer, RandomScheduler, run_program
from repro.lang import parse_program
from repro.paper import programs
from repro.synthetic import sync_pipeline


@pytest.mark.parametrize("key", ["fig6", "fig3c", "fig9"])
def test_interpreter_single_run(benchmark, key):
    prog = programs.program(key)
    graph = build_pfg(prog)

    def run():
        return run_program(prog, RandomScheduler(seed=1, max_loop_iters=2), graph=graph)

    result = benchmark(run)
    assert not result.deadlocked


def test_interpreter_pipeline_run(benchmark):
    prog = sync_pipeline(8)
    graph = build_pfg(prog)

    def run():
        return run_program(prog, RandomScheduler(seed=3), graph=graph)

    result = benchmark(run)
    assert result.value("out") == 9


RACY = parse_program(
    "program racy\n(1) x = 0\nparallel sections\nsection A\n(2) x = x + 1\n"
    "section B\n(3) x = x * 10\n(4) end parallel sections\nend"
)


def test_exhaustive_exploration(benchmark):
    graph = build_pfg(RACY)

    def explore():
        count = 0

        def once(scheduler):
            nonlocal count
            run_program(RACY, scheduler, graph=graph)
            count += 1

        list(ExhaustiveExplorer(max_runs=100).schedules(once))
        return count

    n = benchmark(explore)
    assert n >= 6  # all interleavings of the two single-statement sections
