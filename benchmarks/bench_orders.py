"""Experiment ``perf-orders`` — visit order vs iterations-to-fixpoint.

Paper §2: "It has been proven that a depth first traversal of the CFG
helps reduce the number of iterations to five in most practical cases."
We measure passes-to-fixpoint for reverse postorder (the depth-first
order), document order, and the pessimal reverse-document order, on the
chaotic round-robin solver where the claim applies, and assert the shape:
RPO ≤ document ≪ reverse-document, with RPO within the classic ~5."""

import pytest

from repro import build_pfg
from repro.reachdefs import solve_sequential
from repro.synthetic import diamond_chain, loop_nest, random_mix

#: workload -> expected RPO pass bound.  The classical result behind the
#: paper's "five iterations in most practical cases" is d+2 passes where
#: d is the loop-connectedness (max back edges on an acyclic path): 0 for
#: the DAG-ish shapes, 4 for the depth-4 loop nest.
WORKLOADS = {
    "diamonds": (diamond_chain(60), 2),
    "loopnest": (loop_nest(4), 6),
    "mix": (random_mix(seed=3, n_stmts=200), 5),
}


def passes(graph, order):
    return solve_sequential(graph, order=order, solver="round-robin").stats.passes


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_rpo_converges_fast(name):
    prog, bound = WORKLOADS[name]
    graph = build_pfg(prog)
    rpo = passes(graph, "rpo")
    doc = passes(graph, "document")
    rev = passes(graph, "reverse-document")
    # The paper's claim: depth-first ordering needs only a handful of
    # passes (d+2); a pessimal order needs O(longest path).
    assert rpo <= bound, f"{name}: rpo took {rpo} passes"
    assert rpo <= doc <= rev
    assert rev > rpo  # the contrast is real on these shapes


@pytest.mark.parametrize("order", ["rpo", "document", "reverse-document"])
def test_order_timing(benchmark, order):
    graph = build_pfg(WORKLOADS["mix"][0])
    result = benchmark(solve_sequential, graph, order=order, solver="round-robin")
    assert result.stats.converged


def test_worklist_beats_pessimal_order(benchmark):
    graph = build_pfg(WORKLOADS["mix"][0])
    result = benchmark(solve_sequential, graph, solver="worklist")
    assert result.stats.converged
    rev = solve_sequential(graph, order="reverse-document", solver="round-robin")
    assert result.stats.node_updates < rev.stats.node_updates
