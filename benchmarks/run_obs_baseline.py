"""Record an observability baseline trajectory for the solver benchmarks.

Runs the ``bench_solver_modes`` and ``bench_scaling`` workloads through
:mod:`repro.obs` (the same tracer the CLI ``--profile`` flag uses) and
writes ``benchmarks/BENCH_obs_baseline.json`` — JSONL records, schema
``repro-obs/1``.  Each workload repeat is one ``bench`` root span with
the solver's nested spans inside, so later perf PRs have a checked-in
trajectory to beat: compare the min ``dur`` over repeats of the spans
with the same ``workload`` attr, and the ``solve.*`` counters for the
algorithmic (time-independent) half of the story.

Run:  PYTHONPATH=src python benchmarks/run_obs_baseline.py [OUT.json]
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro import analyze, build_pfg, obs
from repro.reachdefs import solve_synch
from repro.synthetic import (
    chain,
    diamond_chain,
    fig3_repeated,
    loop_nest,
    nested_parallel,
    random_mix,
    sync_pipeline,
    wide_parallel,
)

REPEATS = 3

#: bench_solver_modes workloads: one entry per (shape, solver).
SOLVER_MODE_SHAPES = {
    "pipeline10": sync_pipeline(10),
    "fig3x4": fig3_repeated(4),
    "mix300": random_mix(seed=21, n_stmts=300),
}
SOLVERS = ("round-robin", "worklist", "stabilized")

#: bench_scaling workloads (middle sizes of each series).
SCALING = {
    "chain200": chain(200),
    "diamonds40": diamond_chain(40),
    "wide8x6": wide_parallel(8, 6),
    "nested6": nested_parallel(6),
    "loopnest3": loop_nest(3),
    "syncpipe6": sync_pipeline(6),
    "fig3x4-analyze": fig3_repeated(4),
    "mix150": random_mix(seed=7, n_stmts=150),
}

#: Spans deeper than this are dropped from the checked-in file — the
#: per-pass detail is reproducible on demand and would bloat the diff.
MAX_DEPTH = 3


def main(out_path: str) -> int:
    with obs.session() as sess:
        for shape_name, prog in sorted(SOLVER_MODE_SHAPES.items()):
            graph = build_pfg(prog)
            for solver in SOLVERS:
                for repeat in range(REPEATS):
                    with sess.tracer.span(
                        "bench",
                        suite="solver_modes",
                        workload=f"{shape_name}/{solver}",
                        repeat=repeat,
                    ):
                        result = solve_synch(graph, solver=solver)
                    assert result.stats.converged, (shape_name, solver)
        for name, prog in sorted(SCALING.items()):
            for repeat in range(REPEATS):
                with sess.tracer.span(
                    "bench", suite="scaling", workload=name, repeat=repeat
                ):
                    result = analyze(prog)
                assert result.stats.converged, name

    records = [
        {
            "type": "meta",
            "schema": obs.SCHEMA,
            "source": "benchmarks/run_obs_baseline.py",
            "python": platform.python_version(),
            "repeats": REPEATS,
            "max_depth": MAX_DEPTH,
        }
    ]
    records.extend(
        r for r in obs.span_records(sess.tracer) if r["depth"] <= MAX_DEPTH
    )
    records.extend(obs.metric_records(sess.metrics))
    Path(out_path).write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
    )
    n_bench = sum(1 for r in records if r.get("name") == "bench")
    print(f"wrote {len(records)} records ({n_bench} bench spans) to {out_path}")
    return 0


if __name__ == "__main__":
    default = Path(__file__).parent / "BENCH_obs_baseline.json"
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else str(default)))
