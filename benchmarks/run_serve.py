"""Record (or check) ``repro serve`` daemon behavior under load and chaos.

Boots a real daemon (``python -m repro serve``, subprocess, ephemeral
port via ``--ready-file``) and drives four drills through it with a
thread-pool of keep-alive clients:

``steady``
    A synthetic corpus served repeatedly from several client threads:
    requests/s, p50/p99 latency (context), per-program outcomes and the
    warm-cache floor (deterministic) — every repeat past each worker's
    first computation of a program must be a ``serve``-namespace cache
    hit, so ``cache.serve.hits >= requests - programs * workers``.

``chaos``
    Deterministic fault schedule against a ``--chaos`` daemon: injected
    worker kills that recover under retry (``ok``, attempts 2), kills
    that exhaust the allowance (``crashed``), and a deadline blow-out
    (``timeout``).  Exact status counts are compared; the zero-lost
    invariant (one terminal response per request) is a hard gate.

``shed``
    A 12-request burst into ``workers=1, max_pending=3`` with injected
    latency: every request answers ``ok`` or ``shed`` (fast 429), none
    hang, none are lost.  The ok/shed split is timing-dependent and
    recorded as context only.

``drain``
    SIGTERM with a slow request in flight: the in-flight request still
    gets its terminal response, the daemon exits 0, telemetry is flushed.

``--check`` re-runs all drills and compares every deterministic field
against the checked-in ``benchmarks/BENCH_serve.json``.  Regenerate with
the bare command after any change that legitimately moves the counts.

Run:    PYTHONPATH=src python benchmarks/run_serve.py [OUT.json]
Check:  PYTHONPATH=src python benchmarks/run_serve.py --check
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import pretty
from repro.obs import read_jsonl
from repro.serve import ServeClient
from repro.synthetic import (
    chain,
    diamond_chain,
    fig3_repeated,
    random_mix,
    wide_parallel,
)

WORKERS = 2
CLIENT_THREADS = 4
STEADY_REPEATS = 3

#: Corpus: converges under the default budget at full precision, so the
#: steady drill measures serving overhead, not analysis pathology.
CORPUS = {
    "chain200": lambda: chain(200),
    "diamonds40": lambda: diamond_chain(40),
    "fig3x3": lambda: fig3_repeated(3),
    "mix200": lambda: random_mix(seed=7, n_stmts=200),
    "wide4x4": lambda: wide_parallel(4, 4),
}


class Daemon:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, *extra_args: str, telemetry: str | None = None):
        self._dir = tempfile.TemporaryDirectory(prefix="repro-bench-serve-")
        ready = Path(self._dir.name) / "ready.json"
        self.telemetry = telemetry
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        args = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--ready-file",
            str(ready),
        ]
        if telemetry:
            args += ["--telemetry", telemetry]
        args += list(extra_args)
        self.proc = subprocess.Popen(
            args, env=env, stderr=subprocess.PIPE, text=True
        )
        deadline = time.monotonic() + 30
        while not ready.exists() and time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon died on startup: {self.proc.stderr.read()}"
                )
            time.sleep(0.02)
        if not ready.exists():
            self.proc.kill()
            raise RuntimeError("daemon did not write ready-file within 30s")
        for _ in range(50):  # belt-and-braces vs a slow rename becoming visible
            try:
                self.port = json.loads(ready.read_text())["port"]
                break
            except (json.JSONDecodeError, FileNotFoundError):
                time.sleep(0.02)
        else:
            self.proc.kill()
            raise RuntimeError("ready-file never became valid JSON")

    def client(self) -> ServeClient:
        return ServeClient("127.0.0.1", self.port)

    def sigterm_and_wait(self, timeout_s: float = 30.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout_s)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(5)
        self._dir.cleanup()


def percentile(values: list[float], pct: float) -> float:
    ordered = sorted(values)
    rank = max(1, -(-int(pct * len(ordered)) // 100))
    return ordered[min(rank, len(ordered)) - 1]


def drill_steady(daemon: Daemon) -> dict:
    sources = {name: pretty(make()) for name, make in sorted(CORPUS.items())}
    jobs = [
        (name, src)
        for _ in range(STEADY_REPEATS)
        for name, src in sources.items()
    ] * CLIENT_THREADS  # each thread-equivalent sends the whole corpus
    latencies: list[float] = []
    outcomes: dict[str, dict] = {}
    lost = 0

    def fire(args):
        name, src = args
        with ServeClient("127.0.0.1", daemon.port) as c:
            t0 = time.perf_counter()
            http, env = c.rpc(src, f"steady-{name}")
            return name, http, env, (time.perf_counter() - t0) * 1000.0

    t_start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        for name, http, env, ms in pool.map(fire, jobs):
            latencies.append(ms)
            if http != 200 or env.get("status") not in ("ok", "degraded"):
                lost += 1
                continue
            outcomes[name] = {
                "status": env["status"],
                "code": env["code"],
                "digest": env["result"]["digest"],
                "system": env["result"]["system"],
            }
    wall = time.perf_counter() - t_start
    with daemon.client() as c:
        counters = c.healthz()["counters"]
    requests = len(jobs)
    serve_hits = int(counters.get("cache.serve.hits", 0))
    return {
        "deterministic": {
            "requests": requests,
            "lost": lost,
            "programs": outcomes,
            "cache_floor_ok": serve_hits >= requests - len(sources) * WORKERS,
        },
        "context": {
            "rps": round(requests / wall, 1),
            "p50_ms": round(percentile(latencies, 50), 3),
            "p99_ms": round(percentile(latencies, 99), 3),
            "cache_serve_hits": serve_hits,
            "cache_hit_rate": round(serve_hits / requests, 3),
        },
    }


#: (count, chaos, options, expected status, expected attempts)
CHAOS_SCHEDULE = [
    (6, {"kill_attempts": 1}, None, "ok", 2),
    (2, {"kill_attempts": 99}, None, "crashed", 2),
    (1, {"delay_ms": 5000}, {"deadline_s": 0.5}, "timeout", 1),
    (4, {"delay_ms": 25}, None, "ok", 1),
]


def drill_chaos(daemon: Daemon) -> dict:
    src = pretty(CORPUS["chain200"]())
    expected: dict[str, int] = {}
    results: dict[str, int] = {}
    attempts_ok = True
    lost = 0
    sent = 0
    for count, chaos, options, want_status, want_attempts in CHAOS_SCHEDULE:
        expected[want_status] = expected.get(want_status, 0) + count
        for i in range(count):
            sent += 1
            with daemon.client() as c:
                http, env = c.rpc(src, f"chaos-{sent}", options=options, chaos=chaos)
            status = env.get("status")
            if status is None:
                lost += 1
                continue
            results[status] = results.get(status, 0) + 1
            if env.get("attempts") != want_attempts:
                attempts_ok = False
    return {
        "deterministic": {
            "sent": sent,
            "lost": lost,
            "by_status": dict(sorted(results.items())),
            "expected": dict(sorted(expected.items())),
            "attempts_as_scheduled": attempts_ok,
        }
    }


def drill_shed() -> dict:
    daemon = Daemon(
        "--workers", "1", "--max-queue", "3", "--chaos",
    )
    n = 12
    try:
        src = pretty(CORPUS["chain200"]())

        def fire(i):
            with daemon.client() as c:
                return c.rpc(src, f"shed-{i}", chaos={"delay_ms": 300})

        with concurrent.futures.ThreadPoolExecutor(max_workers=n) as pool:
            results = list(pool.map(fire, range(n)))
        ok = sum(1 for _, env in results if env.get("status") == "ok")
        shed = sum(1 for _, env in results if env.get("status") == "shed")
        shed_http_ok = all(
            http == 429 for http, env in results if env.get("status") == "shed"
        )
        return {
            "deterministic": {
                "sent": n,
                "lost": n - ok - shed,
                "terminal_statuses_only": ok + shed == n,
                "shed_rides_http_429": shed_http_ok,
                "some_shed": shed >= 1,
            },
            "context": {"ok": ok, "shed": shed},
        }
    finally:
        daemon.stop()


def drill_drain(telemetry_dir: Path) -> dict:
    telemetry = str(telemetry_dir / "serve_obs.jsonl")
    daemon = Daemon("--workers", "1", "--chaos", telemetry=telemetry)
    try:
        src = pretty(CORPUS["chain200"]())
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            slow = pool.submit(
                lambda: daemon.client().rpc(src, "inflight", chaos={"delay_ms": 800})
            )
            time.sleep(0.2)  # the slow request is now on a worker
            exit_code = daemon.sigterm_and_wait()
            http, env = slow.result(timeout=30)
        telemetry_records = read_jsonl(telemetry)
        flushed = any(
            r.get("type") == "counter" and r.get("name") == "serve.requests"
            for r in telemetry_records
        )
        return {
            "deterministic": {
                "exit_code": exit_code,
                "inflight_status": env.get("status"),
                "inflight_completed": env.get("status") == "ok",
                "telemetry_flushed": flushed,
            }
        }
    finally:
        daemon.stop()


def measure() -> dict:
    out: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-out-") as tmp:
        daemon = Daemon("--workers", str(WORKERS), "--chaos")
        try:
            out["steady"] = drill_steady(daemon)
            out["chaos"] = drill_chaos(daemon)
        finally:
            daemon.stop()
        out["shed"] = drill_shed()
        out["drain"] = drill_drain(Path(tmp))
    return out


def gate_failures(fresh: dict) -> list[str]:
    """Invariants that must hold on every machine, recorded or not."""
    failures = []
    for drill in ("steady", "chaos", "shed"):
        lost = fresh[drill]["deterministic"].get("lost")
        if lost != 0:
            failures.append(f"{drill}: {lost} request(s) lost (must be 0)")
    if not fresh["steady"]["deterministic"]["cache_floor_ok"]:
        failures.append(
            "steady: warm-cache floor broken — repeats are not solver-free"
        )
    chaos = fresh["chaos"]["deterministic"]
    if chaos["by_status"] != chaos["expected"]:
        failures.append(
            f"chaos: outcomes {chaos['by_status']!r} != scheduled {chaos['expected']!r}"
        )
    if not chaos["attempts_as_scheduled"]:
        failures.append("chaos: attempts counts diverge from the schedule")
    for key in ("terminal_statuses_only", "shed_rides_http_429", "some_shed"):
        if not fresh["shed"]["deterministic"][key]:
            failures.append(f"shed: invariant {key} broken")
    drain = fresh["drain"]["deterministic"]
    if drain["exit_code"] != 0:
        failures.append(f"drain: daemon exited {drain['exit_code']} (want 0)")
    if not drain["inflight_completed"]:
        failures.append(
            f"drain: in-flight request got {drain['inflight_status']!r}, not ok"
        )
    if not drain["telemetry_flushed"]:
        failures.append("drain: telemetry JSONL missing serve counters")
    return failures


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    fresh = measure()
    failures = gate_failures(fresh)
    for drill in sorted(fresh):
        want = recorded["drills"].get(drill, {}).get("deterministic")
        got = fresh[drill]["deterministic"]
        if want != got:
            failures.append(f"{drill}: recorded {want!r} != measured {got!r}")
    steady = fresh["steady"]["context"]
    print(
        f"steady: {steady['rps']} req/s, p50 {steady['p50_ms']}ms, "
        f"p99 {steady['p99_ms']}ms, cache hit rate {steady['cache_hit_rate']}"
    )
    if failures:
        print(f"\nFAIL: {len(failures)} problem(s) vs {path}:")
        for f in failures:
            print(f"  - {f}")
        print("\nRegenerate with: PYTHONPATH=src python benchmarks/run_serve.py")
        return 1
    print(f"OK: {path} in sync across {len(fresh)} drills")
    return 0


def write(path: Path) -> int:
    fresh = measure()
    failures = gate_failures(fresh)
    if failures:
        print("FAIL: refusing to record a broken baseline:")
        for f in failures:
            print(f"  - {f}")
        return 1
    payload = {
        "meta": {
            "source": "benchmarks/run_serve.py",
            "python": platform.python_version(),
            "workers": WORKERS,
            "client_threads": CLIENT_THREADS,
            "note": "context blocks (rps/latency/ok-shed split) are "
            "machine-dependent and not compared; --check compares every "
            "'deterministic' block and enforces the zero-lost, cache-floor, "
            "chaos-schedule, and drain gates",
        },
        "drills": fresh,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    steady = fresh["steady"]["context"]
    print(
        f"wrote {len(fresh)} drill records to {path} "
        f"({steady['rps']} req/s steady, cache hit rate {steady['cache_hit_rate']})"
    )
    return 0


def main(argv: list[str]) -> int:
    default = Path(__file__).parent / "BENCH_serve.json"
    if "--check" in argv:
        return check(default)
    return write(Path(argv[0]) if argv else default)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
