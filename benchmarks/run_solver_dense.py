"""Record (or check) the dense region evaluator's perf trajectory.

Runs each workload under three engine configurations with the analysis
cache disabled and writes ``benchmarks/BENCH_solver_dense.json``:

* ``scc``       — the scalar SCC-scheduled baseline;
* ``scc-dense`` — dense forced on (``DenseConfig(mode="always")``), the
  matrix-shaped evaluator for every eligible cyclic region;
* ``scc-auto``  — ``scc`` with ``DenseConfig(mode="auto")``: production
  dispatch, where the size/width thresholds route small or narrow
  regions to the scalar fallback.

Per (workload, config) the JSON holds the deterministic ``SolveStats``
record — update counts, dense/scalar region dispatch, convergence —
plus a wall-clock minimum recorded for context but never compared.

``--check`` re-runs the workloads, compares every deterministic field
against the checked-in file, and enforces three live gates:

* **dense gate** — on the wide cyclic key workloads (``pdloop12x18``,
  ``pdloop16x24``: one large SCC through the §5 kill layer) the dense
  evaluator must be at least 2x faster than scalar scc by wall clock,
  and must not need more node updates;
* **fallback gate** — on the small/narrow workloads (``nested120``,
  ``dloop400``, ``fig3x16``) auto mode must stay within 5% of scalar
  scc wall clock (re-measured with extra repeats; the thresholds make
  the dense machinery effectively free when it doesn't engage);
* **dispatch pins** — auto mode must actually fall back on the narrow
  loop (``dloop400``, width < 2) and the synchronized program
  (``fig3x16``, SynchPass unsupported densely), and must engage on the
  key workloads.

The chain/diamond/nested rows are the ``run_solver_scc.py`` shapes at
10x size (mostly acyclic — they pin that the dense path never touches
acyclic scheduling).  ``diamonds1600`` dominates the script's runtime.

Run:    PYTHONPATH=src python benchmarks/run_solver_dense.py [OUT.json]
Check:  PYTHONPATH=src python benchmarks/run_solver_dense.py --check
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro import analyze
from repro.dataflow.cache import GLOBAL_CACHE
from repro.dataflow.dense import DenseConfig
from repro.synthetic import (
    chain,
    diamond_chain,
    diamond_loop,
    fig3_repeated,
    nested_parallel,
    par_diamond_loop,
)

REPEATS = 2

#: config name → (solver, DenseConfig) handed to ``repro.analyze``.
CONFIGS = {
    "scc": ("scc", None),
    "scc-dense": ("scc-dense", None),
    "scc-auto": ("scc", DenseConfig(mode="auto")),
}

#: Wide cyclic workloads: dense must win >= 2x wall-clock and not lose
#: on update counts.
KEY_DENSE = ("pdloop12x18", "pdloop16x24")

#: Small/narrow workloads: auto mode must cost < 5% vs scalar scc.
FALLBACK = ("nested120", "dloop400", "fig3x16")
FALLBACK_REPEATS = 5

WORKLOADS = {
    "chain8000": lambda: chain(8000),
    "diamonds1600": lambda: diamond_chain(1600),
    "nested120": lambda: nested_parallel(120),
    "dloop400": lambda: diamond_loop(400),
    "pdloop12x18": lambda: par_diamond_loop(12, 18),
    "pdloop16x24": lambda: par_diamond_loop(16, 24),
    "fig3x16": lambda: fig3_repeated(16),
}


def _time_config(prog, config: str, repeats: int = REPEATS):
    """(best wall seconds, deterministic stats record) for one cell."""
    solver, dense = CONFIGS[config]
    best = None
    record = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = analyze(prog, solver=solver, dense=dense, cache=False)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
        record = result.stats.as_dict()
    return best, record


def measure() -> dict:
    """Deterministic stats + context-only timing for every cell."""
    out = {}
    for name, make in sorted(WORKLOADS.items()):
        prog = make()
        cells = {}
        for config in CONFIGS:
            best, record = _time_config(prog, config)
            record["time_s"] = round(best, 6)
            cells[config] = record
        out[name] = cells
    return out


def deterministic(cells: dict) -> dict:
    """The comparable half of a measurement: everything but wall-clock."""
    return {
        name: {
            config: {k: v for k, v in rec.items() if k != "time_s"}
            for config, rec in configs.items()
        }
        for name, configs in cells.items()
    }


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    fresh = measure()
    failures = []
    want, got = deterministic(recorded["workloads"]), deterministic(fresh)
    for name in sorted(WORKLOADS):
        for config in CONFIGS:
            if want.get(name, {}).get(config) != got[name][config]:
                failures.append(
                    f"{name}/{config}: recorded {want.get(name, {}).get(config)!r}"
                    f" != measured {got[name][config]!r}"
                )

    # Dense gate: wall clock and update counts on the wide cyclic shapes.
    for name in KEY_DENSE:
        scalar_t = fresh[name]["scc"]["time_s"]
        dense_t = fresh[name]["scc-dense"]["time_s"]
        if dense_t * 2 > scalar_t:
            failures.append(
                f"{name}: dense gate broken — scc-dense {dense_t:.3f}s vs"
                f" scc {scalar_t:.3f}s (need >= 2x faster)"
            )
        else:
            print(f"{name}: scc-dense {dense_t:.3f}s vs scc {scalar_t:.3f}s "
                  f"({scalar_t / dense_t:.1f}x)")
        scalar_u = fresh[name]["scc"]["node_updates"]
        dense_u = fresh[name]["scc-dense"]["node_updates"]
        if dense_u > scalar_u:
            failures.append(
                f"{name}: update-count gate broken — scc-dense {dense_u}"
                f" updates vs scc {scalar_u}"
            )
        if not fresh[name]["scc-dense"].get("dense_regions"):
            failures.append(f"{name}: dense evaluator never engaged")

    # Fallback gate: auto mode must be free when it routes to scalar.
    for name in FALLBACK:
        prog = WORKLOADS[name]()
        scalar_t, _ = _time_config(prog, "scc", repeats=FALLBACK_REPEATS)
        auto_t, _ = _time_config(prog, "scc-auto", repeats=FALLBACK_REPEATS)
        if auto_t > scalar_t * 1.05:
            failures.append(
                f"{name}: fallback gate broken — scc-auto {auto_t:.4f}s vs"
                f" scc {scalar_t:.4f}s (> 5% regression)"
            )
        else:
            print(f"{name}: scc-auto {auto_t:.4f}s vs scc {scalar_t:.4f}s "
                  f"({(auto_t / scalar_t - 1) * 100:+.1f}%)")

    # Dispatch pins: thresholds route narrow/synchronized shapes scalar.
    for name in ("dloop400", "fig3x16"):
        rec = fresh[name]["scc-auto"]
        if rec.get("dense_regions", 0) != 0 or rec.get("scalar_regions", 0) < 1:
            failures.append(
                f"{name}: expected auto mode to fall back scalar, got {rec!r}"
            )

    if failures:
        print(f"\nFAIL: {len(failures)} mismatch(es) vs {path}:")
        for f in failures:
            print(f"  - {f}")
        print("\nRegenerate with: PYTHONPATH=src python benchmarks/run_solver_dense.py")
        return 1
    print(f"OK: {path} in sync; dense gate holds on {', '.join(KEY_DENSE)}, "
          f"fallback gate on {', '.join(FALLBACK)}")
    return 0


def write(path: Path) -> int:
    payload = {
        "meta": {
            "source": "benchmarks/run_solver_dense.py",
            "python": platform.python_version(),
            "repeats": REPEATS,
            "note": "time_s is context only; --check compares the rest and "
            "re-measures the live gates",
        },
        "workloads": measure(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    n = sum(len(v) for v in payload["workloads"].values())
    print(f"wrote {n} (workload, config) records to {path}")
    return 0


def main(argv: list[str]) -> int:
    GLOBAL_CACHE.enabled = False  # measure real solves, never cache hits
    default = Path(__file__).parent / "BENCH_solver_dense.json"
    if "--check" in argv:
        return check(default)
    return write(Path(argv[0]) if argv else default)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
