"""Record (or check) the provenance engine's cost and fact counts.

Runs the chain / diamond / nested workloads with ``record_provenance``
off and on (stabilized and scc engines, analysis cache disabled) and
writes ``benchmarks/BENCH_provenance.json``: per workload the
deterministic justification-graph shape — total facts, counts by kind
(gen/flow/survive), zero unsupported facts, and the stabilized↔scc
canonical-identity bit — plus wall-clock minima recorded for context but
never compared.

``--check`` re-runs the workloads, compares every deterministic field
against the checked-in file, and enforces two perf gates:

* **on-cost** — solving with provenance on takes at most 2× the
  provenance-off solve (the justification BFS is one linear pass over
  the converged sets, so it must stay in the same ballpark);
* **off-cost** — the hook's only off-path work is one attribute probe
  per solve (``wants_provenance``); measured directly, that probe must
  be under 2% of the cheapest workload's solve time.

CI runs ``--check``; regenerate with the bare command after any change
that legitimately moves the counts.

Run:    PYTHONPATH=src python benchmarks/run_provenance.py [OUT.json]
Check:  PYTHONPATH=src python benchmarks/run_provenance.py --check
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro import analyze
from repro.dataflow.cache import GLOBAL_CACHE
from repro.synthetic import chain, diamond_chain, nested_parallel

REPEATS = 3
SOLVERS = ("stabilized", "scc")

#: t_on / t_off per (workload, solver) must stay at or under this.
ON_COST_LIMIT = 2.0
#: The off-path hook probe must stay under this fraction of a solve.
OFF_COST_LIMIT = 0.02

WORKLOADS = {
    "chain400": lambda: chain(400),
    "diamonds80": lambda: diamond_chain(80),
    "nested10": lambda: nested_parallel(10),
}


def _best(fn, repeats: int = REPEATS) -> float:
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure() -> dict:
    out = {}
    for name, make in sorted(WORKLOADS.items()):
        prog = make()
        cells = {}
        for solver in SOLVERS:
            t_off = _best(lambda: analyze(prog, solver=solver, cache=False))
            t_on = _best(
                lambda: analyze(
                    prog, solver=solver, cache=False, record_provenance=True
                )
            )
            result = analyze(
                prog, solver=solver, cache=False, record_provenance=True
            )
            prov = result.provenance
            cells[solver] = {
                "system": result.system,
                "facts": len(prov),
                "counts": prov.counts(),
                "unsupported": len(prov.unsupported()),
                "time_off_s": round(t_off, 6),
                "time_on_s": round(t_on, 6),
            }
        stab = analyze(prog, solver="stabilized", cache=False, record_provenance=True)
        scc = analyze(prog, solver="scc", cache=False, record_provenance=True)
        out[name] = {
            "solvers": cells,
            "solver_identity": stab.provenance.canonical() == scc.provenance.canonical(),
        }
    return out


def hook_probe_cost_s() -> float:
    """Per-solve cost of the off-path provenance hook: one
    ``getattr(system, "wants_provenance", False)`` probe."""
    from repro.pfg import build_pfg
    from repro.reachdefs.parallel import ParallelRDSystem

    system = ParallelRDSystem(build_pfg(nested_parallel(3)))
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        getattr(system, "wants_provenance", False)
    return (time.perf_counter() - t0) / n


def deterministic(cells: dict) -> dict:
    """The comparable half of a measurement: everything but wall-clock."""
    return {
        name: {
            "solver_identity": rec["solver_identity"],
            "solvers": {
                solver: {
                    k: v
                    for k, v in cell.items()
                    if k not in ("time_off_s", "time_on_s")
                }
                for solver, cell in rec["solvers"].items()
            },
        }
        for name, rec in cells.items()
    }


def check(path: Path) -> int:
    recorded = json.loads(path.read_text())
    fresh = measure()
    failures = []
    want, got = deterministic(recorded["workloads"]), deterministic(fresh)
    for name in sorted(WORKLOADS):
        if want.get(name) != got[name]:
            failures.append(
                f"{name}: recorded {want.get(name)!r} != measured {got[name]!r}"
            )
    for name, rec in sorted(fresh.items()):
        if not rec["solver_identity"]:
            failures.append(f"{name}: stabilized and scc justifications differ")
        for solver, cell in rec["solvers"].items():
            if cell["unsupported"]:
                failures.append(
                    f"{name}/{solver}: {cell['unsupported']} unsupported fact(s)"
                )
            ratio = cell["time_on_s"] / cell["time_off_s"]
            if ratio > ON_COST_LIMIT:
                failures.append(
                    f"{name}/{solver}: provenance-on cost gate broken — "
                    f"{cell['time_on_s']:.6f}s is {ratio:.2f}x the off solve "
                    f"{cell['time_off_s']:.6f}s (limit {ON_COST_LIMIT}x)"
                )
            else:
                print(
                    f"{name}/{solver}: on/off {ratio:.2f}x "
                    f"({cell['facts']} facts)"
                )
    probe = hook_probe_cost_s()
    cheapest = min(
        cell["time_off_s"] for rec in fresh.values() for cell in rec["solvers"].values()
    )
    frac = probe / cheapest
    if frac > OFF_COST_LIMIT:
        failures.append(
            f"off-path hook probe {probe * 1e9:.0f}ns is {frac:.2%} of the "
            f"cheapest solve ({cheapest:.6f}s); limit {OFF_COST_LIMIT:.0%}"
        )
    else:
        print(
            f"off-path probe: {probe * 1e9:.0f}ns/solve = {frac:.4%} of the "
            f"cheapest solve (limit {OFF_COST_LIMIT:.0%})"
        )
    if failures:
        print(f"\nFAIL: {len(failures)} problem(s) vs {path}:")
        for f in failures:
            print(f"  - {f}")
        print("\nRegenerate with: PYTHONPATH=src python benchmarks/run_provenance.py")
        return 1
    print(f"OK: {path} in sync; provenance cost gates hold")
    return 0


def write(path: Path) -> int:
    payload = {
        "meta": {
            "source": "benchmarks/run_provenance.py",
            "python": platform.python_version(),
            "repeats": REPEATS,
            "note": "time_*_s are context only; --check compares the rest",
        },
        "workloads": measure(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    n = sum(len(v["solvers"]) for v in payload["workloads"].values())
    print(f"wrote {n} (workload, solver) records to {path}")
    return 0


def main(argv: list[str]) -> int:
    GLOBAL_CACHE.enabled = False  # measure real solves, never cache hits
    default = Path(__file__).parent / "BENCH_provenance.json"
    if "--check" in argv:
        return check(default)
    return write(Path(argv[0]) if argv else default)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
