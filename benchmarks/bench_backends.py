"""Experiment ``perf-backends`` — set representation ablation.

The paper notes "most commercial compilers use the bit vector intermediate
representation".  We compare the three interchangeable backends on one
mid-size workload: plain frozensets, Python-int bit vectors (the
production choice — branch-free C-level word ops), and packed NumPy
arrays (per-call overhead dominates at these universe sizes; kept as the
documented negative result)."""

import pytest

from repro import build_pfg
from repro.reachdefs import solve_synch
from repro.synthetic import random_mix

PROGRAM = random_mix(seed=21, n_stmts=300)


@pytest.fixture(scope="module")
def graph():
    return build_pfg(PROGRAM)


@pytest.mark.parametrize("backend", ["set", "bitset", "numpy"])
def test_backend_timing(benchmark, graph, backend):
    result = benchmark(solve_synch, graph, backend=backend)
    assert result.stats.converged


def test_backends_same_answer(graph):
    results = {b: solve_synch(graph, backend=b) for b in ("set", "bitset", "numpy")}
    base = results["set"]
    for backend, other in results.items():
        for node in graph.nodes:
            assert base.In(node) == other.In(node), (backend, node.name)
