"""Experiment ``fig2`` — regenerate Figure 2 (the CFG of Figure 1(a)) and
measure CFG construction + DOT rendering."""

from repro.cfg import build_cfg
from repro.lang import parse_program
from repro.paper import programs
from repro.paper.golden import FIG2_CFG_EDGES
from repro.pfg import to_dot


def test_fig2_cfg_construction(benchmark):
    program = parse_program(programs.SOURCES["fig1a"])
    graph = benchmark(build_cfg, program)
    edges = {(s.name, d.name) for s, d, _k in graph.edges()}
    assert edges == set(FIG2_CFG_EDGES)


def test_fig2_dot_render(benchmark, paper_graphs):
    dot = benchmark(to_dot, paper_graphs["fig1a"])
    assert dot.startswith("digraph") and dot.count("->") == len(FIG2_CFG_EDGES)
