"""Definition and use sites.

The reaching-definitions problem assigns "a distinct number to each
definition" (paper §2.1) and names definitions after the block containing
them — definition ``j4`` is the assignment to ``j`` in block ``(4)``.  This
module provides that identity layer, shared by the CFG and PFG pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang import ast


@dataclass(frozen=True, eq=False)
class Definition:
    """A single static definition site of a scalar variable.

    Identity is the ``index`` (assigned densely, in program order), which is
    also the definition's bit position in bit-vector backends.  ``site``
    is the label of the block containing the definition, so ``str(d)``
    matches the paper's ``x4`` naming.
    """

    index: int
    var: str
    site: str
    stmt: Optional[ast.Assign] = field(default=None, repr=False, compare=False)
    name: str = ""
    """Unique display name; defaults to ``var+site`` (``x4``), with a
    ``'1``/``'2``... suffix when one block defines a variable repeatedly
    (only the unsuffixed, last one is downward-exposed)."""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"{self.var}{self.site}")

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Definition) and other.index == self.index

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Definition({self.index}, {self.name})"


@dataclass(frozen=True)
class Use:
    """A use (read) of a variable inside a block.

    ``ordinal`` is the position of the reading statement within its block,
    used to distinguish uses that appear before/after a same-block
    definition when forming ud-chains.
    """

    var: str
    site: str
    ordinal: int

    @property
    def name(self) -> str:
        return f"{self.var}@{self.site}#{self.ordinal}"

    def __str__(self) -> str:
        return self.name


class DefTable:
    """Dense registry of all definitions in one program.

    Also the *universe* for set representations: definition ``d`` occupies
    bit ``d.index`` and ``len(table)`` is the universe size.
    """

    def __init__(self) -> None:
        self._defs: List[Definition] = []
        self._by_var: Dict[str, List[Definition]] = {}
        self._by_name: Dict[str, Definition] = {}

    def __len__(self) -> int:
        return len(self._defs)

    def __iter__(self):
        return iter(self._defs)

    def __getitem__(self, index: int) -> Definition:
        return self._defs[index]

    def add(self, var: str, site: str, stmt: Optional[ast.Assign] = None) -> Definition:
        """Register a new definition of ``var`` in block ``site``.

        When one block defines a variable repeatedly, the *newest* (and so
        downward-exposed) definition keeps the clean paper-style name; the
        superseded one is renamed with a ``'1``/``'2``... suffix (it never
        escapes its block, so the suffix only shows in intra-block chains).
        """
        d = Definition(index=len(self._defs), var=var, site=site, stmt=stmt)
        self._defs.append(d)
        self._by_var.setdefault(var, []).append(d)
        base = d.name
        if base in self._by_name:
            shadowed = self._by_name.pop(base)
            bump = 1
            new_name = f"{base}'{bump}"
            while new_name in self._by_name:
                bump += 1
                new_name = f"{base}'{bump}"
            object.__setattr__(shadowed, "name", new_name)
            self._by_name[new_name] = shadowed
        self._by_name[base] = d
        return d

    def of_var(self, var: str) -> Tuple[Definition, ...]:
        """All definitions of ``var``, in creation order."""
        return tuple(self._by_var.get(var, ()))

    def variables(self) -> Tuple[str, ...]:
        return tuple(self._by_var)

    def by_name(self, name: str) -> Definition:
        """Look up a definition by its paper-style name (``'x4'``)."""
        return self._by_name[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)
