"""Symbol information: scalar variables and event variables.

A light semantic layer over the AST.  ``check_events`` enforces the
well-formedness the paper assumes (``post``/``wait``/``clear`` only name
declared events; events and scalars do not collide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..lang import ast
from ..lang.errors import SemanticError


@dataclass
class SymbolTable:
    """Variables and events of one program."""

    variables: Tuple[str, ...]
    events: Tuple[str, ...]
    free_variables: Tuple[str, ...] = field(default=())
    """Variables read somewhere but never assigned — the interpreter treats
    these as nondeterministic inputs (e.g. ``condition`` in the paper's
    Figure 3)."""

    def is_event(self, name: str) -> bool:
        return name in self.events

    def is_variable(self, name: str) -> bool:
        return name in self.variables


def build_symbol_table(program: ast.Program) -> SymbolTable:
    """Collect symbols and run the event well-formedness checks."""
    check_events(program)
    assigned = program.assigned_variables()
    used = program.used_variables()
    events = set(program.events)
    variables: List[str] = []
    seen: Set[str] = set()
    for name in (*assigned, *used):
        if name not in seen and name not in events:
            seen.add(name)
            variables.append(name)
    free = tuple(v for v in used if v not in set(assigned) and v not in events)
    return SymbolTable(variables=tuple(variables), events=tuple(program.events), free_variables=free)


def check_events(program: ast.Program) -> None:
    """Raise :class:`SemanticError` on event misuse.

    Checks: sync statements name declared events; declared events are not
    also used as scalar variables.
    """
    declared = set(program.events)
    for stmt in program.walk():
        if isinstance(stmt, (ast.Post, ast.Wait, ast.Clear)):
            if stmt.event not in declared:
                kind = type(stmt).__name__.lower()
                raise SemanticError(f"{kind} on undeclared event {stmt.event!r}", stmt.span)
        elif isinstance(stmt, ast.Assign):
            if stmt.target in declared:
                raise SemanticError(
                    f"event {stmt.target!r} cannot be assigned like a scalar", stmt.span
                )
            for v in stmt.expr.variables():
                if v in declared:
                    raise SemanticError(f"event {v!r} cannot be read as a scalar", stmt.span)
        elif isinstance(stmt, (ast.If, ast.While)):
            for v in stmt.cond.variables():
                if v in declared:
                    raise SemanticError(f"event {v!r} cannot be read as a scalar", stmt.span)
