"""Shared intermediate-representation pieces: definition sites, symbols."""

from .defs import Definition, DefTable, Use
from .symbols import SymbolTable, build_symbol_table, check_events

__all__ = [
    "Definition",
    "DefTable",
    "Use",
    "SymbolTable",
    "build_symbol_table",
    "check_events",
]
