"""Concurrent interpreter: executable copy-in/copy-out semantics and the
dynamic soundness oracle for the static analysis."""

from .events import EventState
from .interp import Interpreter, StepBudgetExceeded, run_program
from .scheduler import (
    ExhaustiveExplorer,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from .state import Cell, Env, Value, copy_env, merge_candidates
from .trace import (
    MergeObservation,
    RunResult,
    SoundnessViolation,
    StmtLocationIndex,
    UseObservation,
    check_soundness,
)

__all__ = [
    "EventState",
    "Interpreter",
    "StepBudgetExceeded",
    "run_program",
    "ExhaustiveExplorer",
    "FixedScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "Cell",
    "Env",
    "Value",
    "copy_env",
    "merge_candidates",
    "MergeObservation",
    "RunResult",
    "SoundnessViolation",
    "StmtLocationIndex",
    "UseObservation",
    "check_soundness",
]
