"""Runtime state for the concurrent interpreter.

The interpreter implements the **copy-in/copy-out** memory model the paper
assumes (§3): each section of a ``Parallel Sections`` construct gets its
own copy of the shared variables at the fork; copies merge at the join;
``post`` publishes the poster's copies to the event; ``wait`` absorbs them.

Every variable cell carries *definition provenance* — which static
definition produced the value, and a global write sequence number — so
executions double as a dynamic reaching-definitions oracle for the static
analysis (``tests/property/test_soundness.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..ir.defs import Definition

Value = Union[int, bool]


@dataclass(frozen=True)
class Cell:
    """One variable's runtime state: value, producing definition (``None``
    for nondeterministic inputs / free variables), and the global write
    sequence number (total order of actual writes — absorbed copies keep
    the poster's original number)."""

    value: Value
    definition: Optional[Definition]
    seq: int

    def describe(self) -> str:
        who = self.definition.name if self.definition else "input"
        return f"{self.value} (from {who}@{self.seq})"


#: An environment: variable name -> cell.  Cells are immutable, so copying
#: an environment is a shallow dict copy.
Env = Dict[str, Cell]


def copy_env(env: Env) -> Env:
    return dict(env)


def merge_candidates(fork_snapshot: Env, child_envs) -> Dict[str, list]:
    """Join-time merge candidates per variable (paper §3: "the copies from
    the different threads are merged with the global values").

    A child *contributed* a variable iff its final cell differs from the
    fork-time cell (different producing write).  Returns only variables
    with at least one contribution; others keep the parent value.
    """
    out: Dict[str, list] = {}
    for child in child_envs:
        for var, cell in child.items():
            base = fork_snapshot.get(var)
            if base is not None and base.seq == cell.seq and base.definition is cell.definition:
                continue  # unchanged inherited copy
            bucket = out.setdefault(var, [])
            if not any(c.seq == cell.seq and c.definition is cell.definition for c in bucket):
                bucket.append(cell)
    return out
