"""Concurrent interpreter for mini-PCF programs.

Executes the AST under copy-in/copy-out semantics (paper §3) with
statement-level interleaving:

* ``Parallel Sections`` forks one cooperative thread per section, each
  with a **copy** of the parent's variables; the join merges the copies
  back (freshest write wins; competing distinct writes are recorded as
  merge observations — the runtime counterpart of the paper's join
  anomalies);
* ``post(ev)`` snapshots the poster's variables into the event;
  ``wait(ev)`` blocks until posted, then absorbs the snapshots;
* free variables (read, never assigned — ``condition`` in the paper's
  figures) are nondeterministic *inputs*, fixed once per run by the
  scheduler; ``loop`` trip counts are scheduler decisions.

Every variable read is recorded as a :class:`UseObservation` carrying the
producing static definition, which is what lets executions serve as a
dynamic oracle for the reaching-definitions analysis.

Threads are Python generators; the engine advances one thread per
scheduling step, so any interleaving the scheduler can express is
executable — including exhaustive enumeration via
:class:`~repro.interp.scheduler.ExhaustiveExplorer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..lang import ast
from ..obs import NULL_METRICS, get_metrics, get_tracer
from ..pfg.builder import build_pfg
from ..pfg.graph import ParallelFlowGraph
from ..ir.defs import Use
from .events import EventState
from .scheduler import RandomScheduler, Scheduler
from .state import Cell, Env, Value, copy_env, merge_candidates
from .trace import MergeObservation, RunResult, StmtLocationIndex, UseObservation


class StepBudgetExceeded(RuntimeError):
    """The run exceeded ``max_steps`` scheduling steps (runaway loop)."""


@dataclass
class _ForkRecord:
    parent: "_Thread"
    stmt: ast.Stmt  # ParallelSections or ParallelDo
    snapshot: Env
    pending: int
    merge_site: str = ""
    #: variables excluded from the copy-out merge (the parallel-do index
    #: is iteration-private; its value after the construct is undefined)
    exclude: frozenset = frozenset()


@dataclass
class _Thread:
    tid: int
    env: Env
    gen: Optional[Iterator] = None
    status: str = "ready"  # ready | blocked | joining | done
    waiting_event: Optional[str] = None
    fork: Optional[_ForkRecord] = None  # the fork this thread is a child of
    next_loop_id: int = 0


class Interpreter:
    """One-shot interpreter: construct, then :meth:`run` once."""

    def __init__(
        self,
        program: ast.Program,
        scheduler: Optional[Scheduler] = None,
        graph: Optional[ParallelFlowGraph] = None,
        max_steps: int = 100_000,
    ):
        self.program = program
        self.graph = graph if graph is not None else build_pfg(program)
        self.scheduler = scheduler if scheduler is not None else RandomScheduler()
        self.max_steps = max_steps
        self.index = StmtLocationIndex(self.graph)
        for stmt in program.walk():
            if isinstance(stmt, ast.Assign):
                try:
                    self.index.of_stmt(stmt)
                except KeyError:
                    raise ValueError(
                        "graph was built from a different AST than the program "
                        "being run — build both from the same parse "
                        "(statement identity links runtime events to blocks)"
                    ) from None
        self.events: Dict[str, EventState] = {e: EventState(e) for e in program.events}
        self._metrics = NULL_METRICS  # rebound to the live registry by run()
        self.inputs: Dict[str, Value] = {}
        self.seq = 0
        self.result = RunResult(final_env={})
        self._threads: Dict[int, _Thread] = {}
        self._next_tid = 0
        self._join_names = self._map_join_names()
        self._wait_names = self._map_wait_names()
        self._post_names = self._map_post_names()

    # -- static-name bridges ------------------------------------------------

    def _map_join_names(self) -> Dict[int, str]:
        """Construct stmt (by identity) -> join/merge block name.  The
        builder assigns construct ids in AST pre-order over *both*
        construct kinds, so walking the program in that order aligns
        statements with forks/pardos."""
        forks_by_cid = {f.construct_id: f for f in self.graph.forks}
        pardos_by_cid = {p.construct_id: p for p in self.graph.pardos}
        out: Dict[int, str] = {}
        counter = 0
        for stmt in self.program.walk():
            if isinstance(stmt, ast.ParallelSections):
                fork = forks_by_cid[counter]
                assert fork.join is not None
                out[id(stmt)] = fork.join.name
                counter += 1
            elif isinstance(stmt, ast.ParallelDo):
                out[id(stmt)] = pardos_by_cid[counter].merge.name
                counter += 1
        return out

    def _map_wait_names(self) -> Dict[int, str]:
        """Wait stmt (by identity) -> wait block name (document order per
        event, mirroring the builder's registration order)."""
        seen: Dict[str, int] = {}
        out: Dict[int, str] = {}
        for stmt in self.program.walk():
            if isinstance(stmt, ast.Wait):
                nth = seen.get(stmt.event, 0)
                seen[stmt.event] = nth + 1
                out[id(stmt)] = self.graph.waits_of_event[stmt.event][nth].name
        return out

    def _map_post_names(self) -> Dict[int, str]:
        """Post stmt (by identity) -> post block name (same scheme)."""
        seen: Dict[str, int] = {}
        out: Dict[int, str] = {}
        for stmt in self.program.walk():
            if isinstance(stmt, ast.Post):
                nth = seen.get(stmt.event, 0)
                seen[stmt.event] = nth + 1
                out[id(stmt)] = self.graph.posts_of_event[stmt.event][nth].name
        return out

    # -- engine ----------------------------------------------------------------

    def _spawn(self, env: Env, body: List[ast.Stmt], fork: Optional[_ForkRecord]) -> _Thread:
        thread = _Thread(tid=self._next_tid, env=env, fork=fork)
        self._next_tid += 1
        thread.gen = self._exec_block(body, thread)
        self._threads[thread.tid] = thread
        return thread

    def run(self) -> RunResult:
        """Execute to completion (or deadlock).

        Runs under an ``interp.run`` tracer span; when a metrics session
        is installed it also records scheduling behaviour: ``interp.steps``,
        ``interp.context_switches`` (consecutive steps taken by different
        threads), and ``interp.blocked_thread_steps`` — the total number of
        (step × blocked-thread) pairs, the cooperative-engine measure of
        post/wait blocking time.  Without a session the per-step cost is a
        single bool check.
        """
        tracer = get_tracer()
        self._metrics = metrics = get_metrics()
        observing = metrics.enabled
        context_switches = 0
        blocked_thread_steps = 0
        last_tid: Optional[int] = None
        with tracer.span(
            "interp.run",
            program=self.program.name,
            scheduler=type(self.scheduler).__name__,
        ) as span:
            root = self._spawn({}, self.program.body, fork=None)
            steps = 0
            while True:
                alive = [t for t in self._threads.values() if t.status != "done"]
                if not alive:
                    break
                runnable = sorted(t.tid for t in alive if self._is_runnable(t))
                if not runnable:
                    self.result.deadlocked = True
                    self.result.blocked_events = sorted(
                        {
                            t.waiting_event
                            for t in alive
                            if t.status == "blocked" and t.waiting_event is not None
                        }
                    )
                    break
                steps += 1
                if steps > self.max_steps:
                    raise StepBudgetExceeded(f"exceeded {self.max_steps} steps")
                thread = self._threads[self.scheduler.pick_thread(runnable)]
                if observing:
                    if last_tid is not None and thread.tid != last_tid:
                        context_switches += 1
                    last_tid = thread.tid
                    blocked_thread_steps += sum(1 for t in alive if t.status == "blocked")
                self._step(thread)
            self.result.final_env = root.env
            self.result.steps = steps
            self.result.inputs = dict(self.inputs)
            if tracer.enabled:
                span.annotate(
                    steps=steps,
                    threads=self._next_tid,
                    deadlocked=self.result.deadlocked,
                    context_switches=context_switches,
                )
        if observing:
            metrics.inc("interp.runs")
            metrics.inc("interp.steps", steps)
            metrics.inc("interp.threads", self._next_tid)
            metrics.inc("interp.context_switches", context_switches)
            metrics.inc("interp.blocked_thread_steps", blocked_thread_steps)
            if self.result.deadlocked:
                metrics.inc("interp.deadlocks")
        return self.result

    def _is_runnable(self, t: _Thread) -> bool:
        if t.status == "ready":
            return True
        if t.status == "blocked":
            assert t.waiting_event is not None
            return self.events[t.waiting_event].posted
        return False

    def _step(self, t: _Thread) -> None:
        assert t.gen is not None
        try:
            token = next(t.gen)
        except StopIteration:
            self._finish(t)
            return
        if token == "step":
            t.status = "ready"
            t.waiting_event = None
        elif isinstance(token, tuple) and token[0] == "blocked":
            t.status = "blocked"
            t.waiting_event = token[1]
        elif isinstance(token, tuple) and token[0] == "fork":
            self._handle_fork(t, token[1])
        elif isinstance(token, tuple) and token[0] == "pardo":
            self._handle_pardo(t, token[1])
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unexpected thread token {token!r}")

    def _handle_fork(self, parent: _Thread, stmt: ast.ParallelSections) -> None:
        record = _ForkRecord(
            parent=parent,
            stmt=stmt,
            snapshot=copy_env(parent.env),
            pending=len(stmt.sections),
            merge_site=self._join_names[id(stmt)],
        )
        parent.status = "joining"
        for section in stmt.sections:
            self._spawn(copy_env(parent.env), section.body, fork=record)

    def _handle_pardo(self, parent: _Thread, stmt: ast.ParallelDo) -> None:
        key = (parent.tid, parent.next_loop_id)
        parent.next_loop_id += 1
        iterations = self.scheduler.pardo_iterations(key)
        record = _ForkRecord(
            parent=parent,
            stmt=stmt,
            snapshot=copy_env(parent.env),
            pending=iterations,
            merge_site=self._join_names[id(stmt)],
            exclude=frozenset((stmt.index,)),
        )
        if iterations == 0:
            return  # zero-trip: nothing to merge, parent continues
        parent.status = "joining"
        for i in range(iterations):
            env = copy_env(parent.env)
            env[stmt.index] = Cell(i, None, 0)  # private, input-like index
            self._spawn(env, stmt.body, fork=record)

    def _finish(self, t: _Thread) -> None:
        t.status = "done"
        record = t.fork
        if record is None:
            return
        record.pending -= 1
        if record.pending == 0:
            self._merge_join(record)
            record.parent.status = "ready"

    def _merge_join(self, record: _ForkRecord) -> None:
        children = [t.env for t in self._threads.values() if t.fork is record]
        site = record.merge_site
        for var, cells in sorted(merge_candidates(record.snapshot, children).items()):
            if var in record.exclude:
                continue
            winner = max(cells, key=lambda c: c.seq)
            record.parent.env[var] = winner
            if len(cells) > 1:
                self.result.merges.append(
                    MergeObservation(
                        site=site,
                        var=var,
                        candidates=tuple(c.definition for c in cells),
                        winner=winner.definition,
                    )
                )

    # -- statement execution (generators) -----------------------------------------

    def _exec_block(self, stmts: List[ast.Stmt], t: _Thread) -> Iterator:
        for stmt in stmts:
            yield from self._exec_stmt(stmt, t)

    def _exec_stmt(self, stmt: ast.Stmt, t: _Thread) -> Iterator:
        yield "step"
        if isinstance(stmt, ast.Assign):
            loc = self.index.of_stmt(stmt)
            self.result.node_trace.append(loc[0])
            value = self._eval(stmt.expr, t, loc)
            self.seq += 1
            t.env[stmt.target] = Cell(value, self.index.definition(stmt), self.seq)
        elif isinstance(stmt, ast.Skip):
            pass
        elif isinstance(stmt, ast.Post):
            self.result.node_trace.append(self._post_names[id(stmt)])
            self.events[stmt.event].post(t.env)
            self._metrics.inc("interp.posts")
        elif isinstance(stmt, ast.Clear):
            self.result.node_trace.append(self.index.of_stmt(stmt)[0])
            self.events[stmt.event].clear()
        elif isinstance(stmt, ast.Wait):
            event = self.events[stmt.event]
            self._metrics.inc("interp.waits")
            if not event.posted:
                self._metrics.inc("interp.waits_blocked")
            while not event.posted:
                yield ("blocked", stmt.event)
            conflicts = event.absorb_into(t.env)
            site = self._wait_names[id(stmt)]
            self.result.node_trace.append(site)
            for var, cells in sorted(conflicts.items()):
                self.result.merges.append(
                    MergeObservation(
                        site=site,
                        var=var,
                        candidates=tuple(c.definition for c in cells),
                        winner=t.env[var].definition,
                    )
                )
        elif isinstance(stmt, ast.If):
            loc = self.index.of_cond(stmt.cond)
            if loc is not None:
                self.result.node_trace.append(loc[0])
            value = self._eval(stmt.cond, t, loc)
            body = stmt.then_body if value else stmt.else_body
            yield from self._exec_block(body, t)
        elif isinstance(stmt, ast.While):
            while True:
                value = self._eval(stmt.cond, t, self.index.of_cond(stmt.cond))
                if not value:
                    break
                yield from self._exec_block(stmt.body, t)
                yield "step"  # scheduling point before re-testing
        elif isinstance(stmt, ast.Loop):
            key = (t.tid, t.next_loop_id)
            t.next_loop_id += 1
            iteration = 0
            while self.scheduler.loop_decision(key, iteration):
                yield from self._exec_block(stmt.body, t)
                iteration += 1
                yield "step"
        elif isinstance(stmt, ast.ParallelSections):
            yield ("fork", stmt)
        elif isinstance(stmt, ast.ParallelDo):
            yield ("pardo", stmt)
        else:  # pragma: no cover - future node kinds
            raise TypeError(f"cannot execute {type(stmt).__name__}")

    # -- expression evaluation ----------------------------------------------------------

    def _eval(self, expr: ast.Expr, t: _Thread, loc: Optional[Tuple[str, int]]) -> Value:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Var):
            cell = t.env.get(expr.name)
            if cell is None:
                if expr.name not in self.inputs:
                    self.inputs[expr.name] = self.scheduler.free_value(expr.name)
                value: Value = self.inputs[expr.name]
                definition = None
            else:
                value = cell.value
                definition = cell.definition
            if loc is not None:
                use = Use(var=expr.name, site=loc[0], ordinal=loc[1])
                self.result.uses.append(UseObservation(use=use, definition=definition))
            return value
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval(expr.operand, t, loc)
            return (not inner) if expr.op == "not" else -inner
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, t, loc)
            right = self._eval(expr.right, t, loc)
            return _apply(expr.op, left, right)
        raise TypeError(f"cannot evaluate {type(expr).__name__}")  # pragma: no cover


def _apply(op: str, left: Value, right: Value) -> Value:
    """Total operator semantics: integer ops are Python floor semantics;
    division/modulo by zero yield 0 (documented totalization so random
    programs never crash — the static analyses make no value claims)."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return 0 if right == 0 else int(left) // int(right)
    if op == "%":
        return 0 if right == 0 else int(left) % int(right)
    if op == "==":
        return left == right
    if op == "/=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "and":
        return bool(left) and bool(right)
    if op == "or":
        return bool(left) or bool(right)
    raise ValueError(f"unknown operator {op!r}")  # pragma: no cover


def run_program(
    program: ast.Program,
    scheduler: Optional[Scheduler] = None,
    graph: Optional[ParallelFlowGraph] = None,
    max_steps: int = 100_000,
) -> RunResult:
    """Execute ``program`` once under ``scheduler`` (default: seeded random)."""
    return Interpreter(program, scheduler=scheduler, graph=graph, max_steps=max_steps).run()
