"""Schedulers: who runs next, and how nondeterminism resolves.

The interpreter consults its scheduler at three kinds of decision point:

* **thread choice** — which runnable thread takes the next step;
* **input values** — the value of a *free variable* (read but never
  assigned, like ``condition`` in the paper's Figure 3); inputs are fixed
  once per run, like program arguments;
* **loop decisions** — whether a ``loop``/``endloop`` runs another
  iteration (bounded by ``max_loop_iters``).

``RandomScheduler`` drives seeded random interleavings;
``FixedScheduler`` replays a decision tape and records branching factors,
which :class:`ExhaustiveExplorer` uses to enumerate *all* schedules of
small programs (bounded DFS over the decision tree).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..obs import get_metrics
from .state import Value


class Scheduler:
    """Decision oracle for one run."""

    max_loop_iters: int = 3

    def record_decision(self, kind: str) -> None:
        """Count one decision of ``kind`` into the current metrics registry
        (``interp.scheduler.<kind>``); no-op unless a session is installed.
        Concrete schedulers call this at each decision point."""
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc(f"interp.scheduler.{kind}")

    def pick_thread(self, runnable: Sequence[int]) -> int:
        raise NotImplementedError

    def free_value(self, var: str) -> Value:
        raise NotImplementedError

    def loop_decision(self, loop_key: Tuple[int, int], iteration: int) -> bool:
        """Continue for another iteration?  ``loop_key`` is (thread id,
        per-thread loop counter); forced False at ``max_loop_iters``."""
        raise NotImplementedError

    def pardo_iterations(self, loop_key: Tuple[int, int]) -> int:
        """How many iterations a ``parallel do`` runs this time (the trip
        count is nondeterministic input, like loop decisions)."""
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Deterministic: lowest thread id first, inputs all ``1``/``True``-ish,
    every loop runs exactly once."""

    def __init__(self, max_loop_iters: int = 1, input_value: Value = 1):
        self.max_loop_iters = max_loop_iters
        self.input_value = input_value

    def pick_thread(self, runnable: Sequence[int]) -> int:
        self.record_decision("thread_picks")
        return min(runnable)

    def free_value(self, var: str) -> Value:
        return self.input_value

    def loop_decision(self, loop_key: Tuple[int, int], iteration: int) -> bool:
        return iteration < self.max_loop_iters

    def pardo_iterations(self, loop_key: Tuple[int, int]) -> int:
        return max(1, self.max_loop_iters)


class RandomScheduler(Scheduler):
    """Seeded random interleavings, inputs, and loop trip counts."""

    def __init__(self, seed: int = 0, max_loop_iters: int = 3, continue_prob: float = 0.5):
        self.rng = random.Random(seed)
        self.max_loop_iters = max_loop_iters
        self.continue_prob = continue_prob

    def pick_thread(self, runnable: Sequence[int]) -> int:
        self.record_decision("thread_picks")
        return self.rng.choice(list(runnable))

    def free_value(self, var: str) -> Value:
        # Inputs skew small so comparisons go both ways; booleans emerge
        # from comparisons, so integers suffice.
        return self.rng.choice((0, 1, 2, 7))

    def loop_decision(self, loop_key: Tuple[int, int], iteration: int) -> bool:
        if iteration >= self.max_loop_iters:
            return False
        return self.rng.random() < self.continue_prob

    def pardo_iterations(self, loop_key: Tuple[int, int]) -> int:
        return self.rng.randint(0, max(1, self.max_loop_iters))


@dataclass
class _DecisionPoint:
    """One decision taken during a run: which option, out of how many."""

    chosen: int
    n_options: int


class FixedScheduler(Scheduler):
    """Replays a prefix of decisions, defaulting to option 0 afterwards,
    and records every decision point — the explorer's probe."""

    def __init__(self, tape: Sequence[int], max_loop_iters: int = 2):
        self.tape = list(tape)
        self.max_loop_iters = max_loop_iters
        self.cursor = 0
        self.trace: List[_DecisionPoint] = []

    def _decide(self, n_options: int) -> int:
        if n_options <= 0:
            raise ValueError("decision with no options")
        if self.cursor < len(self.tape):
            choice = self.tape[self.cursor]
        else:
            choice = 0
        choice = min(choice, n_options - 1)
        self.cursor += 1
        self.trace.append(_DecisionPoint(chosen=choice, n_options=n_options))
        self.record_decision("tape_decisions")
        return choice

    def pick_thread(self, runnable: Sequence[int]) -> int:
        options = sorted(runnable)
        return options[self._decide(len(options))]

    #: Free-variable candidate values explored exhaustively.
    FREE_CHOICES: Tuple[Value, ...] = (0, 1)

    def free_value(self, var: str) -> Value:
        return self.FREE_CHOICES[self._decide(len(self.FREE_CHOICES))]

    def loop_decision(self, loop_key: Tuple[int, int], iteration: int) -> bool:
        if iteration >= self.max_loop_iters:
            return False
        # option 0 = exit (so default tapes terminate), option 1 = continue
        return self._decide(2) == 1

    def pardo_iterations(self, loop_key: Tuple[int, int]) -> int:
        # option k = run k iterations; option 0 first so default tapes are
        # minimal.
        return self._decide(self.max_loop_iters + 1)


class ExhaustiveExplorer:
    """Enumerate every schedule of a program, depth-first over the decision
    tree, up to ``max_runs``.

    Usage::

        for scheduler in ExhaustiveExplorer(max_loop_iters=1).schedules(run_once):
            ...   # run_once(scheduler) must execute the program under it

    The driver is stateless-search: each run replays a tape, the recorded
    branching factors generate sibling tapes.
    """

    def __init__(self, max_loop_iters: int = 1, max_runs: int = 10_000):
        self.max_loop_iters = max_loop_iters
        self.max_runs = max_runs

    def schedules(self, run_once) -> Iterator[FixedScheduler]:
        """``run_once(scheduler)`` is called for each enumerated schedule;
        yields the scheduler afterwards so callers can inspect results the
        callback captured."""
        stack: List[List[int]] = [[]]
        runs = 0
        seen = set()
        while stack and runs < self.max_runs:
            tape = stack.pop()
            key = tuple(tape)
            if key in seen:
                continue
            seen.add(key)
            scheduler = FixedScheduler(tape, max_loop_iters=self.max_loop_iters)
            run_once(scheduler)
            runs += 1
            metrics = get_metrics()
            if metrics.enabled:
                metrics.inc("interp.explorer.runs")
                metrics.set_gauge("interp.explorer.frontier", len(stack))
            yield scheduler
            # Generate sibling tapes: for each decision past the prescribed
            # prefix, branch to every untaken option.
            for i in range(len(tape), len(scheduler.trace)):
                point = scheduler.trace[i]
                prefix = [p.chosen for p in scheduler.trace[:i]]
                for alt in range(point.n_options - 1, 0, -1):
                    if alt != point.chosen:
                        stack.append(prefix + [alt])
