"""Binary event variables at runtime (paper §3).

``post`` sets the event to "posted" — "no matter what its value was
previously" — and snapshots the poster's shared-variable copies.  ``wait``
blocks until posted, then absorbs every snapshot published so far.
``clear`` resets the event and discards its snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .state import Cell, Env, copy_env


@dataclass
class EventState:
    """Runtime state of one event variable."""

    name: str
    posted: bool = False
    snapshots: List[Env] = field(default_factory=list)

    def post(self, env: Env) -> None:
        self.posted = True
        self.snapshots.append(copy_env(env))

    def clear(self) -> None:
        self.posted = False
        self.snapshots.clear()

    def absorb_into(self, env: Env) -> Dict[str, List[Cell]]:
        """Merge all posted snapshots into ``env``; the freshest write of
        each variable (highest sequence number) wins.

        Returns, per variable, the list of *distinct* competing cells seen
        (waiter's own plus posters') when there was more than one — the
        paper's "multiple copies of a variable may potentially reach a wait
        statement" runtime signal.
        """
        conflicts: Dict[str, List[Cell]] = {}
        for snapshot in self.snapshots:
            for var, cell in snapshot.items():
                mine = env.get(var)
                if mine is None:
                    env[var] = cell
                    continue
                if mine.seq == cell.seq and mine.definition is cell.definition:
                    continue
                conflicts.setdefault(var, [mine]).append(cell)
                if cell.seq > mine.seq:
                    env[var] = cell
        # Deduplicate conflict lists by producing write.
        for var, cells in list(conflicts.items()):
            uniq: List[Cell] = []
            for c in cells:
                if not any(u.seq == c.seq and u.definition is c.definition for u in uniq):
                    uniq.append(c)
            if len(uniq) > 1:
                conflicts[var] = uniq
            else:
                del conflicts[var]
        return conflicts
