"""Execution traces and the dynamic↔static bridge.

``stmt_locations`` maps every executable statement (and branch condition)
of a program to its Parallel Flow Graph coordinates ``(block name,
ordinal)``, so runtime variable reads can be expressed as the same
:class:`~repro.ir.defs.Use` objects the static analysis reasons about.

``check_soundness`` then states the reproduction's core dynamic property:
**every definition observed to reach a use at runtime is in the static
ud-chain of that use** (the static sets over-approximate every
interleaving, every input, every trip count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.defs import Definition, Use
from ..lang import ast
from ..pfg.graph import ParallelFlowGraph
from ..reachdefs.result import ReachingDefsResult
from .state import Env


@dataclass(frozen=True)
class UseObservation:
    """At runtime, reading ``use.var`` yielded the value written by
    ``definition`` (``None`` = nondeterministic input / uninitialized)."""

    use: Use
    definition: Optional[Definition]


@dataclass(frozen=True)
class MergeObservation:
    """At a join or wait block, several distinct writes of one variable
    competed; ``winner`` was taken."""

    site: str
    var: str
    candidates: Tuple[Optional[Definition], ...]
    winner: Optional[Definition]


@dataclass
class RunResult:
    """Outcome of one interpreted execution."""

    final_env: Env
    uses: List[UseObservation] = field(default_factory=list)
    merges: List[MergeObservation] = field(default_factory=list)
    deadlocked: bool = False
    #: On deadlock, the (sorted, distinct) event names the blocked threads
    #: were waiting on — the CLI's ``DEADLOCK (blocked on: ...)`` detail.
    blocked_events: List[str] = field(default_factory=list)
    steps: int = 0
    inputs: Dict[str, object] = field(default_factory=dict)
    #: Block names in global execution order, one entry per executed
    #: statement / passed wait / taken branch — the dynamic ordering
    #: oracle for Preserved-set validation.
    node_trace: List[str] = field(default_factory=list)

    def value(self, var: str):
        """Final value of ``var`` (None if never written)."""
        cell = self.final_env.get(var)
        return cell.value if cell is not None else None

    def first_step_of(self, site: str) -> Optional[int]:
        try:
            return self.node_trace.index(site)
        except ValueError:
            return None

    def last_step_of(self, site: str) -> Optional[int]:
        for i in range(len(self.node_trace) - 1, -1, -1):
            if self.node_trace[i] == site:
                return i
        return None


class StmtLocationIndex:
    """Statement / condition → PFG coordinates, by object identity."""

    def __init__(self, graph: ParallelFlowGraph):
        self.graph = graph
        self._stmt_loc: Dict[int, Tuple[str, int]] = {}
        self._cond_loc: Dict[int, Tuple[str, int]] = {}
        self._def_of_stmt: Dict[int, Definition] = {}
        for node in graph.nodes:
            for ordinal, stmt in enumerate(node.stmts):
                self._stmt_loc[id(stmt)] = (node.name, ordinal)
            if node.cond is not None:
                self._cond_loc[id(node.cond)] = (node.name, len(node.stmts))
        for d in graph.defs:
            if d.stmt is not None:
                self._def_of_stmt[id(d.stmt)] = d

    def of_stmt(self, stmt: ast.Stmt) -> Tuple[str, int]:
        return self._stmt_loc[id(stmt)]

    def of_cond(self, cond: ast.Expr) -> Optional[Tuple[str, int]]:
        return self._cond_loc.get(id(cond))

    def definition(self, stmt: ast.Assign) -> Definition:
        return self._def_of_stmt[id(stmt)]


@dataclass(frozen=True)
class SoundnessViolation:
    """A dynamic observation outside the static over-approximation."""

    observation: UseObservation
    static_defs: Tuple[Definition, ...]

    def format(self) -> str:
        seen = self.observation.definition
        names = ", ".join(sorted(d.name for d in self.static_defs)) or "∅"
        return (
            f"use {self.observation.use.name} observed {seen.name if seen else 'input'}"
            f" but static ud-chain is {{{names}}}"
        )


def check_soundness(result: ReachingDefsResult, run: RunResult) -> List[SoundnessViolation]:
    """All dynamic use observations of ``run`` not covered by the static
    ud-chains of ``result``.  Empty list ⇔ the run is explained."""
    violations: List[SoundnessViolation] = []
    for obs in run.uses:
        if obs.definition is None:
            continue  # inputs carry no definition; nothing to check
        static = result.reaching_use(obs.use)
        if obs.definition not in static:
            violations.append(
                SoundnessViolation(observation=obs, static_defs=tuple(sorted(static, key=lambda d: d.index)))
            )
    return violations
