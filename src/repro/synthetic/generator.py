"""Seeded structured-random program generator.

Produces arbitrary well-formed mini-PCF programs for property tests and
benchmarks.  Two guarantees matter for the dynamic soundness oracle:

* **synchronization correctness** — every generated ``wait(e)`` has at
  least one post of ``e`` that is guaranteed to execute (unconditional in
  a sibling section, or posted on *both* arms of a conditional, the
  paper's Figure 3 pattern), and ``clear(e)`` precedes the construct so
  loops cannot leak a stale posting into the next iteration;
* **termination** — no ``while`` loops (trip counts of ``loop`` are
  scheduler-bounded), so every schedule terminates.

Determinism: the same ``(seed, config)`` always yields a structurally
identical program (property-tested), so benchmark workloads are stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..lang import ast


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for :func:`generate_program`.

    ``target_stmts`` is approximate — construct overhead means the actual
    statement count can exceed it slightly.
    """

    target_stmts: int = 20
    n_vars: int = 4
    max_depth: int = 3
    p_if: float = 0.15
    p_loop: float = 0.10
    p_parallel: float = 0.20
    p_pardo: float = 0.08
    """Probability of a ``parallel do`` construct (read-only index, no
    sync inside — its body races are the point, not deadlocks)."""
    max_sections: int = 3
    with_sync: bool = True
    p_sync: float = 0.5
    """Probability a parallel construct gets a post/wait pair."""
    p_conditional_post: float = 0.3
    """Probability a sync pair uses the both-branches conditional-post
    pattern instead of an unconditional post."""
    with_free_vars: bool = True
    """Allow branch conditions on never-assigned variables (nondeterministic
    inputs, like the paper's ``condition``)."""


class _Generator:
    def __init__(self, seed: int, config: GeneratorConfig):
        self.rng = random.Random(seed)
        self.config = config
        self.vars = [f"v{i}" for i in range(max(1, config.n_vars))]
        self.free_vars = ["c0", "c1"] if config.with_free_vars else []
        self.events: List[str] = []
        self.budget = max(1, config.target_stmts)
        self._pardo_count = 0
        self._pardo_depth = 0

    # -- expressions -------------------------------------------------------

    def expr(self, depth: int = 0) -> ast.Expr:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            return ast.IntLit(self.rng.randint(0, 9))
        if roll < 0.7:
            return ast.Var(self.rng.choice(self.vars))
        op = self.rng.choice(("+", "-", "*", "+", "-"))
        return ast.BinOp(op, self.expr(depth + 1), self.expr(depth + 1))

    def condition(self) -> ast.Expr:
        if self.free_vars and self.rng.random() < 0.5:
            return ast.BinOp("<", ast.Var(self.rng.choice(self.free_vars)), ast.IntLit(1))
        return ast.BinOp(
            self.rng.choice(("<", "<=", "==", "/=")),
            ast.Var(self.rng.choice(self.vars)),
            ast.IntLit(self.rng.randint(0, 5)),
        )

    # -- statements -----------------------------------------------------------

    def assign(self) -> ast.Assign:
        self.budget -= 1
        return ast.Assign(target=self.rng.choice(self.vars), expr=self.expr())

    def block(self, depth: int, min_stmts: int = 1) -> List[ast.Stmt]:
        n = self.rng.randint(min_stmts, max(min_stmts, 3))
        out: List[ast.Stmt] = []
        for _ in range(n):
            if self.budget <= 0:
                break
            out.append(self.stmt(depth))
        if not out:
            out.append(self.assign())
        return out

    def stmt(self, depth: int) -> ast.Stmt:
        roll = self.rng.random()
        cfg = self.config
        if depth < cfg.max_depth and self.budget > 3:
            if roll < cfg.p_parallel:
                return self.parallel(depth)
            roll -= cfg.p_parallel
            if roll < cfg.p_pardo:
                return self.parallel_do(depth)
            roll -= cfg.p_pardo
            if roll < cfg.p_if:
                self.budget -= 1
                return ast.If(
                    cond=self.condition(),
                    then_body=self.block(depth + 1),
                    else_body=self.block(depth + 1) if self.rng.random() < 0.5 else [],
                )
            roll -= cfg.p_if
            if roll < cfg.p_loop:
                self.budget -= 1
                return ast.Loop(body=self.block(depth + 1))
        return self.assign()

    def parallel_do(self, depth: int) -> ast.Stmt:
        self.budget -= 2
        index = f"idx{self._pardo_count}"
        self._pardo_count += 1
        self._pardo_depth += 1
        try:
            body = self.block(depth + 1)
        finally:
            self._pardo_depth -= 1
        # the index flavours some right-hand side so iterations differ
        if body and isinstance(body[0], ast.Assign):
            body[0] = ast.Assign(
                target=body[0].target, expr=ast.BinOp("+", body[0].expr, ast.Var(index))
            )
        return ast.ParallelDo(index=index, body=body)

    def parallel(self, depth: int) -> ast.Stmt:
        cfg = self.config
        self.budget -= 2
        n_sections = self.rng.randint(2, max(2, cfg.max_sections))
        sections = [
            ast.Section(name=f"S{len(self.events)}_{i}", body=self.block(depth + 1))
            for i in range(n_sections)
        ]
        construct = ast.ParallelSections(sections=sections)
        # No events inside a parallel do: iterations share the event, so a
        # post in one iteration could release a wait in another — exactly
        # the staleness class the §6 assumption excludes.
        if self._pardo_depth > 0:
            return construct
        if not (cfg.with_sync and self.rng.random() < cfg.p_sync and n_sections >= 2):
            return construct
        # Wire one post/wait pair between two distinct sections, correctly.
        event = f"e{len(self.events)}"
        self.events.append(event)
        poster, waiter = self.rng.sample(range(n_sections), 2)
        self._insert_post(sections[poster], event)
        wait_at = self.rng.randint(0, len(sections[waiter].body))
        sections[waiter].body.insert(wait_at, ast.Wait(event=event))
        # A stale posting from a previous loop iteration would break the
        # §6 correctness assumption: clear first (see paper's Figure 3 bug).
        return _Seq([ast.Clear(event=event), construct])

    def _insert_post(self, section: ast.Section, event: str) -> None:
        if self.rng.random() < self.config.p_conditional_post:
            # Figure 3 pattern: post on both arms of a conditional.
            self.budget -= 2
            branch = ast.If(
                cond=self.condition(),
                then_body=[self.assign(), ast.Post(event=event)],
                else_body=[self.assign(), ast.Post(event=event)],
            )
            at = self.rng.randint(0, len(section.body))
            section.body.insert(at, branch)
        else:
            at = self.rng.randint(0, len(section.body))
            section.body.insert(at, ast.Post(event=event))

    def program(self, name: str) -> ast.Program:
        body: List[ast.Stmt] = [
            ast.Assign(target=v, expr=ast.IntLit(self.rng.randint(0, 9))) for v in self.vars
        ]
        body.extend(_flatten(self.block(0, min_stmts=2)))
        return ast.Program(name=name, events=list(self.events), body=_flatten(body))


class _Seq(ast.Stmt):
    """Internal splice marker: a statement standing for a sequence."""

    def __init__(self, stmts: List[ast.Stmt]):
        super().__init__()
        self.stmts = stmts


def _flatten(stmts: List[ast.Stmt]) -> List[ast.Stmt]:
    out: List[ast.Stmt] = []
    for s in stmts:
        if isinstance(s, _Seq):
            out.extend(_flatten(s.stmts))
        else:
            for attr in ("then_body", "else_body", "body"):
                if hasattr(s, attr):
                    setattr(s, attr, _flatten(getattr(s, attr)))
            if isinstance(s, ast.ParallelSections):
                for section in s.sections:
                    section.body = _flatten(section.body)
            out.append(s)
    return out


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None, name: Optional[str] = None
) -> ast.Program:
    """Generate a deterministic random program for ``seed``/``config``."""
    cfg = config if config is not None else GeneratorConfig()
    return _Generator(seed, cfg).program(name or f"gen{seed}")
