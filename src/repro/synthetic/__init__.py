"""Synthetic workloads: seeded random programs and named benchmark families."""

from .generator import GeneratorConfig, generate_program
from .workloads import (
    WORKLOADS,
    chain,
    diamond_chain,
    diamond_loop,
    fig3_repeated,
    loop_nest,
    nested_parallel,
    par_diamond_loop,
    par_loop_chain,
    pardo_grid,
    random_mix,
    sync_pipeline,
    wide_parallel,
)

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "WORKLOADS",
    "chain",
    "diamond_chain",
    "diamond_loop",
    "fig3_repeated",
    "loop_nest",
    "nested_parallel",
    "par_diamond_loop",
    "par_loop_chain",
    "pardo_grid",
    "random_mix",
    "sync_pipeline",
    "wide_parallel",
]
