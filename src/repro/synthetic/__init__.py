"""Synthetic workloads: seeded random programs and named benchmark families."""

from .generator import GeneratorConfig, generate_program
from .workloads import (
    WORKLOADS,
    chain,
    diamond_chain,
    fig3_repeated,
    loop_nest,
    nested_parallel,
    pardo_grid,
    random_mix,
    sync_pipeline,
    wide_parallel,
)

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "WORKLOADS",
    "chain",
    "diamond_chain",
    "fig3_repeated",
    "loop_nest",
    "nested_parallel",
    "pardo_grid",
    "random_mix",
    "sync_pipeline",
    "wide_parallel",
]
