"""Named workload families for benchmarks.

Deterministic program shapes that isolate one scaling dimension each:

* ``chain(n)``            — n sequential assignments (universe scaling);
* ``diamond_chain(n)``    — n if/else diamonds (merge-heavy CFG);
* ``wide_parallel(k, m)`` — one construct, k sections × m statements
  (``ParallelKill``/MHP scaling);
* ``nested_parallel(d)``  — d-deep nested constructs (ForkKill nesting);
* ``loop_nest(d, m)``     — d nested loops (back-edge iteration pressure);
* ``diamond_loop(n)``     — n diamonds inside one loop (one large cyclic
  SCC; the dense evaluator's sequential target shape);
* ``par_diamond_loop(k, m)`` — m parallel constructs × k diamond sections
  inside one loop (one large cyclic SCC through the §5 kill layer);
* ``sync_pipeline(k)``    — k sections chained producer→consumer with
  events (SynchPass/Preserved scaling);
* ``fig3_repeated(n)``    — n copies of the paper's Figure 3 body in one
  loop (the paper's own shape, scaled);
* ``random_mix(seed, n)`` — generator output sized to ~n statements.
"""

from __future__ import annotations

from ..lang import ast
from .generator import GeneratorConfig, generate_program


def chain(n: int) -> ast.Program:
    body = [ast.Assign(target=f"v{i % 8}", expr=ast.IntLit(i)) for i in range(n)]
    return ast.Program(name=f"chain{n}", events=[], body=body)


def diamond_chain(n: int) -> ast.Program:
    body: list = [ast.Assign(target="x", expr=ast.IntLit(0))]
    for i in range(n):
        body.append(
            ast.If(
                cond=ast.BinOp("<", ast.Var("x"), ast.IntLit(i)),
                then_body=[ast.Assign(target="x", expr=ast.BinOp("+", ast.Var("x"), ast.IntLit(1)))],
                else_body=[ast.Assign(target="y", expr=ast.Var("x"))],
            )
        )
    return ast.Program(name=f"diamond{n}", events=[], body=body)


def wide_parallel(n_sections: int, stmts_per_section: int) -> ast.Program:
    sections = []
    for s in range(n_sections):
        stmts = [
            ast.Assign(target=f"v{(s + i) % (n_sections + 1)}", expr=ast.IntLit(i))
            for i in range(stmts_per_section)
        ]
        sections.append(ast.Section(name=f"S{s}", body=stmts))
    body = [
        ast.Assign(target=f"v{i}", expr=ast.IntLit(0)) for i in range(n_sections + 1)
    ] + [ast.ParallelSections(sections=sections)]
    return ast.Program(name=f"wide{n_sections}x{stmts_per_section}", events=[], body=body)


def nested_parallel(depth: int) -> ast.Program:
    def construct(level: int) -> ast.Stmt:
        left = [ast.Assign(target=f"v{level % 4}", expr=ast.IntLit(level))]
        if level < depth:
            right: list = [construct(level + 1)]
        else:
            right = [ast.Assign(target=f"v{(level + 1) % 4}", expr=ast.IntLit(level))]
        return ast.ParallelSections(
            sections=[
                ast.Section(name=f"L{level}", body=left),
                ast.Section(name=f"R{level}", body=right),
            ]
        )

    body = [ast.Assign(target=f"v{i}", expr=ast.IntLit(0)) for i in range(4)]
    body.append(construct(1))
    return ast.Program(name=f"nested{depth}", events=[], body=body)


def loop_nest(depth: int, stmts: int = 2) -> ast.Program:
    def nest(level: int) -> list:
        inner = [
            ast.Assign(target=f"v{level % 4}", expr=ast.BinOp("+", ast.Var(f"v{level % 4}"), ast.IntLit(1)))
            for _ in range(stmts)
        ]
        if level < depth:
            inner.append(ast.Loop(body=nest(level + 1)))
        return inner

    body = [ast.Assign(target=f"v{i}", expr=ast.IntLit(0)) for i in range(4)]
    body.append(ast.Loop(body=nest(1)))
    return ast.Program(name=f"loopnest{depth}", events=[], body=body)


def sync_pipeline(n_stages: int) -> ast.Program:
    """Producer→consumer chain over ONE shared variable: stage ``i`` waits
    on ``e_{i-1}``, increments ``x``, and posts ``e_i``.  The stages are
    concurrent sections, fully ordered only by the events — the showcase
    for the §6 machinery: with the Preserved approximation exactly the
    last stage's definition reaches the join (race-free, constant out);
    with ``preserved="none"`` every stage's definition reaches and the
    join reports a race."""
    events = [f"e{i}" for i in range(n_stages - 1)]
    sections = []
    for i in range(n_stages):
        body: list = []
        if i > 0:
            body.append(ast.Wait(event=f"e{i - 1}"))
        body.append(ast.Assign(target="x", expr=ast.BinOp("+", ast.Var("x"), ast.IntLit(1))))
        if i < n_stages - 1:
            body.append(ast.Post(event=f"e{i}"))
        sections.append(ast.Section(name=f"stage{i}", body=body))
    body = [ast.Assign(target="x", expr=ast.IntLit(1))]
    body.append(ast.ParallelSections(sections=sections))
    body.append(ast.Assign(target="out", expr=ast.Var("x")))
    return ast.Program(name=f"pipeline{n_stages}", events=events, body=body)


def fig3_repeated(n_copies: int) -> ast.Program:
    """n copies of the paper's Figure 3 construct inside one loop, each
    with its own event (and a correctness-restoring clear)."""
    events = [f"ev{i}" for i in range(n_copies)]
    loop_body: list = []
    for i in range(n_copies):
        ev = events[i]
        loop_body.append(ast.Clear(event=ev))
        section_a = ast.Section(
            name=f"A{i}",
            body=[
                ast.If(
                    cond=ast.BinOp("<", ast.Var("condition"), ast.IntLit(1)),
                    then_body=[ast.Assign(target="x", expr=ast.IntLit(7)), ast.Post(event=ev)],
                    else_body=[ast.Assign(target="x", expr=ast.IntLit(8)), ast.Post(event=ev)],
                ),
                ast.Assign(target="z", expr=ast.BinOp("*", ast.Var("y"), ast.IntLit(7))),
            ],
        )
        section_b = ast.Section(
            name=f"B{i}",
            body=[
                ast.ParallelSections(
                    sections=[
                        ast.Section(
                            name=f"B1_{i}",
                            body=[
                                ast.Wait(event=ev),
                                ast.Assign(target="x", expr=ast.BinOp("*", ast.Var("x"), ast.IntLit(32))),
                            ],
                        ),
                        ast.Section(
                            name=f"B2_{i}",
                            body=[ast.Assign(target="z", expr=ast.BinOp("*", ast.Var("y"), ast.IntLit(54)))],
                        ),
                    ]
                )
            ],
        )
        loop_body.append(ast.ParallelSections(sections=[section_a, section_b]))
        loop_body.append(ast.Assign(target="y", expr=ast.BinOp("*", ast.Var("x"), ast.Var("z"))))
    body = [
        ast.Assign(target="x", expr=ast.IntLit(2)),
        ast.Assign(target="y", expr=ast.IntLit(5)),
        ast.Loop(body=loop_body),
    ]
    return ast.Program(name=f"fig3x{n_copies}", events=events, body=body)


def diamond_loop(n_diamonds: int) -> ast.Program:
    """n if/else diamonds inside ONE loop.  Unlike ``diamond_chain``
    (acyclic — every region is a singleton) the enclosing back edge puts
    all the diamonds into a single large cyclic SCC: the dense region
    evaluator's target shape for the sequential system."""
    loop_body: list = []
    for i in range(n_diamonds):
        loop_body.append(
            ast.If(
                cond=ast.BinOp("<", ast.Var("x"), ast.IntLit(i)),
                then_body=[ast.Assign(target="x", expr=ast.BinOp("+", ast.Var("x"), ast.IntLit(1)))],
                else_body=[ast.Assign(target=f"y{i % 16}", expr=ast.Var("x"))],
            )
        )
    body = [ast.Assign(target="x", expr=ast.IntLit(0)), ast.Loop(body=loop_body)]
    body.append(ast.Assign(target="out", expr=ast.Var("x")))
    return ast.Program(name=f"dloop{n_diamonds}", events=[], body=body)


def par_diamond_loop(n_sections: int, n_constructs: int) -> ast.Program:
    """``n_constructs`` parallel-sections constructs (each with
    ``n_sections`` sections holding an if/else diamond) inside ONE loop:
    a single cyclic SCC exercising the full §5 kill layer — the dense
    evaluator's target shape for the parallel system."""
    loop_body: list = []
    for j in range(n_constructs):
        sections = []
        for i in range(n_sections):
            sections.append(
                ast.Section(
                    name=f"S{j}_{i}",
                    body=[
                        ast.If(
                            cond=ast.Var("c"),
                            then_body=[ast.Assign(target=f"a{j}_{i}", expr=ast.Var("x"))],
                            else_body=[ast.Assign(target=f"b{j}_{i}", expr=ast.Var(f"a{j}_{i}"))],
                        )
                    ],
                )
            )
        loop_body.append(ast.ParallelSections(sections=sections))
        loop_body.append(ast.Assign(target="x", expr=ast.Var(f"a{j}_0")))
    body = [
        ast.Assign(target="x", expr=ast.IntLit(0)),
        ast.Assign(target="c", expr=ast.IntLit(0)),
        ast.Loop(body=loop_body),
        ast.Assign(target="out", expr=ast.Var("x")),
    ]
    return ast.Program(name=f"pdloop{n_sections}x{n_constructs}", events=[], body=body)


def par_loop_chain(n_loops: int, n_sections: int) -> ast.Program:
    """``n_loops`` *separate* loops in sequence, each wrapping one wide
    parallel-sections construct over its own variable family.  Where
    ``par_diamond_loop`` fuses everything into ONE cyclic SCC, this shape
    yields ``n_loops`` independent expensive cyclic regions through the
    §5 kill layer — the incremental engine's target shape: a one-statement
    edit in the last loop leaves the other ``n_loops - 1`` regions clean
    and reusable, with solving (not graph build) dominating wall clock."""
    body: list = []
    for j in range(n_loops):
        body.append(ast.Assign(target=f"x{j}", expr=ast.IntLit(0)))
        body.append(ast.Assign(target=f"c{j}", expr=ast.IntLit(0)))
        sections = []
        for i in range(n_sections):
            sections.append(
                ast.Section(
                    name=f"L{j}_{i}",
                    body=[
                        ast.If(
                            cond=ast.Var(f"c{j}"),
                            then_body=[ast.Assign(target=f"a{j}_{i}", expr=ast.Var(f"x{j}"))],
                            else_body=[ast.Assign(target=f"b{j}_{i}", expr=ast.Var(f"a{j}_{i}"))],
                        )
                    ],
                )
            )
        body.append(
            ast.Loop(
                body=[
                    ast.ParallelSections(sections=sections),
                    ast.Assign(target=f"x{j}", expr=ast.Var(f"a{j}_0")),
                ]
            )
        )
    body.append(ast.Assign(target="out", expr=ast.Var(f"x{n_loops - 1}")))
    return ast.Program(name=f"plchain{n_loops}x{n_sections}", events=[], body=body)


def pardo_grid(n_constructs: int, body_stmts: int) -> ast.Program:
    """n sequential ``parallel do`` constructs, each with an m-statement
    body reading its private index — iteration-parallelism pressure for
    the concurrency machinery and cross-iteration race reporting."""
    body: list = [ast.Assign(target="seed", expr=ast.IntLit(1))]
    for c in range(n_constructs):
        inner: list = []
        for s in range(body_stmts):
            inner.append(
                ast.Assign(
                    target=f"cell{c}_{s}",
                    expr=ast.BinOp("*", ast.Var(f"it{c}"), ast.IntLit(s + 1)),
                )
            )
        inner.append(
            ast.Assign(target="seed", expr=ast.BinOp("+", ast.Var("seed"), ast.IntLit(1)))
        )
        body.append(ast.ParallelDo(index=f"it{c}", body=inner))
    body.append(ast.Assign(target="out", expr=ast.Var("seed")))
    return ast.Program(name=f"pardo{n_constructs}x{body_stmts}", events=[], body=body)


def random_mix(seed: int, n_stmts: int) -> ast.Program:
    return generate_program(
        seed, GeneratorConfig(target_stmts=n_stmts, n_vars=6, max_depth=4), name=f"mix{seed}_{n_stmts}"
    )


#: Registry for CLI/bench parameterization.
WORKLOADS = {
    "chain": chain,
    "diamond": diamond_chain,
    "wide": wide_parallel,
    "nested": nested_parallel,
    "loopnest": loop_nest,
    "dloop": diamond_loop,
    "pdloop": par_diamond_loop,
    "plchain": par_loop_chain,
    "pipeline": sync_pipeline,
    "fig3x": fig3_repeated,
    "pardo": pardo_grid,
    "mix": random_mix,
}
