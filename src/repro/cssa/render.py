"""Textual rendering of the CSSA form: the program's blocks with merge
pseudo-assignments at block starts and SSA-versioned statements."""

from __future__ import annotations

from typing import List

from ..lang import ast
from ..pfg.graph import ParallelFlowGraph
from .form import CSSAForm, SSAName


def _render_expr(expr: ast.Expr, lookup) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Var):
        version = lookup(expr.name)
        return str(version) if version is not None else f"{expr.name}_⊥"
    if isinstance(expr, ast.UnaryOp):
        inner = _render_expr(expr.operand, lookup)
        return f"(not {inner})" if expr.op == "not" else f"(-{inner})"
    if isinstance(expr, ast.BinOp):
        return f"({_render_expr(expr.left, lookup)} {expr.op} {_render_expr(expr.right, lookup)})"
    raise TypeError(type(expr).__name__)  # pragma: no cover


def render_cssa(graph: ParallelFlowGraph, form: CSSAForm) -> str:
    """Render the whole graph in CSSA form, one block per section."""
    from ..ir.defs import Use

    lines: List[str] = [f"CSSA form of {graph.program_name}"]
    for node in graph.document_order():
        header = f"block ({node.name}) [{node.kind}]"
        if node.wait_event:
            header += f"  wait({node.wait_event})"
        lines.append(header)
        for merge in form.merges_at(node):
            lines.append(f"  {merge.format()}")
        for ordinal, stmt in enumerate(node.stmts):
            if isinstance(stmt, ast.Assign):
                d = next(dd for dd in node.defs if dd.stmt is stmt)

                def lookup(var, _ordinal=ordinal, _node=node):
                    return form.use_versions.get(
                        Use(var=var, site=_node.name, ordinal=_ordinal)
                    )

                rhs = _render_expr(stmt.expr, lookup)
                lines.append(f"  {form.version_of(d)} = {rhs}")
            elif isinstance(stmt, ast.Clear):
                lines.append(f"  clear({stmt.event})")
        if node.post_event:
            lines.append(f"  post({node.post_event})")
        if node.cond is not None:
            ordinal = len(node.stmts)

            def lookup_cond(var, _node=node, _ordinal=ordinal):
                return form.use_versions.get(Use(var=var, site=_node.name, ordinal=_ordinal))

            lines.append(f"  branch {_render_expr(node.cond, lookup_cond)}")
    return "\n".join(lines) + "\n"
