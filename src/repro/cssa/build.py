"""CSSA construction over the Parallel Flow Graph.

Merge-on-conflict algorithm (no dominance frontiers needed):

1. every original assignment gets a fresh version of its variable, in
   document order;
2. versions are propagated forward over control + synchronization edges
   (reverse postorder, iterated to a fixpoint);
3. whenever **two distinct versions meet** at a block, a merge function is
   created there, defining a fresh version — ψ when the block is a
   parallel join, π when it is a wait fed by synchronization edges, φ
   otherwise (sequential merges and loop headers);
4. merge creation is monotone (merges are only ever added), so the
   propagation terminates; afterwards every block start sees at most one
   version per variable, which is what makes the form SSA.

Compared with classical dominance-frontier placement this inserts merges
*exactly where value conflicts occur* (a pruned-SSA effect falls out for
free: a variable with one reaching version gets no merge), at the cost of
an iterative pass — entirely in keeping with the paper's fixpoint style.

Relation to reaching definitions: expanding a version through its merge
arguments yields the set of original definitions it can carry; on
sequential programs this equals the RD ud-chain exactly, and on parallel
programs it is a superset at the points where the ACCKill machinery
proves definitions dead across a join (property-tested in
``tests/unit/test_cssa.py`` / ``tests/property/test_cssa_props.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.defs import Definition, Use
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .form import CSSAForm, MergeFunction, MergeKind, SSAName

_MAX_PASSES = 10_000


class CSSABuilder:
    def __init__(self, graph: ParallelFlowGraph):
        self.graph = graph
        self.variables = sorted(graph.defs.variables())
        self._next_index: Dict[str, int] = {v: 1 for v in self.variables}
        self.def_versions: Dict[Definition, SSAName] = {}
        self.merges: Dict[Tuple[PFGNode, str], MergeFunction] = {}
        #: version at end of block (None = undefined there)
        self.out: Dict[Tuple[PFGNode, str], Optional[SSAName]] = {}

    def _fresh(self, var: str) -> SSAName:
        name = SSAName(var, self._next_index[var])
        self._next_index[var] += 1
        return name

    # -- construction ------------------------------------------------------

    def build(self) -> CSSAForm:
        for node in self.graph.document_order():
            for d in node.defs:
                self.def_versions[d] = self._fresh(d.var)
        for node in self.graph.nodes:
            for var in self.variables:
                self.out[(node, var)] = None

        order = self.graph.reverse_postorder()
        for _pass in range(_MAX_PASSES):
            changed = False
            for node in order:
                for var in self.variables:
                    changed |= self._update(node, var)
            if not changed:
                break
        else:  # pragma: no cover - merge creation is monotone & bounded
            raise RuntimeError("CSSA construction failed to stabilize")

        self._finalize_merge_args()
        self._prune_degenerate_merges()
        return CSSAForm(
            def_versions=dict(self.def_versions),
            merges=dict(self.merges),
            use_versions=self._compute_use_versions(),
            out_versions=dict(self.out),
        )

    def _incoming(self, node: PFGNode, var: str) -> List[Tuple[PFGNode, Optional[SSAName]]]:
        return [(p, self.out[(p, var)]) for p in self.graph.all_preds(node)]

    def _start_version(self, node: PFGNode, var: str) -> Optional[SSAName]:
        key = (node, var)
        if key in self.merges:
            return self.merges[key].target
        incoming = {v for _p, v in self._incoming(node, var) if v is not None}
        if len(incoming) > 1:
            self.merges[key] = MergeFunction(
                kind=self._merge_kind(node), node=node, target=self._fresh(var)
            )
            return self.merges[key].target
        return next(iter(incoming)) if incoming else None

    def _merge_kind(self, node: PFGNode) -> MergeKind:
        if node.is_join:
            return MergeKind.PSI
        if node.is_wait and self.graph.sync_preds(node):
            return MergeKind.PI
        return MergeKind.PHI

    def _update(self, node: PFGNode, var: str) -> bool:
        own = node.defs_of(var)
        if own:
            new = self.def_versions[own[-1]]
            # still resolve the start version so conflicts at this block
            # (before the redefinition) create their merge
            self._start_version(node, var)
        else:
            new = self._start_version(node, var)
        key = (node, var)
        if self.out[key] != new:
            self.out[key] = new
            return True
        return False

    def _finalize_merge_args(self) -> None:
        for (node, var), merge in self.merges.items():
            merge.args = self._incoming(node, var)

    def _prune_degenerate_merges(self) -> None:
        """Remove merges whose arguments all carry one version at the
        fixpoint (conflicts that were only transient during iteration),
        substituting that version for the merge's target everywhere —
        the classic trivial-φ cleanup, applied transitively."""
        while True:
            subst: Dict[SSAName, Optional[SSAName]] = {}
            for key, merge in list(self.merges.items()):
                distinct = merge.arg_versions() - {merge.target}
                if len(distinct) <= 1:
                    subst[merge.target] = next(iter(distinct)) if distinct else None
                    del self.merges[key]
            if not subst:
                return

            def resolve(v: Optional[SSAName]) -> Optional[SSAName]:
                while v is not None and v in subst:
                    v = subst[v]
                return v

            for key in self.out:
                self.out[key] = resolve(self.out[key])
            for merge in self.merges.values():
                merge.args = [(p, resolve(v)) for p, v in merge.args]

    def _compute_use_versions(self) -> Dict[Use, Optional[SSAName]]:
        out: Dict[Use, Optional[SSAName]] = {}
        for node in self.graph.nodes:
            for use in node.uses():
                if use.var not in self._next_index:
                    out[use] = None  # free variable: nondeterministic input
                    continue
                local = node.local_def_before(use.var, use.ordinal)
                if local is not None:
                    out[use] = self.def_versions[local]
                else:
                    key = (node, use.var)
                    if key in self.merges:
                        out[use] = self.merges[key].target
                    else:
                        incoming = {
                            v for _p, v in self._incoming(node, use.var) if v is not None
                        }
                        out[use] = next(iter(incoming)) if len(incoming) == 1 else None
        return out


def build_cssa(graph: ParallelFlowGraph) -> CSSAForm:
    """Construct the CSSA form of ``graph``."""
    return CSSABuilder(graph).build()
