"""Concurrent SSA form — the paper's §7 future work, built on the PFG.

φ at sequential merges, ψ at parallel joins (a ψ with distinct argument
versions *is* the paper's join anomaly), π at waits.
"""

from .build import CSSABuilder, build_cssa
from .form import CSSAForm, MergeFunction, MergeKind, SSAName
from .render import render_cssa

__all__ = [
    "CSSABuilder",
    "build_cssa",
    "CSSAForm",
    "MergeFunction",
    "MergeKind",
    "SSAName",
    "render_cssa",
]
