"""Concurrent SSA (CSSA) data types.

The paper's future work (§7) points at translating explicitly parallel
programs to an SSA intermediate form, citing the authors' companion work
on Parallel/Concurrent SSA.  The established shape of that form extends
classic SSA with two merge operators beyond φ:

``φ`` (phi)
    at *sequential* merge points — one argument per control predecessor;
    exactly one argument's value arrives (the branch taken);

``ψ`` (psi)
    at *parallel join* points — one argument per section exit; all
    arguments were computed, and a ψ whose arguments carry distinct
    versions is precisely the paper's join anomaly in SSA clothing;

``π`` (pi)
    at *wait* points — arguments from the waiting thread's own copy and
    from each posting block whose value the wait may absorb.

Every variable version is an :class:`SSAName` (``x_3``); original
assignments define versions, merge functions define fresh ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..ir.defs import Definition, Use
from ..pfg.node import PFGNode


@dataclass(frozen=True, order=True)
class SSAName:
    """One SSA version of a variable, rendered ``var_index``.

    Index 0 is reserved for the undefined/input version (reads of
    never-assigned variables).
    """

    var: str
    index: int

    def __str__(self) -> str:
        return f"{self.var}_{self.index}"


class MergeKind(enum.Enum):
    PHI = "φ"
    PSI = "ψ"
    PI = "π"

    def __str__(self) -> str:
        return self.value


@dataclass
class MergeFunction:
    """One merge pseudo-assignment at the start of a block."""

    kind: MergeKind
    node: PFGNode
    target: SSAName
    #: (predecessor block, incoming version) pairs, in predecessor order;
    #: version None means the variable is undefined along that path.
    args: List[Tuple[PFGNode, Optional[SSAName]]] = field(default_factory=list)

    @property
    def var(self) -> str:
        return self.target.var

    def arg_versions(self) -> FrozenSet[SSAName]:
        return frozenset(v for _p, v in self.args if v is not None)

    def format(self) -> str:
        rendered = ", ".join(
            f"{v if v is not None else '⊥'}:{p.name}" for p, v in self.args
        )
        return f"{self.target} = {self.kind}({rendered})"


@dataclass
class CSSAForm:
    """The complete CSSA view of one analyzed program."""

    #: version assigned to each original definition
    def_versions: Dict[Definition, SSAName]
    #: merge functions by (block, variable)
    merges: Dict[Tuple[PFGNode, str], MergeFunction]
    #: version observed by each use (None = undefined/input)
    use_versions: Dict[Use, Optional[SSAName]]
    #: version live at the *end* of each block, per variable
    out_versions: Dict[Tuple[PFGNode, str], Optional[SSAName]]

    def merges_at(self, node: PFGNode) -> List[MergeFunction]:
        return [m for (n, _v), m in sorted(self.merges.items(), key=lambda kv: kv[0][1]) if n is node]

    def version_of(self, d: Definition) -> SSAName:
        return self.def_versions[d]

    def all_versions(self, var: str) -> List[SSAName]:
        out = {v for v in self.def_versions.values() if v.var == var}
        out |= {m.target for m in self.merges.values() if m.var == var}
        return sorted(out)

    # -- semantic expansion -------------------------------------------------

    def expand(self, version: SSAName) -> FrozenSet[Definition]:
        """The original definitions a version may carry: a definition's
        version expands to itself; a merge expands to the union of its
        arguments (transitively)."""
        by_version: Dict[SSAName, Definition] = {v: d for d, v in self.def_versions.items()}
        merge_by_version = {m.target: m for m in self.merges.values()}
        seen: set = set()
        out: set = set()
        stack = [version]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            if v in by_version:
                out.add(by_version[v])
            elif v in merge_by_version:
                stack.extend(merge_by_version[v].arg_versions())
        return frozenset(out)
