"""Reporting and command-line tooling."""

from .format import format_set, render_kv, render_table

__all__ = ["format_set", "render_kv", "render_table"]
