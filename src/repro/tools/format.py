"""ASCII table rendering in the paper's style.

The paper presents its results as tables of per-block sets (Table 1,
Figure 8, Figures 11/12).  ``render_table`` produces the same shape:
one row per block, one column per set, elements sorted and brace-wrapped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_set(values: Iterable[str]) -> str:
    inner = ", ".join(sorted(values))
    return "{" + inner + "}"


def render_table(
    rows: Mapping[str, Mapping[str, Iterable[str]]],
    columns: Sequence[str],
    row_order: Sequence[str],
    title: str = "",
    node_header: str = "Node",
) -> str:
    """Render ``rows[node][column] -> set of names`` as an aligned table."""
    header = [node_header, *columns]
    body: List[List[str]] = []
    for name in row_order:
        row = rows[name]
        body.append([name] + [format_set(row.get(col, ())) for col in columns])
    widths = [len(h) for h in header]
    for r in body:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(header))
    out.append(sep)
    out.extend(line(r) for r in body)
    return "\n".join(out) + "\n"


def render_kv(pairs: Dict[str, str], title: str = "") -> str:
    """Simple aligned key/value block (for stats summaries)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {v}" for k, v in pairs.items())
    return "\n".join(lines) + "\n"
