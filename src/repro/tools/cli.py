"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``parse FILE``       — parse and pretty-print a program (syntax check).
``graph FILE``       — build the PFG and print its structure (or DOT).
``analyze FILE``     — run the appropriate equation system; print the
                       per-block set table, anomalies, and statistics.
``tables [NAME]``    — regenerate the paper's tables/figures
                       (table1, fig2, fig4, fig8, fig11_12; default all).
``run FILE``         — interpret the program once (seeded scheduler) and
                       print the final variable values.
``cssa FILE``        — print the Concurrent SSA form (φ/ψ/π merges).
``report FILE``      — full optimization report: safety (anomalies,
                       synchronization lint) and opportunities (constants,
                       induction variables, dead code, copies, CSE).
``check FILE``       — soundness self-check: analyze (degradation ladder
                       enabled), then verify the static sets against
                       several seeded interpreter runs
                       (:mod:`repro.robust.selfcheck`).
``stats FILE``       — run the whole pipeline under the observability
                       layer and print the phase-time tree + counters.
``batch INPUTS...``  — analyze many programs (files, globs, or a
                       ``--manifest`` list) concurrently across
                       ``--workers`` processes; stream a ``repro-batch/1``
                       JSONL manifest (``--out``) and print a
                       deterministic summary table.  Crashed workers are
                       retried (``--retries``); ``--resume MANIFEST``
                       continues an interrupted campaign, skipping tasks
                       already recorded
                       (:mod:`repro.batch`, ``docs/batch.md``).
``serve``            — long-lived analysis daemon: JSON-RPC over HTTP
                       with supervised workers, per-request deadlines,
                       admission control (shed on overload), load-aware
                       degradation, ``/healthz``/``/readyz`` endpoints
                       and SIGTERM graceful drain
                       (:mod:`repro.serve`, ``docs/serving.md``).
``fuzz``             — differential fuzzing campaign: generate seeded
                       programs (``--seeds A:B`` inclusive), run the
                       oracle battery (cross-solver, cross-system,
                       pipeline-invariant, metamorphic; ``--check``
                       adds the dynamic self-check and injected-fault
                       shrink drills), minimize failures, and stream a
                       ``repro-fuzz/1`` manifest (``--out``)
                       (:mod:`repro.fuzz`, ``docs/testing.md``).
``explain FILE``     — provenance chains for one block: why each
                       definition reaches ``--stmt N`` (optionally only
                       for ``--var X``), walked back to its birth site
                       (:mod:`repro.provenance`, ``docs/provenance.md``).
``races FILE``       — anomaly reports (race severity by default;
                       ``--all`` adds multiple-values warnings);
                       ``--explain`` attaches the provenance chain of
                       every colliding definition.
``obs report``       — aggregate ``repro-obs/1`` / ``repro-batch/1`` /
                       ``repro-fuzz/1`` JSONL files into one
                       deterministic cross-run summary; ``--json`` saves
                       it, ``--baseline`` gates against a saved report
                       (exit 2 on regression; ``docs/observability.md``).

Observability flags (``analyze``/``report``/``run``; ``stats`` implies
``--trace``): ``--trace`` appends the phase-time tree to the command's
output, ``--profile OUT.jsonl`` exports the span/metric records as JSONL
(schema ``repro-obs/1``, see ``docs/observability.md``).

Solver flags (``analyze``/``report``/``check``/``stats``): ``--solver
{stabilized,round-robin,worklist,scc,scc-dense}`` selects the fixpoint
engine; ``scc`` is the sparse SCC-scheduled engine and ``scc-dense``
additionally vectorizes large cyclic regions (``docs/performance.md``).
``--region-workers N`` solves independent dense regions on N processes
(scc engines only; results are identical, only wall-clock changes).

Budget flags (``analyze``/``report``/``check``): ``--max-passes N`` and
``--deadline SECONDS`` bound the fixpoint solve
(:class:`repro.dataflow.budget.ResourceBudget`).  ``report`` degrades
gracefully on exhaustion (see ``docs/robustness.md``) unless
``--no-degrade`` is given; ``analyze`` always fails fast.

Exit codes (documented contract, kept stable for CI use)
--------------------------------------------------------

====  ===========================================================
code  meaning
====  ===========================================================
0     success (for ``check``: no soundness violations)
1     usage / front-end / I/O error (bad syntax, missing file;
      for ``batch``: no inputs, unreadable ``--manifest``; for
      ``fuzz``: a malformed ``--seeds`` spec; for ``explain``: an
      unknown block or variable; for ``obs report``: an unreadable
      or unrecognized input/baseline file)
2     analysis failure (non-convergence, budget exhaustion,
      snapshot cap, ``check`` soundness violations; for
      ``batch``: any task recorded a nonzero code; for ``fuzz``:
      any oracle mismatch or undetected/unshrinkable drill; for
      ``obs report --baseline``: any regression vs. the baseline)
3     graph invariant violation (:class:`PFGInvariantError`)
4     dynamic failure (``run``: interpreter deadlock — also the
      per-task code ``batch --run`` records for a deadlocking or
      runaway program)
====  ===========================================================
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from .. import analyze as _analyze, obs
from ..analysis import find_anomalies, lint_synchronization
from ..dataflow.budget import NonConvergenceError, ResourceBudget
from ..dataflow.framework import FixpointDiverged
from ..interp import RandomScheduler, run_program
from ..lang import parse_program, pretty
from ..lang.errors import LangError
from ..paper import tables as paper_tables
from ..pfg import to_dot
from ..pfg.validate import PFGInvariantError
from ..tools.format import render_kv, render_table


def _load(path: str):
    return parse_program(Path(path).read_text())


def _add_solver_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--solver",
        default="stabilized",
        choices=["stabilized", "round-robin", "worklist", "scc", "scc-dense"],
        help="fixpoint engine: stabilized (deterministic default), the "
        "paper's round-robin/worklist chaotic iteration, scc (sparse "
        "SCC-scheduled; same fixpoints, fewer updates), or scc-dense "
        "(scc with large cyclic regions vectorized; byte-identical)",
    )
    p.add_argument(
        "--region-workers",
        type=int,
        default=1,
        metavar="N",
        help="solve independent dense regions on N processes (scc engines "
        "only; identical results, wall-clock only)",
    )


def _dense_from(args: argparse.Namespace):
    """A DenseConfig when the flags ask for one, else None (library
    defaults).  ``--region-workers`` implies the dense path on ``scc``;
    for ``scc-dense`` the solve layer already defaults to mode=always."""
    workers = max(1, getattr(args, "region_workers", 1))
    if workers == 1:
        return None
    from ..dataflow.dense import DenseConfig

    mode = "always" if getattr(args, "solver", "") == "scc-dense" else "auto"
    return DenseConfig(mode=mode, workers=workers)


def _add_budget_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--max-passes",
        type=int,
        default=None,
        metavar="N",
        help="abort the fixpoint solve after N sweeps (exit 2 on exhaustion)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort the fixpoint solve after this much wall time",
    )


def _budget_from(args: argparse.Namespace) -> Optional[ResourceBudget]:
    max_passes = getattr(args, "max_passes", None)
    deadline = getattr(args, "deadline", None)
    if max_passes is None and deadline is None:
        return None
    return ResourceBudget(deadline_s=deadline, max_passes=max_passes)


@contextmanager
def _maybe_observe(args: argparse.Namespace):
    """Install an observability session when the command asked for one
    (``--trace``/``--profile``; ``stats`` always observes).  On exit,
    append the phase-time tree and/or write the JSONL export.

    The ``--profile`` export happens in a ``finally``: a failing command
    (budget trip, non-convergence, invariant violation) still writes its
    records — exactly the runs a post-mortem needs — with the failure
    stamped on the meta record (``"failure": "ErrorType: message"``).
    Spans still open at the failure point are omitted (finished work
    only, per the ``repro-obs/1`` schema); the phase-time tree is only
    printed after a clean run."""
    trace = getattr(args, "trace", False)
    profile = getattr(args, "profile", None)
    if not trace and not profile:
        yield
        return
    count_ops = getattr(args, "count_ops", False)
    failure: Optional[str] = None
    with obs.session(count_bitset_ops=count_ops) as sess:
        try:
            yield
        except BaseException as err:
            failure = f"{type(err).__name__}: {err}"
            raise
        finally:
            if profile:
                meta = {"command": args.command, "file": getattr(args, "file", None)}
                if failure is not None:
                    meta["failure"] = failure
                n = sess.write_jsonl(profile, **meta)
                sys.stderr.write(f"wrote {n} records to {profile}\n")
    if trace:
        sys.stdout.write("\n")
        sys.stdout.write(obs.render_tree(sess.tracer, sess.metrics))


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the phase-time tree after the command output",
    )
    p.add_argument(
        "--profile",
        metavar="OUT.jsonl",
        help="export spans and metrics as JSONL (schema repro-obs/1)",
    )
    p.add_argument(
        "--count-ops",
        dest="count_ops",
        action="store_true",
        help="also count bitset set/word operations (slower, more detail)",
    )


def cmd_parse(args: argparse.Namespace) -> int:
    prog = _load(args.file)
    sys.stdout.write(pretty(prog))
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    from ..dataflow.cache import cached_build_pfg

    # Same cache path as analyze/report: the build lands in (and counts
    # toward) cache.pfg.* instead of silently bypassing the cache.
    graph = cached_build_pfg(_load(args.file))
    sys.stdout.write(to_dot(graph) if args.dot else graph.describe() + "\n")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    incremental = None
    if getattr(args, "base", None):
        # Delta mode: solve BASE in full, then re-analyze FILE
        # incrementally off its retained rows (repro.incremental).
        from ..incremental import IncrementalBase, incremental_analyze

        base_program = _load(args.base)
        base_result = _analyze(
            base_program,
            backend=args.backend,
            order=args.order,
            solver=args.solver,
            preserved=args.preserved,
            dense=_dense_from(args),
        )
        outcome = incremental_analyze(
            IncrementalBase.from_result(base_program, base_result),
            _load(args.file),
            backend=args.backend,
            solver=args.solver,
            preserved=args.preserved,
            budget=_budget_from(args),
            dense=_dense_from(args),
        )
        result = outcome.result
        incremental = outcome.stamp()
    else:
        result = _analyze(
            _load(args.file),
            backend=args.backend,
            order=args.order,
            solver=args.solver,
            preserved=args.preserved,
            budget=_budget_from(args),
            dense=_dense_from(args),
        )
    if not result.stats.converged:  # pragma: no cover - solvers raise instead
        sys.stderr.write("error: solver did not converge\n")
        return 2
    order = [n.name for n in result.graph.document_order()]
    cols = ["Gen", "Kill", "In", "Out"]
    if result.acc_killin is not None:
        cols = ["Gen", "Kill", "ParallelKill", "In", "Out", "ACCKillin", "ACCKillout", "ForkKill"]
    if result.synch_pass is not None:
        cols.append("SynchPass")
    rows = {name: {c: result.set_names(c, name) for c in cols} for name in order}
    sys.stdout.write(render_table(rows, cols, order, title=f"{result.system} reaching definitions"))
    anomalies = find_anomalies(result)
    if anomalies:
        sys.stdout.write("\npotential anomalies:\n")
        for a in anomalies:
            sys.stdout.write(f"  {a.format()}\n")
    issues = lint_synchronization(result.graph)
    if issues:
        sys.stdout.write("\nsynchronization lint:\n")
        for issue in issues:
            sys.stdout.write(f"  {issue.format()}\n")
    sys.stdout.write("\n")
    sys.stdout.write(render_kv({k: str(v) for k, v in result.stats.as_dict().items()}, "solver"))
    if incremental is not None:
        sys.stdout.write("\n")
        sys.stdout.write(
            render_kv({k: str(v) for k, v in incremental.items()}, "incremental")
        )
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    artifacts = paper_tables.regenerate_all()
    names = [args.name] if args.name else list(artifacts)
    for name in names:
        if name not in artifacts:
            sys.stderr.write(f"unknown artifact {name!r}; choose from {', '.join(artifacts)}\n")
            return 2
        sys.stdout.write(artifacts[name])
        sys.stdout.write("\n")
    return 0


def cmd_cssa(args: argparse.Namespace) -> int:
    from ..cssa import build_cssa, render_cssa
    from ..dataflow.cache import cached_build_pfg

    graph = cached_build_pfg(_load(args.file))
    form = build_cssa(graph)
    sys.stdout.write(render_cssa(graph, form))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from ..driver import optimize

    report = optimize(
        _load(args.file),
        preserved=args.preserved,
        budget=_budget_from(args),
        degrade=not args.no_degrade,
        solver=args.solver,
        dense=_dense_from(args),
    )
    sys.stdout.write(report.render())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from ..robust import self_check

    report = self_check(
        _load(args.file),
        runs=args.runs,
        max_loop_iters=args.max_loop_iters,
        solver=args.solver,
        preserved=args.preserved,
        budget=_budget_from(args),
    )
    sys.stdout.write(report.format() + "\n")
    if not report.ok:
        sys.stderr.write(
            f"error: {len(report.violations)} dynamic observation(s) escaped "
            "the static sets — the analysis result is unsound for this program\n"
        )
        return 2
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Whole-pipeline observability: parse → PFG → solve → clients (and one
    interpreter run unless ``--no-run``), then a summary; the installed
    session (``stats`` implies ``--trace``) prints the phase-time tree."""
    from ..driver import optimize

    prog = _load(args.file)
    report = optimize(
        prog, preserved=args.preserved, solver=args.solver, dense=_dense_from(args)
    )
    if not args.no_run:
        run_program(
            prog,
            RandomScheduler(seed=args.seed, max_loop_iters=args.max_loop_iters),
            graph=report.result.graph,
        )
    result = report.result
    # Sweepless solvers (worklist, scc) have no meaningful pass count;
    # report node updates instead of a misleading "0 passes".
    if result.stats.sweepless:
        effort = f"{result.stats.node_updates} node updates"
    else:
        effort = f"{result.stats.passes} solver passes"
    sys.stdout.write(
        f"pipeline stats for '{prog.name}': {result.system} equations, "
        f"{len(result.graph)} blocks, {len(result.graph.defs)} definitions, "
        f"{effort} ({result.stats.order})\n"
    )
    # Per-region dense dispatch, so the auto-mode thresholds are
    # observable in the field (only the scc engines populate these).
    if result.stats.dense_regions or result.stats.scalar_regions:
        sys.stdout.write(
            f"dense dispatch: {result.stats.dense_regions} region(s) vectorized, "
            f"{result.stats.scalar_regions} scalar fallback\n"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    prog = _load(args.file)
    result = run_program(prog, RandomScheduler(seed=args.seed, max_loop_iters=args.max_loop_iters))
    if result.deadlocked:
        blocked = (
            f" (blocked on: {', '.join(result.blocked_events)})"
            if result.blocked_events
            else ""
        )
        sys.stdout.write(f"DEADLOCK{blocked}\n")
    values = {var: str(cell.value) for var, cell in sorted(result.final_env.items())}
    sys.stdout.write(render_kv(values, f"final values (seed {args.seed}, {result.steps} steps)"))
    # Exit-code contract: a deadlocked run is a dynamic failure (4), not
    # a success — CI must be able to detect it without scraping stdout.
    return 4 if result.deadlocked else 0


def cmd_explain(args: argparse.Namespace) -> int:
    result = _analyze(
        _load(args.file),
        backend=args.backend,
        solver=args.solver,
        preserved=args.preserved,
        record_provenance=True,
    )
    from ..provenance import explain_block

    try:
        text = explain_block(result, str(args.stmt), var=args.var)
    except KeyError:
        names = ", ".join(n.name for n in result.graph.document_order())
        sys.stderr.write(f"error: no block {args.stmt!r} (blocks: {names})\n")
        return 1
    except ValueError as err:
        sys.stderr.write(f"error: {err}\n")
        return 1
    sys.stdout.write(text)
    return 0


def cmd_races(args: argparse.Namespace) -> int:
    result = _analyze(
        _load(args.file),
        backend=args.backend,
        solver=args.solver,
        preserved=args.preserved,
        record_provenance=args.explain,
    )
    from ..analysis.anomalies import find_anomalies

    anomalies = find_anomalies(result, include_multiple=args.all)
    if args.explain:
        from ..provenance import diagnose_anomalies

        sys.stdout.write(
            diagnose_anomalies(result, anomalies=anomalies, include_multiple=args.all)
        )
    elif not anomalies:
        sys.stdout.write("no anomalies found\n")
    else:
        for a in anomalies:
            sys.stdout.write(f"{a.format()}\n")
    # A reporting command: anomalies are findings, not failures.
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    from ..obs import report as obs_report

    try:
        report = obs_report.aggregate(args.files, top=args.top)
        baseline = (
            obs_report.read_baseline(args.baseline) if args.baseline else None
        )
    except obs_report.ReportError as err:
        sys.stderr.write(f"error: {err}\n")
        return 1
    sys.stdout.write(obs_report.render_report(report))
    if args.json:
        obs_report.write_baseline(args.json, report)
        sys.stderr.write(f"wrote report to {args.json}\n")
    if baseline is not None:
        problems = obs_report.compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if problems:
            sys.stdout.write("\nbaseline regressions:\n")
            for problem in problems:
                sys.stdout.write(f"  {problem}\n")
            sys.stderr.write(
                f"error: {len(problems)} regression(s) vs {args.baseline}\n"
            )
            return 2
        sys.stdout.write(f"\nbaseline check passed ({args.baseline})\n")
    return 0


def _batch_inputs(args: argparse.Namespace) -> List[str]:
    """Resolve positional files/globs plus an optional ``--manifest`` list
    into an ordered, de-duplicated path list.  A glob pattern matching
    nothing and an unreadable manifest are *batch-level* I/O errors
    (``FileNotFoundError`` → exit 1); a plain path that turns out not to
    exist is left in — it becomes a recorded per-task ``error``."""
    import glob as _glob

    paths: List[str] = []
    for item in args.inputs:
        if any(ch in item for ch in "*?["):
            matches = sorted(_glob.glob(item, recursive=True))
            if not matches:
                raise FileNotFoundError(f"pattern {item!r} matched no files")
            paths.extend(matches)
        else:
            paths.append(item)
    if args.manifest:
        for line in Path(args.manifest).read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                paths.append(line)
    seen = set()
    ordered: List[str] = []
    for p in paths:
        if p not in seen:
            seen.add(p)
            ordered.append(p)
    return ordered


def cmd_batch(args: argparse.Namespace) -> int:
    from ..batch import BatchOptions, run_batch

    paths = _batch_inputs(args)
    if not paths:
        sys.stderr.write("error: no input programs (give files, globs, or --manifest)\n")
        return 1
    manifest_out = args.out
    resume = False
    if args.resume:
        if args.out and args.out != args.resume:
            sys.stderr.write(
                "error: --resume MANIFEST already names the output manifest; "
                "drop --out or make them identical\n"
            )
            return 1
        manifest_out = args.resume
        resume = True
    options = BatchOptions(
        backend=args.backend,
        preserved=args.preserved,
        solver=args.solver,
        degrade=not args.no_degrade,
        max_passes=args.max_passes,
        deadline_s=args.deadline,
        run=args.run,
        seed=args.seed,
        max_loop_iters=args.max_loop_iters,
    )
    try:
        report = run_batch(
            paths,
            options,
            workers=max(1, args.workers),
            manifest_path=manifest_out,
            retries=max(0, args.retries),
            resume=resume,
        )
    except ValueError as err:  # e.g. --resume against a non-manifest file
        sys.stderr.write(f"error: {err}\n")
        return 1
    sys.stdout.write(report.render_summary())
    if manifest_out:
        sys.stderr.write(f"wrote manifest to {manifest_out}\n")
    return report.exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    from ..serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        max_pending=max(1, args.max_queue),
        retries=max(0, args.retries),
        deadline_s=args.deadline if args.deadline is not None else 10.0,
        chaos=args.chaos,
        telemetry_path=args.telemetry,
        ready_file=args.ready_file,
        drain_timeout_s=args.drain_timeout,
        degrade_queue_l1=args.degrade_queue,
        degrade_queue_l2=args.degrade_queue2,
        degrade_p99_ms_l1=args.degrade_p99,
        degrade_p99_ms_l2=args.degrade_p99 * 2 if args.degrade_p99 else None,
    )
    return run_server(config)


def cmd_fuzz(args: argparse.Namespace) -> int:
    from ..fuzz import FuzzOptions, ORACLES, parse_seed_spec, run_campaign

    try:
        seeds = parse_seed_spec(args.seeds)
    except ValueError as err:
        sys.stderr.write(f"error: {err}\n")
        return 1
    if args.oracles:
        unknown = [n for n in args.oracles.split(",") if n not in ORACLES]
        if unknown:
            sys.stderr.write(
                f"error: unknown oracle(s) {', '.join(unknown)}; "
                f"choose from {', '.join(ORACLES)}\n"
            )
            return 1
    options = FuzzOptions(
        seeds=seeds,
        target_stmts=args.target_stmts,
        oracles=tuple(args.oracles.split(",")) if args.oracles else None,
        check=args.check,
        drills=args.drills,
        shrink_failures=not args.no_shrink,
        deadline_s=args.deadline,
        max_stmts=args.max_stmts,
        backend=args.backend,
        max_loop_iters=args.max_loop_iters,
    )
    report = run_campaign(options, manifest_path=args.out)
    sys.stdout.write(report.render_summary())
    if args.out:
        sys.stderr.write(f"wrote manifest to {args.out}\n")
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reaching definitions for explicitly parallel programs "
        "(Grunwald & Srinivasan, PPoPP 1993 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("parse", help="parse and pretty-print a program")
    p.add_argument("file")
    p.set_defaults(func=cmd_parse)

    p = sub.add_parser("graph", help="print the Parallel Flow Graph")
    p.add_argument("file")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser("analyze", help="run reaching-definitions analysis")
    p.add_argument("file")
    p.add_argument(
        "--base",
        metavar="FILE",
        help="prior program version: analyze FILE incrementally off BASE's "
        "solve, reusing unperturbed SCC regions (repro.incremental)",
    )
    p.add_argument("--backend", default="bitset", choices=["set", "bitset", "numpy"])
    p.add_argument("--order", default="document")
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    _add_solver_flag(p)
    _add_obs_flags(p)
    _add_budget_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("tables", help="regenerate the paper's tables/figures")
    p.add_argument("name", nargs="?", help="table1 | fig2 | fig4 | fig8 | fig11_12")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("cssa", help="print the Concurrent SSA form")
    p.add_argument("file")
    p.set_defaults(func=cmd_cssa)

    p = sub.add_parser("report", help="full optimization report")
    p.add_argument("file")
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    p.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail fast (exit 2) instead of falling down the degradation ladder",
    )
    _add_solver_flag(p)
    _add_obs_flags(p)
    _add_budget_flags(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "check",
        help="soundness self-check: static sets vs. seeded interpreter runs",
    )
    p.add_argument("file")
    p.add_argument("--runs", type=int, default=5, help="number of seeded runs")
    p.add_argument("--max-loop-iters", type=int, default=2)
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    _add_solver_flag(p)
    _add_obs_flags(p)
    _add_budget_flags(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("run", help="interpret a program once")
    p.add_argument("file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-loop-iters", type=int, default=3)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "batch",
        help="analyze many programs concurrently (files, globs, or --manifest)",
    )
    p.add_argument(
        "inputs",
        nargs="*",
        metavar="FILE_OR_GLOB",
        help="program files; quoted glob patterns are expanded (recursive **)",
    )
    p.add_argument(
        "--manifest",
        metavar="LIST",
        help="text file with one program path per line (# comments allowed)",
    )
    p.add_argument(
        "--out",
        metavar="OUT.jsonl",
        help="stream the repro-batch/1 JSONL manifest here as tasks complete",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool size; 1 = serial in-process (deterministic order)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="resubmissions for a task whose worker process crashed "
        "(capped backoff between rounds; 0 = record crashed immediately)",
    )
    p.add_argument(
        "--resume",
        metavar="MANIFEST",
        help="continue an interrupted campaign: skip tasks with terminal "
        "records in this repro-batch/1 manifest and append the rest to it",
    )
    p.add_argument("--backend", default="bitset", choices=["set", "bitset", "numpy"])
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    p.add_argument(
        "--no-degrade",
        action="store_true",
        help="record a per-task failure instead of falling down the ladder",
    )
    p.add_argument(
        "--run",
        action="store_true",
        help="also interpret each analyzable program once; a deadlock is "
        "recorded as a dynamic failure (per-task code 4)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-loop-iters", type=int, default=3)
    _add_solver_flag(p)
    _add_obs_flags(p)
    _add_budget_flags(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve",
        help="long-lived analysis daemon (JSON-RPC over HTTP, supervised workers)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8421,
        metavar="N",
        help="listen port (0 = ephemeral; see --ready-file)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="K",
        help="supervised worker processes (each holds a warm analysis cache)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="N",
        help="admission bound: pending requests beyond this are shed (429)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="resubmissions after a worker crash before a 'crashed' response",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request budget deadline; a worker past it is killed",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for in-flight requests during SIGTERM drain",
    )
    p.add_argument(
        "--degrade-queue",
        type=int,
        default=None,
        metavar="N",
        help="queue depth at which new requests drop to no-preserved "
        "(default: 2x workers; level-2 threshold doubles it)",
    )
    p.add_argument(
        "--degrade-queue2",
        type=int,
        default=None,
        metavar="N",
        help="queue depth forcing conservative-only (default: 2x --degrade-queue)",
    )
    p.add_argument(
        "--degrade-p99",
        type=float,
        default=None,
        metavar="MS",
        help="recent p99 latency (ms) that triggers degradation (off by default)",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="honor per-request chaos directives (kill/delay) — drills only",
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.jsonl",
        help="flush the daemon's metrics as repro-obs/1 JSONL on drain",
    )
    p.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write {\"port\": N, \"pid\": N} once listening (for scripts/CI)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign over generated programs",
    )
    p.add_argument(
        "--seeds",
        default="0:49",
        metavar="SPEC",
        help="seed spec: inclusive ranges and singles, comma-separated "
        "(e.g. 0:199 or 0:9,100)",
    )
    p.add_argument(
        "--target-stmts",
        type=int,
        default=30,
        metavar="N",
        help="mean generated-program size (spread per seed)",
    )
    p.add_argument(
        "--oracles",
        metavar="NAMES",
        help="comma-separated oracle names (default: registry default; "
        "--check adds dynamic-selfcheck)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="full verification: dynamic self-check oracle plus "
        "injected-fault shrink drills",
    )
    p.add_argument(
        "--drills",
        type=int,
        default=2,
        metavar="N",
        help="injected-fault drills in --check mode",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="record failing cases without minimizing them",
    )
    p.add_argument(
        "--max-stmts",
        type=int,
        metavar="N",
        help="campaign statement budget (total generated statements)",
    )
    p.add_argument(
        "--out",
        metavar="OUT.jsonl",
        help="stream the repro-fuzz/1 JSONL manifest here",
    )
    p.add_argument("--backend", default="bitset", choices=["set", "bitset", "numpy"])
    p.add_argument("--max-loop-iters", type=int, default=2)
    p.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="campaign wall-clock budget; remaining seeds are skipped",
    )
    _add_obs_flags(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "explain",
        help="provenance chains: why each definition reaches a statement",
    )
    p.add_argument("file")
    p.add_argument(
        "--stmt",
        required=True,
        metavar="N",
        help="block name to explain (as printed by 'graph'/'analyze')",
    )
    p.add_argument(
        "--var",
        metavar="X",
        help="restrict to one variable (read there, or reaching block entry)",
    )
    p.add_argument("--backend", default="bitset", choices=["set", "bitset", "numpy"])
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    _add_solver_flag(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "races",
        help="anomaly reports, optionally with provenance chains (--explain)",
    )
    p.add_argument("file")
    p.add_argument(
        "--explain",
        action="store_true",
        help="attach each colliding definition's full provenance chain",
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="also report multiple-values warnings (default: race severity only)",
    )
    p.add_argument("--backend", default="bitset", choices=["set", "bitset", "numpy"])
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    _add_solver_flag(p)
    p.set_defaults(func=cmd_races)

    p = sub.add_parser("obs", help="observability artifact tooling")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    rp = obs_sub.add_parser(
        "report",
        help="aggregate obs/batch/fuzz JSONL files into one summary",
    )
    rp.add_argument(
        "files",
        nargs="+",
        metavar="FILE.jsonl",
        help="any mix of repro-obs/1, repro-batch/1, repro-fuzz/1 files",
    )
    rp.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="how many slowest spans to keep (default 10)",
    )
    rp.add_argument(
        "--json",
        metavar="OUT.json",
        help="also write the aggregated report (repro-obs-report/1 JSON, "
        "usable as a --baseline later)",
    )
    rp.add_argument(
        "--baseline",
        metavar="BASE.json",
        help="compare against a saved report; exit 2 on regression",
    )
    rp.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        metavar="F",
        help="allowed fractional counter growth vs baseline (default 0.1)",
    )
    rp.set_defaults(func=cmd_obs_report)

    p = sub.add_parser(
        "stats", help="run the whole pipeline traced; print the phase-time tree"
    )
    p.add_argument("file")
    p.add_argument("--preserved", default="approx", choices=["approx", "none"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-loop-iters", type=int, default=3)
    p.add_argument(
        "--no-run", action="store_true", help="skip the interpreter run phase"
    )
    p.add_argument("--profile", metavar="OUT.jsonl", help="also export JSONL")
    _add_solver_flag(p)
    p.set_defaults(func=cmd_stats, trace=True, count_ops=True)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; maps failures onto the documented exit codes (see
    module docstring): 1 front-end/I-O, 2 analysis failure, 3 invariant
    violation, 4 dynamic failure (``run`` deadlock).  Every failure
    prints a single ``error:`` line to stderr rather than a traceback.
    ``batch`` records per-task failures in its manifest instead of
    raising — only batch-level usage/I-O errors reach these handlers."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _maybe_observe(args):
            return args.func(args)
    except LangError as err:
        sys.stderr.write(f"error: {err}\n")
        return 1
    except (FileNotFoundError, OSError) as err:
        sys.stderr.write(f"error: {err}\n")
        return 1
    except NonConvergenceError as err:
        stats = err.stats
        sys.stderr.write(
            f"error: analysis did not converge: {err.reason} "
            f"({stats.passes} passes, {stats.node_updates} updates)\n"
        )
        return 2
    except FixpointDiverged as err:
        sys.stderr.write(f"error: analysis did not converge: {err}\n")
        return 2
    except PFGInvariantError as err:
        sys.stderr.write(f"error: graph invariant violation: {err}\n")
        return 3
    except RuntimeError as err:
        sys.stderr.write(f"error: {err}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
