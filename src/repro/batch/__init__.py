"""repro.batch — concurrent batch analysis over many programs.

The scale-out layer: shard independent program files across a process
pool, run the full ``optimize`` pipeline per program with per-task
budgets and the degradation ladder, stream a ``repro-batch/1`` JSONL
manifest, and merge per-worker observability counters into the parent
session.  Exposed on the command line as ``python -m repro batch``; see
``docs/batch.md``.

Quickstart::

    from repro.batch import BatchOptions, run_batch

    report = run_batch(
        ["a.pcf", "b.pcf"],
        BatchOptions(max_passes=200, run=True),
        workers=4,
        manifest_path="batch.jsonl",
    )
    print(report.render_summary())
    assert report.exit_code == 0
"""

from .driver import (
    TASK_EXIT_CODES,
    BatchOptions,
    BatchReport,
    run_batch,
    run_task,
)
from .manifest import (
    SCHEMA,
    ManifestWriter,
    batch_exit_code,
    load_resume_records,
    read_manifest,
    render_batch_summary,
    summary_record,
)

__all__ = [
    "TASK_EXIT_CODES",
    "BatchOptions",
    "BatchReport",
    "run_batch",
    "run_task",
    "SCHEMA",
    "ManifestWriter",
    "batch_exit_code",
    "load_resume_records",
    "read_manifest",
    "render_batch_summary",
    "summary_record",
]
