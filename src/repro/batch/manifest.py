"""Batch manifest: the ``repro-batch/1`` JSONL schema and summary views.

A batch run streams one JSON record per line to its manifest as results
arrive (so a killed batch still leaves every completed task on disk):

``meta`` (first line)
    ``schema`` (``repro-batch/1``), ``workers``, ``inputs`` (task count),
    and the ``options`` the tasks ran under.

``task`` (one per program, in completion order)
    ``file``, ``program`` (parsed name), ``digest``
    (:func:`repro.dataflow.cache.program_digest`), ``status``
    (:data:`~repro.batch.driver.TASK_EXIT_CODES` keys), ``code`` (the
    exit-code-equivalent under the CLI contract), ``error`` (message or
    null), ``system``/``stats`` (solver provenance,
    ``SolveStats.as_dict`` shape), ``anomalies``/``sync_issues``
    (counts), ``degradation``
    (:meth:`~repro.robust.degrade.DegradationRecord.as_dict` or null),
    ``interp`` (dynamic-smoke outcome or null), ``wall_s``, and
    ``counters`` — the worker's per-task observability counter totals,
    which the parent session also merges fleet-wide.

``summary`` (last line)
    ``total``, ``by_status``, ``exit_code``, ``wall_s``.

Completion order is nondeterministic under a process pool; consumers
that need a stable view should sort by ``file`` — which is exactly what
:func:`render_batch_summary` (the end-of-run table) does, so the rendered
summary is deterministic for a given corpus regardless of worker count.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import read_jsonl

SCHEMA = "repro-batch/1"

Record = Dict[str, object]


class ManifestWriter:
    """Streams ``repro-batch/1`` records to a JSONL file as they arrive.

    The meta line is written (and flushed) at construction, each task
    record as it completes, and the summary on :meth:`write_summary` —
    an interrupted batch therefore leaves a readable prefix behind.

    ``append=True`` is the resume mode: the existing file (whose meta
    line already stamps the schema) is opened for append and only new
    task records plus a fresh cumulative summary are added — consumers
    keep reading ``records[0]`` for meta and ``records[-1]`` for the
    latest summary.
    """

    def __init__(
        self,
        path: Union[str, Path],
        workers: int,
        inputs: int,
        options: Optional[Dict[str, object]] = None,
        append: bool = False,
    ):
        self.path = Path(path)
        self._fh = self.path.open("a" if append else "w")
        self._count = 0
        if not append:
            self._write(
                {
                    "type": "meta",
                    "schema": SCHEMA,
                    "workers": workers,
                    "inputs": inputs,
                    "options": options or {},
                }
            )

    def _write(self, record: Record) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self._count += 1

    def write_task(self, record: Record) -> None:
        self._write(record)

    def write_summary(self, records: List[Record], wall_s: float) -> None:
        self._write(summary_record(records, wall_s))

    def close(self) -> int:
        """Close the file; returns the number of records written."""
        self._fh.close()
        return self._count

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def summary_record(records: List[Record], wall_s: float) -> Record:
    by_status: Dict[str, int] = {}
    for rec in records:
        status = str(rec.get("status"))
        by_status[status] = by_status.get(status, 0) + 1
    return {
        "type": "summary",
        "total": len(records),
        "by_status": dict(sorted(by_status.items())),
        "exit_code": batch_exit_code(records),
        "wall_s": round(wall_s, 6),
    }


def batch_exit_code(records: List[Record]) -> int:
    """The batch-level exit code under the CLI contract: 0 when every
    task came back clean (``degraded`` counts as clean — it completed
    with a sound result and carries its provenance), 2 when any task
    failed (its own exit-code-equivalent is nonzero).  Batch-level
    usage/I-O problems (no inputs, unreadable ``--manifest``) never get
    this far — the CLI maps them to 1 before any task runs."""
    return 2 if any(rec.get("code") != 0 for rec in records) else 0


def read_manifest(path: Union[str, Path]) -> List[Record]:
    """Parse a batch manifest; validates the schema stamp on line one."""
    records = read_jsonl(path)
    if not records or records[0].get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} manifest")
    return records


def load_resume_records(path: Union[str, Path]) -> List[Record]:
    """The terminal ``task`` records of a (possibly partial) manifest, for
    ``repro batch --resume``.

    A crash-interrupted batch leaves a manifest with a meta line, zero or
    more complete task lines, possibly **no** summary, and possibly a
    truncated final line (the process died mid-write) — so this reader is
    line-tolerant: malformed lines are skipped rather than fatal.  The
    schema stamp on line one is still mandatory (resuming against some
    other JSONL file is an error, not an empty resume).  A missing file
    is a fresh start: returns ``[]``.
    """
    import json as _json

    p = Path(path)
    if not p.exists():
        return []
    tasks: List[Record] = []
    first = True
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = _json.loads(line)
        except _json.JSONDecodeError:
            continue  # truncated tail of an interrupted run
        if first:
            if record.get("schema") != SCHEMA:
                raise ValueError(f"{path}: not a {SCHEMA} manifest")
            first = False
        if record.get("type") == "task":
            tasks.append(record)
    # ``first`` still True = no parseable line at all (empty/truncated-at-
    # -birth file): a fresh start, not an error.
    return tasks


def _task_detail(rec: Record) -> str:
    if rec.get("error"):
        return str(rec["error"])
    parts: List[str] = []
    stats = rec.get("stats") or {}
    if "node_updates" in stats:
        parts.append(f"{stats['node_updates']} updates")
    degradation = rec.get("degradation")
    if degradation:
        parts.append(f"degraded to {degradation.get('level_name')}")
    interp = rec.get("interp")
    if interp:
        parts.append(f"{interp.get('steps')} interp steps")
    return ", ".join(parts)


def render_batch_summary(records: List[Record], workers: int = 1) -> str:
    """Deterministic end-of-run table: one row per task, sorted by file
    (completion order varies across pool schedules; this does not).
    Wall-clock values are deliberately excluded — they belong in the
    JSONL manifest, not in output that tests and CI logs diff."""
    summary = summary_record(records, wall_s=0.0)
    by_status = ", ".join(f"{n} {s}" for s, n in summary["by_status"].items())
    lines = [
        f"batch summary: {summary['total']} task(s) — {by_status or 'nothing ran'}"
        f" (workers={workers}, exit {summary['exit_code']})"
    ]
    rows = [
        (
            str(rec.get("file")),
            str(rec.get("status")),
            str(rec.get("code")),
            str(rec.get("system") or "-"),
            _task_detail(rec) or "-",
        )
        for rec in sorted(records, key=lambda r: str(r.get("file")))
    ]
    header = ("file", "status", "code", "system", "detail")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def line(cells) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines.append(line(header))
    lines.append(line(tuple("-" * w for w in widths)))
    lines.extend(line(row) for row in rows)
    return "\n".join(lines) + "\n"
