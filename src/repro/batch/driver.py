"""Concurrent batch-analysis driver: the scale-out layer over ``optimize``.

The per-program machinery (digest-keyed cache, resource budgets, the
degradation ladder, observability) bounds and instruments **one** solve;
throughput past that point has to come from sharding independent
programs across workers — per-program solve cost is irreducible in the
worst case ("On the computational complexity of Data Flow Analysis",
PAPERS.md).  :func:`run_batch` takes a list of program files, runs the
full :func:`repro.driver.optimize` pipeline on each, and shards the
tasks across a :class:`concurrent.futures.ProcessPoolExecutor`
(``workers > 1``) or runs them serially in-process (``workers == 1`` —
the deterministic mode tests and debugging want).

Guarantees, per task:

* **failure isolation** — a diverging, syntactically invalid, or
  deadlocking program is *recorded* (status + exit-code-equivalent in
  the manifest), never fatal to the batch; only batch-level usage/I-O
  errors abort the run;
* **fresh budget** — each task gets its own
  :class:`~repro.dataflow.budget.ResourceBudget` built from
  :class:`BatchOptions` limits, so one adversarial program cannot starve
  the rest of the fleet's allowance;
* **ladder honored** — with ``degrade=True`` (default) each task falls
  down the :mod:`repro.robust.degrade` ladder instead of failing, and
  the record carries the :class:`~repro.robust.degrade.DegradationRecord`;
* **metrics merged** — each worker runs under its own observability
  session and ships its full metrics snapshot back (counters *and*
  gauges/histograms with their sample reservoirs); the parent folds it
  in (:meth:`repro.obs.Metrics.merge`) so fleet-wide ``cache.*`` /
  ``solve.*`` counters and latency percentiles read as if the work had
  run in-process, plus ``batch.tasks`` / ``batch.status.<status>``
  rollups.

Results stream to a ``repro-batch/1`` JSONL manifest as they complete
(:mod:`repro.batch.manifest`) and the returned :class:`BatchReport`
renders the deterministic end-of-run summary table.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..obs import get_metrics, get_tracer
from .manifest import ManifestWriter, batch_exit_code, render_batch_summary

#: Task statuses, mapped to the CLI's documented exit-code contract so a
#: manifest row answers "what would this program have exited with?".
TASK_EXIT_CODES = {
    "ok": 0,
    "degraded": 0,  # completed with a sound (flagged) result
    "error": 1,  # front-end / I-O: bad syntax, missing file
    "failed": 2,  # analysis failure: non-convergence, budget exhaustion
    "invariant": 3,  # PFG invariant violation
    "dynamic-failure": 4,  # interpreter deadlock / runaway loop
    "crashed": 2,  # worker process died mid-task (infrastructure)
}


@dataclass(frozen=True)
class BatchOptions:
    """Per-task pipeline options (picklable: plain fields only, so one
    instance travels to every pool worker)."""

    backend: str = "bitset"
    preserved: str = "approx"
    solver: str = "stabilized"
    #: Honor the degradation ladder (``False`` = fail fast per task).
    degrade: bool = True
    #: Budget limits; each task arms a **fresh** budget from these.
    max_passes: Optional[int] = None
    deadline_s: Optional[float] = None
    #: Dynamic smoke: also interpret each analyzable program once with a
    #: seeded scheduler; a deadlock is a ``dynamic-failure`` (code 4).
    run: bool = False
    seed: int = 0
    max_loop_iters: int = 3

    def budget(self):
        from ..dataflow.budget import ResourceBudget

        if self.max_passes is None and self.deadline_s is None:
            return None
        return ResourceBudget(deadline_s=self.deadline_s, max_passes=self.max_passes)


def run_task(path: str, options: BatchOptions) -> Dict[str, object]:
    """Run the full pipeline on one program file; never raises.

    Top-level (picklable) so it can be a process-pool entry point.  Runs
    under its own observability session and returns a JSON-ready ``task``
    record (see :mod:`repro.batch.manifest`) whose ``counters`` snapshot
    the caller merges into its own metrics.
    """
    from .. import obs
    from ..dataflow.budget import NonConvergenceError
    from ..dataflow.cache import program_digest
    from ..dataflow.framework import FixpointDiverged
    from ..driver import optimize
    from ..interp import RandomScheduler, StepBudgetExceeded, run_program
    from ..lang import parse_program
    from ..lang.errors import LangError
    from ..pfg.validate import PFGInvariantError

    t0 = time.perf_counter()
    record: Dict[str, object] = {
        "type": "task",
        "file": str(path),
        "program": None,
        "digest": None,
        "status": "ok",
        "error": None,
        "system": None,
        "stats": None,
        "anomalies": None,
        "sync_issues": None,
        "degradation": None,
        "interp": None,
        "attempts": 1,  # the driver overrides after worker-crash retries
    }
    with obs.session() as sess:
        try:
            program = parse_program(Path(path).read_text())
            record["program"] = program.name
            record["digest"] = program_digest(program)
            report = optimize(
                program,
                backend=options.backend,
                preserved=options.preserved,
                budget=options.budget(),
                degrade=options.degrade,
                solver=options.solver,
            )
            record["system"] = report.result.system
            record["stats"] = report.result.stats.as_dict()
            record["anomalies"] = len(report.anomalies)
            record["sync_issues"] = len(report.sync_issues)
            if report.degradation is not None:
                record["degradation"] = report.degradation.as_dict()
                record["status"] = "degraded"
            if options.run:
                result = run_program(
                    program,
                    RandomScheduler(
                        seed=options.seed, max_loop_iters=options.max_loop_iters
                    ),
                    graph=report.result.graph,
                )
                record["interp"] = {
                    "steps": result.steps,
                    "deadlocked": result.deadlocked,
                    "blocked_events": list(result.blocked_events),
                }
                if result.deadlocked:
                    record["status"] = "dynamic-failure"
                    blocked = ", ".join(result.blocked_events)
                    record["error"] = (
                        f"deadlock (blocked on: {blocked})" if blocked else "deadlock"
                    )
        except LangError as err:
            record["status"] = "error"
            record["error"] = str(err)
        except (FileNotFoundError, OSError) as err:
            record["status"] = "error"
            record["error"] = str(err)
        except NonConvergenceError as err:
            record["status"] = "failed"
            record["error"] = f"analysis did not converge: {err.reason}"
            record["stats"] = err.stats.as_dict()
        except FixpointDiverged as err:
            record["status"] = "failed"
            record["error"] = f"analysis did not converge: {err}"
        except PFGInvariantError as err:
            record["status"] = "invariant"
            record["error"] = f"graph invariant violation: {err}"
        except StepBudgetExceeded as err:
            record["status"] = "dynamic-failure"
            record["error"] = f"runaway execution: {err}"
        except RuntimeError as err:
            record["status"] = "failed"
            record["error"] = str(err)
    record["code"] = TASK_EXIT_CODES[str(record["status"])]
    record["wall_s"] = round(time.perf_counter() - t0, 6)
    state = sess.metrics.export_state()
    # ``counters`` stays a top-level field (older manifest consumers read
    # it); gauges/histograms ride in ``metrics`` for the full-fidelity
    # merge on the parent side.
    record["counters"] = state["counters"]
    record["metrics"] = {"gauges": state["gauges"], "histograms": state["histograms"]}
    return record


def _crash_record(path: str, err: BaseException, attempts: int = 1) -> Dict[str, object]:
    """Record for a task whose *worker process* died (``run_task`` itself
    never raises) — e.g. the pool broke under memory pressure.  Written
    only once the retry allowance (see :func:`run_batch`) is exhausted;
    ``attempts`` records how many tries the task was given."""
    return {
        "type": "task",
        "file": str(path),
        "program": None,
        "digest": None,
        "status": "crashed",
        "code": TASK_EXIT_CODES["crashed"],
        "error": f"worker crashed: {type(err).__name__}: {err}",
        "system": None,
        "stats": None,
        "anomalies": None,
        "sync_issues": None,
        "degradation": None,
        "interp": None,
        "attempts": attempts,
        "wall_s": 0.0,
        "counters": {},
        "metrics": {},
    }


@dataclass
class BatchReport:
    """Everything a batch run concluded, plus the exit-code aggregation."""

    records: List[Dict[str, object]]
    workers: int
    wall_s: float

    @property
    def exit_code(self) -> int:
        return batch_exit_code(self.records)

    def by_status(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records:
            status = str(rec.get("status"))
            out[status] = out.get(status, 0) + 1
        return dict(sorted(out.items()))

    def render_summary(self) -> str:
        return render_batch_summary(self.records, workers=self.workers)


def run_batch(
    paths: Sequence[Union[str, Path]],
    options: Optional[BatchOptions] = None,
    workers: int = 1,
    manifest_path: Optional[Union[str, Path]] = None,
    retries: int = 1,
    retry_backoff_s: float = 0.1,
    resume: bool = False,
    task_fn=None,
) -> BatchReport:
    """Analyze every program in ``paths``; see the module docstring.

    ``workers == 1`` runs serially in-process (deterministic record
    order); ``workers > 1`` shards across a process pool and records
    arrive in completion order.  ``manifest_path`` streams the
    ``repro-batch/1`` JSONL manifest as results land.

    **Crash retry**: a task whose *worker process* died (``run_task``
    itself never raises, so a lost future means infrastructure trouble —
    an OOM-killed worker breaks the whole pool and fails every in-flight
    future with it) is resubmitted on a fresh pool up to ``retries``
    times, with capped exponential backoff between rounds, before a
    terminal ``crashed`` record is written.  Every task record carries
    ``attempts`` (1 = first try succeeded).

    **Resume**: with ``resume=True`` and an existing ``manifest_path``,
    tasks that already have a terminal record in the manifest are skipped
    and only the missing ones run; new records are *appended* to the same
    manifest and the closing summary covers old and new together — a
    crash-interrupted campaign picks up where it left off.

    ``task_fn`` overrides the per-task entry point (a picklable callable
    with :func:`run_task`'s signature) — a fault-injection hook for tests.
    """
    from .manifest import load_resume_records

    options = options if options is not None else BatchOptions()
    paths = [str(p) for p in paths]
    task = task_fn if task_fn is not None else run_task
    retries = max(0, retries)
    tracer = get_tracer()
    metrics = get_metrics()

    prior_records: List[Dict[str, object]] = []
    if resume:
        if manifest_path is None:
            raise ValueError("resume=True requires a manifest_path")
        prior_records = load_resume_records(manifest_path)
        done = {str(rec.get("file")) for rec in prior_records}
        paths = [p for p in paths if p not in done]

    writer = (
        ManifestWriter(
            manifest_path,
            workers=workers,
            inputs=len(paths),
            options=asdict(options),
            append=bool(prior_records),
        )
        if manifest_path is not None
        else None
    )
    records: List[Dict[str, object]] = []
    t0 = time.perf_counter()

    def finish(record: Dict[str, object]) -> None:
        records.append(record)
        if writer is not None:
            writer.write_task(record)
        if metrics.enabled:
            metrics.inc("batch.tasks")
            metrics.inc(f"batch.status.{record['status']}")
            worker_metrics = record.get("metrics") or {}
            metrics.merge(
                {
                    "counters": record.get("counters") or {},
                    "gauges": worker_metrics.get("gauges") or {},
                    "histograms": worker_metrics.get("histograms") or {},
                }
            )

    def run_pooled(pending: List[str]) -> None:
        """Pool rounds with crash retry: each round runs every still-pending
        path; crashes are collected and resubmitted on a *fresh* pool (a
        broken pool poisons every later submit) after a capped backoff."""
        attempts: Dict[str, int] = {p: 0 for p in pending}
        round_no = 0
        while pending:
            crashed: List[tuple] = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                future_to_path = {
                    pool.submit(task, path, options): path for path in pending
                }
                for future in as_completed(future_to_path):
                    path = future_to_path[future]
                    try:
                        record = future.result()
                    except Exception as err:  # BrokenProcessPool and kin
                        attempts[path] += 1
                        crashed.append((path, err))
                        continue
                    record["attempts"] = attempts[path] + 1
                    finish(record)
            pending = []
            for path, err in crashed:
                if attempts[path] > retries:
                    finish(_crash_record(path, err, attempts=attempts[path]))
                else:
                    if metrics.enabled:
                        metrics.inc("batch.retries")
                    pending.append(path)
            if pending:
                round_no += 1
                time.sleep(min(2.0, retry_backoff_s * (2 ** (round_no - 1))))

    try:
        with tracer.span("batch", workers=workers, tasks=len(paths)):
            if workers <= 1:
                for path in paths:
                    finish(task(path, options))
            else:
                run_pooled(list(paths))
        wall = time.perf_counter() - t0
        all_records = prior_records + records
        if writer is not None:
            writer.write_summary(all_records, wall)
    finally:
        if writer is not None:
            writer.close()
    return BatchReport(records=prior_records + records, workers=workers, wall_s=wall)
