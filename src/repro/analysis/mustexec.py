"""Must-execute analysis: which blocks have *definitely* completed.

``MustDone(n)`` = the set of blocks guaranteed to have completed execution
whenever ``n`` begins, in a single construct instance (forward control
edges only).  This is the must-dual of the Preserved union rule:

* sequential merge: only one arm ran → **intersect** over predecessors;
* join: every section ran → **union** over parallel predecessors;
* ordinary/seq edge: predecessor completed → add it.

The paper's induction-variable motivation (§1) rests exactly on this
asymmetry: the body of ``if`` may not execute each iteration, but every
``Parallel Sections`` branch does.  ``always_executes_per_iteration`` asks
whether a block is in ``MustDone(latch)`` of its loop.

Note the contrast with :mod:`repro.reachdefs.preserved`: Preserved answers
"*if* p executed, was it ordered before n?" (union at merges — vacuous
truth for the branch not taken); MustDone answers "did p *certainly*
execute before n?" (intersection at merges).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode


def compute_must_done(graph: ParallelFlowGraph) -> Dict[PFGNode, FrozenSet[PFGNode]]:
    """Fixpoint of the MustDone equations over forward control edges.

    Synchronization edges are ignored (waits add ordered-before facts, not
    must-execute facts — a post may be conditional).
    """
    order = graph.reverse_postorder()
    # Optimistic start: "everything" for nodes with preds would be the
    # classic dominance-style init; we instead run the pessimistic
    # (grow-from-empty) iteration on the *forward* DAG, where one RPO pass
    # reaches the fixpoint because every forward predecessor precedes its
    # successor in RPO.
    must: Dict[PFGNode, FrozenSet[PFGNode]] = {n: frozenset() for n in graph.nodes}
    changed = True
    while changed:
        changed = False
        for node in order:
            back = graph.back_edges()
            seq_preds = [p for p in graph.seq_preds(node) if (p, node) not in back]
            par_preds = graph.par_preds(node)
            if node.is_join:
                # every section ran: union over parallel predecessors
                acc: Optional[Set[PFGNode]] = None
                for p in seq_preds:
                    through = set(must[p]) | {p}
                    acc = through if acc is None else (acc & through)
                current: Set[PFGNode] = acc if acc is not None else set()
                for p in par_preds:
                    current |= set(must[p]) | {p}
            else:
                # alternative arrival paths (including a section-entry loop
                # header with a parallel entry edge and a sequential latch):
                # a block certainly ran only if every path says so.
                acc = None
                for p in seq_preds + par_preds:
                    through = set(must[p]) | {p}
                    acc = through if acc is None else (acc & through)
                current = acc if acc is not None else set()
            new = frozenset(current)
            if new != must[node]:
                must[node] = new
                changed = True
    return must


def loop_body(graph: ParallelFlowGraph, latch: PFGNode, header: PFGNode) -> FrozenSet[PFGNode]:
    """The natural loop of back edge ``latch -> header``: header plus all
    nodes that reach the latch without passing through the header."""
    body: Set[PFGNode] = {header, latch}
    stack = [latch]
    while stack:
        node = stack.pop()
        for p in graph.control_preds(node):
            if p not in body:
                body.add(p)
                stack.append(p)
    return frozenset(body)


def always_executes_per_iteration(
    graph: ParallelFlowGraph,
    node: PFGNode,
    latch: PFGNode,
    must: Optional[Dict[PFGNode, FrozenSet[PFGNode]]] = None,
) -> bool:
    """True iff ``node`` is guaranteed to run in every iteration that
    reaches ``latch`` (i.e. ``node ∈ MustDone(latch)``)."""
    if must is None:
        must = compute_must_done(graph)
    return node in must[latch]
