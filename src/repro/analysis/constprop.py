"""Constant propagation over the parallel reaching-definitions result.

The paper's §1 motivation: with the parallel equations, "dataflow
information would show that the variable 'k' has the value 5 at the end of
the parallel construct during each iteration" of Figure 1(b) — the
sequential equations cannot conclude this because the branch analogue is
conditional.

Classic conditional-constant lattice per definition::

    UNDEF (⊥)  —  not yet evaluated (optimistic start)
    const c    —  the definition always produces c
    VARYING(⊤) —  more than one value possible

``value(d)`` is the abstract evaluation of ``d``'s right-hand side, where a
variable read is the meet over the definitions reaching that use (an
uninitialized / free-variable read is ``VARYING`` — an unknown input).
Monotone, so a worklist over du-chains converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..ir.defs import Definition, Use
from ..lang import ast
from ..reachdefs.result import NodeRef, ReachingDefsResult

Value = Union[int, bool]


class _Top:
    def __repr__(self) -> str:
        return "VARYING"


class _Bottom:
    def __repr__(self) -> str:
        return "UNDEF"


VARYING = _Top()
UNDEF = _Bottom()
Lattice = Union[Value, _Top, _Bottom]


def _lattice_eq(a: Lattice, b: Lattice) -> bool:
    if a is UNDEF or a is VARYING or b is UNDEF or b is VARYING:
        return a is b
    return type(a) is type(b) and a == b


def meet(a: Lattice, b: Lattice) -> Lattice:
    if a is UNDEF:
        return b
    if b is UNDEF:
        return a
    if a is VARYING or b is VARYING:
        return VARYING
    return a if (type(a) is type(b) and a == b) else VARYING


def _apply_binop(op: str, left: Value, right: Value) -> Lattice:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return VARYING if right == 0 else int(left) // int(right)
        if op == "%":
            return VARYING if right == 0 else int(left) % int(right)
        if op == "==":
            return left == right
        if op == "/=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "and":
            return bool(left) and bool(right)
        if op == "or":
            return bool(left) or bool(right)
    except TypeError:  # pragma: no cover - mixed bool/int corner
        return VARYING
    raise ValueError(f"unknown operator {op!r}")  # pragma: no cover


@dataclass
class ConstantPropagation:
    """Fixpoint constant values per definition, with point queries."""

    result: ReachingDefsResult
    values: Dict[Definition, Lattice] = field(default_factory=dict)

    # -- solving ------------------------------------------------------------

    @classmethod
    def run(cls, result: ReachingDefsResult) -> "ConstantPropagation":
        self = cls(result=result)
        defs = list(result.graph.defs)
        self.values = {d: UNDEF for d in defs}
        du = result.du_chains()
        # def -> defs whose rhs may read it (dependents for the worklist)
        dependents: Dict[Definition, set] = {d: set() for d in defs}
        def_of_stmt = {d.stmt: d for d in defs if d.stmt is not None}
        for d, uses in du.items():
            for use in uses:
                node = result.graph.node(use.site)
                if use.ordinal < len(node.stmts):
                    stmt = node.stmts[use.ordinal]
                    if isinstance(stmt, ast.Assign) and stmt in def_of_stmt:
                        dependents[d].add(def_of_stmt[stmt])
        work = list(defs)
        in_work = set(work)
        while work:
            d = work.pop()
            in_work.discard(d)
            # Evaluation is monotone in its inputs and inputs only descend
            # UNDEF → const → VARYING, so recomputation descends too.
            new = self._eval_def(d)
            if not _lattice_eq(new, self.values[d]):
                self.values[d] = new
                for dep in dependents[d]:
                    if dep not in in_work:
                        in_work.add(dep)
                        work.append(dep)
        return self

    def _eval_def(self, d: Definition) -> Lattice:
        assert d.stmt is not None
        node = self.result.graph.node(d.site)
        ordinal = node.stmts.index(d.stmt)
        return self._eval_expr(d.stmt.expr, d.site, ordinal)

    def _eval_expr(self, expr: ast.Expr, site: str, ordinal: int) -> Lattice:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Var):
            use = Use(var=expr.name, site=site, ordinal=ordinal)
            reaching = self.result.reaching_use(use)
            if not reaching:
                return VARYING  # free variable: unknown input
            acc: Lattice = UNDEF
            for d in reaching:
                acc = meet(acc, self.values[d])
            return acc
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval_expr(expr.operand, site, ordinal)
            if inner is UNDEF or inner is VARYING:
                return inner
            return (not inner) if expr.op == "not" else -inner  # type: ignore[operator]
        if isinstance(expr, ast.BinOp):
            left = self._eval_expr(expr.left, site, ordinal)
            right = self._eval_expr(expr.right, site, ordinal)
            if left is UNDEF or right is UNDEF:
                return UNDEF
            if left is VARYING or right is VARYING:
                return VARYING
            return _apply_binop(expr.op, left, right)  # type: ignore[arg-type]
        raise TypeError(f"cannot evaluate {type(expr).__name__}")  # pragma: no cover

    # -- queries -----------------------------------------------------------------

    def value_of(self, d: Definition) -> Lattice:
        return self.values[d]

    def value_at(self, ref: NodeRef, var: str) -> Lattice:
        """Abstract value of ``var`` at the *start* of a block: the meet
        over all definitions reaching it (UNDEF if none reach)."""
        acc: Lattice = UNDEF
        for d in self.result.reaching(ref, var):
            acc = meet(acc, self.values[d])
        return acc

    def constant_at(self, ref: NodeRef, var: str) -> Optional[Value]:
        """``var``'s value at block start if provably constant, else None."""
        v = self.value_at(ref, var)
        return None if isinstance(v, (_Top, _Bottom)) else v

    def constant_defs(self) -> Dict[Definition, Value]:
        """All definitions with a proven constant value."""
        return {
            d: v for d, v in self.values.items() if not isinstance(v, (_Top, _Bottom))
        }


def propagate_constants(result: ReachingDefsResult) -> ConstantPropagation:
    """Run constant propagation on an analysis result."""
    return ConstantPropagation.run(result)
