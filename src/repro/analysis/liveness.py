"""Live-variable analysis for explicitly parallel programs (backward).

The dual direction to the paper's reaching definitions, included because
the optimization clients (dead code, register-pressure style questions)
want it and because it demonstrates the equation framework running
backward over the same Parallel Flow Graph.

Equations (a *may* analysis — union at every merge is conservative)::

    LiveOut(n) = ⋃_{s ∈ succ(n)} LiveIn(s)          succ = seq ∪ par ∪ sync
    LiveIn(n)  = (LiveOut(n) − DefBeforeUse(n)) ∪ UseBeforeDef(n)

* ``UseBeforeDef(n)`` — variables read in ``n`` before any assignment to
  them (upward-exposed uses, including the trailing branch condition);
* ``DefBeforeUse(n)`` — variables assigned in ``n`` before any read of
  them (only such an assignment surely masks liveness from below).

Parallel semantics built in conservatively:

* **synchronization successors**: a variable live into a wait block may be
  *supplied* by the poster's copy (paper §3), so it is live out of every
  corresponding post block;
* **parallel joins**: the join's live-in flows back into *every* section
  (union over parallel edges) — any section's copy may be the one merged;
* no concurrent-kill: a sibling section's assignment never makes a
  variable dead here (the thread's own copy persists under
  copy-in/copy-out).

The system is genuinely monotone (no subtractive feedback — the kill sets
are per-node constants), so plain chaotic iteration converges to the
unique least fixpoint from any order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ..dataflow.framework import EquationSystem, SolveStats
from ..dataflow.solver import solve_round_robin
from ..lang import ast
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode

VarSet = FrozenSet[str]


def _local_sets(node: PFGNode) -> tuple:
    """(UseBeforeDef, DefBeforeUse) for one block."""
    used_first = set()
    defined_first = set()
    seen_def = set()
    seen_use = set()
    for stmt in node.stmts:
        if isinstance(stmt, ast.Assign):
            for var in stmt.expr.variables():
                if var not in seen_def:
                    used_first.add(var)
                seen_use.add(var)
            if stmt.target not in seen_use and stmt.target not in seen_def:
                defined_first.add(stmt.target)
            seen_def.add(stmt.target)
    if node.cond is not None:
        for var in node.cond.variables():
            if var not in seen_def:
                used_first.add(var)
    return frozenset(used_first), frozenset(defined_first)


class LivenessSystem(EquationSystem[PFGNode]):
    """Backward may-liveness over the PFG."""

    def __init__(self, graph: ParallelFlowGraph):
        self.graph = graph
        self._use = {}
        self._def = {}
        for node in graph.nodes:
            self._use[node], self._def[node] = _local_sets(node)
        self._succs = {n: graph.succs(n) for n in graph.nodes}  # all kinds
        self.live_in: Dict[PFGNode, VarSet] = {}
        self.live_out: Dict[PFGNode, VarSet] = {}

    def nodes(self):
        # Backward problem: reverse document order converges fastest, but
        # any order reaches the same least fixpoint.
        return list(reversed(self.graph.document_order()))

    def initialize(self) -> None:
        for n in self.graph.nodes:
            self.live_in[n] = frozenset()
            self.live_out[n] = frozenset()

    def update(self, n: PFGNode) -> bool:
        new_out: VarSet = frozenset().union(*(self.live_in[s] for s in self._succs[n])) if self._succs[n] else frozenset()
        new_in = (new_out - self._def[n]) | self._use[n]
        changed = new_out != self.live_out[n] or new_in != self.live_in[n]
        self.live_out[n] = new_out
        self.live_in[n] = new_in
        return changed

    def dependents(self, n: PFGNode) -> Iterable[PFGNode]:
        return self.graph.preds(n)

    def snapshot(self):
        return {
            "LiveIn": {n.name: self.live_in[n] for n in self.graph.nodes},
            "LiveOut": {n.name: self.live_out[n] for n in self.graph.nodes},
        }


class LivenessResult:
    """Fixpoint liveness with name-based accessors."""

    def __init__(self, graph: ParallelFlowGraph, system: LivenessSystem, stats: SolveStats):
        self.graph = graph
        self.stats = stats
        self.live_in = dict(system.live_in)
        self.live_out = dict(system.live_out)

    def _node(self, ref) -> PFGNode:
        return self.graph.node(ref) if isinstance(ref, str) else ref

    def LiveIn(self, ref) -> VarSet:
        return self.live_in[self._node(ref)]

    def LiveOut(self, ref) -> VarSet:
        return self.live_out[self._node(ref)]

    def is_live_at_exit(self, var: str) -> bool:
        assert self.graph.exit is not None
        return var in self.live_in[self.graph.exit]


def solve_liveness(graph: ParallelFlowGraph, observable_at_exit: Optional[Iterable[str]] = None) -> LivenessResult:
    """Run live-variable analysis to fixpoint.

    ``observable_at_exit`` seeds variables considered read after the
    program (default: none — liveness then reflects only in-program uses;
    pass ``graph.defs.variables()`` to treat all final values as output).
    """
    system = LivenessSystem(graph)
    if observable_at_exit and graph.exit is not None:
        seed = frozenset(observable_at_exit)
        exit_node = graph.exit
        original = system._use[exit_node]
        system._use[exit_node] = original | seed
    stats = solve_round_robin(system, system.nodes(), order_name="reverse-document")
    return LivenessResult(graph, system, stats)
