"""Available expressions across parallel constructs (forward, must).

The must-direction companion to reaching definitions: an expression ``e``
is *available* at a point if **every** path to it computes ``e`` after the
last assignment to any of ``e``'s operands.  Classic lattice: initialize
everything to the full universe (optimistic), entry to ∅, intersect at
merges, and shrink to the greatest fixpoint.

Parallel rules (conservative in the copy-in/copy-out model, §3):

* a parallel **join** intersects over the section exits like any merge,
  but additionally **kills** every expression with an operand assigned
  anywhere inside the construct by *more than one* section — the merged
  memory may mix operand copies from different sections, invalidating a
  value computed in either;
* a **wait** absorbs poster copies, so it kills every expression with an
  operand defined in any block that may run concurrently with the wait
  (the absorbed copy may carry that definition);
* an expression computed in a section is *not* killed by a sibling's
  assignments while the section runs (each thread computes on its own
  copies) — only the merge points above introduce cross-thread kills.

The client use is classical CSE: if ``e ∈ AvailIn(n)`` and ``n``
recomputes ``e``, some earlier computation can be reused.  This
complements :mod:`repro.analysis.cse` (which matches ud-chain value
identity); ``find_redundant_computations`` reports sites the must-
analysis certifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..dataflow.framework import EquationSystem, SolveStats
from ..dataflow.solver import solve_round_robin
from ..lang import ast
from ..pfg.concurrency import concurrent
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from ..pfg.regions import compute_regions

#: Expressions are compared structurally (frozen dataclasses).
Expr = ast.Expr


def interesting_expressions(graph: ParallelFlowGraph) -> List[Expr]:
    """The expression universe: every non-trivial right-hand side and
    branch condition (at least one operator, at least one variable)."""
    seen: Set[Expr] = set()
    out: List[Expr] = []
    for node in graph.nodes:
        candidates = [s.expr for _o, s in node.assignments()]
        if node.cond is not None:
            candidates.append(node.cond)
        for expr in candidates:
            if isinstance(expr, (ast.BinOp, ast.UnaryOp)) and expr.variables():
                if expr not in seen:
                    seen.add(expr)
                    out.append(expr)
    return out


def _node_gen_kill(node: PFGNode, universe: List[Expr]) -> Tuple[FrozenSet[Expr], FrozenSet[Expr]]:
    """(gen, kill) for one block: process statements in order; an
    assignment kills expressions over its target and generates the
    expressions it computes (if still valid at block end)."""
    available: Set[Expr] = set()
    killed: Set[Expr] = set()
    for _ordinal, stmt in node.assignments():
        if isinstance(stmt.expr, (ast.BinOp, ast.UnaryOp)) and stmt.expr.variables():
            available.add(stmt.expr)
        dead = {e for e in available if stmt.target in e.variables()}
        available -= dead
        killed |= {e for e in universe if stmt.target in e.variables()}
    if node.cond is not None and node.cond in universe:
        available.add(node.cond)
    return frozenset(available), frozenset(killed)


class AvailableExpressionsSystem(EquationSystem[PFGNode]):
    """Greatest-fixpoint must system (monotone *decreasing* from ⊤)."""

    def __init__(self, graph: ParallelFlowGraph):
        self.graph = graph
        self.universe = interesting_expressions(graph)
        self._top = frozenset(self.universe)
        self._gen: Dict[PFGNode, FrozenSet[Expr]] = {}
        self._kill: Dict[PFGNode, FrozenSet[Expr]] = {}
        #: cross-thread kills applied at block *entry* (the join/wait merge
        #: happens before the block's own statements run)
        self._entry_kill: Dict[PFGNode, FrozenSet[Expr]] = {}
        for node in graph.nodes:
            gen, kill = _node_gen_kill(node, self.universe)
            self._gen[node] = gen
            self._kill[node] = kill
            self._entry_kill[node] = self._merge_kills(node)
        self.avail_in: Dict[PFGNode, FrozenSet[Expr]] = {}
        self.avail_out: Dict[PFGNode, FrozenSet[Expr]] = {}

    # -- parallel kill rules --------------------------------------------------

    def _merge_kills(self, node: PFGNode) -> FrozenSet[Expr]:
        killed: Set[Expr] = set()
        if node.is_join:
            regions = compute_regions(self.graph)
            construct = regions[node.construct_id]
            writers: Dict[str, Set[int]] = {}
            for section, members in construct.section_nodes.items():
                for member in members:
                    for d in member.defs:
                        writers.setdefault(d.var, set()).add(section)
            mixed = {var for var, sections in writers.items() if len(sections) >= 2}
            killed |= {e for e in self.universe if mixed & set(e.variables())}
        if node.is_wait:
            for e in self.universe:
                for var in e.variables():
                    if any(
                        concurrent(self.graph.node(d.site), node)
                        for d in self.graph.defs.of_var(var)
                    ):
                        killed.add(e)
                        break
        return frozenset(killed)

    # -- framework interface ------------------------------------------------------

    def nodes(self):
        return self.graph.document_order()

    def initialize(self) -> None:
        for n in self.graph.nodes:
            # optimistic top everywhere except the entry
            self.avail_in[n] = frozenset() if n is self.graph.entry else self._top
            self.avail_out[n] = self._top
        if self.graph.entry is not None:
            n = self.graph.entry
            self.avail_out[n] = (self.avail_in[n] - self._kill[n]) | self._gen[n]

    def update(self, n: PFGNode) -> bool:
        preds = self.graph.control_preds(n)
        if n is self.graph.entry or not preds:
            new_in: FrozenSet[Expr] = frozenset()
        else:
            new_in = self.avail_out[preds[0]]
            for p in preds[1:]:
                new_in = new_in & self.avail_out[p]
            new_in = new_in - self._entry_kill[n]
        new_out = (new_in - self._kill[n]) | self._gen[n]
        changed = new_in != self.avail_in[n] or new_out != self.avail_out[n]
        self.avail_in[n] = new_in
        self.avail_out[n] = new_out
        return changed

    def dependents(self, n: PFGNode) -> Iterable[PFGNode]:
        return self.graph.control_succs(n)

    def snapshot(self):
        return {
            "AvailIn": {n.name: self.avail_in[n] for n in self.graph.nodes},
            "AvailOut": {n.name: self.avail_out[n] for n in self.graph.nodes},
        }


@dataclass
class AvailableExpressions:
    """Fixpoint availability with name-based accessors."""

    graph: ParallelFlowGraph
    avail_in: Dict[PFGNode, FrozenSet[Expr]]
    avail_out: Dict[PFGNode, FrozenSet[Expr]]
    universe: List[Expr]
    stats: SolveStats

    def _node(self, ref) -> PFGNode:
        return self.graph.node(ref) if isinstance(ref, str) else ref

    def AvailIn(self, ref) -> FrozenSet[Expr]:
        return self.avail_in[self._node(ref)]

    def AvailOut(self, ref) -> FrozenSet[Expr]:
        return self.avail_out[self._node(ref)]

    def is_available(self, ref, expr: Expr) -> bool:
        return expr in self.avail_in[self._node(ref)]


def solve_available_expressions(graph: ParallelFlowGraph) -> AvailableExpressions:
    """Run available expressions to its greatest fixpoint."""
    system = AvailableExpressionsSystem(graph)
    stats = solve_round_robin(system, graph.document_order(), order_name="document")
    return AvailableExpressions(
        graph=graph,
        avail_in=dict(system.avail_in),
        avail_out=dict(system.avail_out),
        universe=system.universe,
        stats=stats,
    )


@dataclass(frozen=True)
class RedundantComputation:
    """An assignment recomputing an expression already available there."""

    node: PFGNode
    target: str
    expr: Expr

    def format(self) -> str:
        return f"({self.node.name}) {self.target} = {self.expr} — expression already available"


def find_redundant_computations(graph: ParallelFlowGraph) -> List[RedundantComputation]:
    """Assignments whose right-hand side is available at their block start
    (and whose operands are untouched earlier in the block)."""
    avail = solve_available_expressions(graph)
    out: List[RedundantComputation] = []
    for node in graph.nodes:
        touched: Set[str] = set()
        for _ordinal, stmt in node.assignments():
            expr = stmt.expr
            if (
                isinstance(expr, (ast.BinOp, ast.UnaryOp))
                and expr.variables()
                and expr in avail.AvailIn(node)
                and not (touched & set(expr.variables()))
            ):
                out.append(RedundantComputation(node=node, target=stmt.target, expr=expr))
            touched.add(stmt.target)
    return out
