"""Basic induction-variable detection across parallel constructs.

The paper's opening example (§1, Figure 1): ``j`` is **not** an induction
variable in the sequential program — the conditional increment may not run
every iteration — but **is** one in the parallel program, "since both
branches of the Parallel Sections statement always execute for all
iterations of the loop, but this could not be automatically detected
without adequate dataflow information".

The reaching-definitions result encodes exactly the needed fact: a
variable ``v`` is a *basic induction variable* of a loop iff

1. the loop body contains at least one definition of ``v``, every one of
   which has the shape ``v = v ± c`` (``c`` an integer literal), and
2. every definition of ``v`` flowing around the back edge (i.e. in
   ``Out(latch)``) is one of those increments — the parallel equations'
   ``ACCKill`` machinery is what removes the loop-entry definition here
   when an always-executing section redefines ``v``, and what keeps it
   when the redefinition is conditional.

Definitions inside a *nested* loop are rejected (they may run ≠ 1 times
per outer iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..ir.defs import Definition
from ..lang import ast
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from ..reachdefs.result import ReachingDefsResult
from .mustexec import loop_body


@dataclass(frozen=True)
class LoopInfo:
    """One natural loop: ``latch -> header`` back edge plus its body."""

    header: PFGNode
    latch: PFGNode
    body: FrozenSet[PFGNode]

    def __contains__(self, node: PFGNode) -> bool:
        return node in self.body


@dataclass(frozen=True)
class InductionVariable:
    """A detected basic induction variable of one loop."""

    var: str
    loop: LoopInfo
    increments: Tuple[Definition, ...]
    steps: Tuple[int, ...]

    def format(self) -> str:
        incs = ", ".join(f"{d.name} (step {s:+d})" for d, s in zip(self.increments, self.steps))
        return f"{self.var} is a basic induction variable of loop@{self.loop.header.name}: {incs}"


def find_loops(graph: ParallelFlowGraph) -> List[LoopInfo]:
    """All natural loops, one per control back edge."""
    loops = []
    for latch, header in sorted(graph.back_edges(), key=lambda e: (e[1].id, e[0].id)):
        loops.append(LoopInfo(header=header, latch=latch, body=loop_body(graph, latch, header)))
    return loops


def _increment_step(stmt: ast.Assign) -> Optional[int]:
    """``v = v + c`` / ``v = c + v`` / ``v = v - c`` → ±c, else None."""
    expr = stmt.expr
    if not isinstance(expr, ast.BinOp) or expr.op not in ("+", "-"):
        return None
    left, right = expr.left, expr.right
    if (
        isinstance(left, ast.Var)
        and left.name == stmt.target
        and isinstance(right, ast.IntLit)
    ):
        return right.value if expr.op == "+" else -right.value
    if (
        expr.op == "+"
        and isinstance(right, ast.Var)
        and right.name == stmt.target
        and isinstance(left, ast.IntLit)
    ):
        return left.value
    return None


def find_induction_variables(result: ReachingDefsResult) -> List[InductionVariable]:
    """Detect basic induction variables in every loop of the analyzed
    program, using whichever equation system produced ``result`` (this is
    what makes the sequential/parallel Figure 1 contrast visible)."""
    graph = result.graph
    out: List[InductionVariable] = []
    loops = find_loops(graph)
    for loop in loops:
        inner_nodes = _nested_loop_nodes(loops, loop)
        body_defs: Dict[str, List[Definition]] = {}
        for node in loop.body:
            if node is loop.header:
                continue
            for d in node.defs:
                body_defs.setdefault(d.var, []).append(d)
        for var, defs in sorted(body_defs.items()):
            steps = []
            ok = True
            for d in defs:
                node = graph.node(d.site)
                step = _increment_step(d.stmt) if d.stmt is not None else None
                if step is None or node in inner_nodes:
                    ok = False
                    break
                steps.append(step)
            if not ok:
                continue
            # Every definition flowing around the back edge must be one of
            # the increments: the loop-entry value must not survive a full
            # iteration (otherwise some iteration may skip the increment).
            circulating = {d for d in result.Out(loop.latch) if d.var == var}
            if circulating and circulating <= set(defs):
                out.append(
                    InductionVariable(
                        var=var, loop=loop, increments=tuple(defs), steps=tuple(steps)
                    )
                )
    return out


def _nested_loop_nodes(loops: List[LoopInfo], outer: LoopInfo) -> FrozenSet[PFGNode]:
    nested = set()
    for other in loops:
        if other is outer:
            continue
        if other.header in outer.body and other.header is not outer.header:
            nested |= set(other.body)
    return frozenset(nested)
