"""Dead-code elimination from du-chains.

Mark-and-sweep over definitions:

* **roots** — definitions whose value is observable: they reach the
  program's exit (the final values of variables are the program's output),
  or feed a branch condition (control dependence);
* **propagate** — a live definition keeps alive every definition reaching
  the uses in its right-hand side;
* everything unmarked is removable.

The parallel equations matter here exactly as the paper argues: a
definition killed by an always-executing sibling section does *not* reach
the exit, so it can be recognized as dead across the construct — the
sequential equations applied naively would keep it alive.

The client reports removable definitions (and can rewrite the AST); it
never removes ``post``/``wait`` or control structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set

from ..ir.defs import Definition, Use
from ..reachdefs.result import ReachingDefsResult


@dataclass
class DeadCodeReport:
    """Live/dead partition of all definitions."""

    live: FrozenSet[Definition]
    dead: FrozenSet[Definition]
    roots: FrozenSet[Definition]

    def is_dead(self, d: Definition) -> bool:
        return d in self.dead

    def format(self) -> str:
        if not self.dead:
            return "no dead definitions"
        return "dead definitions: " + ", ".join(sorted(d.name for d in self.dead))


def find_dead_code(
    result: ReachingDefsResult, observable_at_exit: bool = True
) -> DeadCodeReport:
    """Compute the live/dead definition partition.

    ``observable_at_exit=False`` treats nothing as implicitly observable —
    only uses inside the program keep definitions alive (useful for
    library-style fragments where final values are irrelevant).
    """
    graph = result.graph
    roots: Set[Definition] = set()
    if observable_at_exit and graph.exit is not None:
        roots |= set(result.In(graph.exit)) | set(result.Out(graph.exit))

    # Branch conditions are always observable (they steer control flow).
    for node in graph.nodes:
        if node.cond is not None:
            for var in node.cond.variables():
                use = Use(var=var, site=node.name, ordinal=len(node.stmts))
                roots |= result.reaching_use(use)

    live: Set[Definition] = set()
    work: List[Definition] = list(roots)
    while work:
        d = work.pop()
        if d in live:
            continue
        live.add(d)
        if d.stmt is None:
            continue
        node = graph.node(d.site)
        ordinal = node.stmts.index(d.stmt)
        for var in d.stmt.expr.variables():
            use = Use(var=var, site=node.name, ordinal=ordinal)
            for feeder in result.reaching_use(use):
                if feeder not in live:
                    work.append(feeder)

    dead = frozenset(set(graph.defs) - live)
    return DeadCodeReport(live=frozenset(live), dead=dead, roots=frozenset(roots))
