"""Use-definition chains — the paper's "ud-chaining problem" (§2.1).

Thin, report-friendly layer over
:meth:`repro.reachdefs.result.ReachingDefsResult.ud_chains`; every other
client in this package consumes chains through here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..ir.defs import Definition, Use
from ..reachdefs.result import ReachingDefsResult


@dataclass
class UDChains:
    """ud- and du-chains for one analysis result."""

    result: ReachingDefsResult
    ud: Dict[Use, FrozenSet[Definition]]
    du: Dict[Definition, Tuple[Use, ...]]

    @classmethod
    def from_result(cls, result: ReachingDefsResult) -> "UDChains":
        ud = result.ud_chains()
        du = result.du_chains()
        return cls(result=result, ud=ud, du=du)

    # -- queries -----------------------------------------------------------

    def defs_for(self, use: Use) -> FrozenSet[Definition]:
        return self.ud[use]

    def uses_of(self, d: Definition) -> Tuple[Use, ...]:
        return self.du[d]

    def unused_defs(self) -> List[Definition]:
        """Definitions with an empty du-chain (candidates for dead code)."""
        return [d for d, uses in self.du.items() if not uses]

    def multi_def_uses(self) -> List[Tuple[Use, FrozenSet[Definition]]]:
        """Uses reached by more than one definition — where optimizations
        lose precision and potential anomalies hide."""
        return [(u, ds) for u, ds in self.ud.items() if len(ds) > 1]

    def singleton_uses(self) -> List[Tuple[Use, Definition]]:
        """Uses with exactly one reaching definition (safe to specialize)."""
        return [(u, next(iter(ds))) for u, ds in self.ud.items() if len(ds) == 1]

    # -- reporting -----------------------------------------------------------

    def format(self) -> str:
        lines = []
        for use in sorted(self.ud, key=lambda u: (u.site, u.ordinal, u.var)):
            defs = ", ".join(sorted(d.name for d in self.ud[use])) or "∅ (uninitialized read)"
            lines.append(f"{use.name:>16}  <-  {{{defs}}}")
        return "\n".join(lines)


def compute_ud_chains(result: ReachingDefsResult) -> UDChains:
    """Convenience constructor."""
    return UDChains.from_result(result)
