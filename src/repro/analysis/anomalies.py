"""Data-anomaly (race) detection from reaching-definitions sets.

The paper uses its sets as an anomaly detector (§3, §5, §6):

* "at a join node, multiple values for a variable reaching that node
  indicates a potential anomaly in the Parallel Sections construct";
* "multiple copies of a variable may potentially reach a wait statement
  ... the presence of multiple values at such wait statements indicates
  potential anomalies" (with the caveat that conditionally executed posts
  make this inexact);
* Figure 8's discussion separates the cases: ``b3``/``b5`` reaching the
  join from *distinct parallel branches* is "an actual anomaly", whereas
  ``c1``/``c7`` (a conditional definition) is only the conservative
  multiple-values warning.

We report both severities:

``RACE``
    ≥ 2 definitions of one variable reach a join/wait, and at least two of
    them come from nodes that may execute concurrently — genuinely
    unordered values meet.

``MULTIPLE``
    ≥ 2 definitions reach a join/wait but all are sequentially ordered or
    mutually exclusive (e.g. a conditional definition) — the conservative
    warning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..ir.defs import Definition
from ..pfg.concurrency import concurrent
from ..pfg.node import PFGNode
from ..reachdefs.result import ReachingDefsResult


class AnomalyKind(enum.Enum):
    RACE = "race"
    MULTIPLE = "multiple-values"
    CROSS_ITERATION = "cross-iteration race"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Anomaly:
    """One potential anomaly report."""

    kind: AnomalyKind
    node: PFGNode
    var: str
    defs: FrozenSet[Definition]

    def format(self) -> str:
        if self.kind is AnomalyKind.CROSS_ITERATION:
            where = "parallel-do merge"
        elif self.node.is_wait:
            where = "wait"
        elif self.node.is_join:
            where = "join"
        else:
            where = "block"
        names = ", ".join(sorted(d.name for d in self.defs))
        return f"{self.kind} of {self.var!r} at {where} ({self.node.name}): {{{names}}}"


def _classify(result: ReachingDefsResult, node: PFGNode) -> List[Anomaly]:
    found: List[Anomaly] = []
    by_var: Dict[str, List[Definition]] = {}
    for d in result.In(node):
        by_var.setdefault(d.var, []).append(d)
    for var, defs in sorted(by_var.items()):
        if len(defs) < 2:
            continue
        def_nodes = [result.info.def_node[d] for d in defs]
        racy = any(
            concurrent(def_nodes[i], def_nodes[j])
            for i in range(len(defs))
            for j in range(i + 1, len(defs))
        )
        kind = AnomalyKind.RACE if racy else AnomalyKind.MULTIPLE
        found.append(Anomaly(kind=kind, node=node, var=var, defs=frozenset(defs)))
    return found


def find_anomalies(
    result: ReachingDefsResult, include_multiple: bool = True
) -> List[Anomaly]:
    """Scan every join and wait node for potential anomalies, plus every
    ``Parallel Do`` merge for cross-iteration write conflicts.

    ``include_multiple=False`` keeps only the race-severity reports (the
    "actual anomaly" severity of the paper's Figure 8 discussion).
    """
    out: List[Anomaly] = []
    for node in result.graph.nodes:
        if not (node.is_join or node.is_wait):
            continue
        for anomaly in _classify(result, node):
            if anomaly.kind is AnomalyKind.RACE or include_multiple:
                out.append(anomaly)
    out.extend(_pardo_races(result))
    return out


def _pardo_races(result: ReachingDefsResult) -> List[Anomaly]:
    """A variable written inside a ``Parallel Do`` body conflicts with the
    same write in other iterations: at the merge, any of the iterations'
    copies may win (unless only one iteration ran) — a potential race
    even with a single static definition."""
    out: List[Anomaly] = []
    for pardo in result.graph.pardos:
        reaching_merge = result.In(pardo.merge)
        by_var: Dict[str, List[Definition]] = {}
        for d in reaching_merge:
            node = result.info.def_node[d]
            if pardo.construct_id in node.pardo_ids:
                by_var.setdefault(d.var, []).append(d)
        for var, defs in sorted(by_var.items()):
            out.append(
                Anomaly(
                    kind=AnomalyKind.CROSS_ITERATION,
                    node=pardo.merge,
                    var=var,
                    defs=frozenset(defs),
                )
            )
    return out


def races(result: ReachingDefsResult) -> List[Anomaly]:
    """Only the race-severity reports (concurrent definitions meeting, or
    cross-iteration writes in a parallel do)."""
    return find_anomalies(result, include_multiple=False)


def explain_anomalies(
    result: ReachingDefsResult, include_multiple: bool = True
) -> str:
    """Anomaly reports with provenance chains for every colliding definition.

    Each report cites *why* each definition reaches the collision point —
    the full justification chain from its birth site (``repro races
    --explain``).  Builds the justification graph on demand if the solve
    did not run with ``record_provenance=True``.
    """
    from ..provenance.diagnose import diagnose_anomalies

    return diagnose_anomalies(
        result,
        anomalies=find_anomalies(result, include_multiple=include_multiple),
        include_multiple=include_multiple,
    )


def anomaly_summary(result: ReachingDefsResult) -> Tuple[int, int]:
    """(race count, multiple-values count) — the precision metric used by
    the Preserved-set ablation benchmark."""
    found = find_anomalies(result)
    n_race = sum(
        1 for a in found if a.kind in (AnomalyKind.RACE, AnomalyKind.CROSS_ITERATION)
    )
    return n_race, len(found) - n_race
