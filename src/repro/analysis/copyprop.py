"""Copy propagation over (parallel) ud-chains.

A use of ``v`` can be replaced by ``w`` when:

1. exactly one definition ``d: v = w`` reaches the use (ud-chain is the
   singleton ``{d}`` and ``d``'s right-hand side is the bare variable
   ``w``), and
2. the definitions of ``w`` visible at the use are exactly those visible
   where ``d`` was executed (so ``w`` still holds the same value), and
3. no definition of ``w`` may execute *concurrently* with either point —
   under the copy-in/copy-out model a concurrent write does not invalidate
   the local copy, but being conservative here keeps the transformation
   valid under every memory model the standard allows (paper §3).

All three checks read off the reaching-definitions result; this is one of
the scalar optimizations "across parallel constructs" the paper is built
to enable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..ir.defs import Definition, Use
from ..lang import ast
from ..pfg.concurrency import concurrent
from ..reachdefs.result import ReachingDefsResult


@dataclass(frozen=True)
class CopyPropagation:
    """One legal replacement: at ``use``, read ``source`` instead of
    ``use.var`` (justified by copy definition ``copy_def``)."""

    use: Use
    copy_def: Definition
    source: str

    def format(self) -> str:
        return f"at {self.use.name}: replace {self.use.var} by {self.source} (via {self.copy_def.name})"


def find_copy_propagations(result: ReachingDefsResult) -> List[CopyPropagation]:
    """All uses where copy propagation is provably safe."""
    graph = result.graph
    out: List[CopyPropagation] = []
    for node in graph.nodes:
        for use in node.uses():
            reaching = result.reaching_use(use)
            if len(reaching) != 1:
                continue
            d = next(iter(reaching))
            if d.stmt is None or not isinstance(d.stmt.expr, ast.Var):
                continue
            source = d.stmt.expr.name
            def_node = graph.node(d.site)
            def_ordinal = def_node.stmts.index(d.stmt)
            # w's visible definitions at the copy and at the use must agree.
            at_def = result.reaching_use(Use(var=source, site=d.site, ordinal=def_ordinal))
            at_use = result.reaching_use(Use(var=source, site=use.site, ordinal=use.ordinal))
            if at_def != at_use or not at_def:
                continue
            # No definition of w concurrent with either end point.
            use_node = graph.node(use.site)
            hazard = any(
                concurrent(result.info.def_node[w_def], def_node)
                or concurrent(result.info.def_node[w_def], use_node)
                for w_def in graph.defs.of_var(source)
            )
            if hazard:
                continue
            out.append(CopyPropagation(use=use, copy_def=d, source=source))
    return out
