"""Static synchronization diagnostics ("sync lint").

The §6 equations inherit PCF's correctness assumption: "it must be
possible to execute each post before its corresponding wait for a parallel
program to be deadlock free and correct" — and the paper's own Figure 3
violates it (the event is never cleared inside the loop, so iteration
``k+1``'s wait can be released by iteration ``k``'s stale posting).  This
module reports the violations statically:

``WAIT_WITHOUT_POST``
    a wait on an event that no block posts — every execution reaching it
    deadlocks;

``WAIT_ONLY_ORDERED_AFTER``
    every post of the event is *ordered after* the wait over forward
    control/sync paths (the wait can never be released in its construct
    instance) — deadlock by ordering;

``STALE_EVENT``
    a wait that executes repeatedly (it lies inside a loop) on an event
    that is posted somewhere but never cleared on any path around that
    loop — the Figure 3 bug: a posting can leak across iterations and
    release the wait early, invalidating the §6 Preserved reasoning;

``POST_WITHOUT_WAIT``
    informational: a posted event nobody waits on.

These are conservative *warnings* in the paper's spirit (its analysis
flags "potential anomalies"); programs flagged STALE_EVENT are exactly
those on which the dynamic oracle can exhibit executions outside the
static sets (see ``tests/regression/test_fig3_stale_event.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..lang import ast
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode


class SyncIssueKind(enum.Enum):
    WAIT_WITHOUT_POST = "wait-without-post"
    WAIT_ONLY_ORDERED_AFTER = "wait-only-ordered-after"
    STALE_EVENT = "stale-event"
    POST_WITHOUT_WAIT = "post-without-wait"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SyncIssue:
    kind: SyncIssueKind
    event: str
    node: Optional[PFGNode] = None

    def format(self) -> str:
        where = f" at block ({self.node.name})" if self.node is not None else ""
        detail = {
            SyncIssueKind.WAIT_WITHOUT_POST: "wait on event that is never posted (deadlock)",
            SyncIssueKind.WAIT_ONLY_ORDERED_AFTER: (
                "every post of the event is ordered after the wait (deadlock)"
            ),
            SyncIssueKind.STALE_EVENT: (
                "wait inside a loop on an event that is never cleared in the "
                "loop — a stale posting from a previous iteration can release "
                "the wait early (the paper's Figure 3 bug)"
            ),
            SyncIssueKind.POST_WITHOUT_WAIT: "event is posted but never waited on",
        }[self.kind]
        return f"{self.kind} '{self.event}'{where}: {detail}"


def _forward_reachable(graph: ParallelFlowGraph, sources) -> Set[PFGNode]:
    """Nodes reachable from ``sources`` over forward control + sync edges."""
    back = graph.back_edges()
    seen = set(sources)
    stack = list(sources)
    while stack:
        node = stack.pop()
        for succ, _kind in graph.out_edges(node):
            if (node, succ) in back or succ in seen:
                continue
            seen.add(succ)
            stack.append(succ)
    return seen


def _loops_containing(graph: ParallelFlowGraph, node: PFGNode) -> List[Tuple[PFGNode, PFGNode]]:
    """(header, latch) of every natural loop whose body contains ``node``."""
    from .mustexec import loop_body

    out = []
    for latch, header in graph.back_edges():
        if node in loop_body(graph, latch, header):
            out.append((header, latch))
    return out


def _clears_of_event(graph: ParallelFlowGraph, event: str) -> List[PFGNode]:
    out = []
    for node in graph.nodes:
        for stmt in node.stmts:
            if isinstance(stmt, ast.Clear) and stmt.event == event:
                out.append(node)
                break
    return out


def lint_synchronization(graph: ParallelFlowGraph) -> List[SyncIssue]:
    """Run all synchronization checks on ``graph``."""
    issues: List[SyncIssue] = []
    events = set(graph.posts_of_event) | set(graph.waits_of_event)

    for event in sorted(events):
        posts = graph.posts_of_event.get(event, [])
        waits = graph.waits_of_event.get(event, [])

        if posts and not waits:
            issues.append(SyncIssue(SyncIssueKind.POST_WITHOUT_WAIT, event))
        for wait in waits:
            if not posts:
                issues.append(SyncIssue(SyncIssueKind.WAIT_WITHOUT_POST, event, wait))
                continue
            # Deadlock by ordering: a post can release the wait only if it
            # is NOT strictly downstream of the wait (over forward
            # control+sync edges — sync edges only add orderings).  A post
            # at the end of the wait's own block is downstream of its wait
            # by extended-basic-block construction.
            downstream = _forward_reachable(graph, [wait])
            if wait.post_event != event:
                downstream = downstream - {wait}
            if all(p in downstream for p in posts):
                issues.append(
                    SyncIssue(SyncIssueKind.WAIT_ONLY_ORDERED_AFTER, event, wait)
                )
                continue
            # Stale event: the wait re-executes (some loop contains it) and
            # no clear of the event exists inside any such loop.
            clears = _clears_of_event(graph, event)
            for header, latch in _loops_containing(graph, wait):
                from .mustexec import loop_body

                body = loop_body(graph, latch, header)
                if not any(c in body for c in clears):
                    issues.append(SyncIssue(SyncIssueKind.STALE_EVENT, event, wait))
                    break
    return issues


def is_synchronization_correct(graph: ParallelFlowGraph) -> bool:
    """True iff no deadlock- or staleness-class issue is reported (the
    assumption under which the §6 results are dynamically exact)."""
    blocking = {
        SyncIssueKind.WAIT_WITHOUT_POST,
        SyncIssueKind.WAIT_ONLY_ORDERED_AFTER,
        SyncIssueKind.STALE_EVENT,
    }
    return not any(issue.kind in blocking for issue in lint_synchronization(graph))
