"""Optimization and diagnostic clients over reaching-definitions results —
the consumers the paper builds its equations for (§1)."""

from .anomalies import Anomaly, AnomalyKind, anomaly_summary, find_anomalies, races
from .constprop import (
    UNDEF,
    VARYING,
    ConstantPropagation,
    meet,
    propagate_constants,
)
from .copyprop import CopyPropagation, find_copy_propagations
from .cse import CommonSubexpression, find_common_subexpressions
from .deadcode import DeadCodeReport, find_dead_code
from .availexpr import (
    AvailableExpressions,
    find_redundant_computations,
    solve_available_expressions,
)
from .liveness import LivenessResult, LivenessSystem, solve_liveness
from .induction import (
    InductionVariable,
    LoopInfo,
    find_induction_variables,
    find_loops,
)
from .mustexec import always_executes_per_iteration, compute_must_done, loop_body
from .synclint import (
    SyncIssue,
    SyncIssueKind,
    is_synchronization_correct,
    lint_synchronization,
)
from .udchains import UDChains, compute_ud_chains

__all__ = [
    "Anomaly",
    "AnomalyKind",
    "anomaly_summary",
    "find_anomalies",
    "races",
    "UNDEF",
    "VARYING",
    "ConstantPropagation",
    "meet",
    "propagate_constants",
    "CopyPropagation",
    "find_copy_propagations",
    "CommonSubexpression",
    "find_common_subexpressions",
    "DeadCodeReport",
    "find_dead_code",
    "InductionVariable",
    "LoopInfo",
    "find_induction_variables",
    "find_loops",
    "AvailableExpressions",
    "find_redundant_computations",
    "solve_available_expressions",
    "LivenessResult",
    "LivenessSystem",
    "solve_liveness",
    "SyncIssue",
    "SyncIssueKind",
    "is_synchronization_correct",
    "lint_synchronization",
    "always_executes_per_iteration",
    "compute_must_done",
    "loop_body",
    "UDChains",
    "compute_ud_chains",
]
