"""Common-subexpression elimination via value-labelled expressions.

Two assignment sites compute the *same value* when their right-hand sides
are structurally equal **after** replacing every variable read by the set
of definitions reaching that read (its ud-chain): if the reaching-def sets
match, the operands provably hold the same values, whatever path executed.
The earlier computation can then serve the later one, provided the earlier
*target* still holds it — i.e. the earlier definition reaches the later
site.

This is the paper's "common subexpression elimination" client (§1); it
works across ``Parallel Sections`` boundaries precisely because the
parallel equations produce correct reaching-def sets there.  Only
non-trivial right-hand sides (at least one operator) are considered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..ir.defs import Definition, Use
from ..lang import ast
from ..pfg.concurrency import concurrent
from ..reachdefs.result import ReachingDefsResult

#: A structural expression key with ud-chains in place of variable names.
ValueKey = Tuple


@dataclass(frozen=True)
class CommonSubexpression:
    """``later`` recomputes the value already available in ``earlier``'s
    target; ``later``'s rhs can become a copy of ``earlier.var``."""

    earlier: Definition
    later: Definition
    expr: str

    def format(self) -> str:
        return (
            f"{self.later.name} recomputes {self.expr} — reuse {self.earlier.name} "
            f"({self.later.var} = {self.earlier.var})"
        )


def _value_key(result: ReachingDefsResult, expr: ast.Expr, site: str, ordinal: int) -> ValueKey:
    if isinstance(expr, ast.IntLit):
        return ("int", expr.value)
    if isinstance(expr, ast.BoolLit):
        return ("bool", expr.value)
    if isinstance(expr, ast.Var):
        reaching = result.reaching_use(Use(var=expr.name, site=site, ordinal=ordinal))
        if not reaching:
            # Free variables: value is an unknowable input; two reads of the
            # same free variable are assumed to agree (the interpreter
            # resolves each free variable once per run).
            return ("free", expr.name)
        return ("defs", frozenset(d.index for d in reaching))
    if isinstance(expr, ast.UnaryOp):
        return ("unary", expr.op, _value_key(result, expr.operand, site, ordinal))
    if isinstance(expr, ast.BinOp):
        return (
            "bin",
            expr.op,
            _value_key(result, expr.left, site, ordinal),
            _value_key(result, expr.right, site, ordinal),
        )
    raise TypeError(f"cannot key {type(expr).__name__}")  # pragma: no cover


def find_common_subexpressions(result: ReachingDefsResult) -> List[CommonSubexpression]:
    """All (earlier, later) pairs where the later definition provably
    recomputes the earlier one's value."""
    graph = result.graph
    by_key: Dict[ValueKey, List[Definition]] = {}
    for node in graph.document_order():
        for ordinal, stmt in node.assignments():
            if isinstance(stmt.expr, (ast.IntLit, ast.BoolLit, ast.Var)):
                continue  # trivial rhs — copy/constant propagation territory
            d = next(dd for dd in node.defs if dd.stmt is stmt)
            key = _value_key(result, stmt.expr, node.name, ordinal)
            by_key.setdefault(key, []).append(d)

    out: List[CommonSubexpression] = []
    for key, candidates in by_key.items():
        if len(candidates) < 2:
            continue
        for i, earlier in enumerate(candidates):
            for later in candidates[i + 1 :]:
                if earlier is later:
                    continue
                later_node = graph.node(later.site)
                later_ordinal = later_node.stmts.index(later.stmt)
                # The earlier target must still hold the value at the later
                # site, and the two computations must not race.
                holds = result.reaching_use(
                    Use(var=earlier.var, site=later.site, ordinal=later_ordinal)
                ) == frozenset((earlier,))
                if not holds:
                    continue
                if concurrent(graph.node(earlier.site), later_node):
                    continue
                assert later.stmt is not None
                out.append(
                    CommonSubexpression(earlier=earlier, later=later, expr=str(later.stmt.expr))
                )
    return out
