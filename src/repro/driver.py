"""One-call optimization driver: the whole pipeline behind one function.

``optimize(source_or_program)`` runs parse → PFG → reaching definitions →
every client analysis, and returns an :class:`OptimizationReport` holding
the individual results plus a human-readable rendering — the shape a
compiler integration or a CI check would consume.  Available on the
command line as ``python -m repro report FILE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .analysis import (
    Anomaly,
    CommonSubexpression,
    ConstantPropagation,
    CopyPropagation,
    DeadCodeReport,
    InductionVariable,
    SyncIssue,
    UDChains,
    compute_ud_chains,
    find_anomalies,
    find_common_subexpressions,
    find_copy_propagations,
    find_dead_code,
    find_induction_variables,
    lint_synchronization,
    propagate_constants,
)
from .dataflow.budget import ResourceBudget
from .lang import ast, parse_program
from .obs import get_tracer
from .reachdefs.result import ReachingDefsResult
from .robust.degrade import DegradationRecord, analyze_with_degradation


@dataclass
class OptimizationReport:
    """Everything the analyses concluded about one program."""

    program: ast.Program
    result: ReachingDefsResult
    chains: UDChains
    anomalies: List[Anomaly]
    sync_issues: List[SyncIssue]
    constants: ConstantPropagation
    induction_variables: List[InductionVariable]
    dead_code: DeadCodeReport
    copies: List[CopyPropagation]
    subexpressions: List[CommonSubexpression]
    notes: List[str] = field(default_factory=list)
    #: phase → wall seconds, filled only when an observability session is
    #: installed around :func:`optimize` (empty otherwise, so rendered
    #: output is unchanged for untraced runs).
    timings: Dict[str, float] = field(default_factory=dict)
    #: degradation provenance when the analysis fell down the
    #: :mod:`repro.robust.degrade` ladder (``None`` = full precision).
    degradation: Optional[DegradationRecord] = None

    # -- aggregate views ----------------------------------------------------

    @property
    def is_clean(self) -> bool:
        """No race-severity anomalies and no blocking synchronization
        issues — the program is safe to optimize aggressively."""
        from .analysis import AnomalyKind, SyncIssueKind

        racy = any(
            a.kind in (AnomalyKind.RACE, AnomalyKind.CROSS_ITERATION)
            for a in self.anomalies
        )
        blocking = any(
            i.kind is not SyncIssueKind.POST_WITHOUT_WAIT for i in self.sync_issues
        )
        return not racy and not blocking

    def opportunity_count(self) -> Dict[str, int]:
        return {
            "constant-definitions": len(self.constants.constant_defs()),
            "induction-variables": len(self.induction_variables),
            "dead-definitions": len(self.dead_code.dead),
            "copy-propagations": len(self.copies),
            "common-subexpressions": len(self.subexpressions),
        }

    def render(self) -> str:
        lines: List[str] = [
            f"optimization report for '{self.program.name}' "
            f"({self.result.system} equations, "
            f"{len(self.result.graph)} blocks, "
            f"{len(self.result.graph.defs)} definitions)",
            "",
        ]
        if self.degradation is not None:
            lines.append(f"degradation: {self.degradation.format()}")
            lines.append("")
        lines.append("safety:")
        if not self.anomalies and not self.sync_issues:
            lines.append("  clean — no anomalies, no synchronization issues")
        for a in self.anomalies:
            lines.append(f"  {a.format()}")
        for issue in self.sync_issues:
            lines.append(f"  {issue.format()}")

        lines.append("")
        lines.append("opportunities:")
        consts = self.constants.constant_defs()
        for d in sorted(consts, key=lambda d: d.index):
            lines.append(f"  constant      {d.name} = {consts[d]}")
        for iv in self.induction_variables:
            lines.append(f"  induction     {iv.format()}")
        for d in sorted(self.dead_code.dead, key=lambda d: d.index):
            lines.append(f"  dead          {d.name}")
        for c in self.copies:
            lines.append(f"  copy-prop     {c.format()}")
        for c in self.subexpressions:
            lines.append(f"  cse           {c.format()}")
        if not any(self.opportunity_count().values()):
            lines.append("  none found")
        if self.timings:
            lines.append("")
            lines.append("timings:")
            total = sum(self.timings.values())
            for phase, seconds in self.timings.items():
                lines.append(f"  {seconds * 1e3:8.3f} ms  {phase}")
            lines.append(f"  {total * 1e3:8.3f} ms  total")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"


def optimize(
    source: Union[str, ast.Program],
    backend: str = "bitset",
    preserved: str = "approx",
    observable_at_exit: bool = True,
    budget: Optional[ResourceBudget] = None,
    degrade: bool = True,
    solver: str = "stabilized",
    dense=None,
) -> OptimizationReport:
    """Run the full analysis pipeline on source text or a parsed program.

    Each phase runs under a tracer span (``parse``, ``analyze`` — which
    itself nests ``pfg-build`` and ``solve`` — and one ``client:<name>``
    span per client analysis), so with an observability session installed
    the report's ``timings`` maps every phase to wall seconds and a
    ``--profile`` export contains the whole pipeline tree.

    ``budget`` bounds the reaching-definitions solve.  With ``degrade=True``
    (default) an unaffordable or untrustworthy precise analysis falls down
    the :mod:`repro.robust.degrade` ladder and the report carries the
    :class:`~repro.robust.degrade.DegradationRecord`; with
    ``degrade=False`` exhaustion propagates as
    :class:`~repro.dataflow.budget.NonConvergenceError` for the caller to
    handle (the CLI maps it to exit code 2).

    ``solver`` selects the fixpoint engine as in :func:`repro.analyze`
    (``"stabilized"`` default; ``"scc"`` for the sparse SCC-scheduled
    engine, ``"scc-dense"`` for scc with the vectorized dense-region
    evaluator, ``"round-robin"``/``"worklist"`` for the paper's chaotic
    iteration); ``dense`` is the optional
    :class:`~repro.dataflow.dense.DenseConfig` forwarded to the scc
    engines.
    """
    from . import analyze  # deferred: repro/__init__ imports this module

    tracer = get_tracer()
    with tracer.span("optimize") as pipeline:
        program = parse_program(source) if isinstance(source, str) else source
        degradation: Optional[DegradationRecord] = None
        with tracer.span("analyze", backend=backend, preserved=preserved):
            if degrade:
                result, degradation = analyze_with_degradation(
                    program, backend=backend, solver=solver, preserved=preserved,
                    budget=budget, dense=dense,
                )
            else:
                result = analyze(
                    program, backend=backend, solver=solver, preserved=preserved,
                    budget=budget, dense=dense,
                )

        notes: List[str] = []
        if degradation is not None:
            notes.append(degradation.format())
        if not result.stats.converged:  # pragma: no cover - solvers raise instead
            notes.append("solver did not converge")
        if "+cycle" in result.stats.order:
            notes.append(
                "stabilized solver resolved an outer-round oscillation "
                "conservatively (see DESIGN.md §5)"
            )

        def client(name: str, fn, *args, **kwargs):
            with tracer.span(f"client:{name}"):
                return fn(*args, **kwargs)

        report = OptimizationReport(
            program=program,
            result=result,
            chains=client("ud-chains", compute_ud_chains, result),
            anomalies=client("anomalies", find_anomalies, result),
            sync_issues=client("sync-lint", lint_synchronization, result.graph),
            constants=client("constprop", propagate_constants, result),
            induction_variables=client("induction", find_induction_variables, result),
            dead_code=client(
                "deadcode", find_dead_code, result, observable_at_exit=observable_at_exit
            ),
            copies=client("copyprop", find_copy_propagations, result),
            subexpressions=client("cse", find_common_subexpressions, result),
            notes=notes,
            degradation=degradation,
        )
    if tracer.enabled:
        report.timings = {
            child.name: child.duration
            for child in pipeline.children
            if child.duration is not None
        }
    return report
