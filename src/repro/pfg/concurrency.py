"""May-happen-in-parallel (MHP) and mutual-exclusion queries.

Two nodes *may execute concurrently* iff some parallel construct contains
them in **different sections** — read off the ``section_path`` tags the
builder attached (sound for arbitrary nesting, since a nested construct's
sections share the enclosing section's path prefix).

This drives:

* ``ParallelKill(n)`` — the paper's set of definitions from nodes that can
  execute at the same time as ``n`` (§5);
* the mutual-exclusion side condition in the Preserved-set approximation
  (two ``post`` blocks of one event that sit on opposite branches of the
  same sequential conditional can never both execute in one construct
  instance, so each — when executed — is the unique releaser of a wait).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from .graph import ParallelFlowGraph
from .node import PFGNode


def concurrent(a: PFGNode, b: PFGNode) -> bool:
    """True iff ``a`` and ``b`` may execute at the same time.

    Two sources of concurrency:

    * some ``Parallel Sections`` construct contains them in *different*
      sections;
    * some ``Parallel Do`` body contains both (distinct iterations run
      the same blocks in parallel) — in that case a block is concurrent
      **with itself**.

    Outside parallel-do bodies a node is never concurrent with itself (a
    single thread executes its own block sequentially).
    """
    if set(a.pardo_ids) & set(b.pardo_ids):
        return True
    if a is b:
        return False
    sections_a = dict(a.section_path)
    for cid, section in b.section_path:
        if cid in sections_a and sections_a[cid] != section:
            return True
    return False


def concurrent_nodes(graph: ParallelFlowGraph, n: PFGNode) -> List[PFGNode]:
    """All nodes that may execute concurrently with ``n``, document order."""
    return [m for m in graph.nodes if concurrent(n, m)]


def mhp_matrix(graph: ParallelFlowGraph) -> Dict[PFGNode, FrozenSet[PFGNode]]:
    """The full MHP relation, node -> frozenset of concurrent nodes."""
    return {n: frozenset(concurrent_nodes(graph, n)) for n in graph.nodes}


def same_thread(a: PFGNode, b: PFGNode) -> bool:
    """True iff ``a`` and ``b`` always run on the same logical thread —
    identical section paths and no parallel-do iteration ambiguity."""
    return a.section_path == b.section_path and not (set(a.pardo_ids) | set(b.pardo_ids))


def mutually_exclusive(graph: ParallelFlowGraph, a: PFGNode, b: PFGNode) -> bool:
    """Conservative: True only when at most one of ``a``, ``b`` can execute
    in a single construct instance.

    Criterion: the two nodes are *not* concurrent (so they are ordered or
    exclusive), and neither reaches the other over forward control edges —
    within sequential code that means they sit on disjoint branches of some
    conditional.  Returns False for ``a is b``.
    """
    if a is b or concurrent(a, b):
        return False
    return not _forward_reaches(graph, a, b) and not _forward_reaches(graph, b, a)


def _forward_reaches(graph: ParallelFlowGraph, src: PFGNode, dst: PFGNode) -> bool:
    """Reachability over forward (non-back) control edges."""
    back = graph.back_edges()
    seen = {src}
    stack = [src]
    while stack:
        node = stack.pop()
        if node is dst:
            return True
        for succ in graph.control_succs(node):
            if (node, succ) in back or succ in seen:
                continue
            seen.add(succ)
            stack.append(succ)
    return False
