"""The Parallel Flow Graph (paper §4) and its supporting analyses."""

from .builder import PFGBuilder, build_pfg
from .concurrency import (
    concurrent,
    concurrent_nodes,
    mhp_matrix,
    mutually_exclusive,
    same_thread,
)
from .dot import to_dot
from .edges import CONTROL_KINDS, EdgeKind
from .graph import ParallelFlowGraph
from .node import NodeKind, PFGNode
from .regions import ParallelConstruct, RegionInfo, compute_regions
from .validate import PFGInvariantError, validate_pfg

__all__ = [
    "PFGBuilder",
    "build_pfg",
    "concurrent",
    "concurrent_nodes",
    "mhp_matrix",
    "mutually_exclusive",
    "same_thread",
    "to_dot",
    "CONTROL_KINDS",
    "EdgeKind",
    "ParallelFlowGraph",
    "NodeKind",
    "PFGNode",
    "ParallelConstruct",
    "RegionInfo",
    "compute_regions",
    "PFGInvariantError",
    "validate_pfg",
]
