"""Structural validation of a Parallel Flow Graph.

``validate_pfg`` checks the invariants every analysis in this package
relies on; it raises :class:`PFGInvariantError` with all violations listed.
Run it in tests and after hand-built graphs (``repro.paper.programs``
builds figure-exact graphs through the normal builder, but users may
construct graphs directly).
"""

from __future__ import annotations

from typing import List

from .edges import EdgeKind
from .graph import ParallelFlowGraph
from .node import NodeKind


class PFGInvariantError(AssertionError):
    """One or more PFG structural invariants are violated."""

    def __init__(self, violations: List[str]):
        self.violations = violations
        super().__init__("PFG invariants violated:\n  " + "\n  ".join(violations))


def validate_pfg(graph: ParallelFlowGraph) -> None:
    """Check all structural invariants; raise :class:`PFGInvariantError`
    listing every violation found."""
    bad: List[str] = []

    if graph.entry is None:
        bad.append("graph has no entry node")
    elif graph.entry.kind is not NodeKind.ENTRY:
        bad.append("entry node is not of kind ENTRY")
    if graph.exit is None:
        bad.append("graph has no exit node")

    names = [n.name for n in graph.nodes]
    if len(set(names)) != len(names):
        dupes = sorted({x for x in names if names.count(x) > 1})
        bad.append(f"duplicate node names: {dupes}")

    for node in graph.nodes:
        # Extended-basic-block shape.
        if node.post_event is not None and node.cond is not None:
            bad.append(f"{node.name}: has both a post and a branch at block end")
        if node.kind is NodeKind.FORK:
            if node.stmts or node.post_event or node.cond or node.wait_event:
                bad.append(f"{node.name}: fork node carries statements")
            if node.join is None:
                bad.append(f"{node.name}: fork without matching join")
            elif node.join.fork is not node:
                bad.append(f"{node.name}: fork/join links inconsistent")
            if node.construct_id is None:
                bad.append(f"{node.name}: fork without construct id")
        if node.kind is NodeKind.JOIN:
            if node.fork is None:
                bad.append(f"{node.name}: join without matching fork")
            par_in = graph.par_preds(node)
            if not par_in:
                bad.append(f"{node.name}: join with no parallel predecessors")
        # Edge-kind placement.
        for dst, kind in graph.out_edges(node):
            if kind is EdgeKind.PAR and not (node.kind is NodeKind.FORK or dst.kind is NodeKind.JOIN):
                bad.append(f"{node.name} -> {dst.name}: PAR edge not at a fork or into a join")
            if kind is EdgeKind.SYNC:
                if node.post_event is None:
                    bad.append(f"{node.name} -> {dst.name}: SYNC edge from a non-post block")
                if dst.wait_event is None:
                    bad.append(f"{node.name} -> {dst.name}: SYNC edge into a non-wait block")
                elif node.post_event is not None and node.post_event != dst.wait_event:
                    bad.append(f"{node.name} -> {dst.name}: SYNC edge across different events")
        if node.kind is NodeKind.FORK:
            par_out = graph.succs(node, (EdgeKind.PAR,))
            if not par_out:
                bad.append(f"{node.name}: fork with no parallel successors")
        if node.kind is NodeKind.EXIT and graph.control_succs(node):
            bad.append(f"{node.name}: exit node has successors")

    # Every node (except entry) is reachable over control edges.
    if graph.entry is not None:
        reachable = set()
        stack = [graph.entry]
        while stack:
            cur = stack.pop()
            if cur in reachable:
                continue
            reachable.add(cur)
            stack.extend(graph.control_succs(cur))
        for node in graph.nodes:
            if node not in reachable:
                bad.append(f"{node.name}: unreachable from entry over control edges")

    # Definition table is consistent with node contents.
    for node in graph.nodes:
        for d in node.defs:
            if d.site != node.name:
                bad.append(f"definition {d} recorded in block {node.name}")
    if sum(len(n.defs) for n in graph.nodes) != len(graph.defs):
        bad.append("definition table size disagrees with per-node definitions")

    if bad:
        raise PFGInvariantError(bad)
