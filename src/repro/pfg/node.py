"""Parallel Flow Graph nodes: extended basic blocks.

An *extended basic block* (paper §4) is a basic block that may additionally
have **at most one ``wait`` at its start** and **at most one ``post`` or
branch at its end**.  A node therefore consists of:

``wait_event``  — optional event waited on before the block body runs;
``stmts``       — straight-line body (assignments, skips, clears);
``post_event``  — optional event posted at the end, *or*
``cond``        — optional branch condition at the end (mutually exclusive
with ``post_event``; loop headers for ``loop`` have an implicit
nondeterministic branch and leave ``cond = None``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..ir.defs import Definition, Use
from ..lang import ast


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    BASIC = "basic"
    FORK = "fork"  # a `Parallel Sections` statement
    JOIN = "join"  # an `End Parallel Sections` statement

    def __str__(self) -> str:
        return self.value


@dataclass(eq=False)
class PFGNode:
    """One extended basic block of a :class:`~repro.pfg.graph.ParallelFlowGraph`.

    Nodes compare and hash by identity; ``id`` is the dense index within
    the owning graph and ``name`` the human-facing label (the paper's block
    number where the source was labelled).
    """

    id: int
    kind: NodeKind
    name: str = ""
    note: str = ""
    """Free-form role hint for rendering ("loop-header", "endloop", "merge")."""

    wait_event: Optional[str] = None
    stmts: List[ast.Stmt] = field(default_factory=list)
    post_event: Optional[str] = None
    cond: Optional[ast.Expr] = None
    is_loop_header: bool = False

    #: Filled by the builder's finalization pass.
    defs: List[Definition] = field(default_factory=list)

    #: Section-membership path for may-happen-in-parallel queries: a tuple
    #: of ``(construct_id, section_index)`` pairs, outermost first.
    section_path: Tuple[Tuple[int, int], ...] = ()

    #: ids of enclosing ``Parallel Do`` constructs.  A block inside a
    #: parallel do may execute concurrently with *itself* and with every
    #: other block of the same body (distinct iterations).
    pardo_ids: Tuple[int, ...] = ()

    #: For JOIN nodes: the matching fork (the paper's "technical edge").
    fork: Optional["PFGNode"] = None
    #: For FORK nodes: the matching join.
    join: Optional["PFGNode"] = None
    #: For FORK/JOIN nodes: id of the parallel construct they delimit.
    construct_id: Optional[int] = None

    # -- classification ----------------------------------------------------

    @property
    def is_fork(self) -> bool:
        return self.kind is NodeKind.FORK

    @property
    def is_join(self) -> bool:
        return self.kind is NodeKind.JOIN

    @property
    def is_wait(self) -> bool:
        return self.wait_event is not None

    @property
    def is_post(self) -> bool:
        return self.post_event is not None

    @property
    def is_branch(self) -> bool:
        return self.cond is not None or self.is_loop_header

    # -- statement-level queries --------------------------------------------

    def assignments(self) -> Iterator[Tuple[int, ast.Assign]]:
        """``(ordinal, stmt)`` for each assignment in the body, in order."""
        for ordinal, stmt in enumerate(self.stmts):
            if isinstance(stmt, ast.Assign):
                yield ordinal, stmt

    def uses(self) -> List[Use]:
        """All variable reads in this node, in execution order.

        Reads come from assignment right-hand sides and from the trailing
        branch condition (given ordinal ``len(stmts)``, i.e. after every
        body statement).
        """
        out: List[Use] = []
        for ordinal, stmt in enumerate(self.stmts):
            if isinstance(stmt, ast.Assign):
                for var in stmt.expr.variables():
                    out.append(Use(var=var, site=self.name, ordinal=ordinal))
        if self.cond is not None:
            for var in self.cond.variables():
                out.append(Use(var=var, site=self.name, ordinal=len(self.stmts)))
        return out

    def defs_of(self, var: str) -> List[Definition]:
        """This node's definitions of ``var``, in order."""
        return [d for d in self.defs if d.var == var]

    def gen_defs(self) -> List[Definition]:
        """Downward-exposed definitions: the last definition of each
        variable assigned in this node (paper's ``Gen`` set)."""
        last: dict = {}
        for d in self.defs:
            last[d.var] = d
        return list(last.values())

    def local_def_before(self, var: str, ordinal: int) -> Optional[Definition]:
        """The nearest definition of ``var`` in this node strictly before
        statement ``ordinal``, if any (for intra-block ud-chains)."""
        best: Optional[Definition] = None
        for def_ordinal, stmt in self.assignments():
            if def_ordinal < ordinal and stmt.target == var:
                for d in self.defs:
                    if d.stmt is stmt:
                        best = d
        return best

    # -- rendering -----------------------------------------------------------

    def describe(self) -> str:
        """One-line summary used by DOT export and debugging."""
        parts: List[str] = []
        if self.wait_event:
            parts.append(f"wait({self.wait_event})")
        parts.extend(str(s) for s in self.stmts)
        if self.post_event:
            parts.append(f"post({self.post_event})")
        if self.cond is not None:
            parts.append(f"branch {self.cond}")
        elif self.is_loop_header:
            parts.append("loop?")
        body = "; ".join(parts) if parts else "(empty)"
        return f"[{self.name}:{self.kind}] {body}"

    # Identity hash, same as the default — spelled out because nodes key
    # the hot dataflow dicts and the C-level slot beats a Python method.
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"PFGNode({self.id}, {self.name!r}, {self.kind})"
