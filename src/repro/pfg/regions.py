"""Parallel-construct regions: fork/join pairs and section membership.

Every ``Parallel Sections`` construct gets a dense ``construct_id``; every
node records the path of ``(construct_id, section_index)`` pairs it sits
inside (outermost first).  This module derives the region view used by
may-happen-in-parallel queries, ``ParallelKill`` computation, and
validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .graph import ParallelFlowGraph
from .node import PFGNode


@dataclass
class ParallelConstruct:
    """One fork/join pair and the nodes of each of its sections."""

    construct_id: int
    fork: PFGNode
    join: PFGNode
    section_names: Tuple[str, ...]
    #: section index -> nodes belonging to that section (directly or in
    #: nested constructs), in document order.
    section_nodes: Dict[int, List[PFGNode]] = field(default_factory=dict)

    @property
    def n_sections(self) -> int:
        return len(self.section_names)

    def section_of(self, node: PFGNode) -> Optional[int]:
        """Which of this construct's sections contains ``node`` (None if
        the node is outside the construct, including the fork/join)."""
        for cid, section in node.section_path:
            if cid == self.construct_id:
                return section
        return None


@dataclass
class RegionInfo:
    """All parallel constructs of a graph, indexed by id."""

    constructs: Dict[int, ParallelConstruct]

    def __iter__(self):
        return iter(self.constructs.values())

    def __len__(self) -> int:
        return len(self.constructs)

    def __getitem__(self, construct_id: int) -> ParallelConstruct:
        return self.constructs[construct_id]

    def enclosing(self, node: PFGNode) -> Tuple[ParallelConstruct, ...]:
        """Constructs containing ``node``, outermost first."""
        return tuple(self.constructs[cid] for cid, _section in node.section_path)

    def innermost(self, node: PFGNode) -> Optional[ParallelConstruct]:
        if not node.section_path:
            return None
        return self.constructs[node.section_path[-1][0]]


def compute_regions(graph: ParallelFlowGraph, section_names: Optional[Dict[int, Tuple[str, ...]]] = None) -> RegionInfo:
    """Build :class:`RegionInfo` from fork/join links and section paths.

    ``section_names`` optionally maps construct id to section names; when
    absent, sections are named ``"S0"``, ``"S1"``, ...
    """
    if section_names is None and graph.section_names:
        section_names = graph.section_names
    constructs: Dict[int, ParallelConstruct] = {}
    for fork in graph.forks:
        assert fork.join is not None, f"fork {fork.name} has no matching join"
        assert fork.construct_id is not None
        cid = fork.construct_id
        n_sections = (
            len(section_names[cid])
            if section_names and cid in section_names
            else _count_sections(graph, cid)
        )
        names = (
            section_names[cid]
            if section_names and cid in section_names
            else tuple(f"S{i}" for i in range(n_sections))
        )
        constructs[cid] = ParallelConstruct(
            construct_id=cid, fork=fork, join=fork.join, section_names=names
        )
    for node in graph.nodes:
        for cid, section in node.section_path:
            if cid in constructs:
                constructs[cid].section_nodes.setdefault(section, []).append(node)
    # Ensure empty sections still appear in the mapping.
    for construct in constructs.values():
        for i in range(construct.n_sections):
            construct.section_nodes.setdefault(i, [])
    return RegionInfo(constructs=constructs)


def _count_sections(graph: ParallelFlowGraph, construct_id: int) -> int:
    best = -1
    for node in graph.nodes:
        for cid, section in node.section_path:
            if cid == construct_id:
                best = max(best, section)
    return best + 1
