"""The Parallel Flow Graph container (paper §4).

A directed graph over :class:`~repro.pfg.node.PFGNode` with
:class:`~repro.pfg.edges.EdgeKind`-tagged edges, plus the bookkeeping the
data-flow equations need: predecessor families split by edge kind
(``seq_preds`` / ``par_preds`` / ``sync_preds``), fork↔join matching, event
post/wait indexes, the definition table, and control-flow traversal orders
(reverse postorder, back-edge detection).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.defs import DefTable
from ..lang import ast
from .edges import CONTROL_KINDS, EdgeKind
from .node import NodeKind, PFGNode


from dataclasses import dataclass


@dataclass
class ParDoInfo:
    """One ``Parallel Do`` construct: its header/merge blocks and index.

    The body is modelled as a conditionally-executed (the trip count may
    be zero), *self-concurrent* region between ``header`` and ``merge``:
    body blocks carry the construct id in ``PFGNode.pardo_ids``, which is
    what makes :func:`repro.pfg.concurrency.concurrent` treat distinct
    iterations as parallel.  Copy-in/copy-out means iterations read the
    header-time copies, so no extra flow edges are needed.
    """

    construct_id: int
    index: str
    header: "PFGNode"
    merge: "PFGNode"


class ParallelFlowGraph:
    """Mutable PFG; built by :mod:`repro.pfg.builder`, then treated as
    immutable by the analyses."""

    def __init__(self, program_name: str = "program"):
        self.program_name = program_name
        self.nodes: List[PFGNode] = []
        self.entry: Optional[PFGNode] = None
        self.exit: Optional[PFGNode] = None
        self.defs = DefTable()
        self._succs: Dict[PFGNode, List[Tuple[PFGNode, EdgeKind]]] = {}
        self._preds: Dict[PFGNode, List[Tuple[PFGNode, EdgeKind]]] = {}
        self._by_name: Dict[str, PFGNode] = {}
        #: event name -> nodes that post / wait on it
        self.posts_of_event: Dict[str, List[PFGNode]] = {}
        self.waits_of_event: Dict[str, List[PFGNode]] = {}
        #: construct id -> section names (filled by the builder)
        self.section_names: Dict[int, Tuple[str, ...]] = {}
        #: Parallel Do constructs, in document order (filled by the builder)
        self.pardos: List["ParDoInfo"] = []
        self._rpo_cache: Optional[List[PFGNode]] = None
        self._back_edge_cache: Optional[Set[Tuple[PFGNode, PFGNode]]] = None

    # -- construction -------------------------------------------------------

    def new_node(self, kind: NodeKind = NodeKind.BASIC, name: str = "", note: str = "") -> PFGNode:
        node = PFGNode(id=len(self.nodes), kind=kind, name=name, note=note)
        self.nodes.append(node)
        self._succs[node] = []
        self._preds[node] = []
        self._invalidate()
        return node

    def add_edge(self, src: PFGNode, dst: PFGNode, kind: EdgeKind) -> None:
        """Add an edge, ignoring exact duplicates (same endpoints + kind)."""
        if (dst, kind) in self._succs[src]:
            return
        self._succs[src].append((dst, kind))
        self._preds[dst].append((src, kind))
        self._invalidate()

    def register_name(self, node: PFGNode) -> None:
        """Record ``node.name`` in the name index (builder calls this after
        names are final); collisions get a ``_2``, ``_3``... suffix."""
        base = node.name or f"n{node.id}"
        name = base
        bump = 1
        while name in self._by_name:
            bump += 1
            name = f"{base}_{bump}"
        node.name = name
        self._by_name[name] = node

    def _invalidate(self) -> None:
        self._rpo_cache = None
        self._back_edge_cache = None
        # Gen/kill local sets are a pure function of graph structure and
        # are memoized on the graph (see repro.reachdefs.genkill); any
        # structural change voids them.
        self._genkill_memo = None

    # -- lookup ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, name: str) -> PFGNode:
        """Look up a node by its (unique) name; raises ``KeyError``."""
        return self._by_name[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.nodes)

    # -- adjacency --------------------------------------------------------------

    def succs(self, n: PFGNode, kinds: Sequence[EdgeKind] = tuple(EdgeKind)) -> List[PFGNode]:
        return [m for (m, k) in self._succs[n] if k in kinds]

    def preds(self, n: PFGNode, kinds: Sequence[EdgeKind] = tuple(EdgeKind)) -> List[PFGNode]:
        return [m for (m, k) in self._preds[n] if k in kinds]

    def out_edges(self, n: PFGNode) -> List[Tuple[PFGNode, EdgeKind]]:
        return list(self._succs[n])

    def in_edges(self, n: PFGNode) -> List[Tuple[PFGNode, EdgeKind]]:
        return list(self._preds[n])

    def seq_preds(self, n: PFGNode) -> List[PFGNode]:
        return self.preds(n, (EdgeKind.SEQ,))

    def par_preds(self, n: PFGNode) -> List[PFGNode]:
        return self.preds(n, (EdgeKind.PAR,))

    def sync_preds(self, n: PFGNode) -> List[PFGNode]:
        return self.preds(n, (EdgeKind.SYNC,))

    def control_preds(self, n: PFGNode) -> List[PFGNode]:
        return self.preds(n, CONTROL_KINDS)

    def control_succs(self, n: PFGNode) -> List[PFGNode]:
        return self.succs(n, CONTROL_KINDS)

    def all_preds(self, n: PFGNode) -> List[PFGNode]:
        """All predecessors: sequential, parallel, and synchronization
        (the paper's ``pred(n)`` in the synchronized equations)."""
        return self.preds(n)

    def edges(self) -> Iterable[Tuple[PFGNode, PFGNode, EdgeKind]]:
        for src in self.nodes:
            for dst, kind in self._succs[src]:
                yield src, dst, kind

    def edge_count(self, kinds: Sequence[EdgeKind] = tuple(EdgeKind)) -> int:
        return sum(1 for *_ignored, k in self.edges() if k in kinds)

    # -- node families ------------------------------------------------------------

    @property
    def forks(self) -> List[PFGNode]:
        return [n for n in self.nodes if n.kind is NodeKind.FORK]

    @property
    def joins(self) -> List[PFGNode]:
        return [n for n in self.nodes if n.kind is NodeKind.JOIN]

    @property
    def waits(self) -> List[PFGNode]:
        return [n for n in self.nodes if n.is_wait]

    @property
    def posts(self) -> List[PFGNode]:
        return [n for n in self.nodes if n.is_post]

    # -- traversal ----------------------------------------------------------------

    def _dfs(self) -> Tuple[List[PFGNode], Set[Tuple[PFGNode, PFGNode]]]:
        """Iterative DFS over control edges from entry.

        Returns (postorder, back_edges).  An edge ``u -> v`` is a back edge
        iff ``v`` is on the current DFS stack when the edge is examined —
        for the reducible graphs the builder produces these are exactly the
        loop-latch edges.
        """
        assert self.entry is not None, "graph has no entry node"
        postorder: List[PFGNode] = []
        back: Set[Tuple[PFGNode, PFGNode]] = set()
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[PFGNode, int] = {n: 0 for n in self.nodes}
        stack: List[Tuple[PFGNode, int]] = [(self.entry, 0)]
        color[self.entry] = GREY
        while stack:
            node, i = stack.pop()
            succs = self.control_succs(node)
            if i < len(succs):
                stack.append((node, i + 1))
                nxt = succs[i]
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, 0))
                elif color[nxt] == GREY:
                    back.add((node, nxt))
            else:
                color[node] = BLACK
                postorder.append(node)
        return postorder, back

    def reverse_postorder(self) -> List[PFGNode]:
        """Control-flow reverse postorder from the entry (unreachable nodes
        appended last, in id order)."""
        if self._rpo_cache is None:
            postorder, back = self._dfs()
            rpo = list(reversed(postorder))
            seen = set(rpo)
            rpo.extend(n for n in self.nodes if n not in seen)
            self._rpo_cache = rpo
            self._back_edge_cache = back
        return list(self._rpo_cache)

    def back_edges(self) -> Set[Tuple[PFGNode, PFGNode]]:
        """Control back edges (loop latches) found by DFS from entry."""
        if self._back_edge_cache is None:
            self.reverse_postorder()
        assert self._back_edge_cache is not None
        return set(self._back_edge_cache)

    def forward_control_preds(self, n: PFGNode) -> List[PFGNode]:
        """Control predecessors of ``n`` excluding back edges — the edge
        relation over which Preserved sets are computed (single
        construct-instance semantics, DESIGN.md §2)."""
        back = self.back_edges()
        return [p for p in self.control_preds(n) if (p, n) not in back]

    def document_order(self) -> List[PFGNode]:
        """Nodes in creation (program) order — the order the paper's tables
        list, and the default solver sweep order."""
        return list(self.nodes)

    # -- misc -----------------------------------------------------------------------

    def finalize_defs(self) -> None:
        """(Re)build the definition table from node statements.  Called by
        the builder once node names are final."""
        self.defs = DefTable()
        for node in self.nodes:
            node.defs = []
            for stmt in node.stmts:
                if isinstance(stmt, ast.Assign):
                    node.defs.append(self.defs.add(stmt.target, node.name, stmt))

    def describe(self) -> str:
        """Multi-line structural dump (tests and debugging)."""
        lines = [f"PFG {self.program_name}: {len(self.nodes)} nodes"]
        for n in self.nodes:
            lines.append("  " + n.describe())
            for dst, kind in self._succs[n]:
                lines.append(f"    -[{kind}]-> {dst.name}")
        return "\n".join(lines)
