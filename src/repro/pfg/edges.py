"""Edge kinds of the Parallel Flow Graph (paper §4).

The PFG has three first-class edge kinds:

* ``SEQ`` — sequential control flow within a thread;
* ``PAR`` — parallel control flow at fork and join points (fork → first
  block of each section, last block of each section → join);
* ``SYNC`` — a synchronization edge from each ``post`` block to every
  ``wait`` block on the same event.

The paper's *technical edge* between a fork and its matching join (used to
carry ``ForkKill`` to the join) is not represented as a graph edge — each
join node stores a direct reference to its fork — so graph traversals see
only real control/synchronization structure.
"""

from __future__ import annotations

import enum


class EdgeKind(enum.Enum):
    SEQ = "seq"
    PAR = "par"
    SYNC = "sync"

    def __str__(self) -> str:
        return self.value


#: Edge kinds that represent control flow (everything except SYNC).
CONTROL_KINDS = (EdgeKind.SEQ, EdgeKind.PAR)
