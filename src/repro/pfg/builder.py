"""AST → Parallel Flow Graph construction.

The builder forms *extended basic blocks* (at most one ``wait`` at block
start, at most one ``post``/branch at block end — paper §4) and tags edges
``SEQ``/``PAR``/``SYNC``:

* a fork node is created for each ``Parallel Sections`` statement; ``PAR``
  edges run from it to the first block of every section and from the last
  block of every section to the matching join node;
* a ``SYNC`` edge runs from every ``post(e)`` block to every ``wait(e)``
  block of the same event;
* joins hold a direct reference to their fork (the paper's *technical
  edge*) so ``ForkKill`` information is available at the join.

Statement *labels* control block naming so that programs typed from the
paper's numbered listings produce the paper's exact node names: a labelled
statement opens (or continues) the block of that name; ``end_label`` on
``endif`` / ``endloop`` / ``end parallel sections`` names the merge, latch
and join blocks.  Statements following ``end parallel sections`` are
appended to the join block, matching the paper's Figure 4 (block 11 is both
the join and ``y = x*z``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir.symbols import check_events
from ..lang import ast
from ..lang.errors import SemanticError
from .edges import EdgeKind
from .graph import ParallelFlowGraph
from .node import NodeKind, PFGNode


@dataclass
class _Cursor:
    """Where the next statement goes: either an *open* block accepting
    appends, or a set of dangling edges awaiting a fresh block."""

    open: Optional[PFGNode] = None
    dangling: List[Tuple[PFGNode, EdgeKind]] = field(default_factory=list)

    def closed(self) -> "_Cursor":
        if self.open is not None:
            return _Cursor(open=None, dangling=[(self.open, EdgeKind.SEQ)])
        return _Cursor(open=None, dangling=list(self.dangling))


def _block_is_sealed(node: PFGNode) -> bool:
    """No statement may be appended after a post, a branch, or a fork."""
    return (
        node.post_event is not None
        or node.cond is not None
        or node.is_loop_header
        or node.kind is NodeKind.FORK
        or node.kind is NodeKind.EXIT
    )


class PFGBuilder:
    def __init__(self, program: ast.Program):
        self.program = program
        self.graph = ParallelFlowGraph(program.name)
        self._next_construct_id = 0
        self._section_stack: List[Tuple[int, int]] = []
        self._pardo_stack: List[int] = []
        self._section_names: dict = {}

    # -- node helpers ---------------------------------------------------------

    def _new_node(self, kind: NodeKind, name: Optional[str], note: str = "") -> PFGNode:
        node = self.graph.new_node(kind=kind, name=name or "", note=note)
        node.section_path = tuple(self._section_stack)
        node.pardo_ids = tuple(self._pardo_stack)
        return node

    def _fresh(self, cursor: _Cursor, kind: NodeKind = NodeKind.BASIC, name: Optional[str] = None, note: str = "") -> Tuple[PFGNode, _Cursor]:
        """Create a node fed by the cursor's dangling edges; the node
        becomes the open block."""
        cursor = cursor.closed() if cursor.open is not None else cursor
        node = self._new_node(kind, name, note)
        for src, edge_kind in cursor.dangling:
            self.graph.add_edge(src, node, edge_kind)
        return node, _Cursor(open=node)

    def _open_for_append(self, cursor: _Cursor, label: Optional[str]) -> Tuple[PFGNode, _Cursor]:
        """An open block that can absorb a statement labelled ``label``.

        Reuses the current open block when it is not sealed and the label
        is compatible (no label, block unnamed, or same name); otherwise
        starts a new block named after the label.
        """
        node = cursor.open
        if node is not None and not _block_is_sealed(node):
            if label is None or node.name == "" or node.name == label:
                if label is not None and node.name == "":
                    node.name = label
                return node, cursor
        return self._fresh(cursor, NodeKind.BASIC, label)

    # -- build ------------------------------------------------------------------

    def build(self) -> ParallelFlowGraph:
        check_events(self.program)
        g = self.graph
        entry = self._new_node(NodeKind.ENTRY, "Entry")
        g.entry = entry
        cursor = _Cursor(open=entry)
        cursor = self._build_block(self.program.body, cursor)
        exit_node, _ = self._fresh(cursor, NodeKind.EXIT, "Exit")
        g.exit = exit_node
        self._add_sync_edges()
        for node in g.nodes:
            g.register_name(node)
        g.finalize_defs()
        g.section_names = dict(self._section_names)
        return g

    def _build_block(self, stmts: List[ast.Stmt], cursor: _Cursor) -> _Cursor:
        for stmt in stmts:
            cursor = self._build_stmt(stmt, cursor)
        return cursor

    def _build_stmt(self, stmt: ast.Stmt, cursor: _Cursor) -> _Cursor:
        if isinstance(stmt, (ast.Assign, ast.Skip, ast.Clear)):
            node, cursor = self._open_for_append(cursor, stmt.label)
            if not isinstance(stmt, ast.Skip):
                node.stmts.append(stmt)
            return cursor
        if isinstance(stmt, ast.Post):
            return self._build_post(stmt, cursor)
        if isinstance(stmt, ast.Wait):
            return self._build_wait(stmt, cursor)
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, cursor)
        if isinstance(stmt, ast.Loop):
            return self._build_loop(stmt, cursor)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, cursor)
        if isinstance(stmt, ast.ParallelSections):
            return self._build_parallel(stmt, cursor)
        if isinstance(stmt, ast.ParallelDo):
            return self._build_parallel_do(stmt, cursor)
        raise SemanticError(f"cannot lower statement {type(stmt).__name__}", stmt.span)

    def _build_post(self, stmt: ast.Post, cursor: _Cursor) -> _Cursor:
        node, cursor = self._open_for_append(cursor, stmt.label)
        node.post_event = stmt.event
        self.graph.posts_of_event.setdefault(stmt.event, []).append(node)
        return cursor.closed()

    def _build_wait(self, stmt: ast.Wait, cursor: _Cursor) -> _Cursor:
        node = cursor.open
        reusable = (
            node is not None
            and node.kind is NodeKind.BASIC
            and not node.stmts
            and node.wait_event is None
            and not _block_is_sealed(node)
            and (stmt.label is None or node.name in ("", stmt.label))
        )
        if reusable:
            assert node is not None
            if stmt.label is not None and node.name == "":
                node.name = stmt.label
        else:
            node, cursor = self._fresh(cursor, NodeKind.BASIC, stmt.label)
        node.wait_event = stmt.event
        self.graph.waits_of_event.setdefault(stmt.event, []).append(node)
        return cursor

    def _build_if(self, stmt: ast.If, cursor: _Cursor) -> _Cursor:
        branch, cursor = self._open_for_append(cursor, stmt.label)
        branch.cond = stmt.cond
        then_cursor = self._build_block(stmt.then_body, _Cursor(dangling=[(branch, EdgeKind.SEQ)]))
        else_cursor = self._build_block(stmt.else_body, _Cursor(dangling=[(branch, EdgeKind.SEQ)]))
        merged = then_cursor.closed().dangling + else_cursor.closed().dangling
        merge, out = self._fresh(_Cursor(dangling=merged), NodeKind.BASIC, stmt.end_label, note="merge")
        return out

    def _build_loop(self, stmt: ast.Loop, cursor: _Cursor) -> _Cursor:
        header, _ = self._fresh(cursor, NodeKind.BASIC, stmt.label, note="loop-header")
        header.is_loop_header = True
        body_cursor = self._build_block(stmt.body, _Cursor(dangling=[(header, EdgeKind.SEQ)]))
        latch, _ = self._fresh(body_cursor, NodeKind.BASIC, stmt.end_label, note="endloop")
        self.graph.add_edge(latch, header, EdgeKind.SEQ)
        return _Cursor(dangling=[(header, EdgeKind.SEQ)])

    def _build_while(self, stmt: ast.While, cursor: _Cursor) -> _Cursor:
        header, _ = self._fresh(cursor, NodeKind.BASIC, stmt.label, note="while-header")
        header.cond = stmt.cond
        body_cursor = self._build_block(stmt.body, _Cursor(dangling=[(header, EdgeKind.SEQ)]))
        latch, _ = self._fresh(body_cursor, NodeKind.BASIC, stmt.end_label, note="endwhile")
        self.graph.add_edge(latch, header, EdgeKind.SEQ)
        return _Cursor(dangling=[(header, EdgeKind.SEQ)])

    def _build_parallel(self, stmt: ast.ParallelSections, cursor: _Cursor) -> _Cursor:
        fork, _ = self._fresh(cursor, NodeKind.FORK, stmt.label, note="parallel sections")
        cid = self._next_construct_id
        self._next_construct_id += 1
        fork.construct_id = cid
        self._section_names[cid] = tuple(s.name for s in stmt.sections)

        section_exits: List[Tuple[PFGNode, EdgeKind]] = []
        for index, section in enumerate(stmt.sections):
            self._section_stack.append((cid, index))
            try:
                sec_cursor = _Cursor(dangling=[(fork, EdgeKind.PAR)])
                sec_cursor = self._build_block(section.body, sec_cursor)
                if sec_cursor.open is None and sec_cursor.dangling == [(fork, EdgeKind.PAR)]:
                    # Empty section: give it an (empty) block of its own so
                    # the join's parallel predecessors are always section
                    # exit blocks.
                    _node, sec_cursor = self._fresh(sec_cursor, NodeKind.BASIC, section.label, note=f"section {section.name}")
                sec_cursor = sec_cursor.closed()
                section_exits.extend((node, EdgeKind.PAR) for node, _k in sec_cursor.dangling)
            finally:
                self._section_stack.pop()

        join, out = self._fresh(
            _Cursor(dangling=section_exits), NodeKind.JOIN, stmt.end_label, note="end parallel sections"
        )
        join.fork = fork
        join.construct_id = cid
        fork.join = join
        return out

    def _build_parallel_do(self, stmt: ast.ParallelDo, cursor: _Cursor) -> _Cursor:
        """``Parallel Do`` (DESIGN.md: a §7 future-work extension) is
        modelled as a conditionally-executed, *self-concurrent* region:

        * a header block with an implicit branch (the trip count may be
          zero, so control may skip the body entirely — like ``loop``);
        * the body, built under the construct's pardo id so every block
          in it is marked concurrent with itself and its siblings
          (distinct iterations);
        * a merge block joining the body exit and the header bypass.

        All edges are sequential: under copy-in/copy-out each iteration
        reads the header-time copies, so there is no cross-iteration flow
        edge to draw — cross-iteration interference surfaces through
        ``ParallelKill`` and the anomaly reports instead.
        """
        from ..pfg.graph import ParDoInfo

        header, _ = self._fresh(cursor, NodeKind.BASIC, stmt.label, note="parallel-do")
        header.is_loop_header = True  # implicit nondeterministic branch
        cid = self._next_construct_id
        self._next_construct_id += 1
        self._pardo_stack.append(cid)
        try:
            body_cursor = self._build_block(stmt.body, _Cursor(dangling=[(header, EdgeKind.SEQ)]))
        finally:
            self._pardo_stack.pop()
        merged = body_cursor.closed().dangling + [(header, EdgeKind.SEQ)]
        merge, out = self._fresh(
            _Cursor(dangling=merged), NodeKind.BASIC, stmt.end_label, note="end-parallel-do"
        )
        self.graph.pardos.append(
            ParDoInfo(construct_id=cid, index=stmt.index, header=header, merge=merge)
        )
        return out

    def _add_sync_edges(self) -> None:
        for event, posts in self.graph.posts_of_event.items():
            for wait in self.graph.waits_of_event.get(event, []):
                for post in posts:
                    self.graph.add_edge(post, wait, EdgeKind.SYNC)


def build_pfg(program: ast.Program) -> ParallelFlowGraph:
    """Build the Parallel Flow Graph of ``program``.

    Construction is traced as a ``pfg-build`` span carrying node/edge/def
    counts (and mirrored into ``pfg.*`` counters) when an observability
    session is installed — see :mod:`repro.obs`.
    """
    from ..obs import get_metrics, get_tracer

    tracer = get_tracer()
    with tracer.span("pfg-build", program=program.name) as span:
        graph = PFGBuilder(program).build()
        if tracer.enabled:
            n_edges = sum(1 for _ in graph.edges())
            span.annotate(nodes=len(graph.nodes), edges=n_edges, defs=len(graph.defs))
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("pfg.builds")
        metrics.inc("pfg.nodes", len(graph.nodes))
        metrics.inc("pfg.defs", len(graph.defs))
        metrics.inc("pfg.edges", sum(1 for _ in graph.edges()))
    return graph


def section_names_by_construct(program: ast.Program) -> dict:
    """Map construct ids (assigned in document order, as the builder does)
    to section-name tuples — for :func:`repro.pfg.regions.compute_regions`."""
    names = {}
    counter = 0
    for stmt in program.walk():
        if isinstance(stmt, ast.ParallelSections):
            names[counter] = tuple(s.name for s in stmt.sections)
            counter += 1
    return names
