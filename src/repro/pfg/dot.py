"""Graphviz DOT export for Parallel Flow Graphs.

Reproduces the visual conventions of the paper's Figure 4: sequential
edges solid, parallel edges bold, synchronization edges dashed; fork/join
nodes drawn as trapezia-ish (here: house/invhouse shapes), entry/exit as
ovals.
"""

from __future__ import annotations

from .edges import EdgeKind
from .graph import ParallelFlowGraph
from .node import NodeKind

_EDGE_STYLE = {
    EdgeKind.SEQ: "",
    EdgeKind.PAR: ' [style=bold, color="#2a6f97"]',
    EdgeKind.SYNC: ' [style=dashed, color="#c44536", constraint=false]',
}

_NODE_SHAPE = {
    NodeKind.ENTRY: "oval",
    NodeKind.EXIT: "oval",
    NodeKind.BASIC: "box",
    NodeKind.FORK: "invhouse",
    NodeKind.JOIN: "house",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: ParallelFlowGraph, include_stmts: bool = True) -> str:
    """Render ``graph`` as a Graphviz digraph (returns DOT source)."""
    lines = [f'digraph "{_escape(graph.program_name)}" {{', "  node [fontname=monospace];"]
    for node in graph.nodes:
        if include_stmts:
            label = _escape(node.describe())
        else:
            label = _escape(node.name)
        shape = _NODE_SHAPE[node.kind]
        lines.append(f'  n{node.id} [label="{label}", shape={shape}];')
    for src, dst, kind in graph.edges():
        lines.append(f"  n{src.id} -> n{dst.id}{_EDGE_STYLE[kind]};")
    lines.append("}")
    return "\n".join(lines) + "\n"
