"""Data-flow machinery: set backends, equation framework, fixpoint solvers."""

from .bitset import (
    BACKENDS,
    FrozensetBackend,
    IntBitsetBackend,
    NumpyBitsetBackend,
    SetBackend,
    make_backend,
)
from .budget import BudgetExceeded, NonConvergenceError, ResourceBudget, check_budget
from .cache import GLOBAL_CACHE, AnalysisCache, cached_build_pfg, program_digest
from .framework import EquationSystem, FixpointDiverged, SolveStats, VariableMap
from .sched import Region, Schedule, build_schedule, get_schedule, solve_scc
from .solver import (
    DEFAULT_MAX_PASSES,
    SOLVERS,
    make_order,
    solve_round_robin,
    solve_stabilized,
    solve_worklist,
)

__all__ = [
    "BudgetExceeded",
    "NonConvergenceError",
    "ResourceBudget",
    "check_budget",
    "solve_stabilized",
    "AnalysisCache",
    "GLOBAL_CACHE",
    "cached_build_pfg",
    "program_digest",
    "Region",
    "Schedule",
    "build_schedule",
    "get_schedule",
    "solve_scc",
    "BACKENDS",
    "FrozensetBackend",
    "IntBitsetBackend",
    "NumpyBitsetBackend",
    "SetBackend",
    "make_backend",
    "EquationSystem",
    "FixpointDiverged",
    "SolveStats",
    "VariableMap",
    "DEFAULT_MAX_PASSES",
    "SOLVERS",
    "make_order",
    "solve_round_robin",
    "solve_worklist",
]
