"""Digest-keyed analysis caching (the batch/serving scenario).

Repeated ``analyze``/``optimize``/``repro report`` calls on an unchanged
program redo the whole pipeline — parse-independent phases included —
even though everything downstream of the AST is a pure function of the
program text plus a handful of option values.  This module memoizes the
expensive pure stages behind a stable **program digest**
(:func:`program_digest`: SHA-256 of the canonical pretty-printing, so
two structurally identical programs share cache entries regardless of
how their ASTs were produced):

* :func:`cached_build_pfg` — PFG construction per digest;
* the gen/kill local sets — memoized *on the graph object* by
  :func:`repro.reachdefs.genkill.compute_genkill` (PFG nodes hash by
  identity, so a gen/kill table is only meaningful for the exact graph
  it was computed from; the memo is dropped by ``graph._invalidate()``
  on mutation);
* full ``analyze`` results — keyed by digest **plus** every
  result-affecting option (backend, order, solver, preserved), in
  :func:`repro.analyze`.

All entries live in bounded-LRU :class:`AnalysisCache` instances
(:data:`GLOBAL_CACHE` is the process-wide default).  Hits, misses and
evictions are counted both on the cache object and — when an
observability session is installed — as ``cache.hits`` /
``cache.misses`` / ``cache.evictions`` plus per-namespace
``cache.<ns>.hits`` / ``cache.<ns>.misses`` counters in
:mod:`repro.obs`.

Invalidation is by construction, not by tracking: a cache key *is* the
program content (digest) plus options, so an edited program simply
misses.  The only mutable state cached anywhere is the gen/kill memo,
which is attached to its graph and cleared by the graph's own
``_invalidate`` hook.  Callers who mutate a *returned* graph or result
in place are outside the contract (the analysis pipeline never does).

One identity caveat: PFG nodes hold *statement objects*, and the
interpreter (the dynamic soundness oracle) links runtime events to
blocks by statement identity.  Graphs and results are therefore only
valid for the exact AST they were computed from; cache reads validate
this (``graph.source_program is program``) and treat a same-digest,
different-parse entry as a miss.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..obs import get_metrics

#: Default LRU bound — big enough for a test-suite's worth of figures and
#: generator programs, small enough that full results can't pile up.
DEFAULT_MAXSIZE = 128

_MISSING = object()

#: Public miss sentinel for :meth:`AnalysisCache.get`.  Pass it as the
#: ``default`` to distinguish a cache **miss** from a legitimately cached
#: ``None`` value: ``cache.get(key, MISSING) is MISSING`` is True only on
#: a miss.  (The bare ``get(key)`` form keeps returning ``None`` on a
#: miss for existing callers — but with that form a cached ``None`` is
#: indistinguishable from a miss and would be recomputed forever.)
MISSING = _MISSING


class AnalysisCache:
    """A bounded LRU mapping cache keys to arbitrary values.

    Keys are tuples whose first element names the **namespace**
    (``"pfg"``, ``"analyze"``, …) — used only for per-namespace metric
    counters; all namespaces share the one LRU so the bound is global.

    **Concurrency**: every operation that touches the store or counters
    holds an :class:`threading.RLock` — the ``repro serve`` daemon runs
    concurrent sessions against warm caches (and any threaded client may
    share :data:`GLOBAL_CACHE`); an unguarded LRU reorder racing an
    eviction would corrupt the ``OrderedDict``.  The lock is re-entrant
    because a ``valid`` predicate may itself consult the cache.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE, enabled: bool = True):
        self.maxsize = maxsize
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._store

    @staticmethod
    def _namespace(key: Tuple) -> str:
        return str(key[0]) if isinstance(key, tuple) and key else "misc"

    def get(self, key: Tuple, default=None, valid=None):
        """The cached value for ``key``, or ``default`` (counts a hit/miss
        and refreshes LRU recency).  Disabled caches always miss.

        ``default`` defaults to ``None`` for backwards compatibility;
        callers that may legitimately cache ``None`` should pass the
        module-level :data:`MISSING` sentinel and compare with ``is`` —
        otherwise a cached ``None`` looks like a miss and is recomputed
        (and double-counted as a miss) forever.

        ``valid`` is an optional predicate over the stored value; an
        entry it rejects is dropped and counted as a miss (used for the
        AST-identity check — see :func:`cached_build_pfg`).
        """
        if not self.enabled:
            return default
        m = get_metrics()
        ns = self._namespace(key)
        with self._lock:
            value = self._store.get(key, _MISSING)
            if value is not _MISSING and valid is not None and not valid(value):
                del self._store[key]
                value = _MISSING
            if value is _MISSING:
                self.misses += 1
                if m.enabled:
                    m.inc("cache.misses")
                    m.inc(f"cache.{ns}.misses")
                return default
            self._store.move_to_end(key)
            self.hits += 1
            if m.enabled:
                m.inc("cache.hits")
                m.inc(f"cache.{ns}.hits")
            return value

    def put(self, key: Tuple, value: object) -> None:
        """Store ``value`` under ``key``, evicting the least recently used
        entry when full.  No-op on a disabled cache."""
        if not self.enabled:
            return
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
                m = get_metrics()
                if m.enabled:
                    m.inc("cache.evictions")

    def clear(self) -> None:
        """Drop all entries (counters are kept — they describe the
        process, not the current contents)."""
        with self._lock:
            self._store.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._store),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: Process-wide default cache used by :func:`repro.analyze` and
#: :func:`cached_build_pfg`.  Tests clear it between cases (autouse
#: fixture); benchmarks disable it to measure the real work.
GLOBAL_CACHE = AnalysisCache()


def program_digest(program) -> str:
    """A stable content digest of ``program``: SHA-256 over its canonical
    pretty-printing.  Structurally identical programs digest identically
    regardless of AST provenance or formatting of the original source."""
    from ..lang.pretty import pretty  # deferred: lang imports have no dataflow dep,
    # but keeping cache importable from anywhere means importing lazily here.

    text = pretty(program)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cached_build_pfg(program, cache: Optional[AnalysisCache] = None):
    """:func:`repro.pfg.build_pfg` memoized by program digest.

    The returned graph is shared across hits — safe because the analysis
    pipeline treats graphs as immutable after construction (and the
    gen/kill memo rides on the graph, so a shared graph also shares its
    local sets).  The digest is stamped on the graph as
    ``graph.program_digest``, and the source AST as
    ``graph.source_program``.

    **AST-identity validation**: PFG nodes hold *statement objects*, and
    the interpreter links runtime events to blocks by statement identity
    — a graph is only valid for the exact AST it was built from.  A
    digest hit whose entry came from a *different parse* of the same
    text is therefore rejected (counted as a miss) and rebuilt; digest
    addressing still gives content-level invalidation for free (an
    edited program simply misses).
    """
    from ..pfg import build_pfg

    store = GLOBAL_CACHE if cache is None else cache
    if not store.enabled:
        return build_pfg(program)
    digest = program_digest(program)
    key = ("pfg", digest)
    graph = store.get(key, MISSING, valid=lambda g: g.source_program is program)
    if graph is not MISSING:
        return graph
    graph = build_pfg(program)
    graph.program_digest = digest
    graph.source_program = program
    store.put(key, graph)
    return graph
