"""Sparse SCC-scheduled fixpoint evaluation.

The sweep solvers in :mod:`repro.dataflow.solver` re-evaluate **every**
node on every pass, so cost grows as O(passes × nodes) regardless of
graph shape.  This module implements the classic sparse strategy
instead:

1. Build the **equation-dependence graph** once per system
   (:func:`build_schedule`): an edge ``n → m`` whenever ``m``'s equations
   read one of ``n``'s variables.  The edges come from
   ``system.dependents`` — which already covers sequential, parallel and
   synchronization predecessors plus the technical fork→join edge that
   the kill layer (``ForkKill``/``ACCKillout``/``SynchPass``) reads.
2. Condense it into strongly connected components (iterative Tarjan)
   and order the regions topologically.
3. :func:`solve_scc` then evaluates each region to *local* fixpoint in
   topological order, never touching a region before its inputs are
   final:

   * an **acyclic** (singleton, no self-edge) region is evaluated
     exactly once — all of its inputs are already final, and one
     Gauss–Seidel evaluation of the node's equations yields its final
     values (for the phase-split systems, a fixed ``kill → flow → kill``
     micro-sequence resolves the intra-node variable ordering; the
     trailing kill step is needed only at join nodes, whose
     ``ACCKillout`` reads the node's own ``Out``);
   * a **cyclic** region runs to local fixpoint: a priority worklist
     (priority = position in the caller's sweep order, reverse postorder
     by default) for plain monotone systems, or region-scoped
     flow/kill phase alternation — the :func:`~repro.dataflow.solver.
     solve_stabilized` algorithm restricted to the region, including its
     cycle detection and conservative kill-meet resolution — for the
     paper's parallel/synchronized systems.

The *fixpoints* are untouched: only the evaluation schedule changes.
Singleton regions cost one update (plain) or 2–3 micro-updates (phase
mode) instead of one update per sweep, so acyclic graphs drop from
O(passes × N) to O(N) node updates.

Observability: schedule construction runs under a ``schedule-build``
tracer span (annotated with region counts) and feeds
``solve.scc.schedule_builds`` / ``solve.scc.schedule_cache_hits``
counters; the solve itself reports the usual ``solve`` span and
``solve.*`` counters with solver name ``scc``.

Guarded execution: a :class:`~repro.dataflow.budget.ResourceBudget` is
charged one pass per cyclic-region sweep and one update per node
evaluation, and checked at region granularity (plus per phase pass),
so runaway cyclic regions trip the budget before burning the allowance
of the whole graph.

Chaos caveat: :class:`repro.robust.chaos.ChaosSystem` *drop* faults lie
about convergence ("changed" without updating), which a sweep solver
absorbs by re-sweeping but an exactly-once acyclic region cannot.
Duplicate faults, suppression faults and shuffled sweep orders compose
fine with this solver (pinned by the chaos tests).
"""

from __future__ import annotations

import heapq
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import AbstractSet, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..obs import get_metrics, get_tracer
from .budget import NonConvergenceError, ResourceBudget, check_budget
from .dense import (
    DenseConfig,
    RegionDiverged,
    RegionSolution,
    apply_region_solution,
    build_region_program,
    dense_profile,
    run_region_program,
    solve_region_payload,
)
from .framework import EquationSystem, SolveStats

N = TypeVar("N")

#: Terminal safety cap on iterations *within one region* — same rationale
#: (and value) as ``solver.DEFAULT_MAX_PASSES``: monotone systems over
#: finite lattices converge long before this; hitting it is a bug.
DEFAULT_MAX_REGION_PASSES = 10_000

#: Cap on stabilization rounds within one cyclic region (mirrors
#: ``solve_stabilized``'s ``max_rounds``).
DEFAULT_MAX_REGION_ROUNDS = 100


@dataclass
class Region:
    """One strongly connected component of the dependence graph."""

    index: int
    nodes: List[object]
    #: True when the region needs iteration: more than one node, or a
    #: single node whose equations read their own previous value.
    cyclic: bool


@dataclass
class Schedule:
    """Precomputed evaluation schedule for one equation system.

    ``regions`` is in topological order of the SCC condensation: every
    dependence edge crossing regions goes from an earlier region to a
    later one, so evaluating regions in order guarantees each region
    sees only final upstream values.
    """

    nodes: List[object]
    dependents: Dict[object, List[object]]
    regions: List[Region] = field(default_factory=list)
    region_of: Dict[object, int] = field(default_factory=dict)

    @property
    def n_cyclic(self) -> int:
        return sum(1 for r in self.regions if r.cyclic)

    def describe(self) -> str:
        return (
            f"schedule: {len(self.nodes)} nodes, {len(self.regions)} regions "
            f"({self.n_cyclic} cyclic)"
        )


def build_schedule(system: EquationSystem[N]) -> Schedule:
    """Derive the dependence graph and its SCC condensation for ``system``.

    Canonical and deterministic: nodes are taken in ``system.nodes()``
    order and successors in ``system.dependents`` order, so the schedule
    never depends on the sweep order a later solve happens to use.
    """
    nodes = list(system.nodes())
    known = set(nodes)
    dependents: Dict[object, List[object]] = {}
    for n in nodes:
        seen = set()
        succs = []
        for m in system.dependents(n):
            if m in known and m not in seen:
                seen.add(m)
                succs.append(m)
        dependents[n] = succs

    # Iterative Tarjan.  SCCs pop in reverse topological order of the
    # condensation (an SCC completes only after every SCC it points into),
    # so reversing the emission order gives the evaluation order.
    index: Dict[object, int] = {}
    lowlink: Dict[object, int] = {}
    on_stack: Dict[object, bool] = {}
    stack: List[object] = []
    emitted: List[List[object]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(dependents[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, succs = work[-1]
            advanced = False
            for w in succs:
                if w not in index:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(dependents[w])))
                    advanced = True
                    break
                if on_stack.get(w):
                    if index[w] < lowlink[v]:
                        lowlink[v] = index[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w is v or w == v:
                        break
                component.reverse()
                emitted.append(component)

    schedule = Schedule(nodes=nodes, dependents=dependents)
    position = {n: i for i, n in enumerate(nodes)}
    for component in reversed(emitted):
        component.sort(key=position.__getitem__)
        cyclic = len(component) > 1 or component[0] in dependents[component[0]]
        region = Region(index=len(schedule.regions), nodes=component, cyclic=cyclic)
        schedule.regions.append(region)
        for n in component:
            schedule.region_of[n] = region.index
    return schedule


def get_schedule(system: EquationSystem[N]) -> Schedule:
    """The cached :class:`Schedule` for ``system`` (built on first use).

    The schedule depends only on the system's dependence structure, which
    is fixed at construction, so it is computed once and memoized on the
    system instance — repeated ``solve_scc`` calls (ablation sweeps over
    orders, chaos seeds, warm re-solves) pay for Tarjan exactly once.
    """
    cached = getattr(system, "_scc_schedule", None)
    metrics = get_metrics()
    if cached is not None:
        if metrics.enabled:
            metrics.inc("solve.scc.schedule_cache_hits")
        return cached
    tracer = get_tracer()
    with tracer.span("schedule-build") as span:
        schedule = build_schedule(system)
        span.annotate(
            nodes=len(schedule.nodes),
            regions=len(schedule.regions),
            cyclic_regions=schedule.n_cyclic,
        )
    if metrics.enabled:
        metrics.inc("solve.scc.schedule_builds")
    try:
        system._scc_schedule = schedule
    except AttributeError:  # pragma: no cover - systems with __slots__
        pass
    return schedule


def _phase_split(system) -> bool:
    """Systems exposing the stabilized flow/kill protocol get region-scoped
    phase alternation; plain monotone systems get direct evaluation."""
    return all(
        hasattr(system, attr)
        for attr in ("update_flow", "update_kill", "reset_flow_nodes", "reset_kill_nodes")
    )


def _region_snapshot(system, rnodes):
    """``system.snapshot()`` restricted to the region's nodes —
    frozenset-valued, so equality is well-defined for every backend.

    Restriction happens *before* materialization where the system
    supports it: a full-graph snapshot per convergence round is
    O(|graph| * |defs|) and dominated wall clock on wide multi-region
    programs, where each region only ever compares its own rows."""
    try:
        return system.snapshot(nodes=rnodes)
    except TypeError:  # system without restricted-snapshot support
        snap = system.snapshot()
        names = {getattr(n, "name", n) for n in rnodes}
        return {
            slot: {name: value for name, value in values.items() if name in names}
            for slot, values in snap.items()
        }


def _restrict_kill_state(state, nodes):
    node_set = set(nodes)
    return {
        slot: {n: v for n, v in values.items() if n in node_set}
        for slot, values in state.items()
    }


def _meet_region_kills(system, states):
    meet = system.meet_values
    out: Dict[str, Dict[object, object]] = {}
    first = states[0]
    for slot in first:
        out[slot] = {}
        for node in first[slot]:
            value = first[slot][node]
            for other in states[1:]:
                value = meet(value, other[slot][node])
            out[slot][node] = value
    return out


def solve_scc(
    system: EquationSystem[N],
    order: Optional[Sequence[N]] = None,
    order_name: str = "scc",
    max_passes: int = DEFAULT_MAX_REGION_PASSES,
    max_rounds: int = DEFAULT_MAX_REGION_ROUNDS,
    budget: Optional[ResourceBudget] = None,
    verify: bool = False,
    dense: Optional[DenseConfig] = None,
    skip_regions: Optional[AbstractSet[int]] = None,
    seed: Optional[Callable[[], None]] = None,
) -> SolveStats:
    """Sparse fixpoint: evaluate dependence-graph regions in topological
    order, each to local convergence (see module docstring).

    ``order`` only sets the *within-region* sweep priority (ties broken
    by schedule position); the fixpoint is order-invariant, pinned by the
    chaos tests.  ``verify=True`` runs one extra full sweep at the end
    and raises if anything still changes — a debugging/CI guard against a
    system whose ``dependents`` under-approximates its true reads (the
    extra sweep's updates are counted in ``stats.node_updates``).

    ``dense`` (a :class:`~repro.dataflow.dense.DenseConfig`) routes
    eligible cyclic regions through the vectorized region evaluator
    (:mod:`repro.dataflow.dense`) — same fixpoints, byte-identical, with
    per-region dispatch counted in ``stats.dense_regions`` /
    ``stats.scalar_regions``.  With ``dense.workers > 1``, independent
    dense regions at the same condensation depth are solved concurrently
    on a process pool (wavefront scheduling): regions in one wave cannot
    read each other's values (every dependence edge strictly increases
    condensation depth), so the parallel solve is observationally
    identical to the serial one.  Pooled regions are budget-charged at
    the wave barrier (a deadline can overshoot by at most one wave).

    ``skip_regions`` / ``seed`` are the incremental re-analysis hooks
    (:mod:`repro.incremental`): after ``initialize()`` the ``seed``
    callback installs retained rows for the skipped (clean) regions, and
    every region whose index is in ``skip_regions`` is then excluded
    from evaluation — both the serial loop and the wavefront scheduler
    honour the skip set.  Soundness is the caller's obligation: a
    skipped region's seeded values must already be its region-local
    least fixpoint and every dependence *into* a solved region must come
    from a seeded or earlier-solved region.  Skipped/solved counts land
    in ``stats.regions_reused`` / ``stats.regions_solved``.

    Like the worklist solver, the run has no notion of global sweeps:
    ``stats`` is marked ``sweepless`` and reports update counts only.
    """
    schedule = get_schedule(system)
    tracer = get_tracer()
    if budget is not None:
        budget.start()
    system.initialize()
    if seed is not None:
        seed()
    stats = SolveStats(order=order_name, sweepless=True)
    priority: Dict[object, int]
    if order is not None:
        priority = {n: i for i, n in enumerate(order)}
    else:
        priority = {n: i for i, n in enumerate(schedule.nodes)}
    phase_split = _phase_split(system)
    dense_cfg = dense if dense is not None and dense.mode != "never" else None
    profile = dense_profile(system) if dense_cfg is not None else None

    with tracer.span(
        "solve",
        solver="scc",
        order=order_name,
        regions=len(schedule.regions),
        cyclic_regions=schedule.n_cyclic,
    ) as span:
        if tracer.enabled:
            stats.span = span
        ctx = _RegionContext(
            system=system,
            schedule=schedule,
            priority=priority,
            stats=stats,
            tracer=tracer,
            budget=budget,
            max_passes=max_passes,
            max_rounds=max_rounds,
            phase_split=phase_split,
            dense_cfg=dense_cfg,
            profile=profile,
            skip_regions=skip_regions,
        )
        if profile is not None and dense_cfg.workers > 1:
            _solve_waves(ctx)
        else:
            for region in schedule.regions:
                if skip_regions is not None and region.index in skip_regions:
                    continue
                _solve_one_region(ctx, region)
        if skip_regions is not None:
            stats.regions_reused = sum(
                1 for r in schedule.regions if r.index in skip_regions
            )
            stats.regions_solved = len(schedule.regions) - stats.regions_reused
        if verify:
            for node in schedule.nodes:
                stats.node_updates += 1
                if system.update(node):
                    raise RuntimeError(
                        f"solve_scc verify sweep found {node!r} unconverged: "
                        "the system's dependents() under-approximates its reads"
                    )
        stats.converged = True
        from .solver import _finalize_provenance  # deferred: avoid import cycle

        _finalize_provenance(system, stats)
        span.annotate(**stats.as_dict())
    from .solver import _record_solver_metrics  # deferred: avoid import cycle

    _record_solver_metrics("scc", order_name, stats)
    return stats


@dataclass
class _RegionContext:
    """Everything the per-region drivers share for one ``solve_scc`` run."""

    system: object
    schedule: Schedule
    priority: Dict[object, int]
    stats: SolveStats
    tracer: object
    budget: Optional[ResourceBudget]
    max_passes: int
    max_rounds: int
    phase_split: bool
    dense_cfg: Optional[DenseConfig]
    profile: Optional[str]
    skip_regions: Optional[AbstractSet[int]] = None


def _solve_one_region(ctx: _RegionContext, region: Region) -> None:
    """Evaluate one region to local fixpoint: acyclic singletons directly,
    cyclic regions via the dense evaluator when configured and eligible,
    else the scalar stabilized/worklist drivers."""
    system, stats, budget = ctx.system, ctx.stats, ctx.budget
    if budget is not None:
        check_budget(budget, stats, system)
    if not region.cyclic:
        node = region.nodes[0]
        stats.node_updates += 1
        if ctx.phase_split:
            # kill → flow (→ kill at joins): resolves the
            # intra-node variable ordering in one deterministic
            # micro-sequence; see module docstring.  This is one
            # evaluation of the node's equations — the same unit
            # of work ``update()`` (flow + kill) performs — so it
            # counts as one node update.
            changed = system.update_kill(node)
            changed |= system.update_flow(node)
            if getattr(node, "is_join", True):
                changed |= system.update_kill(node)
            if changed:
                stats.changed_updates += 1
        else:
            if system.update(node):
                stats.changed_updates += 1
        if budget is not None:
            budget.charge_updates()
        return
    if ctx.dense_cfg is not None:
        built = _dense_region_build(ctx, region)
        if built is not None:
            rnodes, prog = built
            _run_dense_region(ctx, region, rnodes, prog)
            return
        stats.scalar_regions += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("solve.dense.scalar_regions")
    if ctx.phase_split:
        _solve_region_stabilized(
            system,
            region,
            ctx.priority,
            stats,
            ctx.tracer,
            budget,
            ctx.max_passes,
            ctx.max_rounds,
        )
    else:
        _solve_region_worklist(
            system, region, ctx.schedule, ctx.priority, stats, budget, ctx.max_passes
        )


def _dense_region_build(ctx: _RegionContext, region: Region):
    """Compile ``region`` for dense evaluation, or None for the scalar
    fallback (unsupported system, or an auto-mode threshold says the
    matrix formulation won't pay)."""
    if ctx.profile is None:
        return None
    cfg = ctx.dense_cfg
    auto = cfg.mode == "auto"
    n = len(region.nodes)
    words = getattr(ctx.system.ops, "n_words", 1)
    if auto and (n < cfg.min_nodes or n * words < cfg.min_cells):
        return None
    rnodes = sorted(region.nodes, key=lambda nd: ctx.priority.get(nd, 0))
    prog = build_region_program(ctx.system, rnodes, ctx.profile)
    if auto and prog.width < cfg.min_width:
        return None
    return rnodes, prog


def _run_dense_region(ctx: _RegionContext, region: Region, rnodes, prog) -> None:
    """Solve one compiled region in-process, budget-charged per sweep
    exactly like the scalar sweep loops."""
    system, stats, budget = ctx.system, ctx.stats, ctx.budget

    def on_sweep(rows: int) -> None:
        if budget is not None:
            budget.charge_pass()
            budget.charge_updates(rows)
            check_budget(budget, stats, system)

    with ctx.tracer.span(
        "dense-region", index=region.index, nodes=len(rnodes), words=prog.n_words
    ) as span:
        try:
            sol = run_region_program(
                prog, ctx.max_passes, ctx.max_rounds, on_sweep=on_sweep
            )
        except RegionDiverged as exc:
            raise NonConvergenceError(
                stats, reason=str(exc), snapshot=system.snapshot()
            ) from None
        apply_region_solution(system, rnodes, sol)
        if ctx.tracer.enabled:
            span.annotate(sweeps=sol.sweeps, rounds=sol.rounds, cycle=sol.cycle)
    _account_dense(stats, sol)


def _account_dense(stats: SolveStats, sol: RegionSolution) -> None:
    stats.node_updates += sol.node_updates
    stats.changed_updates += sol.changed_updates
    stats.dense_regions += 1
    if sol.cycle and not stats.order.endswith("+cycle"):
        stats.order += "+cycle"
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("solve.dense.regions")
        metrics.inc("solve.dense.sweeps", sol.sweeps)
        metrics.inc("solve.dense.rounds", sol.rounds)


def region_depths(schedule: Schedule) -> List[int]:
    """Longest-path depth of each region in the condensation DAG.  Every
    dependence edge crossing regions goes from a strictly shallower to a
    strictly deeper region, so regions of equal depth are provably
    independent — the wavefront invariant."""
    depth = [0] * len(schedule.regions)
    for region in schedule.regions:  # topological order
        d = depth[region.index]
        for n in region.nodes:
            for m in schedule.dependents[n]:
                t = schedule.region_of[m]
                if t != region.index and depth[t] < d + 1:
                    depth[t] = d + 1
    return depth


def _solve_waves(ctx: _RegionContext) -> None:
    """Wavefront scheduling: group regions by condensation depth and,
    within each wave, farm dense-compiled regions out to a process pool
    while the scalar remainder runs in-process.  Wave order is a valid
    topological order, so every region still sees only final upstream
    values; pooled regions are budget-charged (and the budget checked)
    at the wave barrier."""
    stats, budget, system = ctx.stats, ctx.budget, ctx.system
    depths = region_depths(ctx.schedule)
    waves: Dict[int, List[Region]] = {}
    for region in ctx.schedule.regions:
        waves.setdefault(depths[region.index], []).append(region)
    metrics = get_metrics()
    pool: Optional[ProcessPoolExecutor] = None
    try:
        for d in sorted(waves):
            serial: List[Region] = []
            jobs: List[Tuple[Region, list, object]] = []
            for region in waves[d]:
                if ctx.skip_regions is not None and region.index in ctx.skip_regions:
                    continue
                if region.cyclic:
                    built = _dense_region_build(ctx, region)
                    if built is not None:
                        jobs.append((region, built[0], built[1]))
                        continue
                serial.append(region)
            if len(jobs) < 2:
                # Nothing to overlap: run the whole wave in-process (the
                # single dense job, if any, still solves densely).
                for region in waves[d]:
                    _solve_one_region(ctx, region)
                continue
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=ctx.dense_cfg.workers)
            futures = [
                pool.submit(solve_region_payload, (prog, ctx.max_passes, ctx.max_rounds))
                for (_, _, prog) in jobs
            ]
            if metrics.enabled:
                metrics.inc("solve.dense.waves")
                metrics.inc("solve.dense.pooled_regions", len(jobs))
            for region in serial:
                _solve_one_region(ctx, region)
            for (region, rnodes, prog), fut in zip(jobs, futures):
                try:
                    sol = fut.result()
                except RegionDiverged as exc:
                    raise NonConvergenceError(
                        stats, reason=str(exc), snapshot=system.snapshot()
                    ) from None
                apply_region_solution(system, rnodes, sol)
                if budget is not None:
                    budget.charge_region(sol.sweeps, sol.node_updates)
                    check_budget(budget, stats, system)
                _account_dense(stats, sol)
    finally:
        if pool is not None:
            pool.shutdown()


def _solve_region_worklist(
    system, region, schedule, priority, stats, budget, max_passes
) -> None:
    """Priority worklist to local fixpoint over one cyclic region (plain
    monotone systems — unique fixpoint, so priority affects cost only)."""
    region_set = set(region.nodes)
    update_cap = max_passes * len(region.nodes)
    if budget is not None:
        budget.charge_pass()
    tie = 0
    heap = []
    for n in sorted(region.nodes, key=lambda n: priority.get(n, 0)):
        heapq.heappush(heap, (priority.get(n, 0), tie, n))
        tie += 1
    queued = set(region.nodes)
    region_updates = 0
    while heap:
        _, _, node = heapq.heappop(heap)
        queued.discard(node)
        stats.node_updates += 1
        region_updates += 1
        if budget is not None:
            budget.charge_updates()
            check_budget(budget, stats, system)
        if region_updates > update_cap:
            raise NonConvergenceError(
                stats,
                reason=(
                    f"terminal region update cap {update_cap} hit in region "
                    f"{region.index} (equation bug?)"
                ),
                snapshot=system.snapshot(),
            )
        if system.update(node):
            stats.changed_updates += 1
            for dep in schedule.dependents[node]:
                if dep in region_set and dep not in queued:
                    queued.add(dep)
                    heapq.heappush(heap, (priority.get(dep, 0), tie, dep))
                    tie += 1


def _solve_region_stabilized(
    system, region, priority, stats, tracer, budget, max_passes, max_rounds
) -> None:
    """Flow/kill phase alternation restricted to one cyclic region — the
    :func:`~repro.dataflow.solver.solve_stabilized` algorithm at region
    scope, including round-cycle detection with the conservative kill
    meet.  Upstream regions are final, downstream still ⊥, so the
    region-local least fixpoints compose into the global ones."""
    rnodes = sorted(region.nodes, key=lambda n: priority.get(n, 0))

    def sweep(update, kind: str) -> None:
        passes = 0
        while True:
            if budget is not None:
                budget.charge_pass()
                budget.charge_updates(len(rnodes))
                check_budget(budget, stats, system)
            passes += 1
            if passes > max_passes:
                raise NonConvergenceError(
                    stats,
                    reason=(
                        f"terminal pass cap max_passes={max_passes} hit in "
                        f"region {region.index} {kind} phase (equation bug?)"
                    ),
                    snapshot=system.snapshot(),
                )
            changed = False
            for n in rnodes:
                stats.node_updates += 1
                if update(n):
                    stats.changed_updates += 1
                    changed = True
            if not changed:
                return

    with tracer.span("region", index=region.index, nodes=len(rnodes)):
        sweep(system.update_flow, "flow")
        history = [_region_snapshot(system, rnodes)]
        kill_history = [_restrict_kill_state(system.kill_state(), rnodes)]
        for round_index in range(max_rounds):
            system.reset_kill_nodes(rnodes)
            sweep(system.update_kill, "kill")
            system.reset_flow_nodes(rnodes)
            sweep(system.update_flow, "flow")
            current = _region_snapshot(system, rnodes)
            if current == history[-1]:
                return
            if current in history:
                # Oscillation: meet the region's kill layers over the
                # cycle, then one final flow phase (cf. solve_stabilized).
                start = history.index(current)
                cycle_kills = kill_history[start:] + [
                    _restrict_kill_state(system.kill_state(), rnodes)
                ]
                system.set_kill_state(_meet_region_kills(system, cycle_kills))
                system.reset_flow_nodes(rnodes)
                sweep(system.update_flow, "flow")
                if not stats.order.endswith("+cycle"):
                    stats.order += "+cycle"
                return
            history.append(current)
            kill_history.append(_restrict_kill_state(system.kill_state(), rnodes))
        raise NonConvergenceError(
            stats,
            reason=(
                f"terminal round cap max_rounds={max_rounds} hit in region "
                f"{region.index} (equation bug?)"
            ),
            snapshot=system.snapshot(),
        )
