"""Generic monotone equation-system framework.

The paper's three reaching-definitions systems (sequential, parallel,
synchronized) are *irregular* data-flow problems: several interacting set
variables per node (``In``, ``Out``, ``ACCKillin``, ``ACCKillout``,
``ForkKill``, ``SynchPass``) with node-kind-dependent update rules.  Rather
than force them into a transfer-function/lattice mould, the framework asks
each system for a single ``update(node)`` that recomputes all of the node's
variables from current state (Gauss–Seidel style — updates within a pass
are immediately visible, which is how the paper's worked tables iterate)
and reports whether anything changed.

Monotonicity of the updates guarantees a least fixpoint; the solvers in
:mod:`repro.dataflow.solver` only control *visit order*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, TypeVar

N = TypeVar("N", bound=Hashable)


class EquationSystem(Generic[N]):
    """One fixpoint problem over nodes of type ``N``."""

    def nodes(self) -> Sequence[N]:
        """All nodes whose equations must reach fixpoint."""
        raise NotImplementedError

    def initialize(self) -> None:
        """Reset all variables to the bottom of their lattices."""
        raise NotImplementedError

    def update(self, node: N) -> bool:
        """Recompute ``node``'s variables from current state; return True
        iff any variable changed.  Must be monotone."""
        raise NotImplementedError

    def dependents(self, node: N) -> Iterable[N]:
        """Nodes whose equations read ``node``'s variables — drives the
        worklist solver.  Must over-approximate the true dependencies."""
        raise NotImplementedError

    def snapshot(self) -> object:
        """An immutable view of current state (for per-pass traces); optional."""
        return None

    # -- provenance protocol (opt-in; see repro.provenance) -----------------

    #: When True, every solver calls :meth:`record_justifications` once
    #: after convergence (and never during iteration — recording is a pure
    #: function of the converged state, so all solvers that reach the same
    #: fixpoint record identical justifications).  The flag is read with
    #: one ``getattr`` per solve, so the disabled default costs nothing.
    wants_provenance: bool = False

    def record_justifications(self) -> object:
        """Derive and retain the justification graph of the current
        (converged) state; returns it.  Systems that set
        ``wants_provenance`` must implement this."""
        raise NotImplementedError(
            f"{type(self).__name__} set wants_provenance but does not "
            "implement record_justifications()"
        )


@dataclass
class SolveStats:
    """Fixpoint iteration statistics.

    ``passes`` counts *all* round-robin sweeps including the final sweep
    that verifies nothing changed; ``changing_passes`` counts only sweeps
    that changed some variable.  The paper's "converges on the second
    iteration" for Figure 8 is ``changing_passes == 1, passes == 2``;
    "fixpoint reached in the third iteration" for Figures 11/12 is
    ``changing_passes == 2, passes == 3``.

    ``snapshots`` (filled only under ``snapshot_passes=True``) holds one
    full copy of every node variable per sweep — memory is
    O(passes × nodes × set size), which is why the round-robin solver
    caps it (``max_snapshots``) instead of letting a long run exhaust
    memory.

    ``span`` is the tracer :class:`repro.obs.Span` that timed this solve
    when an observability session was installed (``None`` otherwise); it
    carries wall time and the per-pass child spans.  It is deliberately
    excluded from :meth:`as_dict`, which stays a flat, JSON-ready record.

    ``sweepless`` marks solvers with no notion of a global sweep (the
    worklist and SCC-scheduled solvers): pass counts are meaningless
    there, so :meth:`as_dict` (and hence ``repro stats`` rendering and
    span annotations) omits ``passes``/``changing_passes`` instead of
    reporting a misleading ``0``.

    ``dense_regions`` / ``scalar_regions`` count per-region dispatch
    decisions when the scc engine runs with a
    :class:`~repro.dataflow.dense.DenseConfig`: cyclic regions solved by
    the vectorized evaluator vs. routed to the scalar fallback.  Both
    stay 0 (and out of :meth:`as_dict`) when dense solving was not
    requested, so existing stats records are unchanged.

    ``regions_reused`` / ``regions_solved`` are filled only by the
    incremental re-analysis engine (:mod:`repro.incremental`): clean
    condensation regions whose rows were installed verbatim from the
    base solve vs. dirty-cone regions actually re-solved.  Both stay 0
    (and out of :meth:`as_dict`) on ordinary from-scratch solves.
    """

    order: str = ""
    passes: int = 0
    changing_passes: int = 0
    node_updates: int = 0
    changed_updates: int = 0
    converged: bool = False
    snapshots: List[object] = field(default_factory=list)
    span: Optional[object] = None
    sweepless: bool = False
    dense_regions: int = 0
    scalar_regions: int = 0
    regions_reused: int = 0
    regions_solved: int = 0

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"order": self.order}
        if not self.sweepless:
            record["passes"] = self.passes
            record["changing_passes"] = self.changing_passes
        record.update(
            node_updates=self.node_updates,
            changed_updates=self.changed_updates,
            converged=self.converged,
        )
        if self.dense_regions or self.scalar_regions:
            record["dense_regions"] = self.dense_regions
            record["scalar_regions"] = self.scalar_regions
        if self.regions_reused or self.regions_solved:
            record["regions_reused"] = self.regions_reused
            record["regions_solved"] = self.regions_solved
        return record


class FixpointDiverged(RuntimeError):
    """The solver hit its pass budget without converging — with monotone
    updates over finite lattices this indicates a bug in the equations."""

    def __init__(self, stats: SolveStats):
        self.stats = stats
        super().__init__(f"no fixpoint after {stats.passes} passes ({stats.node_updates} updates)")


@dataclass
class VariableMap(Generic[N]):
    """Tiny helper: one named set-variable per node, with change tracking
    delegated to a backend ``equals``."""

    name: str
    values: Dict[N, object] = field(default_factory=dict)

    def get(self, node: N) -> object:
        return self.values[node]

    def set(self, node: N, value: object, equals) -> bool:
        """Store ``value``; return True iff it differs from the old value."""
        old = self.values.get(node)
        if old is not None and equals(old, value):
            return False
        self.values[node] = value
        return True
