"""Fixpoint solvers and node orderings.

Two solvers:

``solve_round_robin``
    Sweep all nodes in a fixed order until a full sweep changes nothing.
    With ``order="document"`` this reproduces the paper's iteration tables
    exactly (the paper processes blocks in listing order); the per-pass
    ``snapshot_passes`` option records state after each sweep so golden
    tests can compare against the paper's Figure 11 (after pass 1) and
    Figure 12 (after pass 2).

``solve_worklist``
    Classic worklist: re-evaluate a node when one of the nodes it depends
    on changed.  Fewer updates on sparse graphs; same fixpoint.

Two more live elsewhere but register in ``SOLVERS`` here:
``solve_stabilized`` (below) — the deterministic phase-alternating
driver for the non-monotone parallel/synchronized systems — and
``solve_scc`` (:mod:`repro.dataflow.sched`), the sparse SCC-scheduled
engine that evaluates dependence regions in topological order.

Orderings (``make_order``): ``document`` (creation order), ``rpo``
(reverse postorder over control edges — the "depth first traversal" the
paper cites as converging in ~5 passes), ``reverse-document`` (pessimal for
forward problems, for the ordering benchmark) and ``random:<seed>``.

Observability: every solver reports to the process-current tracer and
metrics registry (:mod:`repro.obs`) — a ``solve`` span wrapping the run,
one ``pass`` span per sweep, ``solve.*`` counters including per-order
totals (``solve.<order>.passes``), and a worklist-length histogram for
``solve_worklist``.  Disabled by default: with no session installed the
instruments are no-op singletons and per-node work carries no
instrumentation at all (only per-pass no-op calls remain).

Guarded execution: every solver accepts an optional
:class:`~repro.dataflow.budget.ResourceBudget` (wall-clock deadline +
pass/update caps) and raises a typed
:class:`~repro.dataflow.budget.NonConvergenceError` — carrying the
:class:`SolveStats` and the partial state snapshot — when a budget trips
or the terminal ``max_passes`` safety net is hit.  No solver ever
*returns* with ``converged=False``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, List, Optional, Sequence, TypeVar

from ..obs import get_metrics, get_tracer
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .budget import NonConvergenceError, ResourceBudget, check_budget
from .framework import EquationSystem, SolveStats

N = TypeVar("N")

#: Safety budget: monotone systems over finite lattices converge in
#: O(nodes × lattice height) passes; anything past this is a bug.
DEFAULT_MAX_PASSES = 10_000

#: Default cap on per-pass snapshots (see ``solve_round_robin``).
DEFAULT_MAX_SNAPSHOTS = 1_000


def make_order(graph: ParallelFlowGraph, order: str) -> List[PFGNode]:
    """Resolve an ordering name to a concrete node list.

    Always returns a fresh list the caller may mutate; in particular
    ``random:<seed>`` shuffles a private copy, never the list
    ``graph.document_order()`` handed out (two orderings drawn with
    different seeds must not contaminate each other or the graph).
    """
    if order == "document":
        return list(graph.document_order())
    if order == "rpo":
        return list(graph.reverse_postorder())
    if order == "reverse-document":
        return list(reversed(graph.document_order()))
    if order.startswith("random"):
        seed = int(order.split(":", 1)[1]) if ":" in order else 0
        nodes = list(graph.document_order())
        random.Random(seed).shuffle(nodes)
        return nodes
    raise ValueError(
        f"unknown order {order!r}; choose document, rpo, reverse-document or random[:seed]"
    )


def _record_solver_metrics(solver: str, order_name: str, stats: SolveStats) -> None:
    """Post-hoc metric totals (one call per solve, nothing per node)."""
    m = get_metrics()
    if not m.enabled:
        return
    m.inc("solve.runs")
    if not stats.sweepless:
        m.inc("solve.passes", stats.passes)
    m.inc("solve.node_updates", stats.node_updates)
    m.inc("solve.changed_updates", stats.changed_updates)
    # Per-order totals let the ordering ablations read straight off the
    # registry (the base order name, without solver-mode prefixes).
    base = order_name.split("/")[-1]
    m.inc(f"solve.{base}.runs")
    if not stats.sweepless:
        m.inc(f"solve.{base}.passes", stats.passes)
    m.inc(f"solve.{base}.node_updates", stats.node_updates)
    m.inc(f"solve.{solver}.runs")


def _finalize_provenance(system, stats: SolveStats) -> None:
    """Post-convergence provenance hook, shared by every solver.

    When the system opted in (``wants_provenance`` — see
    :class:`~repro.dataflow.framework.EquationSystem`), derive its
    justification graph from the converged state under a
    ``provenance-record`` tracer span.  Deriving *after* convergence
    (never during iteration) keeps the recording a pure function of the
    fixpoint, so the stabilized and SCC engines — which compute the same
    fixpoint — record identical justifications; the disabled path is a
    single ``getattr`` per solve.
    """
    if not getattr(system, "wants_provenance", False):
        return
    tracer = get_tracer()
    with tracer.span("provenance-record") as span:
        prov = system.record_justifications()
        if tracer.enabled:
            span.annotate(facts=len(prov))
    m = get_metrics()
    if m.enabled:
        m.inc("provenance.records")
        m.inc("provenance.facts", len(prov))


def solve_round_robin(
    system: EquationSystem[N],
    order: Optional[Sequence[N]] = None,
    order_name: str = "document",
    max_passes: int = DEFAULT_MAX_PASSES,
    snapshot_passes: bool = False,
    max_snapshots: int = DEFAULT_MAX_SNAPSHOTS,
    budget: Optional[ResourceBudget] = None,
) -> SolveStats:
    """Iterate full sweeps until fixpoint; returns iteration statistics.

    ``snapshot_passes`` stores ``system.snapshot()`` after **every** sweep
    in ``stats.snapshots`` — each snapshot is a full copy of all node
    variables, so memory grows as O(passes × nodes × set size).  The
    ``max_snapshots`` cap (default ``DEFAULT_MAX_SNAPSHOTS``) turns a
    runaway recording into a clear error instead of memory exhaustion;
    raise it explicitly for long golden traces.

    ``budget`` bounds the run operationally (deadline / passes / updates)
    and is checked once per sweep; a tripped budget raises
    :class:`~repro.dataflow.budget.BudgetExceeded` with the partial state.
    """
    nodes = list(order) if order is not None else list(system.nodes())
    tracer = get_tracer()
    if budget is not None:
        budget.start()
    system.initialize()
    stats = SolveStats(order=order_name)
    with tracer.span("solve", solver="round-robin", order=order_name) as span:
        if tracer.enabled:
            stats.span = span
        while stats.passes < max_passes:
            if budget is not None:
                budget.charge_pass()
                check_budget(budget, stats, system)
            stats.passes += 1
            changed = False
            before = stats.changed_updates
            with tracer.span("pass", index=stats.passes) as pass_span:
                for node in nodes:
                    stats.node_updates += 1
                    if system.update(node):
                        stats.changed_updates += 1
                        changed = True
                pass_span.annotate(changed_updates=stats.changed_updates - before)
            if budget is not None:
                budget.charge_updates(len(nodes))
            if snapshot_passes:
                if len(stats.snapshots) >= max_snapshots:
                    raise RuntimeError(
                        f"snapshot_passes exceeded max_snapshots={max_snapshots}: "
                        f"each snapshot copies every node variable; raise "
                        f"max_snapshots only if you can afford the memory"
                    )
                stats.snapshots.append(system.snapshot())
            if changed:
                stats.changing_passes += 1
            else:
                stats.converged = True
                _finalize_provenance(system, stats)
                span.annotate(**stats.as_dict())
                _record_solver_metrics("round-robin", order_name, stats)
                return stats
        span.annotate(**stats.as_dict())
    raise NonConvergenceError(
        stats,
        reason=f"terminal pass cap max_passes={max_passes} hit (equation bug?)",
        snapshot=system.snapshot(),
    )


def solve_worklist(
    system: EquationSystem[N],
    order: Optional[Sequence[N]] = None,
    order_name: str = "worklist",
    max_updates: Optional[int] = None,
    budget: Optional[ResourceBudget] = None,
) -> SolveStats:
    """Worklist iteration seeded with all nodes (in ``order``).

    ``max_updates`` is the terminal safety net (defaults to passes×nodes
    equivalent of the round-robin cap); ``budget`` is the operational
    :class:`~repro.dataflow.budget.ResourceBudget`, checked per update.
    """
    nodes = list(order) if order is not None else list(system.nodes())
    tracer = get_tracer()
    metrics = get_metrics()
    observing = metrics.enabled
    if observing:
        queue_hist = metrics.histogram("solve.worklist.len")
    if budget is not None:
        budget.start()
    system.initialize()
    # A worklist run has no notion of sweeps; mark the stats sweepless so
    # pass counts are omitted from reports instead of rendering as 0.
    stats = SolveStats(order=order_name, sweepless=True)
    update_cap = max_updates if max_updates is not None else DEFAULT_MAX_PASSES * max(1, len(nodes))
    queue = deque(nodes)
    queued = set(nodes)
    with tracer.span("solve", solver="worklist", order=order_name) as span:
        if tracer.enabled:
            stats.span = span
        while queue:
            if observing:
                queue_hist.observe(len(queue))
            node = queue.popleft()
            queued.discard(node)
            stats.node_updates += 1
            if budget is not None:
                budget.charge_updates()
                check_budget(budget, stats, system)
            if stats.node_updates > update_cap:
                span.annotate(**stats.as_dict())
                raise NonConvergenceError(
                    stats,
                    reason=f"terminal update cap max_updates={update_cap} hit (equation bug?)",
                    snapshot=system.snapshot(),
                )
            if system.update(node):
                stats.changed_updates += 1
                for dep in system.dependents(node):
                    if dep not in queued:
                        queued.add(dep)
                        queue.append(dep)
        stats.converged = True
        _finalize_provenance(system, stats)
        span.annotate(**stats.as_dict())
    _record_solver_metrics("worklist", order_name, stats)
    return stats


def solve_stabilized(
    system,
    order: Optional[Sequence[N]] = None,
    order_name: str = "document",
    max_passes: int = DEFAULT_MAX_PASSES,
    max_rounds: int = 100,
    budget: Optional[ResourceBudget] = None,
) -> SolveStats:
    """Phase-alternating least-fixpoint solver for the parallel/
    synchronized systems (DESIGN.md §5, "solver modes").

    The paper's equations mix ascending flow (``In``/``Out``) with
    subtractive kill sets (``ACCKill``/``ForkKill``/``SynchPass``); the
    combined system is **not monotone**, and plain chaotic iteration can
    both fail to terminate and converge to *different* fixpoints depending
    on visit order (transient facts get trapped in loops — see
    ``tests/regression/test_fixpoint_multiplicity.py``).

    This driver restores determinism by alternating two phases that are
    each monotone with the other half frozen, always restarting from ⊥:

    1. **flow phase** — reset ``In``/``Out`` to ∅ and run ``update_flow``
       sweeps to the least fixpoint given the current kill layer;
    2. **kill phase** — reset the kill layer to ∅ and run ``update_kill``
       sweeps to its least fixpoint given the current flow.

    Rounds repeat until a full round leaves the state unchanged.  Each
    phase result is a least fixpoint of a monotone system, hence
    independent of sweep order — so the overall result is deterministic
    and visit-order independent; it is also never less precise than any
    fixpoint chaotic iteration can reach on the paper's examples
    (property-tested).

    **Cycle resolution.**  The outer round functional is itself not
    monotone, so the round sequence can enter a cycle (period-2 cases
    arise from loop-carried synchronization kills; see
    ``tests/regression/test_fixpoint_multiplicity.py``).  When a round
    state repeats, the solver resolves deterministically and soundly: the
    kill layer is forced to the pointwise **intersection** over the
    cycle's states — keeping only kill facts justified in *every* state,
    i.e. erring toward fewer kills / more reaching definitions — and one
    final flow phase is run.  ``stats.order`` gains a ``+cycle`` suffix
    when this path triggers.

    The required ``EquationSystem`` surface is ``update_flow``/
    ``update_kill``/``reset_flow``/``reset_kill``/``snapshot``/
    ``kill_state``/``set_kill_state``/``meet_values``.
    """
    nodes = list(order) if order is not None else list(system.nodes())
    tracer = get_tracer()
    if budget is not None:
        budget.start()
    system.initialize()
    stats = SolveStats(order=f"stabilized/{order_name}")

    def sweep_to_fixpoint(update, kind: str) -> None:
        with tracer.span("phase", kind=kind) as phase_span:
            phase_passes = 0
            while True:
                if budget is not None:
                    budget.charge_pass()
                    budget.charge_updates(len(nodes))
                    check_budget(budget, stats, system)
                stats.passes += 1
                phase_passes += 1
                if stats.passes > max_passes:
                    raise NonConvergenceError(
                        stats,
                        reason=f"terminal pass cap max_passes={max_passes} hit (equation bug?)",
                        snapshot=system.snapshot(),
                    )
                changed = False
                before = stats.changed_updates
                with tracer.span("pass", index=stats.passes, kind=kind) as pass_span:
                    for node in nodes:
                        stats.node_updates += 1
                        if update(node):
                            stats.changed_updates += 1
                            changed = True
                    pass_span.annotate(changed_updates=stats.changed_updates - before)
                if changed:
                    stats.changing_passes += 1
                else:
                    phase_span.annotate(passes=phase_passes)
                    return

    with tracer.span("solve", solver="stabilized", order=order_name) as span:
        if tracer.enabled:
            stats.span = span
        sweep_to_fixpoint(system.update_flow, "flow")
        history: List[object] = [system.snapshot()]
        kill_history: List[object] = [system.kill_state()]
        for round_index in range(max_rounds):
            with tracer.span("round", index=round_index):
                system.reset_kill()
                sweep_to_fixpoint(system.update_kill, "kill")
                system.reset_flow()
                sweep_to_fixpoint(system.update_flow, "flow")
            current = system.snapshot()
            if current == history[-1]:
                stats.converged = True
                _finalize_provenance(system, stats)
                span.annotate(rounds=round_index + 1, **stats.as_dict())
                _record_solver_metrics("stabilized", order_name, stats)
                return stats
            if current in history:
                # Oscillation: meet the kill layers over the cycle, then one
                # final flow phase under the (now conservative) frozen kills.
                start = history.index(current)
                cycle_kills = kill_history[start:] + [system.kill_state()]
                system.set_kill_state(_meet_kill_states(system, cycle_kills))
                system.reset_flow()
                sweep_to_fixpoint(system.update_flow, "flow")
                stats.order += "+cycle"
                stats.converged = True
                _finalize_provenance(system, stats)
                span.annotate(rounds=round_index + 1, cycle=True, **stats.as_dict())
                _record_solver_metrics("stabilized", order_name, stats)
                return stats
            history.append(current)
            kill_history.append(system.kill_state())
        span.annotate(**stats.as_dict())
    raise NonConvergenceError(
        stats,
        reason=f"terminal round cap max_rounds={max_rounds} hit (equation bug?)",
        snapshot=system.snapshot(),
    )


def _meet_kill_states(system, states):
    """Pointwise intersection of kill-layer states (slot -> node -> set)."""
    meet = system.meet_values
    out = {}
    first = states[0]
    for slot in first:
        out[slot] = {}
        for node in first[slot]:
            value = first[slot][node]
            for other in states[1:]:
                value = meet(value, other[slot][node])
            out[slot][node] = value
    return out


#: Signature shared by the solvers, for parameterized tests/benchmarks.
Solver = Callable[..., SolveStats]

from .dense import DenseConfig  # noqa: E402
from .sched import solve_scc  # noqa: E402  (after _record_solver_metrics exists)


def solve_scc_dense(system, order=None, order_name: str = "scc-dense", **kwargs) -> SolveStats:
    """:func:`~repro.dataflow.sched.solve_scc` with the dense region
    evaluator forced on (``DenseConfig(mode="always")``) for every
    eligible cyclic region — the ``"scc-dense"`` solver name.  Same
    fixpoints as ``scc``, byte-identical; pass ``dense=`` explicitly to
    tune thresholds or wavefront workers instead."""
    kwargs.setdefault("dense", DenseConfig(mode="always"))
    return solve_scc(system, order, order_name=order_name, **kwargs)


SOLVERS = {
    "round-robin": solve_round_robin,
    "worklist": solve_worklist,
    "stabilized": solve_stabilized,
    "scc": solve_scc,
    "scc-dense": solve_scc_dense,
}
