"""Resource budgets and typed non-convergence for guarded solver runs.

The paper's value proposition is *soundness*: reaching-definition sets
that over-approximate every execution.  A solver that silently stops
short of its fixpoint — or blows past any reasonable cost on an
adversarial graph (fixpoint cost can be super-linear; see "On the
computational complexity of Data Flow Analysis" in PAPERS.md) — breaks
that promise operationally even when the equations are right.  This
module gives every fixpoint computation two guarantees:

* it never runs unbounded: a :class:`ResourceBudget` caps wall-clock
  time, sweep passes and node updates, checked cheaply inside the
  solver loops;
* it never fails silently: exceeding a budget (or a solver's own
  terminal ``max_passes`` safety net) raises
  :class:`NonConvergenceError`, which carries the iteration
  :class:`~repro.dataflow.framework.SolveStats`, the *partial* state
  snapshot at the moment of abandonment, and a human-readable reason —
  everything a caller needs to report the failure or degrade gracefully
  (see :mod:`repro.robust` and the driver's degradation ladder).

Budgets are deliberately dumb records with explicit ``charge_*`` calls
rather than context managers wrapping the solvers: the solvers own
their loops, and the checks must sit inside them.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .framework import FixpointDiverged, SolveStats


class NonConvergenceError(FixpointDiverged):
    """A fixpoint computation was abandoned before convergence.

    Raised when a :class:`ResourceBudget` is exhausted or a solver hits
    its terminal ``max_passes`` safety net.  Subclasses
    :class:`~repro.dataflow.framework.FixpointDiverged` so existing
    ``except FixpointDiverged`` handlers keep working; new code should
    catch this type and inspect:

    ``stats``
        the :class:`~repro.dataflow.framework.SolveStats` at abandonment
        (``converged`` is False);
    ``snapshot``
        the partial solver state (``system.snapshot()`` shape), for
        post-mortem inspection — **not** a sound analysis result;
    ``reason``
        which limit was hit, e.g. ``"deadline 0.5s exceeded"``.
    """

    def __init__(self, stats: SolveStats, reason: str, snapshot: object = None):
        self.reason = reason
        self.snapshot = snapshot
        super().__init__(stats)
        # FixpointDiverged's message lacks the reason; rebuild args.
        self.args = (
            f"no fixpoint after {stats.passes} passes "
            f"({stats.node_updates} updates): {reason}",
        )


class BudgetExceeded(NonConvergenceError):
    """A :class:`ResourceBudget` limit was hit mid-solve (distinct from a
    solver's own terminal pass cap, which signals a likely equation bug
    rather than an operational limit)."""


class ResourceBudget:
    """Wall-clock / pass / update caps for one guarded computation.

    All limits are optional; an empty budget never trips.  ``start()``
    arms the deadline clock and is idempotent per budget; the solvers
    call ``charge_pass()`` once per sweep and ``charge_updates(n)`` for
    node-update batches, then ask :meth:`exceeded`.

    A budget accumulates across every solve it is passed to — handing
    one budget to ``analyze`` bounds the *whole* analysis (Preserved
    computation included), not each stage separately.  :meth:`fresh`
    clones the limits with zeroed meters for ladder-style retries.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_passes: Optional[int] = None,
        max_updates: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        self.deadline_s = deadline_s
        self.max_passes = max_passes
        self.max_updates = max_updates
        self._clock = clock
        self._started_at: Optional[float] = None
        self.passes = 0
        self.updates = 0

    def start(self) -> "ResourceBudget":
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    def charge_pass(self, n: int = 1) -> None:
        self.passes += n

    def charge_updates(self, n: int = 1) -> None:
        self.updates += n

    def charge_region(self, sweeps: int, updates: int) -> None:
        """Charge one solved region's whole cost in a single call.

        Used at the dense scheduler's wavefront barrier
        (:func:`repro.dataflow.sched.solve_scc` with ``workers > 1``):
        pooled regions solve in worker processes and report their sweep
        and update totals only when collected, so the budget is charged
        — and checked — per region at the barrier rather than per sweep."""
        self.passes += sweeps
        self.updates += updates

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def exceeded(self) -> Optional[str]:
        """The first limit that has been hit, as a message — or None."""
        if self.max_passes is not None and self.passes > self.max_passes:
            return f"pass budget {self.max_passes} exceeded ({self.passes} passes)"
        if self.max_updates is not None and self.updates > self.max_updates:
            return f"update budget {self.max_updates} exceeded ({self.updates} updates)"
        if self.deadline_s is not None and self._started_at is not None:
            elapsed = self.elapsed()
            if elapsed > self.deadline_s:
                return f"deadline {self.deadline_s}s exceeded ({elapsed:.3f}s elapsed)"
        return None

    def spent(self) -> Dict[str, object]:
        """What this budget has consumed so far (JSON-ready)."""
        return {
            "seconds": round(self.elapsed(), 6),
            "passes": self.passes,
            "updates": self.updates,
        }

    def fresh(self) -> "ResourceBudget":
        """A new, un-started budget with the same limits (meters at zero)."""
        return ResourceBudget(
            deadline_s=self.deadline_s,
            max_passes=self.max_passes,
            max_updates=self.max_updates,
            clock=self._clock,
        )

    def describe(self) -> str:
        limits = []
        if self.deadline_s is not None:
            limits.append(f"deadline={self.deadline_s}s")
        if self.max_passes is not None:
            limits.append(f"max_passes={self.max_passes}")
        if self.max_updates is not None:
            limits.append(f"max_updates={self.max_updates}")
        return "unbounded" if not limits else " ".join(limits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceBudget({self.describe()}, spent={self.spent()})"


def check_budget(
    budget: Optional[ResourceBudget], stats: SolveStats, system
) -> None:
    """Raise :class:`BudgetExceeded` (with a partial snapshot) if
    ``budget`` has a tripped limit.  ``system`` may be None when no
    snapshot is available at the check site."""
    if budget is None:
        return
    reason = budget.exceeded()
    if reason is not None:
        snapshot = system.snapshot() if system is not None else None
        raise BudgetExceeded(stats, reason=reason, snapshot=snapshot)
