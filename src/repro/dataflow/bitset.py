"""Set backends for data-flow values.

The paper notes that "most commercial compilers use the bit vector
intermediate representation".  All equation systems in this package are
written against the small :class:`SetBackend` protocol, with three
interchangeable implementations:

``FrozensetBackend``
    Values are ``frozenset[Definition]`` — slow, but transparent when
    debugging and the natural golden-test representation.

``IntBitsetBackend``
    Values are plain Python integers used as bit vectors (bit ``i`` set iff
    definition with index ``i`` is in the set).  Arbitrary-precision ints
    give branch-free union/intersection/difference in C; this is the
    production backend.

``NumpyBitsetBackend``
    Values are ``numpy.uint64`` arrays of packed bits.  Included for the
    backend ablation benchmark (``benchmarks/bench_backends.py``): for the
    universe sizes real procedures produce, Python ints win — NumPy's
    per-call overhead dominates below a few thousand definitions.

The property test ``tests/property/test_backends_agree.py`` checks all
three produce identical fixpoints.
"""

from __future__ import annotations

from typing import FrozenSet, Generic, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from ..ir.defs import Definition
from ..obs import bitset_counting_enabled, get_metrics

S = TypeVar("S")


class SetBackend(Generic[S]):
    """Operations over subsets of a fixed definition universe.

    Subclasses must be *pure*: every operation returns a fresh value and
    never mutates its arguments (solver state snapshots rely on this).
    """

    name = "abstract"

    def __init__(self, universe: Sequence[Definition]):
        self.universe: List[Definition] = list(universe)

    # -- constructors --------------------------------------------------

    def empty(self) -> S:
        raise NotImplementedError

    def from_defs(self, defs: Iterable[Definition]) -> S:
        raise NotImplementedError

    # -- operations ----------------------------------------------------

    def union(self, a: S, b: S) -> S:
        raise NotImplementedError

    def intersection(self, a: S, b: S) -> S:
        raise NotImplementedError

    def difference(self, a: S, b: S) -> S:
        raise NotImplementedError

    def equals(self, a: S, b: S) -> bool:
        raise NotImplementedError

    # -- derived helpers -------------------------------------------------

    def union_all(self, sets: Iterable[S]) -> S:
        """Union of a family; the empty family gives the empty set."""
        out = self.empty()
        for s in sets:
            out = self.union(out, s)
        return out

    def intersection_all(self, sets: Iterable[S]) -> S:
        """Intersection of a family.

        Per DESIGN.md §2, the intersection of an **empty** family is the
        **empty set** — the convention the paper's worked examples use for
        blocks with no sequential (or synchronization) predecessors.
        """
        out: S = None  # type: ignore[assignment]
        first = True
        for s in sets:
            out = s if first else self.intersection(out, s)
            first = False
        return self.empty() if first else out

    # -- conversion ------------------------------------------------------

    def to_frozenset(self, s: S) -> FrozenSet[Definition]:
        raise NotImplementedError

    def size(self, s: S) -> int:
        return len(self.to_frozenset(s))


class FrozensetBackend(SetBackend[FrozenSet[Definition]]):
    name = "set"

    def empty(self) -> FrozenSet[Definition]:
        return frozenset()

    def from_defs(self, defs: Iterable[Definition]) -> FrozenSet[Definition]:
        return frozenset(defs)

    def union(self, a, b):
        return a | b

    def intersection(self, a, b):
        return a & b

    def difference(self, a, b):
        return a - b

    def equals(self, a, b) -> bool:
        return a == b

    def to_frozenset(self, s):
        return s

    def size(self, s) -> int:
        return len(s)


class IntBitsetBackend(SetBackend[int]):
    name = "bitset"

    def empty(self) -> int:
        return 0

    def from_defs(self, defs: Iterable[Definition]) -> int:
        out = 0
        for d in defs:
            out |= 1 << d.index
        return out

    def union(self, a: int, b: int) -> int:
        return a | b

    def intersection(self, a: int, b: int) -> int:
        return a & b

    def difference(self, a: int, b: int) -> int:
        return a & ~b

    def equals(self, a: int, b: int) -> bool:
        return a == b

    def to_frozenset(self, s: int) -> FrozenSet[Definition]:
        # Extract set bits directly (s & -s isolates the lowest one) so
        # sparse sets decode in O(popcount), not O(highest bit index).
        out = []
        while s:
            low = s & -s
            out.append(self.universe[low.bit_length() - 1])
            s ^= low
        return frozenset(out)

    def size(self, s: int) -> int:
        return s.bit_count()


class NumpyBitsetBackend(SetBackend[np.ndarray]):
    name = "numpy"

    def __init__(self, universe: Sequence[Definition]):
        super().__init__(universe)
        self.n_words = max(1, (len(self.universe) + 63) // 64)

    def empty(self) -> np.ndarray:
        return np.zeros(self.n_words, dtype=np.uint64)

    def from_defs(self, defs: Iterable[Definition]) -> np.ndarray:
        out = self.empty()
        for d in defs:
            out[d.index >> 6] |= np.uint64(1) << np.uint64(d.index & 63)
        return out

    def union(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a | b

    def intersection(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & b

    def difference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & ~b

    def equals(self, a: np.ndarray, b: np.ndarray) -> bool:
        return bool(np.array_equal(a, b))

    def to_frozenset(self, s: np.ndarray) -> FrozenSet[Definition]:
        out = []
        for word_index, word in enumerate(s.tolist()):
            base = word_index << 6
            while word:
                low = word & -word
                out.append(self.universe[base + low.bit_length() - 1])
                word ^= low
        return frozenset(out)

    def size(self, s: np.ndarray) -> int:
        # Word-wise popcount; np.unpackbits would allocate 8 bytes per bit
        # on every call.
        return sum(int(w).bit_count() for w in s.tolist())


class CountingBackend(SetBackend):
    """Delegating proxy that counts set operations into the current
    :mod:`repro.obs` metrics registry.

    Counts two things per union/intersection/difference/equals call:
    ``bitset.ops`` (one per operation) and ``bitset.word_ops`` (operations
    weighted by the 64-bit word width of the universe — the paper-era cost
    model for bit-vector data flow, comparable across backends).

    Counting is accurate but not free, so it is **opt-in**: plain
    ``make_backend`` never wraps unless an observability session was
    installed with ``count_bitset_ops=True`` (or the caller forces
    ``count_ops=True``).  When disabled, code paths get the raw backend —
    literally zero overhead.
    """

    def __init__(self, inner: SetBackend):
        self.inner = inner
        self.universe = inner.universe
        self.name = inner.name  # transparent: results report the real backend
        self._words = max(1, (len(inner.universe) + 63) // 64)
        metrics = get_metrics()
        self._ops = metrics.counter("bitset.ops")
        self._word_ops = metrics.counter("bitset.word_ops")

    def _count(self) -> None:
        self._ops.inc()
        self._word_ops.inc(self._words)

    def empty(self):
        return self.inner.empty()

    def from_defs(self, defs):
        return self.inner.from_defs(defs)

    def union(self, a, b):
        self._count()
        return self.inner.union(a, b)

    def intersection(self, a, b):
        self._count()
        return self.inner.intersection(a, b)

    def difference(self, a, b):
        self._count()
        return self.inner.difference(a, b)

    def equals(self, a, b) -> bool:
        self._count()
        return self.inner.equals(a, b)

    def to_frozenset(self, s):
        return self.inner.to_frozenset(s)

    def size(self, s) -> int:
        return self.inner.size(s)


#: Registry used by user-facing ``backend=`` parameters.
BACKENDS = {
    cls.name: cls for cls in (FrozensetBackend, IntBitsetBackend, NumpyBitsetBackend)
}


def make_backend(
    name: str,
    universe: Sequence[Definition],
    count_ops: Optional[bool] = None,
) -> SetBackend:
    """Instantiate a backend by name (``"set"``, ``"bitset"``, ``"numpy"``).

    ``count_ops`` wraps the backend in :class:`CountingBackend`; the
    default (``None``) defers to the ambient observability session
    (``repro.obs.session(count_bitset_ops=True)``), so analyses need no
    plumbing to opt in.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown set backend {name!r}; choose from {sorted(BACKENDS)}") from None
    backend = cls(universe)
    if count_ops if count_ops is not None else bitset_counting_enabled():
        backend = CountingBackend(backend)
    return backend
