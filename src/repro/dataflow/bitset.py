"""Set backends for data-flow values.

The paper notes that "most commercial compilers use the bit vector
intermediate representation".  All equation systems in this package are
written against the small :class:`SetBackend` protocol, with three
interchangeable implementations:

``FrozensetBackend``
    Values are ``frozenset[Definition]`` — slow, but transparent when
    debugging and the natural golden-test representation.

``IntBitsetBackend``
    Values are plain Python integers used as bit vectors (bit ``i`` set iff
    definition with index ``i`` is in the set).  Arbitrary-precision ints
    give branch-free union/intersection/difference in C; this is the
    production backend.

``NumpyBitsetBackend``
    Values are ``numpy.uint64`` arrays of packed bits.  Included for the
    backend ablation benchmark (``benchmarks/bench_backends.py``): for the
    universe sizes real procedures produce, Python ints win — NumPy's
    per-call overhead dominates below a few thousand definitions.

The property test ``tests/property/test_backends_agree.py`` checks all
three produce identical fixpoints.
"""

from __future__ import annotations

from typing import FrozenSet, Generic, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from ..ir.defs import Definition
from ..obs import bitset_counting_enabled, get_metrics

S = TypeVar("S")


class SetBackend(Generic[S]):
    """Operations over subsets of a fixed definition universe.

    Subclasses must be *pure*: every operation returns a fresh value and
    never mutates its arguments (solver state snapshots rely on this).
    """

    name = "abstract"

    def __init__(self, universe: Sequence[Definition]):
        self.universe: List[Definition] = list(universe)
        #: 64-bit words needed to pack one subset of the universe — the
        #: row width of the packed (:class:`BulkView`) representation.
        self.n_words = max(1, (len(self.universe) + 63) // 64)

    # -- constructors --------------------------------------------------

    def empty(self) -> S:
        raise NotImplementedError

    def from_defs(self, defs: Iterable[Definition]) -> S:
        raise NotImplementedError

    # -- operations ----------------------------------------------------

    def union(self, a: S, b: S) -> S:
        raise NotImplementedError

    def intersection(self, a: S, b: S) -> S:
        raise NotImplementedError

    def difference(self, a: S, b: S) -> S:
        raise NotImplementedError

    def equals(self, a: S, b: S) -> bool:
        raise NotImplementedError

    # -- fused operations --------------------------------------------------
    #
    # The equation hot paths compute ``(a ∪ b) − c`` (the accumulated-kill
    # base) and ``(a − b) ∪ c`` (the classical Out) constantly.  The
    # derived forms below are correct for every backend; backends whose
    # values carry per-call overhead (NumPy array allocation, Python call
    # dispatch) override them with single-pass implementations.  Both are
    # pure like every other operation: fresh value out, arguments intact.

    def union_difference(self, a: S, b: S, c: S) -> S:
        """``(a ∪ b) − c`` in one call."""
        return self.difference(self.union(a, b), c)

    def difference_union(self, a: S, b: S, c: S) -> S:
        """``(a − b) ∪ c`` in one call."""
        return self.union(self.difference(a, b), c)

    # -- derived helpers -------------------------------------------------

    def union_all(self, sets: Iterable[S]) -> S:
        """Union of a family; the empty family gives the empty set."""
        out = self.empty()
        for s in sets:
            out = self.union(out, s)
        return out

    def intersection_all(self, sets: Iterable[S]) -> S:
        """Intersection of a family.

        Per DESIGN.md §2, the intersection of an **empty** family is the
        **empty set** — the convention the paper's worked examples use for
        blocks with no sequential (or synchronization) predecessors.
        """
        out: S = None  # type: ignore[assignment]
        first = True
        for s in sets:
            out = s if first else self.intersection(out, s)
            first = False
        return self.empty() if first else out

    # -- conversion ------------------------------------------------------

    def to_frozenset(self, s: S) -> FrozenSet[Definition]:
        raise NotImplementedError

    def size(self, s: S) -> int:
        return len(self.to_frozenset(s))

    # -- packed (bulk) conversion ----------------------------------------
    #
    # The dense region evaluator (:mod:`repro.dataflow.dense`) stacks many
    # values into one 2-D ``uint64`` array; these convert one value to and
    # from its packed row.  The generic forms route through frozensets and
    # work for any backend; the bit-vector backends override them with
    # direct word copies.

    def to_words(self, s: S) -> np.ndarray:
        """``s`` as a fresh ``(n_words,)`` array of packed ``uint64``."""
        out = np.zeros(self.n_words, dtype=np.uint64)
        for d in self.to_frozenset(s):
            out[d.index >> 6] |= np.uint64(1) << np.uint64(d.index & 63)
        return out

    def from_words(self, words: np.ndarray) -> S:
        """A backend value from a packed ``(n_words,)`` ``uint64`` row."""
        out = []
        for word_index, word in enumerate(words.tolist()):
            base = word_index << 6
            while word:
                low = word & -word
                out.append(self.universe[base + low.bit_length() - 1])
                word ^= low
        return self.from_defs(out)


class FrozensetBackend(SetBackend[FrozenSet[Definition]]):
    name = "set"

    def empty(self) -> FrozenSet[Definition]:
        return frozenset()

    def from_defs(self, defs: Iterable[Definition]) -> FrozenSet[Definition]:
        return frozenset(defs)

    def union(self, a, b):
        return a | b

    def intersection(self, a, b):
        return a & b

    def difference(self, a, b):
        return a - b

    def equals(self, a, b) -> bool:
        return a == b

    def to_frozenset(self, s):
        return s

    def size(self, s) -> int:
        return len(s)


class IntBitsetBackend(SetBackend[int]):
    name = "bitset"

    def empty(self) -> int:
        return 0

    def from_defs(self, defs: Iterable[Definition]) -> int:
        out = 0
        for d in defs:
            out |= 1 << d.index
        return out

    def union(self, a: int, b: int) -> int:
        return a | b

    def intersection(self, a: int, b: int) -> int:
        return a & b

    def difference(self, a: int, b: int) -> int:
        return a & ~b

    def union_difference(self, a: int, b: int, c: int) -> int:
        return (a | b) & ~c

    def difference_union(self, a: int, b: int, c: int) -> int:
        return (a & ~b) | c

    def equals(self, a: int, b: int) -> bool:
        return a == b

    def to_frozenset(self, s: int) -> FrozenSet[Definition]:
        # Extract set bits directly (s & -s isolates the lowest one) so
        # sparse sets decode in O(popcount), not O(highest bit index).
        out = []
        while s:
            low = s & -s
            out.append(self.universe[low.bit_length() - 1])
            s ^= low
        return frozenset(out)

    def size(self, s: int) -> int:
        return s.bit_count()

    def to_words(self, s: int) -> np.ndarray:
        return np.frombuffer(
            s.to_bytes(self.n_words * 8, "little"), dtype=np.uint64
        ).copy()

    def from_words(self, words: np.ndarray) -> int:
        return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


class NumpyBitsetBackend(SetBackend[np.ndarray]):
    name = "numpy"

    def empty(self) -> np.ndarray:
        return np.zeros(self.n_words, dtype=np.uint64)

    def from_defs(self, defs: Iterable[Definition]) -> np.ndarray:
        out = self.empty()
        for d in defs:
            out[d.index >> 6] |= np.uint64(1) << np.uint64(d.index & 63)
        return out

    def union(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a | b

    def intersection(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & b

    def difference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & ~b

    def union_difference(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        # One fresh output buffer instead of the three temporaries the
        # composed difference(union(a, b), c) allocates.
        out = np.bitwise_or(a, b)
        out &= ~c
        return out

    def difference_union(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        out = np.bitwise_and(a, ~b)
        out |= c
        return out

    def equals(self, a: np.ndarray, b: np.ndarray) -> bool:
        return bool(np.array_equal(a, b))

    def to_frozenset(self, s: np.ndarray) -> FrozenSet[Definition]:
        out = []
        for word_index, word in enumerate(s.tolist()):
            base = word_index << 6
            while word:
                low = word & -word
                out.append(self.universe[base + low.bit_length() - 1])
                word ^= low
        return frozenset(out)

    def size(self, s: np.ndarray) -> int:
        # Word-wise popcount; np.unpackbits would allocate 8 bytes per bit
        # on every call.
        return sum(int(w).bit_count() for w in s.tolist())

    def to_words(self, s: np.ndarray) -> np.ndarray:
        return np.array(s, dtype=np.uint64, copy=True)

    def from_words(self, words: np.ndarray) -> np.ndarray:
        return np.array(words, dtype=np.uint64, copy=True)


class CountingBackend(SetBackend):
    """Delegating proxy that counts set operations into the current
    :mod:`repro.obs` metrics registry.

    Counts two things per union/intersection/difference/equals call:
    ``bitset.ops`` (one per operation) and ``bitset.word_ops`` (operations
    weighted by the 64-bit word width of the universe — the paper-era cost
    model for bit-vector data flow, comparable across backends).

    Counting is accurate but not free, so it is **opt-in**: plain
    ``make_backend`` never wraps unless an observability session was
    installed with ``count_bitset_ops=True`` (or the caller forces
    ``count_ops=True``).  When disabled, code paths get the raw backend —
    literally zero overhead.
    """

    def __init__(self, inner: SetBackend):
        self.inner = inner
        self.universe = inner.universe
        self.name = inner.name  # transparent: results report the real backend
        self.n_words = inner.n_words
        self._words = inner.n_words
        metrics = get_metrics()
        self._ops = metrics.counter("bitset.ops")
        self._word_ops = metrics.counter("bitset.word_ops")

    def _count(self) -> None:
        self._ops.inc()
        self._word_ops.inc(self._words)

    def empty(self):
        return self.inner.empty()

    def from_defs(self, defs):
        return self.inner.from_defs(defs)

    def union(self, a, b):
        self._count()
        return self.inner.union(a, b)

    def intersection(self, a, b):
        self._count()
        return self.inner.intersection(a, b)

    def difference(self, a, b):
        self._count()
        return self.inner.difference(a, b)

    def equals(self, a, b) -> bool:
        self._count()
        return self.inner.equals(a, b)

    def union_difference(self, a, b, c):
        # A fused call stands for two logical set operations in the
        # paper-era cost model.
        self._count()
        self._count()
        return self.inner.union_difference(a, b, c)

    def difference_union(self, a, b, c):
        self._count()
        self._count()
        return self.inner.difference_union(a, b, c)

    def to_frozenset(self, s):
        return self.inner.to_frozenset(s)

    def size(self, s) -> int:
        return self.inner.size(s)

    def to_words(self, s):
        return self.inner.to_words(s)

    def from_words(self, words):
        return self.inner.from_words(words)


class BulkView:
    """Packed 2-D view over a backend's values for bulk (dense) evaluation.

    The dense region evaluator (:mod:`repro.dataflow.dense`) operates on
    ``(rows, n_words)`` ``uint64`` matrices — one packed row per node.
    ``BulkView`` is the bridge: it packs lists of scalar backend values
    into such matrices and unpacks result rows back into backend values,
    regardless of which scalar backend the caller chose.  Conversion
    routes through :meth:`SetBackend.to_words` / ``from_words`` so the
    bit-vector backends get direct word copies while ``FrozensetBackend``
    still round-trips correctly.

    The view never mutates scalar values (packing copies), so the scalar
    API's purity contract is untouched; the *matrices* it returns are the
    dense evaluator's private mutable state.
    """

    def __init__(self, backend: SetBackend):
        # Unwrap the counting proxy: bulk sweeps are accounted for by the
        # dense evaluator's own obs counters (one matrix op stands for
        # thousands of scalar calls, so per-call counting would be both
        # slow and misleading).
        self.backend = backend.inner if isinstance(backend, CountingBackend) else backend
        self.n_words = self.backend.n_words

    def zeros(self, rows: int) -> np.ndarray:
        """A fresh all-empty ``(rows, n_words)`` packed matrix."""
        return np.zeros((rows, self.n_words), dtype=np.uint64)

    def pack(self, values: Iterable) -> np.ndarray:
        """Stack scalar backend values into a packed matrix, row per value."""
        rows = [self.backend.to_words(v) for v in values]
        if not rows:
            return self.zeros(0)
        return np.stack(rows)

    def unpack_row(self, matrix: np.ndarray, row: int):
        """The scalar backend value stored in ``matrix[row]``."""
        return self.backend.from_words(matrix[row])


#: Registry used by user-facing ``backend=`` parameters.
BACKENDS = {
    cls.name: cls for cls in (FrozensetBackend, IntBitsetBackend, NumpyBitsetBackend)
}


def make_backend(
    name: str,
    universe: Sequence[Definition],
    count_ops: Optional[bool] = None,
) -> SetBackend:
    """Instantiate a backend by name (``"set"``, ``"bitset"``, ``"numpy"``).

    ``count_ops`` wraps the backend in :class:`CountingBackend`; the
    default (``None``) defers to the ambient observability session
    (``repro.obs.session(count_bitset_ops=True)``), so analyses need no
    plumbing to opt in.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown set backend {name!r}; choose from {sorted(BACKENDS)}") from None
    backend = cls(universe)
    if count_ops if count_ops is not None else bitset_counting_enabled():
        backend = CountingBackend(backend)
    return backend
