"""Dense (vectorized) evaluation of cyclic SCC regions.

The scc engine's scalar inner loop (:mod:`repro.dataflow.sched`) runs one
Python-level bitset expression per node update, and — worse — one
frozenset conversion per node per stabilization round for the round
history.  This module evaluates a whole cyclic region at once instead:
the region's rows are stacked into 2-D packed ``uint64`` matrices (one
row per node, one column per 64 definitions — the paper's bit-vector
representation, two-dimensional), and every sweep is a handful of
whole-region ``|`` / ``&~`` array operations plus adjacency-driven
row-gather joins (``np.bitwise_or.reduceat`` / ``bitwise_and.reduceat``
over fancy-indexed source matrices).

Why the fixpoints are byte-identical to the scalar path
-------------------------------------------------------

The scalar region solver alternates *flow* and *kill* phases, each of
which is a **monotone** functional (with the other layer frozen) iterated
from ⊥ to its least fixpoint.  A least fixpoint of a monotone functional
over a finite lattice is independent of the iteration strategy (chaotic
iteration theorem): Gauss–Seidel sweeps in any order, Jacobi rounds, and
the levelized sweeps used here all terminate at the same values.  The
dense evaluator therefore reproduces each phase fixpoint *exactly*; since
the round history, cycle detection, and conservative kill-meet are pure
functions of the phase fixpoints, the whole region result — and hence the
global fixpoint — is byte-identical to the scalar engine's.  (The
property suite in ``tests/property/test_dense_region.py`` and the
``solver-agreement`` fuzz oracle pin this.)

Sweep mechanics
---------------

Region rows are ordered by the caller's sweep priority.  Levels are the
longest-path depth over *forward* edges (pred before successor in that
order); within a sweep, levels evaluate in order and each level's rows
are written in place, so forward dependencies read this-sweep values
(Gauss–Seidel) while back edges read previous-sweep values.  Meet/join
families gather through a per-slot *source pool* matrix: rows ``[0, R)``
are the live region rows (updated in place), followed by one constant row
per external (already-final upstream) node referenced, and a trailing
all-zeros sentinel row that stands in for empty families (the empty union
and — per DESIGN.md §2 — the empty intersection are both ∅).

Two system profiles are supported, detected structurally so this module
never imports :mod:`repro.reachdefs`:

``"plain"``
    Classical monotone In/Out systems (``_in``/``_out``/``_gen``/
    ``_kill`` over ``graph.control_preds``): one flow fixpoint, no
    rounds.

``"phase"``
    The §5 parallel system (``In``/``Out``/``ACCKillin``/``ACCKillout``/
    ``ForkKill``): full stabilized round protocol with cycle-meet.

The §6 synchronized system (``SynchPass`` present) deliberately reports
*no* profile — its sync-ordering layer stays on the scalar path, which
the dispatch counters make observable (``repro stats``).

Everything in a :class:`RegionProgram` is plain numpy + ints, so programs
pickle cleanly to :class:`~concurrent.futures.ProcessPoolExecutor`
workers for wavefront region parallelism (see ``sched.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bitset import BulkView

#: Attribute signature of the classical monotone systems (§2).
PLAIN_ATTRS = ("_in", "_out", "_gen", "_kill", "graph")

#: Attribute signature of the §5 phase-split system.
PHASE_ATTRS = (
    "In",
    "Out",
    "ACCKillin",
    "ACCKillout",
    "ForkKill",
    "_gen",
    "_kill",
    "_parkill",
    "_all_preds",
    "_par_preds",
    "_seq_preds",
)


@dataclass(frozen=True)
class DenseConfig:
    """When and how the dense region evaluator engages.

    ``mode``
        ``"auto"`` — engage per region when the thresholds below say the
        matrix formulation pays for itself; ``"always"`` — every eligible
        cyclic region goes dense (the ``scc-dense`` solver name, and what
        the agreement tests use for maximum coverage); ``"never"`` —
        scalar everywhere (equivalent to not passing a config).
    ``min_nodes`` / ``min_cells``
        auto-mode floors on region size: the region must have at least
        ``min_nodes`` nodes and ``nodes × words`` packed cells of at
        least ``min_cells``, else per-call numpy overhead dominates.
    ``min_width``
        auto-mode floor on ``nodes / levels``: a narrow-deep region (a
        loop-wrapped chain collapses to width ≈ 1) sweeps as many levels
        as nodes, so the vectorization has nothing to batch.
    ``workers``
        wavefront region parallelism: independent dense regions at the
        same condensation depth are solved concurrently on up to this
        many processes (1 = in-process).
    """

    mode: str = "auto"
    min_nodes: int = 32
    min_cells: int = 64
    min_width: float = 2.0
    workers: int = 1

    def __post_init__(self):
        if self.mode not in ("auto", "always", "never"):
            raise ValueError(
                f"unknown dense mode {self.mode!r}; choose auto, always or never"
            )
        if self.workers < 1:
            raise ValueError("dense workers must be >= 1")

    def key(self) -> Tuple:
        """Result-affecting identity (for cache keys — workers excluded:
        they change wall-clock, never values)."""
        return ("dense", self.mode, self.min_nodes, self.min_cells, self.min_width)


class RegionDiverged(RuntimeError):
    """A dense region hit a terminal pass/round cap; the scc driver
    converts this into a :class:`~repro.dataflow.budget.NonConvergenceError`
    (workers re-raise it across the process boundary)."""


def dense_profile(system) -> Optional[str]:
    """Which dense formulation fits ``system`` — ``"plain"``, ``"phase"``,
    or None for the scalar fallback.

    Detection is structural (duck-typed on the equation-state attributes)
    so the dataflow layer keeps its independence from
    :mod:`repro.reachdefs`.  Systems carrying a ``SynchPass`` layer (§6)
    are deliberately unsupported: their sync-ordering equations stay on
    the scalar path.
    """
    if all(hasattr(system, a) for a in PHASE_ATTRS):
        if hasattr(system, "SynchPass"):
            return None
        return "phase"
    if all(hasattr(system, a) for a in PLAIN_ATTRS):
        return "plain"
    return None


# -- gather plans ----------------------------------------------------------


@dataclass
class _Plan:
    """One reduceat gather: for each destination, reduce the pool rows of
    its source family.  Empty families point at the pool's zeros sentinel
    (reduceat has no identity element for empty segments)."""

    idx: np.ndarray  # concatenated pool-row indices, family by family
    starts: np.ndarray  # family start offsets into idx

    def union(self, pool: np.ndarray) -> np.ndarray:
        return np.bitwise_or.reduceat(pool[self.idx], self.starts, axis=0)

    def intersect(self, pool: np.ndarray) -> np.ndarray:
        return np.bitwise_and.reduceat(pool[self.idx], self.starts, axis=0)


def _make_plan(families: Sequence[Sequence[int]], zeros_row: int) -> _Plan:
    idx: List[int] = []
    starts: List[int] = []
    for fam in families:
        starts.append(len(idx))
        if fam:
            idx.extend(fam)
        else:
            idx.append(zeros_row)
    return _Plan(np.asarray(idx, dtype=np.intp), np.asarray(starts, dtype=np.intp))


class _ConstPool:
    """Registry of external (already-final) values referenced by a region:
    each distinct external node gets one constant pool row."""

    def __init__(self, n_live: int):
        self.n_live = n_live
        self.rows: List[np.ndarray] = []
        self._index: Dict[object, int] = {}

    def row_for(self, node, value_row: Callable[[], np.ndarray]) -> int:
        got = self._index.get(node)
        if got is None:
            got = self.n_live + len(self.rows)
            self.rows.append(value_row())
            self._index[node] = got
        return got

    @property
    def zeros_row(self) -> int:
        """Sentinel index — only valid once every constant is registered."""
        return self.n_live + len(self.rows)

    def build(self, n_words: int) -> np.ndarray:
        pool = np.zeros((self.n_live + len(self.rows) + 1, n_words), dtype=np.uint64)
        for j, row in enumerate(self.rows):
            pool[self.n_live + j] = row
        return pool


def _levelize(n_rows: int, pred_rows: Sequence[Sequence[int]]) -> List[np.ndarray]:
    """Longest-path levels over forward edges (pred row < node row).
    Rows are in sweep-priority order, so all forward preds of a row are
    levelled before it."""
    level = [0] * n_rows
    for r in range(n_rows):
        best = 0
        for p in pred_rows[r]:
            if p < r and level[p] >= best:
                best = level[p] + 1
        level[r] = best
    n_levels = (max(level) + 1) if n_rows else 0
    buckets: List[List[int]] = [[] for _ in range(n_levels)]
    for r in range(n_rows):
        buckets[level[r]].append(r)
    return [np.asarray(b, dtype=np.intp) for b in buckets]


# -- region programs -------------------------------------------------------


@dataclass
class _KillLevel:
    """One level of the kill-phase sweep.  ``rows`` is the concatenation
    of the non-join and join destination rows (the per-level results are
    stacked in that order)."""

    rows: np.ndarray
    n_nonjoin: int
    nonjoin_plan: Optional[_Plan]  # ∩ over par+seq preds (ACCKillin, non-join)
    join_rows: np.ndarray
    join_par_plan: Optional[_Plan]  # ∪ over par preds (ACCKillin, join)
    join_seq_plan: Optional[_Plan]  # ∩ over seq preds (ACCKillin, join)
    join_fork_idx: Optional[np.ndarray]  # fk-pool row of each join's fork


@dataclass
class RegionProgram:
    """A cyclic region compiled to numpy form: constants, source pools and
    gather plans.  Pure data (arrays + ints) — picklable to pool workers;
    node identities live only in the builder and the write-back."""

    profile: str
    n_rows: int
    n_words: int
    width: float
    # Flow layer (both profiles): Out is the iterated slot.
    out_pool: np.ndarray  # (R + consts + 1, W); rows [0, R) live
    flow_levels: List[Tuple[np.ndarray, _Plan]]
    gen: np.ndarray  # (R, W)
    out_kill: np.ndarray  # (R, W): what Out subtracts (Kill [| ParallelKill])
    # Kill layer (phase profile only).
    in_sub_plan: Optional[_Plan] = None  # ∪ ACCKillout over par preds
    ako_pool: Optional[np.ndarray] = None
    fk_pool: Optional[np.ndarray] = None
    kill_acc: Optional[np.ndarray] = None  # (R, W): Kill for the ACCKill base
    is_fork: Optional[np.ndarray] = None  # (R,) bool
    kill_levels: Optional[List[_KillLevel]] = None


@dataclass
class RegionSolution:
    """Converged packed rows plus iteration accounting for one region."""

    profile: str
    in_rows: np.ndarray
    out_rows: np.ndarray
    aki_rows: Optional[np.ndarray] = None
    ako_rows: Optional[np.ndarray] = None
    fk_rows: Optional[np.ndarray] = None
    sweeps: int = 0
    rounds: int = 0
    cycle: bool = False
    node_updates: int = 0
    changed_updates: int = 0


def build_region_program(system, rnodes: Sequence, profile: str) -> RegionProgram:
    """Compile one cyclic region of ``system`` (nodes in sweep-priority
    order) into a :class:`RegionProgram`.  External values are read from
    the system's current state — the scc driver guarantees they are final
    when the region is reached."""
    bulk = BulkView(system.ops)
    words = bulk.backend.to_words
    n_words = bulk.n_words
    n_rows = len(rnodes)
    pos = {n: i for i, n in enumerate(rnodes)}

    if profile == "plain":
        graph = system.graph
        out_slot, gen_slot, kill_slot = system._out, system._gen, system._kill
        out_consts = _ConstPool(n_rows)
        flow_families: List[List[int]] = []
        flow_pred_rows: List[List[int]] = []
        for n in rnodes:
            fam: List[int] = []
            inreg: List[int] = []
            for p in graph.control_preds(n):
                r = pos.get(p)
                if r is not None:
                    fam.append(r)
                    inreg.append(r)
                else:
                    fam.append(out_consts.row_for(p, lambda p=p: words(out_slot[p])))
            flow_families.append(fam)
            flow_pred_rows.append(inreg)
        levels = _levelize(n_rows, flow_pred_rows)
        zeros = out_consts.zeros_row
        flow_levels = [
            (rows, _make_plan([flow_families[r] for r in rows], zeros))
            for rows in levels
        ]
        gen = np.stack([words(gen_slot[n]) for n in rnodes])
        out_kill = np.stack([words(kill_slot[n]) for n in rnodes])
        return RegionProgram(
            profile=profile,
            n_rows=n_rows,
            n_words=n_words,
            width=n_rows / max(1, len(levels)),
            out_pool=out_consts.build(n_words),
            flow_levels=flow_levels,
            gen=gen,
            out_kill=out_kill,
        )

    if profile != "phase":
        raise ValueError(f"unknown dense profile {profile!r}")

    out_consts = _ConstPool(n_rows)
    ako_consts = _ConstPool(n_rows)
    fk_consts = _ConstPool(n_rows)
    flow_families = []
    flow_pred_rows = []
    par_families: List[List[int]] = []
    seq_families: List[List[int]] = []
    kill_pred_rows: List[List[int]] = []
    for n in rnodes:
        fam, inreg = [], []
        for p in system._all_preds[n]:
            r = pos.get(p)
            if r is not None:
                fam.append(r)
                inreg.append(r)
            else:
                fam.append(out_consts.row_for(p, lambda p=p: words(system.Out[p])))
        flow_families.append(fam)
        flow_pred_rows.append(inreg)

        pfam, sfam, kpreds = [], [], []
        for p in system._par_preds[n]:
            r = pos.get(p)
            if r is not None:
                pfam.append(r)
                kpreds.append(r)
            else:
                pfam.append(ako_consts.row_for(p, lambda p=p: words(system.ACCKillout[p])))
        for p in system._seq_preds[n]:
            r = pos.get(p)
            if r is not None:
                sfam.append(r)
                kpreds.append(r)
            else:
                sfam.append(ako_consts.row_for(p, lambda p=p: words(system.ACCKillout[p])))
        if n.is_join and not n.is_fork and n.fork is not None and n.fork in pos:
            kpreds.append(pos[n.fork])
        par_families.append(pfam)
        seq_families.append(sfam)
        kill_pred_rows.append(kpreds)

    flow_level_rows = _levelize(n_rows, flow_pred_rows)
    kill_level_rows = _levelize(n_rows, kill_pred_rows)

    # Flow plans must be built before the pools: registering constants
    # moves the zeros sentinel, so plans snapshot it only after every
    # family for that pool has been walked (done above).
    flow_levels = [
        (rows, _make_plan([flow_families[r] for r in rows], out_consts.zeros_row))
        for rows in flow_level_rows
    ]
    in_sub_plan = _make_plan(par_families, ako_consts.zeros_row)

    is_fork = np.array([bool(n.is_fork) for n in rnodes])
    is_join = [bool(n.is_join and not n.is_fork) for n in rnodes]
    join_fork_pool_row: Dict[int, int] = {}
    for i, n in enumerate(rnodes):
        if is_join[i]:
            assert n.fork is not None
            r = pos.get(n.fork)
            if r is None:
                r = fk_consts.row_for(
                    n.fork, lambda f=n.fork: words(system.ForkKill[f])
                )
            join_fork_pool_row[i] = r

    ako_zeros = ako_consts.zeros_row
    kill_levels: List[_KillLevel] = []
    for rows in kill_level_rows:
        nonjoin = [r for r in rows.tolist() if not is_join[r]]
        joins = [r for r in rows.tolist() if is_join[r]]
        kill_levels.append(
            _KillLevel(
                rows=np.asarray(nonjoin + joins, dtype=np.intp),
                n_nonjoin=len(nonjoin),
                nonjoin_plan=_make_plan(
                    [par_families[r] + seq_families[r] for r in nonjoin], ako_zeros
                )
                if nonjoin
                else None,
                join_rows=np.asarray(joins, dtype=np.intp),
                join_par_plan=_make_plan([par_families[r] for r in joins], ako_zeros)
                if joins
                else None,
                join_seq_plan=_make_plan([seq_families[r] for r in joins], ako_zeros)
                if joins
                else None,
                join_fork_idx=np.asarray(
                    [join_fork_pool_row[r] for r in joins], dtype=np.intp
                )
                if joins
                else None,
            )
        )

    gen = np.stack([words(system._gen[n]) for n in rnodes])
    kill_acc = np.stack([words(system._kill[n]) for n in rnodes])
    parkill = np.stack([words(system._parkill[n]) for n in rnodes])
    return RegionProgram(
        profile=profile,
        n_rows=n_rows,
        n_words=n_words,
        width=n_rows / max(1, len(flow_level_rows)),
        out_pool=out_consts.build(n_words),
        flow_levels=flow_levels,
        gen=gen,
        out_kill=kill_acc | parkill,
        in_sub_plan=in_sub_plan,
        ako_pool=ako_consts.build(n_words),
        fk_pool=fk_consts.build(n_words),
        kill_acc=kill_acc,
        is_fork=is_fork,
        kill_levels=kill_levels,
    )


# -- evaluation ------------------------------------------------------------


@dataclass
class _Counters:
    sweeps: int = 0
    rounds: int = 0
    cycle: bool = False
    node_updates: int = 0
    changed_updates: int = 0


def _flow_phase(
    prog: RegionProgram,
    sub: Optional[np.ndarray],
    counters: _Counters,
    on_sweep: Optional[Callable[[int], None]],
    max_passes: int,
) -> None:
    """Iterate the Out rows from ⊥ to the flow least fixpoint (given the
    frozen kill layer folded into ``sub``)."""
    n_rows = prog.n_rows
    pool = prog.out_pool
    live = pool[:n_rows]
    live[:] = 0
    not_mask = ~prog.out_kill if sub is None else ~(prog.out_kill | sub)
    gen = prog.gen
    passes = 0
    while True:
        if on_sweep is not None:
            on_sweep(n_rows)
        passes += 1
        counters.sweeps += 1
        counters.node_updates += n_rows
        if passes > max_passes:
            raise RegionDiverged(
                f"dense flow phase hit terminal pass cap {max_passes} (equation bug?)"
            )
        prev = live.copy()
        for rows, plan in prog.flow_levels:
            live[rows] = (plan.union(pool) & not_mask[rows]) | gen[rows]
        changed = int(np.any(prev != live, axis=1).sum())
        counters.changed_updates += changed
        if not changed:
            return


def _gather_in(prog: RegionProgram, sub: Optional[np.ndarray]) -> np.ndarray:
    """In rows from the converged Out pool (In is a pure function of the
    flow fixpoint, so one post-convergence gather suffices)."""
    in_rows = np.empty((prog.n_rows, prog.n_words), dtype=np.uint64)
    for rows, plan in prog.flow_levels:
        gathered = plan.union(prog.out_pool)
        in_rows[rows] = gathered if sub is None else gathered & ~sub[rows]
    return in_rows


def _kill_phase(
    prog: RegionProgram,
    aki: np.ndarray,
    counters: _Counters,
    on_sweep: Optional[Callable[[int], None]],
    max_passes: int,
) -> None:
    """Iterate the kill layer (ACCKillout / ForkKill, with ACCKillin
    derived) from ⊥ to its least fixpoint given the frozen Out rows."""
    n_rows = prog.n_rows
    ako_pool, fk_pool = prog.ako_pool, prog.fk_pool
    ako = ako_pool[:n_rows]
    ako[:] = 0
    fk_pool[:n_rows] = 0
    aki[:] = 0
    not_gen = ~prog.gen
    not_out = ~prog.out_pool[:n_rows]
    fork_col = prog.is_fork[:, None]
    zero = np.uint64(0)
    passes = 0
    while True:
        if on_sweep is not None:
            on_sweep(n_rows)
        passes += 1
        counters.sweeps += 1
        counters.node_updates += n_rows
        if passes > max_passes:
            raise RegionDiverged(
                f"dense kill phase hit terminal pass cap {max_passes} (equation bug?)"
            )
        prev = ako.copy()
        for lv in prog.kill_levels:
            parts = []
            if lv.nonjoin_plan is not None:
                parts.append(lv.nonjoin_plan.intersect(ako_pool))
            if lv.join_par_plan is not None:
                parts.append(lv.join_par_plan.union(ako_pool) | lv.join_seq_plan.intersect(ako_pool))
            aki_level = parts[0] if len(parts) == 1 else np.concatenate(parts)
            rows = lv.rows
            base = (aki_level | prog.kill_acc[rows]) & not_gen[rows]
            fork_sel = fork_col[rows]
            fk_pool[rows] = np.where(fork_sel, base, zero)
            vals = np.where(fork_sel, zero, base)
            if lv.join_rows.size:
                carried = fk_pool[lv.join_fork_idx] & not_out[lv.join_rows]
                vals[lv.n_nonjoin :] |= carried
            ako_pool[rows] = vals
            aki[rows] = aki_level
        changed = int(np.any(prev != ako, axis=1).sum())
        counters.changed_updates += changed
        if not changed:
            return


def run_region_program(
    prog: RegionProgram,
    max_passes: int,
    max_rounds: int,
    on_sweep: Optional[Callable[[int], None]] = None,
) -> RegionSolution:
    """Run a compiled region to its converged state.

    For the phase profile this is the full stabilized round protocol of
    the scalar engine — initial flow phase, kill/flow rounds with a
    byte-level round history, and the conservative kill-meet (pointwise
    ∩ over the cycle's kill states) on oscillation — operating on packed
    matrices throughout.  ``on_sweep(n_rows)`` fires once per sweep for
    budget charging; workers run without it and are budget-charged at
    the wave barrier.
    """
    counters = _Counters()
    n_rows = prog.n_rows
    live_out = prog.out_pool[:n_rows]

    if prog.profile == "plain":
        _flow_phase(prog, None, counters, on_sweep, max_passes)
        return RegionSolution(
            profile=prog.profile,
            in_rows=_gather_in(prog, None),
            out_rows=live_out.copy(),
            sweeps=counters.sweeps,
            node_updates=counters.node_updates,
            changed_updates=counters.changed_updates,
        )

    ako = prog.ako_pool[:n_rows]
    fk = prog.fk_pool[:n_rows]
    aki = np.zeros((n_rows, prog.n_words), dtype=np.uint64)

    def snap(in_rows: np.ndarray) -> Tuple[bytes, ...]:
        return (
            in_rows.tobytes(),
            live_out.tobytes(),
            aki.tobytes(),
            ako.tobytes(),
            fk.tobytes(),
        )

    def kill_copies():
        return (aki.copy(), ako.copy(), fk.copy())

    sub = prog.in_sub_plan.union(prog.ako_pool)
    _flow_phase(prog, sub, counters, on_sweep, max_passes)
    in_rows = _gather_in(prog, sub)
    history = [snap(in_rows)]
    kill_history = [kill_copies()]
    converged = False
    for _round in range(max_rounds):
        counters.rounds += 1
        _kill_phase(prog, aki, counters, on_sweep, max_passes)
        sub = prog.in_sub_plan.union(prog.ako_pool)
        _flow_phase(prog, sub, counters, on_sweep, max_passes)
        in_rows = _gather_in(prog, sub)
        current = snap(in_rows)
        if current == history[-1]:
            converged = True
            break
        if current in history:
            # Oscillation: meet the kill layer over the cycle's states
            # (keep only kills justified in every state), then one final
            # flow phase — exactly the scalar cycle resolution.
            start = history.index(current)
            cycle_kills = kill_history[start:] + [kill_copies()]
            for block, slot in ((aki, 0), (ako, 1), (fk, 2)):
                met = cycle_kills[0][slot]
                for other in cycle_kills[1:]:
                    met = met & other[slot]
                block[:] = met
            sub = prog.in_sub_plan.union(prog.ako_pool)
            _flow_phase(prog, sub, counters, on_sweep, max_passes)
            in_rows = _gather_in(prog, sub)
            counters.cycle = True
            converged = True
            break
        history.append(current)
        kill_history.append(kill_copies())
    if not converged:
        raise RegionDiverged(
            f"dense region hit terminal round cap {max_rounds} (equation bug?)"
        )
    return RegionSolution(
        profile=prog.profile,
        in_rows=in_rows,
        out_rows=live_out.copy(),
        aki_rows=aki.copy(),
        ako_rows=ako.copy(),
        fk_rows=fk.copy(),
        sweeps=counters.sweeps,
        rounds=counters.rounds,
        cycle=counters.cycle,
        node_updates=counters.node_updates,
        changed_updates=counters.changed_updates,
    )


def apply_region_solution(system, rnodes: Sequence, sol: RegionSolution) -> None:
    """Write a region's converged packed rows back into the system's
    scalar state (via the backend's ``from_words``, so every backend gets
    its native value type)."""
    unpack = BulkView(system.ops).backend.from_words
    if sol.profile == "plain":
        for i, n in enumerate(rnodes):
            system._in[n] = unpack(sol.in_rows[i])
            system._out[n] = unpack(sol.out_rows[i])
        return
    for i, n in enumerate(rnodes):
        system.In[n] = unpack(sol.in_rows[i])
        system.Out[n] = unpack(sol.out_rows[i])
        system.ACCKillin[n] = unpack(sol.aki_rows[i])
        system.ACCKillout[n] = unpack(sol.ako_rows[i])
        system.ForkKill[n] = unpack(sol.fk_rows[i])


def solve_region_payload(payload) -> RegionSolution:
    """Pool-worker entry point: solve one pickled region program.
    ``payload`` is ``(program, max_passes, max_rounds)``."""
    prog, max_passes, max_rounds = payload
    return run_region_program(prog, max_passes, max_rounds)
