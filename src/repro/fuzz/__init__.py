"""Differential fuzzing for the reaching-definitions pipeline.

The paper's guarantees — every solver computes the same fixpoint, the
full synchronized system refines the conservative floor, the static In
sets over-approximate every execution — are exactly the kind of claims
adversarial testing can attack at scale.  This package turns the seeded
:mod:`repro.synthetic` generator, the analysis stack, and the dynamic
self-check into a fuzz loop:

* :mod:`repro.fuzz.oracles` — the pluggable oracle registry
  (differential, metamorphic, pipeline-invariant, dynamic);
* :mod:`repro.fuzz.mutate` — semantics-preserving metamorphic
  transforms whose outputs must keep def-use chains intact;
* :mod:`repro.fuzz.shrink` — greedy delta-debugging that minimizes a
  failing program and emits a ready-to-paste pytest regression;
* :mod:`repro.fuzz.driver` — the seeded campaign runner behind
  ``repro fuzz`` (budgets, ``repro-fuzz/1`` manifests, exit codes).
"""

from .driver import (
    DRILL_SHRINK_FRACTION,
    SCHEMA,
    FuzzOptions,
    FuzzReport,
    case_generator_config,
    parse_seed_spec,
    read_fuzz_manifest,
    run_campaign,
    run_case,
    run_drill,
)
from .mutate import MUTATORS, Mutation, apply_mutators, clone_program
from .oracles import (
    ORACLES,
    OracleConfig,
    OracleFailure,
    OracleReport,
    default_oracle_names,
    run_oracles,
)
from .shrink import ShrinkResult, regression_snippet, shrink, stmt_count, well_formed

__all__ = [
    "DRILL_SHRINK_FRACTION",
    "SCHEMA",
    "FuzzOptions",
    "FuzzReport",
    "MUTATORS",
    "Mutation",
    "ORACLES",
    "OracleConfig",
    "OracleFailure",
    "OracleReport",
    "ShrinkResult",
    "apply_mutators",
    "case_generator_config",
    "clone_program",
    "default_oracle_names",
    "parse_seed_spec",
    "read_fuzz_manifest",
    "regression_snippet",
    "run_campaign",
    "run_case",
    "run_drill",
    "run_oracles",
    "shrink",
    "stmt_count",
    "well_formed",
]
