"""Pluggable oracle registry for differential fuzzing.

An *oracle* is a property every healthy pipeline run must satisfy; the
fuzz driver (:mod:`repro.fuzz.driver`) throws generated programs at the
registry and any returned :class:`OracleFailure` is a bug — in the
equations, a solver, the front end, or the oracle itself.  Four families,
mirroring how the paper's claims decompose:

``solver-agreement`` (differential)
    The four fixpoint engines (stabilized / round-robin / worklist / scc)
    are different schedules over the same equations.  Without
    synchronization the system is monotone and their In/Out fixpoints
    must be identical node-for-node; with synchronization the system is
    non-monotone (multiple fixpoints — see
    ``tests/regression/test_fixpoint_multiplicity.py``), so the two
    deterministic engines must agree exactly while the chaotic engines
    must be pointwise over-approximations of the stabilized result.

``system-bounds`` (differential)
    The systems form a precision chain that the fuzzer checks pointwise:
    full (§6 with Preserved) ⊆ no-preserved (§6 without) ⊆ the
    accumulate-only conservative floor — i.e. every degraded result
    *absorbs* the full result — plus the local sanities Gen ⊆ Out and
    Out ∩ Kill = ∅.

``pipeline-invariants`` (round-trip)
    pretty → parse reproduces the AST structurally, the built PFG passes
    :func:`repro.pfg.validate_pfg`, and the CSSA form rebuilds.

``metamorphic``
    Every transform in :mod:`repro.fuzz.mutate` must leave
    reaching-definition chains unchanged modulo the transform's own
    statement/variable maps.  Chains are compared at *statement*
    granularity (through :class:`repro.interp.trace.StmtLocationIndex`),
    so block renumbering under padding or reordering is immaterial.

``incremental-equivalence`` (differential)
    A random statement-level edit script (:func:`repro.fuzz.mutate.
    random_edit_script`) is applied and the edited program is re-solved
    *incrementally* off the original's retained rows
    (:mod:`repro.incremental`); the sets must be byte-identical to a
    from-scratch solve for every deterministic solver, seeded rows
    re-verified as fixpoints.

``dynamic-selfcheck``
    The existing dynamic oracle (:func:`repro.robust.selfcheck.verify_result`):
    seeded interpreter runs must never observe a definition outside the
    static ud-chains.  A deadlocked schedule is also reported — the
    generator guarantees deadlock-free synchronization, so a deadlock
    means the harness (or the interpreter) broke its contract.

Oracles never raise on a *finding* — they return failures.  An unexpected
exception inside an oracle is converted into a failure too (detail
prefixed ``oracle crashed:``), so one crash cannot hide later findings.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cssa import build_cssa
from ..interp.trace import StmtLocationIndex
from ..ir.defs import Use
from ..lang import ast, parse_program, pretty
from ..lang.ast import structurally_equal
from ..lang.errors import LangError
from ..obs import get_metrics
from ..pfg import build_pfg, validate_pfg
from ..reachdefs import (
    ReachingDefsResult,
    solve_conservative,
    solve_parallel,
    solve_sequential,
    solve_synch,
)
from .mutate import MUTATORS, Mutation, apply_mutators

#: Solvers compared by the agreement oracle — every registered engine
#: (``scc-dense`` forces the vectorized dense-region evaluator on, so the
#: campaign differentially checks it against every scalar engine).
ALL_SOLVERS: Tuple[str, ...] = (
    "stabilized",
    "round-robin",
    "worklist",
    "scc",
    "scc-dense",
)

#: Cap on per-oracle failure details; a broken equation system fails on
#: most nodes and drowning the report helps nobody.
MAX_DETAILS = 5


@dataclass(frozen=True)
class OracleFailure:
    """One violated property: which oracle, and what it saw."""

    oracle: str
    detail: str

    def format(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass(frozen=True)
class OracleConfig:
    """Knobs shared by the registry (one instance per campaign)."""

    solvers: Tuple[str, ...] = ALL_SOLVERS
    backend: str = "bitset"
    mutators: Tuple[str, ...] = tuple(MUTATORS)
    mutation_seed: int = 0
    #: Seeded interpreter schedules for the dynamic oracle.
    dynamic_runs: int = 3
    max_loop_iters: int = 2


OracleFn = Callable[[ast.Program, OracleConfig], List[OracleFailure]]

#: The registry: oracle name → implementation, in registration order
#: (which is also the execution order of :func:`run_oracles`).
ORACLES: Dict[str, OracleFn] = {}

#: Oracles excluded from the default set (opt-in; the dynamic oracle
#: interprets the program several times and dominates campaign cost).
OPT_IN_ORACLES = frozenset({"dynamic-selfcheck"})


def register(name: str) -> Callable[[OracleFn], OracleFn]:
    def deco(fn: OracleFn) -> OracleFn:
        ORACLES[name] = fn
        return fn

    return deco


def default_oracle_names(dynamic: bool = False) -> Tuple[str, ...]:
    """The standard oracle battery; ``dynamic=True`` includes the opt-in
    interpreter-backed self-check."""
    return tuple(
        n for n in ORACLES if dynamic or n not in OPT_IN_ORACLES
    )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _solve_precise(
    graph,
    backend: str,
    solver: str = "stabilized",
    preserved: str = "approx",
    record_provenance: bool = False,
) -> ReachingDefsResult:
    """The most precise applicable system, mirroring :func:`repro.analyze`
    (which is bypassed here: oracles want explicit solver control and no
    result cache between differential runs)."""
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    if uses_sync:
        return solve_synch(
            graph,
            backend=backend,
            solver=solver,
            preserved=preserved,
            record_provenance=record_provenance,
        )
    if uses_parallel:
        return solve_parallel(
            graph, backend=backend, solver=solver, record_provenance=record_provenance
        )
    if solver == "stabilized":
        # Sequential system: chaotic iteration is already deterministic.
        solver = "round-robin"
    return solve_sequential(
        graph, backend=backend, solver=solver, record_provenance=record_provenance
    )


def _trim(failures: List[OracleFailure], total: int) -> List[OracleFailure]:
    if total > MAX_DETAILS:
        failures.append(
            OracleFailure(failures[0].oracle, f"... {total - MAX_DETAILS} more")
        )
    return failures


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


#: Engines whose result is visit-order independent.  On synchronized
#: programs the flow→kill feedback through SynchPass makes the combined
#: system non-monotone, and chaotic iteration (round-robin / worklist)
#: legitimately converges to different, visit-order-dependent fixpoints
#: (``tests/regression/test_fixpoint_multiplicity.py``) — so exact
#: equality is only demanded of the deterministic engines there.
DETERMINISTIC_SOLVERS = frozenset({"stabilized", "scc", "scc-dense"})


def solver_agreement_mode(program: ast.Program) -> str:
    """``"exact"`` when every engine must agree node-for-node (the kill
    layer is static without synchronization, so the system is monotone
    with a unique least fixpoint), ``"bounded"`` on synchronized
    programs (deterministic engines exact; chaotic engines must be
    pointwise over-approximations of the stabilized result)."""
    uses_sync = any(isinstance(s, (ast.Post, ast.Wait)) for s in program.walk())
    return "bounded" if uses_sync else "exact"


@register("solver-agreement")
def solver_agreement(program: ast.Program, cfg: OracleConfig) -> List[OracleFailure]:
    """Differential check over the fixpoint engines.

    Without synchronization all engines must compute identical In/Out
    sets.  With synchronization, the deterministic engines (stabilized,
    scc) must still agree exactly, and each chaotic engine's sets must
    *contain* the stabilized ones — chaotic iteration may settle in a
    less precise fixpoint of the non-monotone system, but one *below*
    the deterministic least resolution would mean lost soundness facts.
    """
    graph = build_pfg(program)
    results = {s: _solve_precise(graph, cfg.backend, solver=s) for s in cfg.solvers}
    baseline_name = cfg.solvers[0]
    baseline = results[baseline_name]
    exact_mode = solver_agreement_mode(program) == "exact"
    failures: List[OracleFailure] = []
    mismatches = 0
    for solver, result in results.items():
        if solver == baseline_name:
            continue
        exact = exact_mode or solver in DETERMINISTIC_SOLVERS
        for node in graph.nodes:
            for which in ("In", "Out"):
                a = baseline.set_names(which, node)
                b = result.set_names(which, node)
                ok = a == b if exact else a <= b
                if not ok:
                    mismatches += 1
                    relation = "disagrees with" if exact else "drops facts of"
                    if len(failures) < MAX_DETAILS:
                        failures.append(
                            OracleFailure(
                                "solver-agreement",
                                f"{which}({node.name}): {solver} {relation} "
                                f"{baseline_name}: {sorted(b)} vs {sorted(a)}",
                            )
                        )
    return _trim(failures, mismatches)


@register("system-bounds")
def system_bounds(program: ast.Program, cfg: OracleConfig) -> List[OracleFailure]:
    """Precision chain: full ⊆ no-preserved ⊆ conservative, pointwise,
    plus Gen ⊆ Out and Out ∩ (Kill ∪ ParallelKill) = ∅."""
    failures: List[OracleFailure] = []
    mismatches = 0

    def check(name: str, cond: bool, detail: str) -> None:
        nonlocal mismatches
        if not cond:
            mismatches += 1
            if len(failures) < MAX_DETAILS:
                failures.append(OracleFailure("system-bounds", detail))

    graph = build_pfg(program)
    full = _solve_precise(graph, cfg.backend)
    cons = solve_conservative(build_pfg(program), backend=cfg.backend)
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    blunt = (
        solve_synch(build_pfg(program), backend=cfg.backend, preserved="none")
        if uses_sync
        else None
    )
    for i, node in enumerate(graph.nodes):
        cnode = cons.graph.nodes[i]
        check(
            "floor-in",
            full.in_names(node) <= cons.in_names(cnode),
            f"In({node.name}): full ⊄ conservative floor: "
            f"{sorted(full.in_names(node) - cons.in_names(cnode))} escape",
        )
        check(
            "floor-out",
            full.out_names(node) <= cons.out_names(cnode),
            f"Out({node.name}): full ⊄ conservative floor: "
            f"{sorted(full.out_names(node) - cons.out_names(cnode))} escape",
        )
        if blunt is not None:
            bnode = blunt.graph.nodes[i]
            check(
                "preserved-in",
                full.in_names(node) <= blunt.in_names(bnode),
                f"In({node.name}): preserved info *added* definitions: "
                f"{sorted(full.in_names(node) - blunt.in_names(bnode))}",
            )
            check(
                "absorb-in",
                blunt.in_names(bnode) <= cons.in_names(cnode),
                f"In({node.name}): no-preserved ⊄ conservative floor",
            )
        check(
            "gen-out",
            full.Gen(node) <= full.Out(node),
            f"Out({node.name}) drops its own Gen",
        )
        killed = full.Kill(node)
        if full.acc_killin is not None:
            killed = killed | full.ParallelKill(node)
        check(
            "out-kill",
            not (full.Out(node) & killed),
            f"Out({node.name}) intersects its kill sets",
        )
    return _trim(failures, mismatches)


@register("pipeline-invariants")
def pipeline_invariants(program: ast.Program, cfg: OracleConfig) -> List[OracleFailure]:
    """Front-end and graph invariants: pretty→parse round-trip, PFG
    validation, CSSA rebuild."""
    failures: List[OracleFailure] = []
    source = pretty(program)
    try:
        reparsed = parse_program(source)
        if not structurally_equal(program, reparsed):
            failures.append(
                OracleFailure(
                    "pipeline-invariants", "pretty→parse round-trip changed the AST"
                )
            )
    except LangError as err:
        failures.append(
            OracleFailure("pipeline-invariants", f"pretty output does not parse: {err}")
        )
    try:
        graph = build_pfg(program)
        validate_pfg(graph)
    except Exception as err:  # PFGInvariantError, SemanticError
        failures.append(
            OracleFailure("pipeline-invariants", f"PFG build/validate failed: {err}")
        )
        return failures
    try:
        build_cssa(graph)
    except Exception as err:
        failures.append(
            OracleFailure("pipeline-invariants", f"CSSA rebuild failed: {err}")
        )
    return failures


def _chain_mismatches(
    program: ast.Program,
    base: ReachingDefsResult,
    mutation: Mutation,
    mutant: ReachingDefsResult,
) -> List[str]:
    """Compare reaching chains of every original read against the mutant,
    through the mutation's statement/variable maps.  Returns mismatch
    descriptions (empty = metamorphically equivalent)."""
    base_index = StmtLocationIndex(base.graph)
    mut_index = StmtLocationIndex(mutant.graph)
    out: List[str] = []

    def compare(stmt: ast.Stmt, reads: Sequence[str]) -> None:
        counterpart = mutation.mapped(stmt)
        if isinstance(stmt, (ast.If, ast.While)):
            loc0 = base_index.of_cond(stmt.cond)
            loc1 = mut_index.of_cond(counterpart.cond)  # type: ignore[union-attr]
        else:
            loc0 = base_index.of_stmt(stmt)
            loc1 = mut_index.of_stmt(counterpart)
        if loc0 is None or loc1 is None:  # pragma: no cover - conds always placed
            out.append(f"statement at {stmt.span} lost its graph coordinates")
            return
        for var in reads:
            chain0 = base.reaching_use(Use(var, loc0[0], loc0[1]))
            chain1 = mutant.reaching_use(
                Use(mutation.mapped_var(var), loc1[0], loc1[1])
            )
            mapped = {
                mut_index.definition(mutation.mapped(d.stmt)).name
                for d in chain0
                if d.stmt is not None
            }
            got = {d.name for d in chain1}
            if mapped != got:
                out.append(
                    f"{mutation.name}: chain of {var} at {loc0[0]}#{loc0[1]} "
                    f"changed: expected {sorted(mapped)}, got {sorted(got)}"
                )

    for stmt in program.walk():
        if isinstance(stmt, ast.Assign):
            compare(stmt, stmt.expr.variables())
        elif isinstance(stmt, (ast.If, ast.While)):
            compare(stmt, stmt.cond.variables())
    return out


@register("metamorphic")
def metamorphic(program: ast.Program, cfg: OracleConfig) -> List[OracleFailure]:
    """Each transform leaves reaching chains unchanged modulo its maps."""
    metrics = get_metrics()
    base = _solve_precise(build_pfg(program), cfg.backend)
    failures: List[OracleFailure] = []
    mismatches = 0
    for mutation in apply_mutators(program, cfg.mutation_seed, names=cfg.mutators):
        if metrics.enabled:
            metrics.inc("fuzz.mutants")
        mutant = _solve_precise(build_pfg(mutation.program), cfg.backend)
        for detail in _chain_mismatches(program, base, mutation, mutant):
            mismatches += 1
            if len(failures) < MAX_DETAILS:
                failures.append(OracleFailure("metamorphic", detail))
    return _trim(failures, mismatches)


@register("provenance-chains")
def provenance_chains(program: ast.Program, cfg: OracleConfig) -> List[OracleFailure]:
    """The justification graph explains the fixpoint it annotates.

    Three laws, cross-checked against the ud-chains the optimization
    clients actually consume:

    * the stabilized fixpoint is fully *supported* — every In/Out fact
      has a derivation from some gen root (an unsupported fact would mean
      the solver kept a definition alive that no birth site feeds);
    * every inflowing ud-chain definition has a chain that starts with a
      ``gen`` step at its defining node and ends at the use's node;
    * the SCC engine yields the *identical* canonical justification graph
      (provenance must not depend on the visit schedule).
    """
    base = _solve_precise(build_pfg(program), cfg.backend, record_provenance=True)
    prov = base.provenance
    failures: List[OracleFailure] = []
    total = 0

    def fail(detail: str) -> None:
        nonlocal total
        total += 1
        if len(failures) < MAX_DETAILS:
            failures.append(OracleFailure("provenance-chains", detail))

    for fact in prov.unsupported():
        fail(f"unsupported fixpoint fact {fact.key}")
    for use, defs in sorted(base.ud_chains().items(), key=lambda kv: kv[0].name):
        node = base.graph.node(use.site) if isinstance(use.site, str) else use.site
        if node.local_def_before(use.var, use.ordinal) is not None:
            continue  # intra-block chain; no In fact involved
        for d in sorted(defs, key=lambda d: d.index):
            if not prov.has_fact("In", node, d):
                fail(f"ud-chain def {d.name} of use {use.name} has no In fact")
                continue
            chain = prov.chain("In", node, d)
            root, last = chain[0], chain[-1]
            if root.kind != "gen" or root.fact.node is not base.info.def_node[d]:
                fail(
                    f"chain of {d.name} at ({node.name}) roots at "
                    f"{root.kind}:{root.fact.key}, not gen at its defining node"
                )
            if last.fact.node is not node:
                fail(
                    f"chain of {d.name} ends at ({last.fact.node.name}), "
                    f"not the use's block ({node.name})"
                )
    scc = _solve_precise(build_pfg(program), cfg.backend, solver="scc", record_provenance=True)
    if scc.provenance.canonical() != prov.canonical():
        fail("scc justification graph differs from stabilized")
    return _trim(failures, total) if total > MAX_DETAILS else failures


@register("incremental-equivalence")
def incremental_equivalence(
    program: ast.Program, cfg: OracleConfig
) -> List[OracleFailure]:
    """Differential check of the incremental engine (:mod:`repro.incremental`).

    Apply a random edit script (insert/delete/replace statements, seeded
    by ``cfg.mutation_seed``), then assert that re-solving the edited
    program *incrementally off the original's retained rows* produces
    exactly the sets a from-scratch solve produces — for every
    deterministic solver.  The incremental run uses ``verify=True``, so
    the scheduler additionally re-evaluates every seeded node and raises
    if any retained row was not already a fixpoint (that raise surfaces
    as an oracle crash → failure).  Fallback outcomes (sync programs,
    structurally unmatched edits) take the full-solve path and must be
    equal trivially — the oracle checks them anyway, pinning the
    zero-wrong-answers contract of the fallback matrix.
    """
    from ..incremental import IncrementalBase, incremental_analyze
    from .mutate import random_edit_script

    edit = random_edit_script(program, seed=cfg.mutation_seed, n_edits=2)
    if edit is None:
        return []
    failures: List[OracleFailure] = []
    mismatches = 0
    solvers = tuple(s for s in cfg.solvers if s in DETERMINISTIC_SOLVERS) or ("stabilized",)
    for solver in solvers:
        base_graph = build_pfg(program)
        base = IncrementalBase(
            program=program,
            graph=base_graph,
            result=_solve_precise(base_graph, cfg.backend, solver=solver),
        )
        outcome = incremental_analyze(
            base, edit.program, backend=cfg.backend, solver=solver,
            cache=False, verify=True,
        )
        scratch = _solve_precise(build_pfg(edit.program), cfg.backend, solver=solver)
        slots: Tuple[str, ...] = ("In", "Out")
        if scratch.acc_killin is not None and outcome.result.acc_killin is not None:
            slots += ("ACCKillin", "ACCKillout", "ForkKill")
        for node in scratch.graph.nodes:
            for which in slots:
                a = scratch.set_names(which, node.name)
                b = outcome.result.set_names(which, node.name)
                if a != b:
                    mismatches += 1
                    if len(failures) < MAX_DETAILS:
                        failures.append(
                            OracleFailure(
                                "incremental-equivalence",
                                f"{which}({node.name}) [{solver}, edit: {edit.detail}, "
                                f"fallback={outcome.fallback}]: incremental "
                                f"{sorted(b)} vs scratch {sorted(a)}",
                            )
                        )
    return _trim(failures, mismatches)


@register("dynamic-selfcheck")
def dynamic_selfcheck(program: ast.Program, cfg: OracleConfig) -> List[OracleFailure]:
    """Seeded interpreter runs stay inside the static ud-chains (and, per
    the generator's contract, never deadlock)."""
    from ..robust.selfcheck import verify_result

    result = _solve_precise(build_pfg(program), cfg.backend)
    violations, deadlocked = verify_result(
        result,
        program,
        seeds=range(cfg.dynamic_runs),
        max_loop_iters=cfg.max_loop_iters,
    )
    failures = [
        OracleFailure("dynamic-selfcheck", f"schedule seed {seed}: {v.format()}")
        for seed, v in violations[:MAX_DETAILS]
    ]
    if deadlocked:
        failures.append(
            OracleFailure(
                "dynamic-selfcheck",
                f"deadlock under schedule seed(s) {deadlocked} — generated "
                "programs are deadlock-free by construction",
            )
        )
    return _trim(failures, len(violations)) if violations else failures


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class OracleReport:
    """Outcome of one program's trip through the registry."""

    oracles_run: Tuple[str, ...]
    failures: List[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def failing_oracles(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for f in self.failures:
            seen.setdefault(f.oracle, None)
        return tuple(seen)

    def format(self) -> str:
        if self.ok:
            return f"ok ({len(self.oracles_run)} oracle(s))"
        return "\n".join(f.format() for f in self.failures)


def run_oracles(
    program: ast.Program,
    config: Optional[OracleConfig] = None,
    names: Optional[Sequence[str]] = None,
) -> OracleReport:
    """Run the (named) oracles against ``program``; never raises — an
    oracle crash becomes a failure record so later oracles still run."""
    cfg = config if config is not None else OracleConfig()
    metrics = get_metrics()
    chosen = tuple(names) if names is not None else default_oracle_names()
    unknown = [n for n in chosen if n not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {', '.join(unknown)}; choose from {', '.join(ORACLES)}"
        )
    failures: List[OracleFailure] = []
    for name in chosen:
        if metrics.enabled:
            metrics.inc("fuzz.oracle_runs")
            metrics.inc(f"fuzz.oracle.{name}")
        try:
            found = ORACLES[name](program, cfg)
        except Exception as err:
            tb = traceback.format_exception_only(type(err), err)[-1].strip()
            found = [OracleFailure(name, f"oracle crashed: {tb}")]
        failures.extend(found)
    if metrics.enabled and failures:
        metrics.inc("fuzz.failures", len(failures))
    return OracleReport(oracles_run=chosen, failures=failures)
