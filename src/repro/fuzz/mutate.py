"""Metamorphic transforms: program rewrites with a known answer.

A metamorphic oracle needs no ground truth: it applies a semantics-
preserving rewrite and checks that the analysis answer is *unchanged
modulo the rewrite*.  Each transform here returns a :class:`Mutation`
carrying, besides the mutated program, the evidence needed to state that
equivalence precisely:

``stmt_map``
    original statement → its counterpart in the mutant, by object
    identity (``id``).  Reaching-definition sets are compared at
    statement granularity through this map, so transforms are free to
    change block structure (padding splits blocks, reordering renumbers
    them) — the comparison in :mod:`repro.fuzz.oracles` follows the
    statements, not the block names.

``var_map``
    original variable name → mutant variable name (identity except for
    :func:`rename_variables`).

The four transforms:

* :func:`rename_variables` — bijective α-renaming of every program
  variable (events untouched).  In sets must be equal node-for-node
  modulo the induced definition renaming.
* :func:`pad_dead_code` — insert assignments to *fresh* variables that
  are never read.  Chains of original uses cannot change (the new
  definitions belong to variables no original use reads).
* :func:`reorder_sections` — permute the sections of ``Parallel
  Sections`` constructs that contain no synchronization anywhere below
  them.  The parallel equations are symmetric in the sections, so the
  fixpoint is permutation-invariant.
* :func:`pad_noop_sync` — insert a self-contained ``clear(f); post(f);
  wait(f)`` triple on a *fresh* event ``f`` in sequential context (never
  inside a ``parallel do``, whose iterations share events — the §6
  staleness class).  No other statement touches ``f``, so the triple
  neither blocks dynamically nor carries any cross-thread flow.

Determinism: every transform takes a ``seed`` and uses its own
``random.Random``, so a (program, seed) pair always yields the same
mutant — campaign failures replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..lang import ast

# ---------------------------------------------------------------------------
# Cloning with a statement map
# ---------------------------------------------------------------------------


def _clone_stmt(stmt: ast.Stmt, smap: Dict[int, ast.Stmt]) -> ast.Stmt:
    """Deep-copy one statement, recording ``id(original) → clone`` for the
    whole subtree.  Expressions are immutable and shared."""
    if isinstance(stmt, ast.Assign):
        clone: ast.Stmt = ast.Assign(
            target=stmt.target, expr=stmt.expr, span=stmt.span, label=stmt.label
        )
    elif isinstance(stmt, ast.Skip):
        clone = ast.Skip(span=stmt.span, label=stmt.label)
    elif isinstance(stmt, ast.Post):
        clone = ast.Post(event=stmt.event, span=stmt.span, label=stmt.label)
    elif isinstance(stmt, ast.Wait):
        clone = ast.Wait(event=stmt.event, span=stmt.span, label=stmt.label)
    elif isinstance(stmt, ast.Clear):
        clone = ast.Clear(event=stmt.event, span=stmt.span, label=stmt.label)
    elif isinstance(stmt, ast.If):
        clone = ast.If(
            cond=stmt.cond,
            then_body=[_clone_stmt(s, smap) for s in stmt.then_body],
            else_body=[_clone_stmt(s, smap) for s in stmt.else_body],
            span=stmt.span,
            label=stmt.label,
            end_label=stmt.end_label,
        )
    elif isinstance(stmt, ast.While):
        clone = ast.While(
            cond=stmt.cond,
            body=[_clone_stmt(s, smap) for s in stmt.body],
            span=stmt.span,
            label=stmt.label,
            end_label=stmt.end_label,
        )
    elif isinstance(stmt, ast.Loop):
        clone = ast.Loop(
            body=[_clone_stmt(s, smap) for s in stmt.body],
            span=stmt.span,
            label=stmt.label,
            end_label=stmt.end_label,
        )
    elif isinstance(stmt, ast.Section):
        clone = ast.Section(
            name=stmt.name,
            body=[_clone_stmt(s, smap) for s in stmt.body],
            span=stmt.span,
            label=stmt.label,
        )
    elif isinstance(stmt, ast.ParallelSections):
        clone = ast.ParallelSections(
            sections=[_clone_stmt(s, smap) for s in stmt.sections],  # type: ignore[misc]
            span=stmt.span,
            label=stmt.label,
            end_label=stmt.end_label,
        )
    elif isinstance(stmt, ast.ParallelDo):
        clone = ast.ParallelDo(
            index=stmt.index,
            body=[_clone_stmt(s, smap) for s in stmt.body],
            span=stmt.span,
            label=stmt.label,
            end_label=stmt.end_label,
        )
    else:  # pragma: no cover - future node kinds
        raise TypeError(f"cannot clone {type(stmt).__name__}")
    smap[id(stmt)] = clone
    return clone


def clone_program(program: ast.Program) -> Tuple[ast.Program, Dict[int, ast.Stmt]]:
    """Deep-copy ``program``; returns the clone and the identity map
    ``id(original stmt) → cloned stmt`` over every statement."""
    smap: Dict[int, ast.Stmt] = {}
    body = [_clone_stmt(s, smap) for s in program.body]
    clone = ast.Program(
        name=program.name, events=list(program.events), body=body, span=program.span
    )
    return clone, smap


@dataclass
class Mutation:
    """One applied metamorphic transform (see module docstring)."""

    name: str
    program: ast.Program
    stmt_map: Dict[int, ast.Stmt]
    var_map: Dict[str, str] = field(default_factory=dict)
    detail: str = ""

    def mapped(self, stmt: ast.Stmt) -> ast.Stmt:
        """The mutant counterpart of an original statement."""
        return self.stmt_map[id(stmt)]

    def mapped_var(self, var: str) -> str:
        return self.var_map.get(var, var)


# ---------------------------------------------------------------------------
# Transform helpers
# ---------------------------------------------------------------------------


def _program_variables(program: ast.Program) -> List[str]:
    """Every variable name the program mentions (assigned, read, or a
    ``parallel do`` index), in first-appearance order."""
    seen: Dict[str, None] = {}
    for stmt in program.walk():
        if isinstance(stmt, ast.Assign):
            seen.setdefault(stmt.target, None)
            for v in stmt.expr.variables():
                seen.setdefault(v, None)
        elif isinstance(stmt, (ast.If, ast.While)):
            for v in stmt.cond.variables():
                seen.setdefault(v, None)
        elif isinstance(stmt, ast.ParallelDo):
            seen.setdefault(stmt.index, None)
    return list(seen)


def _rename_expr(expr: ast.Expr, vmap: Dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.Var):
        return ast.Var(vmap.get(expr.name, expr.name))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _rename_expr(expr.left, vmap), _rename_expr(expr.right, vmap))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rename_expr(expr.operand, vmap))
    return expr  # literals


def _blocks(program: ast.Program, *, skip_pardo: bool = False) -> List[List[ast.Stmt]]:
    """All statement lists of the program, in deterministic pre-order.
    ``skip_pardo=True`` excludes every list inside a ``parallel do``
    (iterations share events; sync padding there would be unsound)."""
    out: List[List[ast.Stmt]] = [program.body]

    def visit(stmts: List[ast.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, ast.If):
                out.append(s.then_body)
                visit(s.then_body)
                out.append(s.else_body)
                visit(s.else_body)
            elif isinstance(s, (ast.While, ast.Loop)):
                out.append(s.body)
                visit(s.body)
            elif isinstance(s, ast.ParallelSections):
                for sec in s.sections:
                    out.append(sec.body)
                    visit(sec.body)
            elif isinstance(s, ast.ParallelDo):
                if not skip_pardo:
                    out.append(s.body)
                    visit(s.body)

    visit(program.body)
    return out


def _fresh_names(prefix: str, n: int, taken: set) -> List[str]:
    names, i = [], 0
    while len(names) < n:
        cand = f"{prefix}{i}"
        if cand not in taken:
            names.append(cand)
            taken.add(cand)
        i += 1
    return names


# ---------------------------------------------------------------------------
# The transforms
# ---------------------------------------------------------------------------


def rename_variables(program: ast.Program, seed: int = 0) -> Optional[Mutation]:
    """Bijective α-renaming of every variable; events keep their names."""
    variables = _program_variables(program)
    if not variables:
        return None
    rng = random.Random(seed)
    taken = set(variables)
    fresh = _fresh_names("rn", len(variables), taken)
    shuffled = list(variables)
    rng.shuffle(shuffled)
    vmap = dict(zip(shuffled, fresh))
    clone, smap = clone_program(program)
    for stmt in clone.walk():
        if isinstance(stmt, ast.Assign):
            stmt.target = vmap.get(stmt.target, stmt.target)
            stmt.expr = _rename_expr(stmt.expr, vmap)
        elif isinstance(stmt, (ast.If, ast.While)):
            stmt.cond = _rename_expr(stmt.cond, vmap)
        elif isinstance(stmt, ast.ParallelDo):
            stmt.index = vmap.get(stmt.index, stmt.index)
    return Mutation(
        name="rename",
        program=clone,
        stmt_map=smap,
        var_map=vmap,
        detail=f"renamed {len(vmap)} variables",
    )


def pad_dead_code(program: ast.Program, seed: int = 0) -> Optional[Mutation]:
    """Insert assignments to fresh, never-read variables at seeded points."""
    rng = random.Random(seed)
    clone, smap = clone_program(program)
    blocks = _blocks(clone)
    taken = set(_program_variables(program))
    n = rng.randint(2, 4)
    fresh = _fresh_names("dead", n, taken)
    for var in fresh:
        block = rng.choice(blocks)
        at = rng.randint(0, len(block))
        block.insert(at, ast.Assign(target=var, expr=ast.IntLit(rng.randint(0, 9))))
    return Mutation(
        name="dead-pad",
        program=clone,
        stmt_map=smap,
        detail=f"inserted {n} dead definitions",
    )


def _subtree_has_sync(stmts: List[ast.Stmt]) -> bool:
    for s in stmts:
        for sub in s.walk():
            if isinstance(sub, (ast.Post, ast.Wait, ast.Clear)):
                return True
    return False


def reorder_sections(program: ast.Program, seed: int = 0) -> Optional[Mutation]:
    """Permute the sections of every sync-free ``Parallel Sections``
    construct.  Returns None when no construct is eligible (synchronization
    anywhere below a construct pins its sections)."""
    rng = random.Random(seed)
    clone, smap = clone_program(program)
    changed = 0
    for stmt in clone.walk():
        if (
            isinstance(stmt, ast.ParallelSections)
            and len(stmt.sections) >= 2
            and not _subtree_has_sync(stmt.sections)  # type: ignore[arg-type]
        ):
            perm = list(stmt.sections)
            rng.shuffle(perm)
            if perm == stmt.sections:
                perm = perm[1:] + perm[:1]
            stmt.sections = perm
            changed += 1
    if not changed:
        return None
    return Mutation(
        name="reorder-sections",
        program=clone,
        stmt_map=smap,
        detail=f"permuted {changed} construct(s)",
    )


def pad_noop_sync(program: ast.Program, seed: int = 0) -> Optional[Mutation]:
    """Insert ``clear(f); post(f); wait(f)`` triples on fresh events in
    sequential context (never inside a ``parallel do``)."""
    rng = random.Random(seed)
    clone, smap = clone_program(program)
    blocks = _blocks(clone, skip_pardo=True)
    if not blocks:
        return None
    n = rng.randint(1, 2)
    taken = set(clone.events)
    fresh = _fresh_names("nf", n, taken)
    for event in fresh:
        block = rng.choice(blocks)
        at = rng.randint(0, len(block))
        block[at:at] = [
            ast.Clear(event=event),
            ast.Post(event=event),
            ast.Wait(event=event),
        ]
        clone.events.append(event)
    return Mutation(
        name="sync-pad",
        program=clone,
        stmt_map=smap,
        detail=f"inserted {n} no-op sync triple(s)",
    )


#: Registry: transform name → callable ``(program, seed) → Optional[Mutation]``.
MUTATORS: Dict[str, Callable[[ast.Program, int], Optional[Mutation]]] = {
    "rename": rename_variables,
    "dead-pad": pad_dead_code,
    "reorder-sections": reorder_sections,
    "sync-pad": pad_noop_sync,
}


def apply_mutators(
    program: ast.Program,
    seed: int = 0,
    names: Optional[Tuple[str, ...]] = None,
) -> List[Mutation]:
    """Apply every (named) applicable transform; skip the inapplicable."""
    out: List[Mutation] = []
    for name in names if names is not None else tuple(MUTATORS):
        try:
            fn = MUTATORS[name]
        except KeyError:
            raise ValueError(
                f"unknown mutator {name!r}; choose from {', '.join(MUTATORS)}"
            ) from None
        mutation = fn(program, seed)
        if mutation is not None:
            out.append(mutation)
    return out


# ---------------------------------------------------------------------------
# Edit scripts (NOT semantics-preserving)
# ---------------------------------------------------------------------------

#: The statement-level edit kinds :func:`random_edit_script` draws from.
EDIT_KINDS: Tuple[str, ...] = ("insert", "delete", "replace")


def random_edit_script(
    program: ast.Program,
    seed: int = 0,
    n_edits: int = 1,
    kinds: Tuple[str, ...] = EDIT_KINDS,
) -> Optional[Mutation]:
    """Apply ``n_edits`` random statement edits — the *version-to-version*
    churn the incremental engine (:mod:`repro.incremental`) consumes.

    Unlike the metamorphic transforms above these deliberately **change
    the analysis answer**: an oracle using them must compare against a
    from-scratch solve of the edited program, not against the original.
    Edits are simple-statement-level so the program stays well-formed:

    * ``insert`` — a new assignment at a random block position, to an
      existing variable (kill-universe perturbation) or a fresh one
      (adds a variable entirely);
    * ``delete`` — remove a random ``Assign``/``Skip`` from a block that
      keeps at least one statement (deleting a variable's only
      definition removes it from every kill set);
    * ``replace`` — rewrite an ``Assign`` in place: new right-hand side
      (the def survives at the same site) or a new target variable (one
      def removed, another added).

    Deterministic per ``(program, seed, n_edits)``; returns ``None``
    only when no edit kind is applicable (e.g. a program too small to
    delete from with ``kinds=("delete",)``).
    """
    rng = random.Random(seed)
    clone, smap = clone_program(program)
    variables = _program_variables(clone)
    taken = set(variables)
    details: List[str] = []
    for _ in range(n_edits):
        applied = False
        for kind in rng.sample(kinds, len(kinds)):
            blocks = _blocks(clone)
            if kind == "insert":
                block = rng.choice(blocks)
                at = rng.randrange(len(block) + 1)
                if variables and rng.random() < 0.7:
                    target = rng.choice(variables)
                else:
                    target = _fresh_names("ed", 1, taken)[0]
                    variables.append(target)
                if variables != [target] and rng.random() < 0.5:
                    expr: ast.Expr = ast.Var(rng.choice([v for v in variables if v != target] or [target]))
                else:
                    expr = ast.IntLit(rng.randrange(1000))
                block.insert(at, ast.Assign(target=target, expr=expr))
                details.append(f"insert {target} @{at}")
            elif kind == "delete":
                candidates = [
                    (block, i)
                    for block in blocks
                    if len(block) >= 2
                    for i, s in enumerate(block)
                    if isinstance(s, (ast.Assign, ast.Skip))
                ]
                if not candidates:
                    continue
                block, i = rng.choice(candidates)
                gone = block.pop(i)
                details.append(f"delete {type(gone).__name__.lower()} @{i}")
            else:  # replace
                candidates = [
                    (block, i)
                    for block in blocks
                    for i, s in enumerate(block)
                    if isinstance(s, ast.Assign)
                ]
                if not candidates:
                    continue
                block, i = rng.choice(candidates)
                old = block[i]
                if variables and rng.random() < 0.4:
                    target = rng.choice(variables)  # possibly a retarget
                else:
                    target = old.target
                block[i] = ast.Assign(target=target, expr=ast.IntLit(rng.randrange(1000)))
                details.append(f"replace {old.target}->{target} @{i}")
            applied = True
            break
        if not applied:
            break
    if not details:
        return None
    return Mutation(
        name="edit-script",
        program=clone,
        stmt_map=smap,
        detail="; ".join(details),
    )
