"""Greedy delta-debugging over the mini-PCF AST.

A fuzz counterexample is only useful once a human can read it: the
shrinker takes a failing program and a *predicate* ("this oracle still
fails on it") and repeatedly tries structural reductions, keeping any
candidate that still satisfies the predicate.  Reduction passes, in the
order tried each round:

1. **drop statements** — ddmin-style chunk removal over every statement
   list (whole list, halves, quarters, … single statements);
2. **unwrap constructs** — replace ``if``/``loop``/``while`` with a
   branch body, splice ``parallel sections`` / ``parallel do`` bodies
   inline, drop a single section;
3. **remove events** — delete every ``post``/``wait``/``clear`` of one
   event at a time (the whole synchronization strand goes or stays —
   dropping only the post would manufacture a deadlock, which the
   well-formedness guard rejects anyway);
4. **simplify expressions** — replace assignment right-hand sides with
   ``0``, dropping their uses.

Each accepted candidate restarts the scan; rounds repeat until a fixed
point (no candidate accepted) or ``max_rounds``.  The process is fully
deterministic — no randomness, a stable traversal order — so a given
(program, predicate) pair always minimizes to the same result.

**Well-formedness guard.**  Candidates must stay inside the generator's
contract before the predicate is even asked: the program pretty-prints
to parseable source that round-trips structurally, the PFG builds and
passes :func:`repro.pfg.validate_pfg`, and no *new* blocking
synchronization-lint class (:data:`repro.robust.degrade.BLOCKING_SYNC_ISSUES`)
appears that the original failing program did not already have.  That
last clause is what keeps shrinking honest: removing a ``post`` but not
its ``wait`` would otherwise "reproduce" almost any dynamic failure.

:func:`regression_snippet` renders the minimized program as a
ready-to-paste pytest test with the In sets pinned — the form the
``tests/regression/test_fuzz_corpus.py`` corpus uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Tuple

from ..analysis.synclint import lint_synchronization
from ..lang import ast, parse_program, pretty
from ..lang.ast import structurally_equal
from ..lang.errors import LangError
from ..obs import get_metrics
from ..pfg import build_pfg, validate_pfg
from ..robust.degrade import BLOCKING_SYNC_ISSUES
from .mutate import _blocks, clone_program

Predicate = Callable[[ast.Program], bool]


def stmt_count(program: ast.Program) -> int:
    """Total number of statements (every AST node, sections included)."""
    return sum(1 for _ in program.walk())


def _measure(program: ast.Program) -> Tuple[int, int]:
    """Well-founded shrink measure: (statement count, variable reads).
    Every pass strictly decreases it — drops/unwraps/event removals cut
    statements, expression simplification cuts reads — so the greedy loop
    terminates."""
    reads = 0
    for stmt in program.walk():
        if isinstance(stmt, ast.Assign):
            reads += len(stmt.expr.variables())
        elif isinstance(stmt, (ast.If, ast.While)):
            reads += len(stmt.cond.variables())
    return (stmt_count(program), reads)


def blocking_issue_kinds(program: ast.Program) -> FrozenSet:
    """The blocking synchronization-lint classes present in ``program``
    (empty when the graph does not even build)."""
    try:
        graph = build_pfg(program)
    except Exception:
        return frozenset()
    return frozenset(
        i.kind for i in lint_synchronization(graph) if i.kind in BLOCKING_SYNC_ISSUES
    )


def well_formed(
    program: ast.Program, baseline_blocking: FrozenSet = frozenset()
) -> bool:
    """Generator-contract check for shrink candidates (module docstring)."""
    if not program.body:
        return False
    try:
        source = pretty(program)
        reparsed = parse_program(source)
    except (LangError, TypeError):
        return False
    if not structurally_equal(program, reparsed):
        return False
    try:
        graph = build_pfg(program)
        validate_pfg(graph)
    except Exception:
        return False
    blocking = frozenset(
        i.kind for i in lint_synchronization(graph) if i.kind in BLOCKING_SYNC_ISSUES
    )
    return blocking <= baseline_blocking


@dataclass
class ShrinkResult:
    """Outcome of one :func:`shrink` run."""

    program: ast.Program
    original_stmts: int
    shrunk_stmts: int
    rounds: int
    attempts: int
    accepted: int

    @property
    def reduction(self) -> float:
        """Remaining fraction: 0.1 = shrunk to 10% of the original."""
        if self.original_stmts == 0:
            return 1.0
        return self.shrunk_stmts / self.original_stmts

    def format(self) -> str:
        return (
            f"shrunk {self.original_stmts} → {self.shrunk_stmts} statements "
            f"({self.reduction:.0%}) in {self.rounds} round(s), "
            f"{self.attempts} candidate(s) tried, {self.accepted} accepted"
        )


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def _chunk_spans(n: int) -> List[Tuple[int, int]]:
    """ddmin-style deletion spans for a list of length ``n``: the whole
    list, then halves, quarters, … down to single elements; deduplicated,
    larger deletions first."""
    spans: List[Tuple[int, int]] = []
    seen = set()
    size = n
    while size >= 1:
        for start in range(0, n, size):
            span = (start, min(start + size, n))
            if span not in seen:
                seen.add(span)
                spans.append(span)
        size //= 2
    return spans


def _drop_statement_candidates(program: ast.Program) -> List[ast.Program]:
    out: List[ast.Program] = []
    n_blocks = len(_blocks(program))
    for k in range(n_blocks):
        length = len(_blocks(program)[k])
        for start, end in _chunk_spans(length):
            clone, _ = clone_program(program)
            block = _blocks(clone)[k]
            del block[start:end]
            out.append(clone)
    return out


def _unwrap_candidates(program: ast.Program) -> List[ast.Program]:
    """Construct-level reductions at every block position holding a
    compound statement."""
    out: List[ast.Program] = []
    n_blocks = len(_blocks(program))
    for k in range(n_blocks):
        for i, stmt in enumerate(_blocks(program)[k]):
            replacements: List[Optional[int]] = []
            if isinstance(stmt, ast.If):
                replacements = [0, 1] if stmt.else_body else [0]
            elif isinstance(stmt, (ast.Loop, ast.While, ast.ParallelDo)):
                replacements = [0]
            elif isinstance(stmt, ast.ParallelSections):
                replacements = [0] + list(range(1, len(stmt.sections) + 1))
            for which in replacements:
                clone, _ = clone_program(program)
                block = _blocks(clone)[k]
                target = block[i]
                if isinstance(target, ast.If):
                    body = target.then_body if which == 0 else target.else_body
                    block[i : i + 1] = body
                elif isinstance(target, (ast.Loop, ast.While, ast.ParallelDo)):
                    block[i : i + 1] = target.body
                elif isinstance(target, ast.ParallelSections):
                    if which == 0:  # splice all sections sequentially
                        spliced: List[ast.Stmt] = []
                        for sec in target.sections:
                            spliced.extend(sec.body)
                        block[i : i + 1] = spliced
                    else:  # drop section (which - 1), keep the construct
                        if len(target.sections) < 2:
                            continue
                        del target.sections[which - 1]
                out.append(clone)
    return out


def _remove_event_candidates(program: ast.Program) -> List[ast.Program]:
    events = [
        e
        for e in dict.fromkeys(
            s.event
            for s in program.walk()
            if isinstance(s, (ast.Post, ast.Wait, ast.Clear))
        )
    ]
    out: List[ast.Program] = []
    for event in events:
        clone, _ = clone_program(program)

        def strip(stmts: List[ast.Stmt]) -> None:
            stmts[:] = [
                s
                for s in stmts
                if not (
                    isinstance(s, (ast.Post, ast.Wait, ast.Clear))
                    and s.event == event
                )
            ]

        for block in _blocks(clone):
            strip(block)
        clone.events = [e for e in clone.events if e != event]
        out.append(clone)
    return out


def _simplify_expr_candidates(program: ast.Program) -> List[ast.Program]:
    out: List[ast.Program] = []
    n_blocks = len(_blocks(program))
    for k in range(n_blocks):
        for i, stmt in enumerate(_blocks(program)[k]):
            if isinstance(stmt, ast.Assign) and stmt.expr.variables():
                clone, _ = clone_program(program)
                target = _blocks(clone)[k][i]
                assert isinstance(target, ast.Assign)
                target.expr = ast.IntLit(0)
                out.append(clone)
    return out


_PASSES: Tuple[Callable[[ast.Program], List[ast.Program]], ...] = (
    _drop_statement_candidates,
    _unwrap_candidates,
    _remove_event_candidates,
    _simplify_expr_candidates,
)


# ---------------------------------------------------------------------------
# The loop
# ---------------------------------------------------------------------------


def shrink(
    program: ast.Program,
    predicate: Predicate,
    max_rounds: int = 10,
    max_attempts: int = 5000,
) -> ShrinkResult:
    """Greedily minimize ``program`` while ``predicate`` holds.

    ``predicate`` receives candidate programs (already well-formed per
    :func:`well_formed`) and returns True when the failure still
    reproduces.  The original program is returned unchanged when the
    predicate does not even hold on it.
    """
    metrics = get_metrics()
    original = stmt_count(program)
    baseline_blocking = blocking_issue_kinds(program)
    work, _ = clone_program(program)
    if not predicate(work):
        return ShrinkResult(
            program=work,
            original_stmts=original,
            shrunk_stmts=original,
            rounds=0,
            attempts=1,
            accepted=0,
        )
    attempts = 1
    accepted = 0
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        improved = False
        for gen in _PASSES:
            # Re-scan the pass after every acceptance: candidate indices
            # refer to the current work program.
            scanning = True
            while scanning and attempts < max_attempts:
                scanning = False
                for candidate in gen(work):
                    if _measure(candidate) >= _measure(work):
                        continue
                    if not well_formed(candidate, baseline_blocking):
                        continue
                    attempts += 1
                    if metrics.enabled:
                        metrics.inc("fuzz.shrink.attempts")
                    if predicate(candidate):
                        work = candidate
                        accepted += 1
                        improved = True
                        scanning = True
                        if metrics.enabled:
                            metrics.inc("fuzz.shrink.accepted")
                        break
                    if attempts >= max_attempts:
                        break
        if not improved:
            break
    # Cosmetic fixed-point: drop declared-but-unused events.
    used = {
        s.event
        for s in work.walk()
        if isinstance(s, (ast.Post, ast.Wait, ast.Clear))
    }
    pruned = [e for e in work.events if e in used]
    if pruned != work.events:
        candidate, _ = clone_program(work)
        candidate.events = pruned
        if well_formed(candidate, baseline_blocking) and predicate(candidate):
            work = candidate
    return ShrinkResult(
        program=work,
        original_stmts=original,
        shrunk_stmts=stmt_count(work),
        rounds=rounds,
        attempts=attempts,
        accepted=accepted,
    )


# ---------------------------------------------------------------------------
# Regression snippet
# ---------------------------------------------------------------------------


def regression_snippet(
    program: ast.Program,
    oracle: str,
    test_name: str,
    note: str = "",
) -> str:
    """A ready-to-paste pytest regression test for a minimized program.

    Pins the current (assumed-fixed) In sets of every block so the test
    fails loudly if the analysis drifts, and re-runs the originally
    failing oracle to assert it stays green.
    """
    from .. import analyze  # deferred: repro/__init__ imports this package

    result = analyze(program, cache=False)
    golden = {
        node.name: sorted(result.in_names(node))
        for node in result.graph.document_order()
        if result.in_names(node)
    }
    source = pretty(program)
    lines = [
        "from repro import analyze",
        "from repro.fuzz import run_oracles",
        "from repro.lang import parse_program",
        "",
        "",
        f"def {test_name}():",
    ]
    if note:
        lines.append(f"    # {note}")
    lines.append('    source = """\\')
    lines.extend(source.rstrip("\n").split("\n"))
    lines.append('"""')
    lines.append("    program = parse_program(source)")
    lines.append("    result = analyze(program, cache=False)")
    lines.append("    golden_in = {")
    for name, defs in golden.items():
        lines.append(f"        {name!r}: {defs!r},")
    lines.append("    }")
    lines.append("    for name, defs in golden_in.items():")
    lines.append("        assert sorted(result.in_names(name)) == defs, name")
    lines.append(
        f"    report = run_oracles(program, names=({oracle!r},))"
    )
    lines.append("    assert report.ok, report.format()")
    return "\n".join(lines) + "\n"
