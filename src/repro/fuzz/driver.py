"""Seeded differential-fuzzing campaigns: generate → oracle → shrink.

:func:`run_campaign` drives the whole loop behind ``repro fuzz``:

* one **case** per seed — a structured-random program from
  :func:`repro.synthetic.generate_program` (size and shape knobs drawn
  deterministically from the seed itself, so a case replays identically
  whatever other seeds ran);
* the **oracle battery** (:mod:`repro.fuzz.oracles`) over each case;
* on any failure, the **shrinker** (:mod:`repro.fuzz.shrink`) minimizes
  the program under "the same oracle still fails" and the case record
  carries the minimized source plus a ready-to-paste pytest snippet;
* with ``check=True``, **injected-fault drills**: a known corruption
  (:func:`repro.robust.chaos.corrupt_result`) is planted in a healthy
  result and the harness must both *detect* it (dynamic self-check) and
  *shrink* it to at most :data:`DRILL_SHRINK_FRACTION` of the original
  statement count — proving the fuzz loop would catch and minimize a
  real soundness bug, even on a day the campaign itself finds nothing.

The campaign is bounded by a :class:`~repro.dataflow.budget.ResourceBudget`
(wall-clock deadline; total-statement cap via the update meter).  A
budget trip is **not** a failure: remaining seeds are recorded as
``skipped`` and the exit code still reflects only oracle findings.

Results stream to a ``repro-fuzz/1`` JSONL manifest (same conventions as
``repro-batch/1``: a ``meta`` line, one record per unit of work in
completion order, a final ``summary``), and ``fuzz.*`` counters land in
the installed observability session.

Exit-code contract (shared with the CLI): 0 — every oracle on every
case held (skipped-on-budget allowed); 2 — any oracle failure or any
drill that went undetected/unshrinkable; 1 — usage errors, raised as
exceptions for the CLI front end to map.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dataflow.budget import ResourceBudget
from ..dataflow.cache import program_digest
from ..lang import ast, pretty
from ..obs import get_metrics, get_tracer, read_jsonl
from ..synthetic import GeneratorConfig, generate_program
from .oracles import OracleConfig, default_oracle_names, run_oracles
from .shrink import regression_snippet, shrink, stmt_count

SCHEMA = "repro-fuzz/1"

#: A drill artifact must shrink to at most this fraction of the original
#: statement count to be considered minimized (the acceptance bar).
DRILL_SHRINK_FRACTION = 0.20

#: Seed offset for drill programs, far outside normal campaign ranges.
DRILL_SEED_BASE = 900_000


@dataclass(frozen=True)
class FuzzOptions:
    """Campaign configuration (JSON-ready; ``asdict`` lands in the
    manifest meta record)."""

    seeds: Tuple[int, ...] = tuple(range(50))
    #: Mean generated-program size; actual sizes spread around it per seed.
    target_stmts: int = 30
    #: Oracle names (None = registry default; dynamic oracle included
    #: only when ``check`` is set).
    oracles: Optional[Tuple[str, ...]] = None
    #: Full-verification mode: adds the dynamic self-check oracle and
    #: runs the injected-fault drills.
    check: bool = False
    #: Number of injected-fault drills in check mode.
    drills: int = 2
    #: Minimize failing cases and attach source + pytest snippet.
    shrink_failures: bool = True
    #: Campaign budget: wall-clock seconds / total generated statements.
    deadline_s: Optional[float] = None
    max_stmts: Optional[int] = None
    backend: str = "bitset"
    dynamic_runs: int = 3
    max_loop_iters: int = 2
    mutation_seed: int = 0

    def budget(self) -> Optional[ResourceBudget]:
        if self.deadline_s is None and self.max_stmts is None:
            return None
        return ResourceBudget(deadline_s=self.deadline_s, max_updates=self.max_stmts)

    def oracle_names(self) -> Tuple[str, ...]:
        if self.oracles is not None:
            return self.oracles
        return default_oracle_names(dynamic=self.check)

    def oracle_config(self) -> OracleConfig:
        return OracleConfig(
            backend=self.backend,
            mutation_seed=self.mutation_seed,
            dynamic_runs=self.dynamic_runs,
            max_loop_iters=self.max_loop_iters,
        )


def case_generator_config(seed: int, target_stmts: int) -> GeneratorConfig:
    """The per-seed program shape: deterministic in the seed alone, and
    spread across sizes and construct densities so one campaign covers
    sequential, parallel-only, synchronized, and loop-heavy programs."""
    sizes = (
        max(5, target_stmts // 3),
        max(8, (2 * target_stmts) // 3),
        target_stmts,
        (3 * target_stmts) // 2,
    )
    return GeneratorConfig(
        target_stmts=sizes[seed % len(sizes)],
        n_vars=2 + (seed % 5),
        p_parallel=(0.1, 0.25, 0.4)[seed % 3],
        p_loop=(0.0, 0.1, 0.2)[(seed // 3) % 3],
        p_pardo=(0.0, 0.08)[(seed // 2) % 2],
        with_sync=seed % 4 != 3,
    )


@dataclass
class FuzzReport:
    """Everything a campaign concluded."""

    records: List[Dict[str, object]]
    options: FuzzOptions
    wall_s: float = 0.0

    def cases(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "case"]

    def drills(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "drill"]

    def failures(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "failed"]

    def skipped(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "skipped"]

    @property
    def exit_code(self) -> int:
        return 2 if self.failures() else 0

    def summary_record(self) -> Dict[str, object]:
        by_status: Dict[str, int] = {}
        for rec in self.records:
            status = str(rec.get("status"))
            by_status[status] = by_status.get(status, 0) + 1
        return {
            "type": "summary",
            "cases": len(self.cases()),
            "drills": len(self.drills()),
            "by_status": dict(sorted(by_status.items())),
            "failures": len(self.failures()),
            "exit_code": self.exit_code,
            "wall_s": round(self.wall_s, 6),
        }

    def render_summary(self) -> str:
        """Deterministic end-of-run lines (wall time excluded, as in the
        batch summary: CI logs should diff clean)."""
        summary = self.summary_record()
        by_status = ", ".join(f"{n} {s}" for s, n in summary["by_status"].items())
        lines = [
            f"fuzz campaign: {summary['cases']} case(s), "
            f"{summary['drills']} drill(s) — {by_status or 'nothing ran'} "
            f"(exit {summary['exit_code']})"
        ]
        for rec in self.failures():
            unit = rec.get("seed") if rec.get("type") == "case" else f"drill {rec.get('drill')}"
            lines.append(f"  FAIL {rec.get('type')} {unit}: {rec.get('program')}")
            for failure in rec.get("failures") or []:
                lines.append(f"    [{failure['oracle']}] {failure['detail']}")
            shrunk = rec.get("shrunk")
            if shrunk:
                lines.append(
                    f"    shrunk {rec.get('stmts')} → {shrunk['stmts']} statements; "
                    "minimized source and pytest snippet are in the manifest"
                )
        if self.skipped():
            lines.append(
                f"  note: {len(self.skipped())} case(s) skipped on campaign budget"
            )
        return "\n".join(lines) + "\n"


class _FuzzManifest:
    """Streaming ``repro-fuzz/1`` writer (same shape as the batch one)."""

    def __init__(self, path: Union[str, Path], options: FuzzOptions):
        self.path = Path(path)
        self._fh = self.path.open("w")
        meta = {
            "type": "meta",
            "schema": SCHEMA,
            "seeds": len(options.seeds),
            "options": {
                **asdict(options),
                "seeds": list(options.seeds),
                "oracles": list(options.oracle_names()),
            },
        }
        self.write(meta)

    def write(self, record: Dict[str, object]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def read_fuzz_manifest(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a fuzz manifest; validates the schema stamp on line one."""
    records = read_jsonl(path)
    if not records or records[0].get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} manifest")
    return records


# ---------------------------------------------------------------------------
# Campaign pieces
# ---------------------------------------------------------------------------


def _shrink_failure(
    program: ast.Program,
    failing_oracles: Tuple[str, ...],
    options: FuzzOptions,
    seed: int,
) -> Dict[str, object]:
    """Minimize a failing case under "the same oracle still fails"."""
    cfg = options.oracle_config()
    names = tuple(failing_oracles)

    def still_fails(candidate: ast.Program) -> bool:
        report = run_oracles(candidate, cfg, names=names)
        return not report.ok

    result = shrink(program, still_fails)
    snippet = regression_snippet(
        result.program,
        oracle=names[0],
        test_name=f"test_fuzz_seed{seed}_{names[0].replace('-', '_')}",
        note=f"minimized from fuzz seed {seed} ({result.format()})",
    )
    return {
        "stmts": result.shrunk_stmts,
        "reduction": round(result.reduction, 4),
        "rounds": result.rounds,
        "attempts": result.attempts,
        "source": pretty(result.program),
        "snippet": snippet,
    }


def run_case(seed: int, options: FuzzOptions) -> Dict[str, object]:
    """Generate and check one case; returns its manifest record."""
    tracer = get_tracer()
    t0 = time.perf_counter()
    program = generate_program(
        seed, case_generator_config(seed, options.target_stmts), name=f"fuzz{seed}"
    )
    record: Dict[str, object] = {
        "type": "case",
        "seed": seed,
        "program": program.name,
        "digest": program_digest(program),
        "stmts": stmt_count(program),
        "status": "ok",
        "oracles": list(options.oracle_names()),
        "failures": [],
        "shrunk": None,
    }
    with tracer.span("fuzz-case", seed=seed):
        report = run_oracles(
            program, options.oracle_config(), names=options.oracle_names()
        )
        if not report.ok:
            record["status"] = "failed"
            record["failures"] = [
                {"oracle": f.oracle, "detail": f.detail} for f in report.failures
            ]
            if options.shrink_failures:
                record["shrunk"] = _shrink_failure(
                    program, report.failing_oracles(), options, seed
                )
    record["wall_s"] = round(time.perf_counter() - t0, 6)
    return record


def run_drill(drill: int, options: FuzzOptions) -> Dict[str, object]:
    """One injected-fault drill: corrupt a healthy result, require the
    dynamic oracle to flag it, and require the shrinker to minimize the
    carrier program to ≤ :data:`DRILL_SHRINK_FRACTION` of its statements.
    """
    from ..interp.interp import run_program
    from ..interp.scheduler import RandomScheduler
    from ..pfg import build_pfg
    from ..robust.chaos import corrupt_result
    from ..robust.selfcheck import verify_result
    from .oracles import _solve_precise

    tracer = get_tracer()
    t0 = time.perf_counter()
    seed = DRILL_SEED_BASE + drill
    # A sizeable synchronized program so the 20% bar is meaningful.
    program = generate_program(
        seed,
        GeneratorConfig(
            target_stmts=max(60, 2 * options.target_stmts),
            n_vars=4,
            p_parallel=0.3,
            p_loop=0.1,
        ),
        name=f"drill{drill}",
    )
    record: Dict[str, object] = {
        "type": "drill",
        "drill": drill,
        "seed": seed,
        "program": program.name,
        "stmts": stmt_count(program),
        "status": "ok",
        "failures": [],
        "shrunk": None,
    }

    def corruption_detected(candidate: ast.Program) -> bool:
        """True when a seeded corruption of the candidate's (sound)
        analysis is flagged by the dynamic self-check."""
        result = _solve_precise(build_pfg(candidate), options.backend)
        run = run_program(
            candidate,
            scheduler=RandomScheduler(seed=0, max_loop_iters=options.max_loop_iters),
            graph=result.graph,
        )
        try:
            tampered, _ = corrupt_result(result, run, seed=drill)
        except ValueError:
            return False  # nothing eligible to corrupt
        violations, _ = verify_result(tampered, candidate, seeds=(0,))
        return bool(violations)

    with tracer.span("fuzz-drill", drill=drill):
        if not corruption_detected(program):
            record["status"] = "failed"
            record["failures"] = [
                {
                    "oracle": "inject",
                    "detail": "injected In-set corruption was not detected "
                    "by the dynamic self-check",
                }
            ]
        else:
            result = shrink(program, corruption_detected)
            record["shrunk"] = {
                "stmts": result.shrunk_stmts,
                "reduction": round(result.reduction, 4),
                "rounds": result.rounds,
                "attempts": result.attempts,
                "source": pretty(result.program),
            }
            if result.reduction > DRILL_SHRINK_FRACTION:
                record["status"] = "failed"
                record["failures"] = [
                    {
                        "oracle": "shrink",
                        "detail": f"unshrinkable artifact: {result.format()} — "
                        f"bar is ≤{DRILL_SHRINK_FRACTION:.0%} of the original",
                    }
                ]
    record["wall_s"] = round(time.perf_counter() - t0, 6)
    return record


def run_campaign(
    options: Optional[FuzzOptions] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> FuzzReport:
    """Run the full campaign; see the module docstring."""
    options = options if options is not None else FuzzOptions()
    tracer = get_tracer()
    metrics = get_metrics()
    budget = options.budget()
    if budget is not None:
        budget.start()
    writer = _FuzzManifest(manifest_path, options) if manifest_path else None
    records: List[Dict[str, object]] = []
    t0 = time.perf_counter()

    def finish(record: Dict[str, object]) -> None:
        records.append(record)
        if writer is not None:
            writer.write(record)
        if metrics.enabled:
            metrics.inc(f"fuzz.{record['type']}s")
            metrics.inc(f"fuzz.status.{record['status']}")

    try:
        with tracer.span("fuzz", seeds=len(options.seeds)):
            exhausted: Optional[str] = None
            for seed in options.seeds:
                if budget is not None and exhausted is None:
                    exhausted = budget.exceeded()
                if exhausted is not None:
                    finish(
                        {
                            "type": "case",
                            "seed": seed,
                            "status": "skipped",
                            "reason": f"campaign budget: {exhausted}",
                        }
                    )
                    continue
                record = run_case(seed, options)
                if budget is not None:
                    budget.charge_pass()
                    budget.charge_updates(int(record.get("stmts") or 0))
                finish(record)
            if options.check:
                for drill in range(options.drills):
                    finish(run_drill(drill, options))
        report = FuzzReport(
            records=records, options=options, wall_s=time.perf_counter() - t0
        )
        if writer is not None:
            writer.write(report.summary_record())
    finally:
        if writer is not None:
            writer.close()
    if metrics.enabled and report.exit_code != 0:
        metrics.inc("fuzz.campaign_failures")
    return report


def parse_seed_spec(spec: str) -> Tuple[int, ...]:
    """Parse the CLI ``--seeds`` argument: ``A:B`` (inclusive range),
    a single integer, or a comma-separated mix (``0:9,100,200:205``)."""
    seeds: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            lo_s, hi_s = part.split(":", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in spec {spec!r}")
    return tuple(dict.fromkeys(seeds))
